"""Fig 6 / §III-C: the oracle performance model.

With perfect cold knowledge the speedup is ceil(S/C) / ceil((1-p)S/C).
The realized BaseAP/SpAP speedup must track the model: never dramatically
above it (the model is an upper bound up to fill/intermediate effects),
and close to it for the well-predicted applications.
"""

from repro.experiments import fig06_ideal_model


def test_fig06_ideal_model(benchmark, config, record):
    result = benchmark.pedantic(
        lambda: fig06_ideal_model(config), rounds=1, iterations=1
    )
    record(result)
    by_app = {r[0]: r for r in result.rows}
    for abbr, row in by_app.items():
        _, _cold, ideal, measured = row
        # Measured stays near or below the oracle.  (It can exceed it
        # somewhat when profiling under-predicts the true hot set: the
        # model charges for every truly-hot state, the real scheme only
        # for the predicted ones plus SpAP recovery.)
        assert measured <= ideal * 1.8 + 0.2, abbr
    # For the best-predicted app the model is nearly achieved.
    cav4k = by_app["CAV4k"]
    assert cav4k[3] > 0.6 * cav4k[2]
    # The model explains most of the realized geomean.
    assert result.summary["geomean_measured"] <= result.summary["geomean_ideal"] * 1.1
