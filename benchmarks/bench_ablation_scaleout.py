"""Ablation: the paper's §I motivation — applications keep growing.

The AP supports multiple input streams by *duplicating* NFAs, and other
throughput techniques (Parallel AP, multi-stride) likewise multiply states.
We duplicate a medium application and show the baseline degrading linearly
in the duplication factor while BaseAP/SpAP holds its throughput by only
configuring hot states.

Also exercises the trie (common-prefix merge) transform as the compile-time
counterpoint: merging shaves states before partitioning even starts.
"""

from repro.core.scenarios import prepare_partition, run_base_spap, run_baseline_ap
from repro.experiments.pipeline import get_run
from repro.experiments.tables import render_table
from repro.nfa.transforms import duplicate_network, merge_common_prefixes


def test_ablation_duplication(benchmark, config):
    ap = config.half_core
    run = get_run("Brill", config)
    profile_input = run.profile_input(0.01)
    test_input = run.test_input

    def sweep():
        rows = []
        for copies in (1, 2, 4):
            network = duplicate_network(run.network, copies)
            baseline = run_baseline_ap(network, test_input, ap)
            partitioned, bins = prepare_partition(network, profile_input, ap)
            outcome = run_base_spap(partitioned, test_input, ap, bins)
            rows.append([
                copies,
                network.n_states,
                baseline.n_batches,
                outcome.n_hot_batches,
                baseline.cycles / outcome.cycles,
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("== Ablation: NFA duplication (multi-stream scale-out) on Brill ==")
    print(render_table(
        ["Copies", "States", "BaselineBatches", "HotBatches", "SpAPSpeedup"], rows
    ))
    # Baseline batches grow ~linearly with duplication.
    assert rows[2][2] >= 2 * rows[0][2] - 1
    # The SpAP advantage persists (or grows) as the app outgrows the chip.
    assert rows[2][4] >= rows[0][4] * 0.8
    assert rows[2][4] > 1.4


def test_ablation_prefix_merge(benchmark, config):
    run = get_run("Brill", config)

    def merge():
        return merge_common_prefixes(run.network)

    merged = benchmark.pedantic(merge, rounds=1, iterations=1)
    print()
    print(f"Brill: {run.network.n_states} states in {run.network.n_automata} chains "
          f"-> {merged.n_states} states in {merged.n_automata} trie machine(s)")
    # Brill's shared rule prefixes make the trie strictly smaller.
    assert merged.n_states < run.network.n_states
