"""Ablation: per-target vs per-edge intermediate reporting states.

The paper introduces one intermediate state per cut *edge* (§IV-C); this
library shares one per cut *target* by default (observationally identical
for matching — DESIGN.md §5).  This ablation quantifies the difference on
the applications with predecessor fan-in at the boundary: the literal
construction configures more STEs (inflating the hot set) and emits
duplicate events, without changing a single final report.
"""

from repro.core.partition import partition_network
from repro.core.profiling import choose_partition_layers
from repro.experiments.pipeline import get_run
from repro.experiments.tables import render_table
from repro.sim.result import reports_equal

APPS = ["HM500", "ER", "Snort", "Brill"]


def test_ablation_intermediate_dedup(benchmark, config):
    def sweep():
        rows = []
        for abbr in APPS:
            run = get_run(abbr, config)
            profile = run.profile(0.01)
            layers = choose_partition_layers(
                run.network, run.topology, profile.hot_mask()
            )
            shared = partition_network(
                run.network, layers, topology=run.topology, share_intermediates=True
            )
            literal = partition_network(
                run.network, layers, topology=run.topology, share_intermediates=False
            )
            rows.append([
                abbr,
                shared.n_intermediate,
                literal.n_intermediate,
                shared.hot.n_states,
                literal.hot.n_states,
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("== Ablation: intermediate states, per-target (shared) vs per-edge "
          "(paper-literal) ==")
    print(render_table(
        ["App", "IM(shared)", "IM(per-edge)", "HotStates(shared)",
         "HotStates(per-edge)"],
        rows,
    ))
    for row in rows:
        assert row[2] >= row[1], row[0]
        assert row[4] >= row[3], row[0]
    # BMIA machines have 2-way fan-in at every grid cell: the literal
    # construction pays visibly more.
    hm = next(r for r in rows if r[0] == "HM500")
    assert hm[2] > 1.3 * hm[1]
