"""Ablation: the §IV-B capacity-filling optimization.

The paper fills each BaseAP batch's slack with predicted-cold layers so the
chip never ships empty STEs.  This ablation quantifies that choice: with
filling disabled, the hot set is smaller but the batch count is unchanged,
and every absorbed layer that was *actually* reached turns into intermediate
reports instead.  (Section VII uses this effect to explain why Snort's
speedup differs across profiling inputs at equal resource savings.)
"""

import pytest

from repro.core.partition import partition_network, plan_hot_batches
from repro.core.profiling import choose_partition_layers, profile_network
from repro.core.scenarios import run_base_spap, run_baseline_ap
from repro.experiments import default_config
from repro.experiments.pipeline import get_run
from repro.experiments.tables import render_table

APPS = ["HM500", "Snort", "Fermi", "CAV"]


def _run_variant(run, config, fill: bool):
    profile = run.profile(0.01)
    layers = choose_partition_layers(run.network, run.topology, profile.hot_mask())
    layers, bins = plan_hot_batches(
        run.network, run.topology, layers, config.capacity, fill=fill
    )
    partitioned = partition_network(run.network, layers, topology=run.topology)
    outcome = run_base_spap(partitioned, run.test_input, config, bins)
    baseline = run.baseline(config)
    return {
        "speedup": baseline.cycles / outcome.cycles,
        "reports": outcome.n_intermediate_reports,
        "saving": partitioned.resource_saving(),
        "hot_batches": outcome.n_hot_batches,
    }


def test_ablation_capacity_fill(benchmark, config):
    ap = config.half_core

    def sweep():
        rows = []
        for abbr in APPS:
            run = get_run(abbr, config)
            with_fill = _run_variant(run, ap, fill=True)
            without = _run_variant(run, ap, fill=False)
            rows.append([
                abbr,
                with_fill["hot_batches"], without["hot_batches"],
                100 * with_fill["saving"], 100 * without["saving"],
                with_fill["reports"], without["reports"],
                with_fill["speedup"], without["speedup"],
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("== Ablation: capacity filling (fill vs no-fill), 1% profiling ==")
    print(render_table(
        ["App", "Batches+", "Batches-", "Save%+", "Save%-",
         "IMReports+", "IMReports-", "Speedup+", "Speedup-"],
        rows,
    ))
    by_app = {r[0]: r for r in rows}
    for abbr, row in by_app.items():
        # Filling never increases the batch count...
        assert row[1] <= row[2], abbr
        # ...and never produces more intermediate reports than no-fill.
        assert row[5] <= row[6], abbr
        # Speedup with filling is at least as good (within rounding noise).
        assert row[7] >= row[8] * 0.98, abbr
    # Somewhere the fill visibly absorbs mispredictions.
    assert any(row[6] > row[5] for row in rows)
