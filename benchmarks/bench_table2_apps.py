"""Table II: application statistics (paper values vs the scaled build).

The build must preserve each application's size relative to AP capacity —
state counts within a few percent of paper/scale — so that every batch
count, and therefore every speedup ratio, carries over.
"""

from repro.experiments import table2_applications
from repro.workloads.registry import APPS


def test_table2_applications(benchmark, config, record):
    result = benchmark.pedantic(
        lambda: table2_applications(config), rounds=1, iterations=1
    )
    record(result)
    assert len(result.rows) == 26
    for row in result.rows:
        abbr, _grp, paper_states, states = row[0], row[1], row[2], row[3]
        target = paper_states / config.scale
        largest_tolerance = max(0.12 * target, 600)
        assert abs(states - target) <= largest_tolerance, (
            f"{abbr}: {states} vs scaled target {target:.0f}"
        )
    groups = {row[0]: row[1] for row in result.rows}
    assert groups["CAV4k"] == "H"
    assert groups["Brill"] == "M"
    assert groups["Bro217"] == "L"
