"""Fig 10: the headline result.

(a) Speedup of AP-CPU and BaseAP/SpAP over the baseline AP at 0.1% and 1%
    profiling, capacity = the scaled 24K half-core.  Paper: BaseAP/SpAP
    geomean 1.8x @0.1% and 2.1x @1% (max 47x, CAV4k); AP-CPU is a geomean
    *slowdown* (9.8x / 2.9x) yet five applications win without any
    hardware change.
(b) Resource savings: the share of states never configured in BaseAP mode.
"""

from repro.core.metrics import geometric_mean
from repro.experiments import fig10_speedup_and_savings


def test_fig10_speedup_and_savings(benchmark, config, record):
    result = benchmark.pedantic(
        lambda: fig10_speedup_and_savings(config), rounds=1, iterations=1
    )
    record(result)
    assert len(result.rows) == 16  # high + medium groups

    # Headline: ~2x geometric-mean speedup at 1% profiling.
    assert 1.6 <= result.summary["geomean_spap_1%"] <= 3.0
    # More profiling never hurts on geomean.
    assert result.summary["geomean_spap_1%"] >= result.summary["geomean_spap_0.1%"] - 0.05
    # CAV4k is the max-speedup case (paper 47x; scaled build ~36x+).
    assert result.summary["max_spap_1%"] > 20.0

    by_app = {r[0]: r for r in result.rows}
    # AP-CPU: a geomean slowdown overall...
    assert result.summary["geomean_ap_cpu_0.1%"] < 1.0
    assert result.summary["geomean_ap_cpu_1%"] < result.summary["geomean_spap_1%"] / 1.5
    # ...yet some applications win with no hardware change (paper's 4.2x group).
    assert by_app["CAV4k"][2] > 4.0
    # PEN is the SpAP slowdown case (simultaneous-report stalls).
    assert by_app["PEN"][4] < 1.0
    # Applications with no savings see no change.
    assert by_app["RF1"][4] == 1.0
    assert abs(by_app["ER"][4] - 1.0) < 0.05
    # Savings and speedup correlate (paper Fig 10a vs 10b discussion).
    assert by_app["CAV4k"][6] > 90.0
