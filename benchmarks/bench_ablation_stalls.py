"""Ablation: enable-stall cost of simultaneous intermediate reports.

The SpAP enable path can overlap only one enable with input processing
(§V-B); k simultaneous reports at one position stall for k-1 cycles.  This
ablation separates consumed cycles from stall cycles and shows that a
hypothetical multi-enable AP (stall-free upper bound) would rescue PEN —
i.e. the paper's PEN slowdown is entirely an enable-bandwidth artifact.
"""

from repro.experiments.pipeline import get_run
from repro.experiments.tables import render_table

APPS = ["PEN", "Brill", "HM1500", "Snort_L"]


def test_ablation_enable_stalls(benchmark, config):
    ap = config.half_core

    def sweep():
        rows = []
        for abbr in APPS:
            run = get_run(abbr, config)
            baseline = run.baseline(ap)
            outcome = run.base_spap(0.01, ap)
            with_stalls = baseline.cycles / outcome.cycles
            stall_free_cycles = outcome.base_cycles + outcome.spap_consumed_cycles
            stall_free = baseline.cycles / stall_free_cycles
            rows.append([
                abbr,
                outcome.n_intermediate_reports,
                outcome.spap_stall_cycles,
                with_stalls,
                stall_free,
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("== Ablation: SpAP enable stalls (1-enable/cycle vs stall-free) ==")
    print(render_table(
        ["App", "IMReports", "Stalls", "Speedup(1-enable)", "Speedup(stall-free)"],
        rows,
    ))
    by_app = {r[0]: r for r in rows}
    # Stall-free is always at least as fast.
    for abbr, row in by_app.items():
        assert row[4] >= row[3], abbr
    # PEN: simultaneous reports produce nearly one stall per report, and a
    # multi-enable AP recovers a meaningful share of the slowdown.  (At full
    # paper scale — 22x more NFAs reporting at the same positions — stalls
    # dominate outright; NFA-count scaling shrinks simultaneity depth.)
    assert by_app["PEN"][2] > 0.5 * by_app["PEN"][1]
    gap_with = 1.0 - by_app["PEN"][3]
    gap_free = 1.0 - by_app["PEN"][4]
    assert gap_with > 0  # PEN is a slowdown with 1-enable hardware
    assert gap_free < 0.7 * gap_with  # stall-free recovers >30% of the loss
