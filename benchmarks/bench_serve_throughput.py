"""Serving-throughput trajectory: serial requests vs micro-batched traffic.

Run directly, this module is the benchmark harness for the match service::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py          # write BENCH_serve.json
    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --check  # CI smoke assertion

It starts an in-process :class:`repro.serve.MatchServer` on a unix socket
and drives it with the closed-loop load generator twice:

* **concurrency 1** — one request in flight at a time.  The batcher's
  eager-when-idle policy dispatches each request alone, so this is the
  honest *serial per-request* baseline (no coalescing window is paid).
* **concurrency 32** — 32 requests in flight; the coalescer folds them
  into multi-stream batches, so many requests ride one ``(K, n_words)``
  lock-step pass.

As with ``bench_engine_throughput.py``, the committed artifact records the
*ratio* of two measurements taken moments apart on the same machine —
machine speed cancels out — and ``--check`` asserts the live ratio has not
regressed below the recorded one (within drift tolerance) nor below the
hard acceptance floor of 2x.  Both rounds must complete with zero request
errors.
"""

import argparse
import asyncio
import json
import sys
import tempfile
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.serve.loadgen import LoadgenConfig, run_loadgen
from repro.serve.server import MatchServer, ServerOptions

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
APP, SCALE, PAYLOAD_BYTES = "Snort", 64, 1024
SERIAL_CONC, BATCHED_CONC = 1, 32
SERIAL_REQUESTS, BATCHED_REQUESTS = 64, 256
WINDOW_MS, MAX_BATCH, WORKERS = 2.0, 64, 2
#: ``--check`` passes while the live ratio stays above this fraction of the
#: committed one (CI runners are noisy; ratios still drift a little).
TOLERANCE = 0.5
#: Hard floor from the acceptance criteria, enforced regardless of drift.
MIN_BATCHED_VS_SERIAL = 2.0


async def _round(sock, concurrency, requests):
    config = LoadgenConfig(
        apps=[APP], requests=requests, concurrency=concurrency,
        input_len=PAYLOAD_BYTES, max_reports=64, unix_path=sock,
    )
    return await run_loadgen(config)


async def _best_of(sock, concurrency, requests, repeats):
    best = None
    for _ in range(repeats):
        result = await _round(sock, concurrency, requests)
        if best is None or result.rps > best.rps:
            best = result
    return best


async def _measure(repeats):
    """Serve + drive in one event loop; returns the benchmark document."""
    with tempfile.TemporaryDirectory() as tmpdir:
        sock = str(Path(tmpdir) / "bench.sock")
        options = ServerOptions(unix_path=sock, window_ms=WINDOW_MS,
                                max_batch=MAX_BATCH, workers=WORKERS)
        config = ExperimentConfig(scale=SCALE, input_len=PAYLOAD_BYTES)
        server = MatchServer(config, options, apps=[APP])
        await server.start()
        loop_task = asyncio.ensure_future(server.serve_until_stopped())
        try:
            await _round(sock, 4, 32)  # warm the whole path, discarded
            serial = await _best_of(sock, SERIAL_CONC, SERIAL_REQUESTS, repeats)
            batched = await _best_of(sock, BATCHED_CONC, BATCHED_REQUESTS, repeats)
            n_states = server.state.get_blocking(APP).compiled.n_states
            document = server.stats_document()
        finally:
            await server.stop()
            await asyncio.wait_for(loop_task, 30)
    errors = serial.errors + batched.errors + document["requests"]["errors"]
    return {
        "workload": {
            "app": APP,
            "scale": SCALE,
            "payload_bytes": PAYLOAD_BYTES,
            "n_states": n_states,
        },
        "serving": {
            "window_ms": WINDOW_MS,
            "max_batch": MAX_BATCH,
            "workers": WORKERS,
        },
        "throughput_rps": {
            "serial_c1": round(serial.rps, 1),
            "batched_c32": round(batched.rps, 1),
        },
        "latency_ms": {
            "serial_p50": round(serial.percentile(50), 3),
            "batched_p50": round(batched.percentile(50), 3),
            "batched_p99": round(batched.percentile(99), 3),
        },
        "batching": {
            "mean_batch_c32": round(batched.mean_batch(), 2),
            "max_batch_seen": max(batched.batch_sizes, default=0),
        },
        "speedup": {
            "batched_vs_serial": round(batched.rps / serial.rps, 3),
        },
        "total_errors": errors,
    }


def collect_metrics(repeats=2):
    return asyncio.run(_measure(repeats))


def _check(recorded, live):
    """CI smoke assertions: zero errors, batching gain above the floor."""
    failures = []
    if live["total_errors"]:
        failures.append(f"{live['total_errors']} request error(s) during the bench")
    old = recorded["speedup"]["batched_vs_serial"]
    new = live["speedup"]["batched_vs_serial"]
    need = max(MIN_BATCHED_VS_SERIAL, old * TOLERANCE)
    if new < need:
        failures.append(
            f"batched_vs_serial regressed: {new:.2f}x live vs {old:.2f}x "
            f"recorded (needs >= {need:.2f}x)"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description="serve benchmark trajectory")
    parser.add_argument("--check", action="store_true",
                        help="re-measure and assert no regression vs "
                             f"{BENCH_PATH.name} (exit 1 on failure)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="loadgen rounds per concurrency (best-of)")
    args = parser.parse_args(argv)

    live = collect_metrics(repeats=args.repeats)
    print(json.dumps(live, indent=2))
    if not args.check:
        BENCH_PATH.write_text(json.dumps(live, indent=2) + "\n")
        print(f"wrote {BENCH_PATH}", file=sys.stderr)
        return 0

    recorded = json.loads(BENCH_PATH.read_text())
    failures = _check(recorded, live)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("serve benchmark smoke check passed", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
