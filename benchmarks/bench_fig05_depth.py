"""Fig 5: normalized-depth distribution of hot vs cold states.

Paper claims: hot states concentrate in shallow layers and cold states in
deep layers; the depth-vs-hotness correlation averages -0.82, with ER the
exception (its hot states sit in a mid-depth SCC core).
"""

import numpy as np

from repro.experiments import fig05_depth_distribution


def test_fig05_depth_distribution(benchmark, config, record):
    result = benchmark.pedantic(
        lambda: fig05_depth_distribution(config), rounds=1, iterations=1
    )
    record(result)
    assert len(result.rows) == 26
    # Aggregate shape: hot states are shallower than cold states.
    hot_shallow = np.mean([r[1] for r in result.rows])
    cold_deep = np.mean([r[6] for r in result.rows])
    cold_shallow = np.mean([r[4] for r in result.rows])
    assert hot_shallow > 40.0
    assert cold_deep > cold_shallow
    # Strong negative correlation on average (paper: -0.82 excluding ER).
    assert result.summary["avg_corr_excl_ER"] < -0.55
