"""Table IV: per-application runtime statistics at 1% profiling.

The baseline execution counts must match the paper exactly (the build
preserves every S/C ratio); BaseAP/SpAP batch counts, intermediate-report
and stall behaviour, and JumpRatio reproduce the paper's shape: most
applications skip the vast majority of SpAP input via jumps, while PEN
consumes much of it and stalls on simultaneous enables.
"""

from repro.experiments import table4_runtime_statistics


def test_table4_runtime_statistics(benchmark, config, record):
    result = benchmark.pedantic(
        lambda: table4_runtime_statistics(config), rounds=1, iterations=1
    )
    record(result)
    by_app = {r[0]: r for r in result.rows}

    # Baseline batch counts: exact match with paper Table IV.
    for abbr, row in by_app.items():
        paper, measured = row[1], row[2]
        assert measured == paper, f"{abbr}: baseline {measured} != paper {paper}"

    # BaseAP mode needs fewer (or equal) batches everywhere.
    for abbr, row in by_app.items():
        assert row[3] <= row[2], abbr

    # Zero-misprediction applications: no SpAP work at all (paper: DS, ER,
    # RF1, RF2, Fermi).
    for abbr in ("ER", "RF1", "RF2", "Fermi"):
        assert by_app[abbr][5] == 0, abbr

    # PEN: flood of intermediate reports with stalls comparable to reports
    # (the enable-bandwidth bottleneck; at paper scale — 22x more NFAs
    # reporting simultaneously — the stalls alone exceed the input length).
    pen = by_app["PEN"]
    assert pen[5] > 100
    assert pen[6] > 0.5 * pen[5]

    # Jump operations skip most SpAP input for the well-predicted apps.
    for abbr in ("HM1500", "HM1000", "Snort", "CAV", "Brill"):
        assert by_app[abbr][7] is not None and by_app[abbr][7] > 85.0, abbr
