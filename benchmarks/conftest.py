"""Shared fixtures for the experiment benchmarks.

Each ``bench_*`` module regenerates one of the paper's tables or figures.
The per-application pipeline cache (``repro.experiments.pipeline``) is
shared across all benchmarks in a session, so each expensive stage runs
once no matter how many figures consume it.

Rendered outputs are printed and also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import default_config

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config():
    return default_config()


@pytest.fixture()
def record():
    """Print an ExperimentResult and persist it under benchmarks/results/."""

    def _record(result):
        text = result.render()
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = result.name.split(":")[0].strip().lower().replace(" ", "_").replace("/", "-")
        (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
        return result

    return _record
