"""Ablation: the output-reporting overhead the paper excludes (§VI).

The paper's results omit report-path stalls, citing Wadden et al. [43] for
mitigation.  This ablation quantifies the exclusion: how many extra cycles
a 1-report/cycle output path would add to the baseline and to BaseAP mode
(whose intermediate reporting states add output traffic) across the apps
with the heaviest report streams.
"""

from repro.core.output_model import OutputModel
from repro.experiments.pipeline import get_run
from repro.experiments.tables import render_table

APPS = ["SPM", "RF1", "PEN", "Brill", "HM1500"]


def test_ablation_output_overhead(benchmark, config):
    ap = config.half_core
    model = OutputModel(reports_per_cycle=1)

    def sweep():
        rows = []
        for abbr in APPS:
            run = get_run(abbr, config)
            baseline = run.baseline(ap)
            spap = run.base_spap(0.01, ap)
            base_stalls = model.stall_cycles(baseline.reports)
            # BaseAP-mode output = final reports + intermediate reports.
            spap_output = spap.reports.shape[0] + spap.n_intermediate_reports
            rows.append([
                abbr,
                baseline.reports.shape[0],
                base_stalls,
                100.0 * base_stalls / baseline.cycles,
                spap_output,
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("== Ablation: output-path stalls the paper excludes (1 report/cycle) ==")
    print(render_table(
        ["App", "BaselineReports", "OutputStalls", "Overhead%", "SpAP+IM output"],
        rows,
    ))
    by_app = {r[0]: r for r in rows}
    # Report-heavy apps (SPM's gap machines fire constantly) would pay a
    # real penalty — the reason the paper defers to report compression.
    assert by_app["SPM"][3] > 5.0
    # Most applications' report streams are cheap to drain.
    cheap = [r for r in rows if r[0] in ("PEN", "Brill", "HM1500")]
    assert all(r[3] < 5.0 for r in cheap)
