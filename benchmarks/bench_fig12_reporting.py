"""Fig 12: reporting states in BaseAP mode, normalized to the baseline.

Paper claims: intermediate reporting states can exceed the original count
(ER reaches 3.6x of baseline because of its many hot->cold crossing edges),
while applications whose hot partitions carry few original reporters (e.g.
Snort variants) can *decrease* below 1.0.
"""

from repro.experiments import fig12_reporting_states


def test_fig12_reporting_states(benchmark, config, record):
    result = benchmark.pedantic(
        lambda: fig12_reporting_states(config), rounds=1, iterations=1
    )
    record(result)
    assert len(result.rows) == 16
    totals_01 = {r[0]: r[1] + r[2] for r in result.rows}
    totals_1 = {r[0]: r[3] + r[4] for r in result.rows}
    # Some application exceeds its baseline reporting count through
    # intermediate states (ER reaches 3.6x in the paper); in our build the
    # inflation shows at 0.1% profiling, where ER's exit fan-out is cold.
    assert max(max(totals_01.values()), max(totals_1.values())) > 1.2
    assert totals_01["ER"] > 1.2
    # And some application drops below baseline (deep reporters stay cold).
    assert min(totals_1.values()) < 0.9
    # Apps with no cold set add no intermediate reporters.
    by_app = {r[0]: r for r in result.rows}
    assert by_app["RF1"][4] == 0.0
