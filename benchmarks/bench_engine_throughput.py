"""Microbenchmarks of the simulation substrate itself.

Not a paper figure: these keep the fast engine honest (the experiment
sweep's cost is dominated by it) and demonstrate pytest-benchmark's
steady-state measurement on hot loops.
"""

import pytest

from repro.sim import compile_network, run
from repro.workloads.inputs import uniform_bytes
from repro.workloads.registry import get_app


@pytest.fixture(scope="module")
def snort_compiled():
    spec = get_app("Snort")
    network = spec.build(64)
    return compile_network(network), spec.make_input(network, 2048)


def test_engine_throughput_snort(benchmark, snort_compiled):
    compiled, data = snort_compiled
    result = benchmark(lambda: run(compiled, data, track_enabled=False))
    assert result.cycles == len(data)


def test_engine_throughput_with_tracking(benchmark, snort_compiled):
    compiled, data = snort_compiled
    result = benchmark(lambda: run(compiled, data, track_enabled=True))
    assert result.hot_count() > 0


def test_compile_network_cost(benchmark):
    spec = get_app("Brill")
    network = spec.build(64)
    compiled = benchmark(lambda: compile_network(network))
    assert compiled.n_states == network.n_states
