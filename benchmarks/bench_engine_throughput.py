"""Microbenchmarks of the simulation substrate itself.

Not a paper figure: these keep the fast engine honest (the experiment
sweep's cost is dominated by it) and demonstrate pytest-benchmark's
steady-state measurement on hot loops.

Run directly, this module is the benchmark-trajectory harness::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py          # write BENCH_engine.json
    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --check  # CI smoke assertion

The harness measures MB/s for the engines (reference, bit-packed, matrix,
multi-stream, table-driven DFA, and the bounded-subset lazy-DFA hybrid) on
the standard workload — Snort at scale 64 is DFA-safe, so the same
workload carries the ``dfa`` measurement — plus a ``lazydfa_unsafe``
section timing the hybrid against bitpacked on the DFA-*unsafe* registry
apps (where no eager table exists), and records the *speedup ratios*
against a live re-run of the seed hot loop (``_seed_run`` below, a
verbatim copy of the pre-optimization engine).  Ratios of two measurements taken on the same
machine moments apart are machine-independent, so ``--check`` can compare
today's ratio against the committed one without caring how fast the CI
runner is.  See DESIGN.md §"Benchmark trajectory".

Every run rewrites the *entire* document — including the full ``workload``
block — from live measurement; nothing is merged into a previously
committed file, so no field can go stale when a new engine column is
added.  :func:`validate_engine_bench` pins the full document shape and is
applied both before writing and to the committed document in ``--check``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro import bitops
from repro.sim import (
    compile_dfa,
    compile_lazydfa,
    compile_network,
    dfa_run,
    lazydfa_run,
    matrix_compile,
    matrix_run,
    reference_run,
    reports_equal,
    run,
    run_multi,
)
from repro.sim.result import reports_to_array
from repro.stats import SCHEMA_VERSION, StageTimer, validate_spans
from repro.workloads.registry import get_app

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
#: Stage-timing stats (repro.stats spans) written next to BENCH_engine.json.
STATS_PATH = BENCH_PATH.with_name("BENCH_engine_stats.json")
APP, SCALE, INPUT_LEN, K_STREAMS = "Snort", 64, 2048, 8
#: ``--check`` passes while live ratios stay above this fraction of the
#: committed ones (CI runners are noisy; ratios still drift a little).
TOLERANCE = 0.5
#: Hard floors from the acceptance criteria, enforced regardless of drift.
MIN_BITPACKED_VS_SEED = 1.5
MIN_MULTISTREAM_VS_K_SCALAR = 1.0
MIN_DFA_VS_BITPACKED = 10.0
#: The lazy hybrid must beat bitpacked by this factor on at least one
#: previously DFA-unsafe application (and the committed document must
#: record it on at least two) — the DESIGN.md §14 acceptance bar.
MIN_LAZYDFA_VS_BITPACKED = 2.0

#: DFA-unsafe registry applications (at the standard bench scale) where
#: only the hybrid can deliver table-speed execution; the ``lazydfa_unsafe``
#: section measures each against bitpacked.
UNSAFE_APPS = ("LV", "ER", "SPM", "Fermi", "Brill")

#: Full document shape: every key the harness writes, pinned so a partial
#: merge (stale workload metadata, missing engine column) cannot validate.
_WORKLOAD_KEYS = ("app", "scale", "input_len", "n_states", "k_streams",
                  "dfa_states", "dfa_classes", "dfa_table_bytes")
_THROUGHPUT_KEYS = ("seed_scalar", "reference", "bitpacked", "matrix",
                    "k_scalar_aggregate", "multistream_aggregate", "dfa",
                    "lazydfa")
_SPEEDUP_KEYS = ("bitpacked_vs_seed", "matrix_vs_seed",
                 "multistream_vs_k_scalar", "dfa_vs_bitpacked",
                 "lazydfa_vs_bitpacked")
_UNSAFE_APP_KEYS = ("app", "bitpacked_mb_s", "lazydfa_mb_s", "speedup")


def validate_engine_bench(document):
    """Assert a BENCH_engine.json document is complete and self-consistent.

    Used on the live document before every write *and* on the committed
    document in ``--check`` — the same validator in both places, so CI
    fails loudly on a stale or hand-mangled file rather than silently
    comparing against garbage.  Returns the document for chaining.
    """
    for section, keys in [("workload", _WORKLOAD_KEYS),
                          ("throughput_mb_s", _THROUGHPUT_KEYS),
                          ("speedup", _SPEEDUP_KEYS)]:
        block = document.get(section)
        if not isinstance(block, dict):
            raise ValueError(f"engine bench document missing {section!r}")
        missing = [key for key in keys if key not in block]
        extra = [key for key in block if key not in keys]
        if missing or extra:
            raise ValueError(
                f"{section} keys drifted: missing {missing}, unexpected {extra}"
            )
    if not isinstance(document.get("reports_identical_across_engines"), bool):
        raise ValueError("missing reports_identical_across_engines flag")
    unsafe = document.get("lazydfa_unsafe")
    if not isinstance(unsafe, dict) or not isinstance(unsafe.get("apps"), list):
        raise ValueError("engine bench document missing lazydfa_unsafe.apps")
    for entry in unsafe["apps"]:
        missing = [key for key in _UNSAFE_APP_KEYS if key not in entry]
        extra = [key for key in entry if key not in _UNSAFE_APP_KEYS]
        if missing or extra:
            raise ValueError(
                f"lazydfa_unsafe entry keys drifted: missing {missing}, "
                f"unexpected {extra}"
            )
        for key in ("bitpacked_mb_s", "lazydfa_mb_s", "speedup"):
            if not float(entry[key]) > 0:
                raise ValueError(
                    f"non-positive {key} for unsafe app {entry.get('app')!r}"
                )
    if sum(1 for entry in unsafe["apps"]
           if float(entry["speedup"]) >= MIN_LAZYDFA_VS_BITPACKED) < 2:
        raise ValueError(
            f"lazydfa_unsafe must record >= {MIN_LAZYDFA_VS_BITPACKED}x over "
            f"bitpacked on at least two DFA-unsafe apps"
        )
    workload = document["workload"]
    if workload["app"] != APP or workload["scale"] != SCALE:
        raise ValueError(
            f"workload block is stale: {workload['app']}@{workload['scale']} "
            f"recorded, harness runs {APP}@{SCALE}"
        )
    for key in _THROUGHPUT_KEYS:
        if not float(document["throughput_mb_s"][key]) > 0:
            raise ValueError(f"non-positive throughput for {key}")
    return document


@pytest.fixture(scope="module")
def snort_compiled():
    spec = get_app(APP)
    network = spec.build(SCALE)
    return compile_network(network), spec.make_input(network, INPUT_LEN)


def test_engine_throughput_snort(benchmark, snort_compiled):
    compiled, data = snort_compiled
    result = benchmark(lambda: run(compiled, data, track_enabled=False))
    assert result.cycles == len(data)


def test_engine_throughput_with_tracking(benchmark, snort_compiled):
    compiled, data = snort_compiled
    result = benchmark(lambda: run(compiled, data, track_enabled=True))
    assert result.hot_count() > 0


def test_multistream_throughput(benchmark, snort_compiled):
    compiled, data = snort_compiled
    streams = [data] * K_STREAMS
    results = benchmark(lambda: run_multi(compiled, streams, track_enabled=False))
    assert len(results) == K_STREAMS


def test_compile_network_cost(benchmark):
    spec = get_app("Brill")
    network = spec.build(64)
    compiled = benchmark(lambda: compile_network(network))
    assert compiled.n_states == network.n_states


# --------------------------------------------------------------------------
# Benchmark-trajectory harness (python benchmarks/bench_engine_throughput.py)
# --------------------------------------------------------------------------


def _seed_run(compiled, input_data):
    """The seed repo's scalar hot loop, kept verbatim as the live baseline.

    Re-measuring it alongside the current engine turns absolute MB/s (which
    depends on the machine) into a speedup ratio (which does not).
    """
    symbols = np.frombuffer(bytes(input_data), dtype=np.uint8)
    enabled = compiled.initial_enabled().copy()
    reports = []
    accept = compiled.accept
    start_all = compiled.start_all
    report_mask = compiled.report_mask
    mid_report_mask = report_mask & ~compiled.eod_mask
    last = int(symbols.size) - 1

    for position in range(symbols.size):
        active = enabled & accept[symbols[position]]
        hits = active & (report_mask if position == last else mid_report_mask)
        if hits.any():
            for gid in bitops.to_indices(hits):
                reports.append((position, int(gid)))
        enabled = start_all.copy()
        if active.any():
            succ = compiled.successors_of(bitops.to_indices(active))
            bitops.set_indices(enabled, succ)
    return reports_to_array(reports)


def _mb_per_s(fn, n_bytes, repeats=3):
    """Best-of-``repeats`` throughput of ``fn`` over ``n_bytes`` of input."""
    best = float("inf")
    for _ in range(repeats):
        began = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - began)
    return n_bytes / best / 1e6


def collect_metrics(repeats=3, timer=None):
    """Measure every engine on the standard workload; returns the JSON dict.

    ``timer`` (a :class:`repro.stats.StageTimer`) records where the harness's
    own wall time goes — build/compile, the equivalence pass, and each
    engine's measurement loop — for the stats document written next to
    ``BENCH_engine.json``.
    """
    timer = timer or StageTimer(enabled=False)
    spec = get_app(APP)
    with timer.stage("build_compile"):
        network = spec.build(SCALE)
        compiled = compile_network(network)
        data = spec.make_input(network, INPUT_LEN)
    n = len(data)
    streams = [data] * K_STREAMS
    with timer.stage("compile_dfa"):
        # Snort at scale 64 is DFA-safe within the default budgets, so the
        # standard workload carries the dfa measurement directly.
        dfa = compile_dfa(network)
    with timer.stage("compile_lazydfa"):
        lazy = compile_lazydfa(network)

    with timer.stage("equivalence"):
        seed_result = _seed_run(compiled, data)
        fast_result = run(compiled, data, track_enabled=False)
        reference_result = reference_run(network, data)
        matrix_result = matrix_run(matrix_compile(network), data)
        multi_results = run_multi(compiled, streams, track_enabled=False)
        dfa_result = dfa_run(dfa, data)
        lazy_result = lazydfa_run(lazy, data)
        identical = all(
            reports_equal(fast_result.reports, other)
            for other in [seed_result, reference_result.reports,
                          matrix_result.reports, dfa_result.reports,
                          lazy_result.reports]
            + [r.reports for r in multi_results]
        )

    with timer.stage("measure_seed"):
        seed = _mb_per_s(lambda: _seed_run(compiled, data), n, repeats)
    with timer.stage("measure_bitpacked"):
        bitpacked = _mb_per_s(
            lambda: run(compiled, data, track_enabled=False), n, repeats
        )
    with timer.stage("measure_reference"):
        reference = _mb_per_s(lambda: reference_run(network, data), n, repeats=1)
    with timer.stage("measure_matrix"):
        mat = matrix_compile(network)
        matrix = _mb_per_s(lambda: matrix_run(mat, data), n, repeats)
    with timer.stage("measure_k_scalar"):
        k_scalar = _mb_per_s(
            lambda: [run(compiled, s, track_enabled=False) for s in streams],
            n * K_STREAMS, repeats,
        )
    with timer.stage("measure_multistream"):
        multistream = _mb_per_s(
            lambda: run_multi(compiled, streams, track_enabled=False),
            n * K_STREAMS, repeats,
        )
    with timer.stage("measure_dfa"):
        dfa_run(dfa, data)  # warm the lazy flat-table build out of the timing
        dfa_mb_s = _mb_per_s(lambda: dfa_run(dfa, data), n, repeats)
    with timer.stage("measure_lazydfa"):
        # The equivalence pass above already converged the subset cache,
        # so this measures the steady-state hit path (the quantity the
        # cost model's lz_base coefficient is calibrated from).
        lazydfa_mb_s = _mb_per_s(lambda: lazydfa_run(lazy, data), n, repeats)

    with timer.stage("measure_lazydfa_unsafe"):
        unsafe_rows, unsafe_identical = _measure_unsafe_apps(repeats)
        identical = identical and unsafe_identical

    # The workload block is rebuilt wholesale from this run's live objects
    # (never merged with a committed document), so adding an engine can't
    # leave stale metadata behind.
    return {
        "workload": {
            "app": APP,
            "scale": SCALE,
            "input_len": n,
            "n_states": compiled.n_states,
            "k_streams": K_STREAMS,
            "dfa_states": dfa.n_states,
            "dfa_classes": dfa.n_classes,
            "dfa_table_bytes": dfa.table_bytes,
        },
        "throughput_mb_s": {
            "seed_scalar": round(seed, 3),
            "reference": round(reference, 3),
            "bitpacked": round(bitpacked, 3),
            "matrix": round(matrix, 3),
            "k_scalar_aggregate": round(k_scalar, 3),
            "multistream_aggregate": round(multistream, 3),
            "dfa": round(dfa_mb_s, 3),
            "lazydfa": round(lazydfa_mb_s, 3),
        },
        "speedup": {
            "bitpacked_vs_seed": round(bitpacked / seed, 3),
            "matrix_vs_seed": round(matrix / seed, 3),
            "multistream_vs_k_scalar": round(multistream / k_scalar, 3),
            "dfa_vs_bitpacked": round(dfa_mb_s / bitpacked, 3),
            "lazydfa_vs_bitpacked": round(lazydfa_mb_s / bitpacked, 3),
        },
        "lazydfa_unsafe": {"apps": unsafe_rows},
        "reports_identical_across_engines": identical,
    }


def _measure_unsafe_apps(repeats=3):
    """Bitpacked-vs-hybrid throughput on the DFA-unsafe registry apps.

    These are exactly the applications the eager table backend must reject
    (their reachable subset space bursts the budget), so the hybrid is the
    only table-speed engine available — the section the cost model's
    ``lz_unsafe_factor`` is calibrated from.  Each app's hybrid reports are
    checked bit-identical against the bitpacked engine's before timing.
    """
    from repro.sim import dfa_feasible

    rows = []
    identical = True
    for abbr in UNSAFE_APPS:
        spec = get_app(abbr)
        network = spec.build(SCALE)
        assert not dfa_feasible(network), (
            f"{abbr} became DFA-safe at scale {SCALE}; "
            f"drop it from UNSAFE_APPS"
        )
        compiled = compile_network(network)
        data = spec.make_input(network, INPUT_LEN)
        n = len(data)
        lazy = compile_lazydfa(network)
        bp_result = run(compiled, data, track_enabled=False)
        lazy_result = lazydfa_run(lazy, data)  # also converges the cache
        identical = identical and reports_equal(
            bp_result.reports, lazy_result.reports
        )
        bp = _mb_per_s(lambda: run(compiled, data, track_enabled=False),
                       n, repeats)
        lz = _mb_per_s(lambda: lazydfa_run(lazy, data), n, repeats)
        rows.append({
            "app": abbr,
            "bitpacked_mb_s": round(bp, 3),
            "lazydfa_mb_s": round(lz, 3),
            "speedup": round(lz / bp, 3),
        })
    return rows, identical


def _check(recorded, live):
    """CI smoke assertions: correctness exactly, performance within drift."""
    failures = []
    if not live["reports_identical_across_engines"]:
        failures.append("engines no longer produce identical reports")
    for key, floor in [
        ("bitpacked_vs_seed", MIN_BITPACKED_VS_SEED),
        ("multistream_vs_k_scalar", MIN_MULTISTREAM_VS_K_SCALAR),
        ("dfa_vs_bitpacked", MIN_DFA_VS_BITPACKED),
    ]:
        old = recorded["speedup"][key]
        new = live["speedup"][key]
        need = max(floor, old * TOLERANCE)
        if new < need:
            failures.append(
                f"{key} regressed: {new:.2f}x live vs {old:.2f}x recorded "
                f"(needs >= {need:.2f}x)"
            )
    # The hybrid's reason to exist: table speed where no table is allowed.
    # At least one previously DFA-unsafe app must clear the hard floor live
    # (the committed document already pins >= 2 apps via the validator).
    live_unsafe = live["lazydfa_unsafe"]["apps"]
    best = max((entry["speedup"] for entry in live_unsafe), default=0.0)
    if best < MIN_LAZYDFA_VS_BITPACKED:
        failures.append(
            f"lazydfa_vs_bitpacked on DFA-unsafe apps regressed: best live "
            f"speedup {best:.2f}x (needs >= {MIN_LAZYDFA_VS_BITPACKED:.2f}x "
            f"on at least one app)"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description="engine benchmark trajectory")
    parser.add_argument("--check", action="store_true",
                        help="re-measure and assert no regression vs "
                             f"{BENCH_PATH.name} (exit 1 on failure)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per engine (best-of)")
    args = parser.parse_args(argv)

    timer = StageTimer()
    live = collect_metrics(repeats=args.repeats, timer=timer)
    # The document must round-trip through the same validator CI applies
    # to the committed file — catching shape drift at write time.
    validate_engine_bench(json.loads(json.dumps(live)))
    print(json.dumps(live, indent=2))
    if not args.check:
        BENCH_PATH.write_text(json.dumps(live, indent=2) + "\n")
        print(f"wrote {BENCH_PATH}", file=sys.stderr)
        # Stage timings of this harness run, schema-checked before writing.
        # Absolute wall times are machine-dependent (like the MB/s above),
        # so they ride alongside BENCH_engine.json rather than inside the
        # ratio-checked document.
        spans = timer.to_json()
        validate_spans(spans)
        STATS_PATH.write_text(json.dumps({
            "schema_version": SCHEMA_VERSION,
            "kind": "engine_bench_stages",
            "workload": live["workload"],
            "stages": spans,
        }, indent=2) + "\n")
        print(f"wrote {STATS_PATH}", file=sys.stderr)
        return 0

    recorded = json.loads(BENCH_PATH.read_text())
    try:
        validate_engine_bench(recorded)
    except ValueError as err:
        print(f"FAIL: committed {BENCH_PATH.name} invalid: {err}",
              file=sys.stderr)
        return 1
    failures = _check(recorded, live)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("benchmark smoke check passed", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
