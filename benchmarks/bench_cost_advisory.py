"""Cost-model validation: predicted-fastest vs measured-fastest backend.

The analytic cost model (``repro.cost.model``) prices every engine backend
from static features alone; its one falsifiable claim is that the *ordering*
it predicts matches reality.  This harness measures the live backends
(reference, bitpacked, multistream, the lazy-DFA hybrid, and — on
DFA-safe networks — the table-driven dfa engine) on each application's
parent network and checks
that the model's predicted-fastest among the backends measured is the
measured-fastest, per application::

    PYTHONPATH=src python benchmarks/bench_cost_advisory.py          # write BENCH_cost.json
    PYTHONPATH=src python benchmarks/bench_cost_advisory.py --check  # CI smoke assertion

``--check`` re-measures and asserts the agreement fraction stays at or above
``MIN_AGREEMENT`` (an acceptance criterion: >= 80% of the swept apps).
"""

import argparse
import json
import sys
import time
from pathlib import Path

import pytest

from repro.cost import advise_network, rank_backends
from repro.sim import (
    compile_dfa,
    compile_lazydfa,
    compile_network,
    dfa_feasible,
    dfa_run,
    lazydfa_run,
    reference_run,
    run,
    run_multi,
)
from repro.workloads.registry import get_app

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_cost.json"
#: The CI family spread (regex, IDS, Hamming, Levenshtein, start-of-data).
APPS = ("Bro217", "Snort", "ER", "HM", "LV", "SPM", "Fermi", "CAV")
SCALE, INPUT_LEN, K_STREAMS = 64, 2048, 8
#: Backends with a live engine to measure against ("dfa" only where the
#: network is DFA-safe within the default budgets; "lazydfa" everywhere —
#: the hybrid needs no proof).
MEASURED_BACKENDS = ("reference", "bitpacked", "multistream", "dfa",
                     "lazydfa")
#: Acceptance floor: the model must pick the measured winner on at least
#: this fraction of the swept applications.
MIN_AGREEMENT = 0.8


@pytest.fixture(scope="module")
def bro_network():
    return get_app("Bro217").build(SCALE)


def test_advise_network_cost(benchmark, bro_network):
    advisory = benchmark(lambda: advise_network(bro_network))
    assert advisory.recommended


def _us_per_byte(fn, n_bytes, repeats=3):
    """Best-of-``repeats`` microseconds per input byte for ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        began = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - began)
    return best * 1e6 / n_bytes


def _measure_app(abbr, repeats=3):
    """Measured us/B per live backend plus the model's prediction."""
    spec = get_app(abbr)
    network = spec.build(SCALE)
    data = spec.make_input(network, INPUT_LEN)
    compiled = compile_network(network)
    n = len(data)
    streams = [data] * K_STREAMS

    measured = {
        "reference": _us_per_byte(lambda: reference_run(network, data), n, repeats),
        "bitpacked": _us_per_byte(
            lambda: run(compiled, data, track_enabled=False), n, repeats
        ),
        "multistream": _us_per_byte(
            lambda: run_multi(compiled, streams, track_enabled=False),
            n * K_STREAMS, repeats,
        ),
    }
    if dfa_feasible(network):
        dfa = compile_dfa(network)
        dfa_run(dfa, data)  # warm the lazy flat-table build
        measured["dfa"] = _us_per_byte(lambda: dfa_run(dfa, data), n, repeats)
    lazy = compile_lazydfa(network)
    lazydfa_run(lazy, data)  # converge the subset cache
    measured["lazydfa"] = _us_per_byte(
        lambda: lazydfa_run(lazy, data), n, repeats
    )
    advisory = advise_network(network, horizon=INPUT_LEN, n_streams=K_STREAMS)
    # Compare over the backends actually measured, so an app without a
    # feasible DFA still scores the three-way ordering.
    predicted = {
        name: cost for name, cost in advisory.costs.items()
        if name in measured and cost is not None
    }
    predicted_best = rank_backends(predicted)[0][0]
    measured_best = min(measured, key=measured.get)
    return {
        "app": abbr,
        "n_states": network.n_states,
        "measured_us_per_b": {k: round(v, 3) for k, v in measured.items()},
        "predicted_us_per_b": {k: round(v, 3) for k, v in predicted.items()},
        "predicted_best": predicted_best,
        "measured_best": measured_best,
        "agree": predicted_best == measured_best,
    }


def collect_metrics(repeats=3, apps=APPS):
    rows = [_measure_app(abbr, repeats) for abbr in apps]
    agreement = sum(1 for row in rows if row["agree"]) / len(rows)
    return {
        "workload": {
            "scale": SCALE,
            "input_len": INPUT_LEN,
            "k_streams": K_STREAMS,
            "apps": list(apps),
        },
        "agreement_fraction": round(agreement, 3),
        "apps": rows,
    }


def _check(live):
    failures = []
    if live["agreement_fraction"] < MIN_AGREEMENT:
        disagreed = [row["app"] for row in live["apps"] if not row["agree"]]
        failures.append(
            f"predicted-fastest matched measured-fastest on only "
            f"{live['agreement_fraction']:.0%} of apps (floor "
            f"{MIN_AGREEMENT:.0%}); disagreed: {', '.join(disagreed)}"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description="cost-model validation")
    parser.add_argument("--check", action="store_true",
                        help="re-measure and assert agreement >= "
                             f"{MIN_AGREEMENT:.0%} (exit 1 on failure)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per backend (best-of)")
    args = parser.parse_args(argv)

    live = collect_metrics(repeats=args.repeats)
    print(json.dumps(live, indent=2))
    if not args.check:
        BENCH_PATH.write_text(json.dumps(live, indent=2) + "\n")
        print(f"wrote {BENCH_PATH}", file=sys.stderr)
        return 0

    failures = _check(live)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"cost-model check passed: {live['agreement_fraction']:.0%} "
              "agreement", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
