"""Fig 13: speedup sensitivity to AP capacity.

Paper claims: at 12K STEs (all applications, including the low group, now
exceed the chip) BaseAP/SpAP reaches 1.9x/2.2x geomean at 0.1%/1%
profiling; at 49K STEs the high group still sees 1.9x/2.1x — the benefit
is not an artifact of one capacity point.
"""

from repro.experiments import fig13_capacity_sensitivity


def test_fig13_sensitivity(benchmark, config, record):
    result = benchmark.pedantic(
        lambda: fig13_capacity_sensitivity(config), rounds=1, iterations=1
    )
    record(result)
    assert len(result.rows) == 26 + 11  # all apps @12K + high group @49K
    # Both capacities keep a solid geometric-mean speedup at 1% profiling.
    assert result.summary["geomean_12K_1%"] > 1.4
    assert result.summary["geomean_49K_1%"] > 1.4
    # And more profiling doesn't hurt.
    assert result.summary["geomean_12K_1%"] >= result.summary["geomean_12K_0.1%"] - 0.05
    assert result.summary["geomean_49K_1%"] >= result.summary["geomean_49K_0.1%"] - 0.05
