"""Table I: effectiveness of profiling-based hot/cold prediction.

Paper claim (1 MB inputs): accuracy 87/90/93/97%, recall 64/76/87/97%, and
precision 94/92/90/92% at 0.1/1/10/50% profiling inputs.  Recall must rise
monotonically with the profiling fraction; precision stays high throughout.
"""

from repro.experiments import table1_profiling_effectiveness


def test_table1_profiling(benchmark, config, record):
    result = benchmark.pedantic(
        lambda: table1_profiling_effectiveness(config), rounds=1, iterations=1
    )
    record(result)
    assert len(result.rows) == 4  # 0.1%, 1%, 10%, 50%
    recalls = [row[2] for row in result.rows]
    precisions = [row[3] for row in result.rows]
    accuracies = [row[1] for row in result.rows]
    # Recall grows with more profiling input (the paper's key trend).
    assert all(b >= a - 1e-9 for a, b in zip(recalls, recalls[1:]))
    assert recalls[-1] > 85.0
    # Precision is high at every fraction (paper: >= 90%).
    assert min(precisions) > 75.0
    assert min(accuracies) > 70.0
