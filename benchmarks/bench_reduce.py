"""Reduction yield: state savings and execution cost across the registry.

The SPAP-R reducer (``repro.reduce``) claims two measurable things: it
shrinks real networks (nonzero mean state saving across the 26-app
registry) and the shrinkage is *useful* — at least one app's backend
cost verdict improves, and executing the reduced network is no slower
than the parent on the apps that reduce most::

    PYTHONPATH=src python benchmarks/bench_reduce.py          # write BENCH_reduce.json
    PYTHONPATH=src python benchmarks/bench_reduce.py --check  # CI floor assertion

``--check`` re-measures and asserts the floors: mean exact-mode saving
strictly positive, >= ``MIN_COST_IMPROVED`` cost-improved apps (either
mode counts), and >= ``MIN_THROUGHPUT_ROWS`` parent-vs-reduced
throughput measurements recorded.
"""

import argparse
import json
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.reduce import analyze_run_reduce, reduce_network
from repro.sim import compile_network, run
from repro.workloads.registry import app_names, get_app

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_reduce.json"
SCALE, INPUT_LEN = 64, 2048
#: Floors enforced by --check (acceptance criteria, not statistics).
MIN_COST_IMPROVED = 1
MIN_THROUGHPUT_ROWS = 2
#: How many of the most-reduced apps get the parent-vs-reduced timing arm.
N_THROUGHPUT_APPS = 2

_CONFIG = ExperimentConfig(scale=SCALE, input_len=INPUT_LEN, verify=False)


@pytest.fixture(scope="module")
def hm_network():
    return get_app("HM").build(SCALE)


def test_reduce_network_cost(benchmark, hm_network):
    reduction = benchmark(lambda: reduce_network(hm_network))
    assert reduction.saved_states >= 0


def _reduce_row(abbr):
    """Both-mode savings and the cost-model interplay for one app."""
    from repro.experiments.pipeline import AppRun

    app_run = AppRun(get_app(abbr), _CONFIG)
    exact = analyze_run_reduce(app_run, mode="exact")
    aggressive = analyze_run_reduce(app_run, mode="aggressive")
    assert exact.ok and aggressive.ok, f"{abbr}: structural rules fired"
    return {
        "app": abbr,
        "n_states": exact.summary.states_before,
        "exact_saved": exact.summary.saved_states,
        "exact_saving": round(exact.summary.saving, 4),
        "aggressive_saved": aggressive.summary.saved_states,
        "aggressive_saving": round(aggressive.summary.saving, 4),
        "merges": exact.summary.to_json()["merges"],
        "cost_improved": exact.summary.cost_improved
        or aggressive.summary.cost_improved,
        "recommended": [
            exact.summary.recommended_before,
            exact.summary.recommended_after,
        ],
    }


def _us_per_byte(fn, n_bytes, repeats=3):
    """Best-of-``repeats`` microseconds per input byte for ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        began = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - began)
    return best * 1e6 / n_bytes


def _throughput_row(abbr, repeats=3):
    """Bitpacked us/B on the parent vs the exact-reduced network."""
    spec = get_app(abbr)
    network = spec.build(SCALE)
    data = spec.make_input(network, INPUT_LEN)
    reduction = reduce_network(network)
    parent = compile_network(network)
    reduced = compile_network(reduction.network)
    n = len(data)
    parent_us = _us_per_byte(lambda: run(parent, data, track_enabled=False), n, repeats)
    reduced_us = _us_per_byte(
        lambda: run(reduced, data, track_enabled=False), n, repeats
    )
    return {
        "app": abbr,
        "saved_states": reduction.saved_states,
        "parent_us_per_b": round(parent_us, 3),
        "reduced_us_per_b": round(reduced_us, 3),
        "speedup": round(parent_us / reduced_us, 3),
    }


def collect_metrics(repeats=3, apps=None):
    apps = list(apps or app_names())
    rows = [_reduce_row(abbr) for abbr in apps]
    mean_exact = sum(row["exact_saving"] for row in rows) / len(rows)
    mean_aggressive = sum(row["aggressive_saving"] for row in rows) / len(rows)
    most_reduced = sorted(rows, key=lambda row: row["exact_saved"], reverse=True)
    throughput = [
        _throughput_row(row["app"], repeats)
        for row in most_reduced[:N_THROUGHPUT_APPS]
        if row["exact_saved"] > 0
    ]
    return {
        "workload": {"scale": SCALE, "input_len": INPUT_LEN, "apps": apps},
        "mean_exact_saving": round(mean_exact, 4),
        "mean_aggressive_saving": round(mean_aggressive, 4),
        "max_exact_saving": max(row["exact_saving"] for row in rows),
        "n_apps_reduced": sum(1 for row in rows if row["exact_saved"] > 0),
        "n_cost_improved": sum(1 for row in rows if row["cost_improved"]),
        "apps": rows,
        "throughput": throughput,
    }


def _check(live):
    failures = []
    if not live["mean_exact_saving"] > 0:
        failures.append(
            "mean exact-mode state saving is zero across the registry "
            "(the reducer found nothing to remove)"
        )
    if live["n_cost_improved"] < MIN_COST_IMPROVED:
        failures.append(
            f"only {live['n_cost_improved']} apps improved their cost "
            f"verdict (floor {MIN_COST_IMPROVED})"
        )
    if len(live["throughput"]) < MIN_THROUGHPUT_ROWS:
        failures.append(
            f"only {len(live['throughput'])} parent-vs-reduced throughput "
            f"rows measured (floor {MIN_THROUGHPUT_ROWS})"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description="reduction yield benchmark")
    parser.add_argument("--check", action="store_true",
                        help="re-measure and assert the saving floors "
                             "(exit 1 on failure)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per network (best-of)")
    args = parser.parse_args(argv)

    live = collect_metrics(repeats=args.repeats)
    print(json.dumps(live, indent=2))
    if not args.check:
        BENCH_PATH.write_text(json.dumps(live, indent=2) + "\n")
        print(f"wrote {BENCH_PATH}", file=sys.stderr)
        return 0

    failures = _check(live)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"reduce check passed: mean saving "
            f"{live['mean_exact_saving']:.2%} exact / "
            f"{live['mean_aggressive_saving']:.2%} aggressive, "
            f"{live['n_cost_improved']} cost-improved apps, "
            f"{len(live['throughput'])} throughput rows",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
