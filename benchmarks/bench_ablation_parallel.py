"""Ablation: SparseAP + Parallel AP synergy (paper §VIII).

The Parallel AP [31] duplicates automata to process input segments
concurrently — trading STEs for throughput.  The paper argues SparseAP is
complementary: eliminating cold states frees the STEs duplication needs.
This ablation runs a chain application four ways at the scaled half-core:

* baseline AP,
* Parallel AP on the full automaton (duplication pressure),
* SparseAP alone,
* Parallel AP over the *predicted hot set only* (the synergy).
"""

from repro.ap.parallel import run_parallel_ap
from repro.core.partition import partition_network
from repro.core.profiling import choose_partition_layers
from repro.experiments.pipeline import get_run
from repro.experiments.tables import render_table

SEGMENTS = 4


def test_ablation_parallel_synergy(benchmark, config):
    ap = config.half_core
    run = get_run("CAV", config)  # acyclic chains: safe for input partitioning

    def sweep():
        baseline = run.baseline(ap)
        spap = run.base_spap(0.01, ap)

        parallel_full = run_parallel_ap(run.network, run.test_input, ap, SEGMENTS)

        # Synergy: duplicate only the predicted hot partition.
        profile = run.profile(0.01)
        layers = choose_partition_layers(run.network, run.topology, profile.hot_mask())
        partitioned = partition_network(run.network, layers, topology=run.topology)
        parallel_hot = run_parallel_ap(partitioned.hot, run.test_input, ap, SEGMENTS)
        # Charge the SpAP recovery on top, once per segment pass.
        synergy_cycles = parallel_hot.cycles + spap.spap_cycles

        return {
            "baseline": baseline.cycles,
            "parallel_full": parallel_full.cycles,
            "parallel_full_batches": parallel_full.n_batches,
            "spap": spap.cycles,
            "synergy": synergy_cycles,
            "synergy_batches": parallel_hot.n_batches,
        }

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        ["baseline AP", out["baseline"], 1.0],
        ["Parallel AP (full, k=4)", out["parallel_full"],
         out["baseline"] / out["parallel_full"]],
        ["BaseAP/SpAP", out["spap"], out["baseline"] / out["spap"]],
        ["Parallel AP over hot set + SpAP", out["synergy"],
         out["baseline"] / out["synergy"]],
    ]
    print()
    print("== Ablation: SparseAP x Parallel AP synergy (CAV, k=4, 1% profile) ==")
    print(render_table(["Scheme", "Cycles", "Speedup"], rows))

    # Duplicating the full application bloats the footprint...
    assert out["parallel_full_batches"] > out["synergy_batches"]
    # ...so duplicating only the hot set beats both individual techniques.
    assert out["synergy"] < out["parallel_full"]
    assert out["synergy"] < out["spap"]
