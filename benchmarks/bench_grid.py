"""Grid scaling trajectory: worker-count rps scaling plus an overload sweep.

Run directly, this module is the benchmark harness for the sharded
serving grid::

    PYTHONPATH=src python benchmarks/bench_grid.py          # write BENCH_grid.json
    PYTHONPATH=src python benchmarks/bench_grid.py --check  # CI smoke assertion

Two measurements:

* **worker-count scaling** — the same closed-loop load (32 connections
  over three sharded apps) against a 1-, 2-, and 4-worker grid.  Workers
  are real processes, so on a multi-core host throughput scales with the
  pool; the committed artifact records the rps table and the
  ``workers4_vs_workers1`` ratio.
* **open-loop overload sweep** — a light round (0.3x the measured
  capacity) and an overloaded round (3x capacity) against the 4-worker
  grid, split into weighted deadline classes.  Bounded queues everywhere
  mean overload degrades by *typed rejection* (``OVERLOADED`` /
  ``DEADLINE_EXCEEDED``), never by unbounded queueing — so the sweep's
  p99 stays under an absolute ceiling and every error carries a type.

``--check`` re-measures and asserts the consistency floors everywhere
(zero scaling errors, typed-only overload errors, bounded p99) and — on
hosts with at least 4 CPUs, i.e. CI runners where parallel speedup is
physically available — the hard ≥ 2.5x floor for 4 workers vs 1.  The
recorded artifact carries ``host.cpus`` so a reader can tell which regime
produced it.
"""

import argparse
import asyncio
import json
import os
import sys
import tempfile
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.grid import Grid, GridOptions
from repro.serve.loadgen import LoadgenConfig, RequestClass, run_loadgen
from repro.serve.protocol import ErrorCode

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_grid.json"
APPS, SCALE, PAYLOAD_BYTES = ["Snort", "Bro217", "LV"], 64, 1024
WORKER_COUNTS = (1, 2, 4)
SCALING_CONC, SCALING_REQUESTS = 32, 256
WINDOW_MS, MAX_BATCH, WORKER_QUEUE_DEPTH = 2.0, 64, 64
ROUTER_MAX_INFLIGHT, SPILL_THRESHOLD = 128, 16
#: Open-loop sweep: offered load as multiples of the measured capacity.
LIGHT_FACTOR, OVERLOAD_FACTOR = 0.3, 3.0
SWEEP_DURATION_S = 2.0
SWEEP_CLASSES = (
    RequestClass("interactive", weight=4.0, deadline_ms=100.0),
    RequestClass("batch", weight=1.0),
)
#: ``--check`` passes while live ratios stay above this fraction of the
#: committed ones (CI runners are noisy).
TOLERANCE = 0.5
#: Hard floor from the acceptance criteria — enforced only on hosts with
#: at least this many CPUs, where parallel speedup physically exists.
MIN_W4_VS_W1, SPEEDUP_CPUS_NEEDED = 2.5, 4
#: Bounded-queue contract: even at 3x overload, p99 of *served* requests
#: must stay under this (unbounded queueing would blow through it).  On
#: hosts below ``SPEEDUP_CPUS_NEEDED`` CPUs the loadgen, router, and
#: workers all contend for the same core and admitted requests crawl for
#: reasons unrelated to queue bounds, so only the sanity ceiling applies.
OVERLOAD_P99_CEILING_MS = 1000.0
OVERLOAD_P99_SANITY_MS = 10_000.0


def _grid_options(workers: int, sock: str) -> GridOptions:
    return GridOptions(
        workers=workers, unix_path=sock, window_ms=WINDOW_MS,
        max_batch=MAX_BATCH, max_queue_depth=WORKER_QUEUE_DEPTH,
        spill_threshold=SPILL_THRESHOLD, max_inflight=ROUTER_MAX_INFLIGHT,
    )


async def _closed_round(sock: str, requests: int, concurrency: int):
    return await run_loadgen(LoadgenConfig(
        apps=APPS, requests=requests, concurrency=concurrency,
        input_len=PAYLOAD_BYTES, max_reports=64, unix_path=sock,
    ))


async def _open_round(sock: str, rate: float):
    return await run_loadgen(LoadgenConfig(
        apps=APPS, concurrency=16, mode="open", rate=rate,
        duration_s=SWEEP_DURATION_S, input_len=PAYLOAD_BYTES,
        max_reports=64, unix_path=sock, classes=SWEEP_CLASSES,
    ))


def _round_doc(workers: int, result) -> dict:
    return {
        "workers": workers,
        "rps": round(result.rps, 1),
        "p50_ms": round(result.percentile(50), 3),
        "p99_ms": round(result.percentile(99), 3),
        "errors": result.errors,
    }


def _sweep_doc(offered_rps: float, result) -> dict:
    typed = result.overloaded + result.deadline_exceeded
    return {
        "offered_rps": round(offered_rps, 1),
        "ok": result.ok,
        "rps": round(result.rps, 1),
        "p50_ms": round(result.percentile(50), 3),
        "p99_ms": round(result.percentile(99), 3),
        "overloaded": result.overloaded,
        "deadline_exceeded": result.deadline_exceeded,
        "errors_untyped": result.errors - typed,
        "classes": {name: stats.to_json()
                    for name, stats in sorted(result.classes.items())},
    }


async def _measure(repeats: int) -> dict:
    config = ExperimentConfig(scale=SCALE, input_len=PAYLOAD_BYTES)
    scaling = []
    sweep = {}
    with tempfile.TemporaryDirectory() as tmpdir:
        for workers in WORKER_COUNTS:
            sock = str(Path(tmpdir) / f"grid-{workers}.sock")
            async with Grid(APPS, config, _grid_options(workers, sock)):
                await _closed_round(sock, 32, 4)  # warm, discarded
                best = None
                for _ in range(repeats):
                    result = await _closed_round(
                        sock, SCALING_REQUESTS, SCALING_CONC)
                    if best is None or result.rps > best.rps:
                        best = result
                scaling.append(_round_doc(workers, best))
                if workers == WORKER_COUNTS[-1]:
                    capacity = best.rps
                    light = await _open_round(sock, LIGHT_FACTOR * capacity)
                    over = await _open_round(sock, OVERLOAD_FACTOR * capacity)
                    sweep = {
                        "capacity_rps": round(capacity, 1),
                        "duration_s": SWEEP_DURATION_S,
                        "light": _sweep_doc(LIGHT_FACTOR * capacity, light),
                        "over": _sweep_doc(OVERLOAD_FACTOR * capacity, over),
                    }
    by_workers = {row["workers"]: row["rps"] for row in scaling}
    return {
        "workload": {
            "apps": APPS,
            "scale": SCALE,
            "payload_bytes": PAYLOAD_BYTES,
        },
        "host": {"cpus": os.cpu_count() or 1},
        "grid": {
            "window_ms": WINDOW_MS,
            "max_batch": MAX_BATCH,
            "worker_queue_depth": WORKER_QUEUE_DEPTH,
            "router_max_inflight": ROUTER_MAX_INFLIGHT,
            "spill_threshold": SPILL_THRESHOLD,
        },
        "scaling": scaling,
        "speedup": {
            "workers4_vs_workers1": round(
                by_workers[4] / by_workers[1], 3) if by_workers[1] else 0.0,
        },
        "overload": sweep,
        "total_scaling_errors": sum(row["errors"] for row in scaling),
    }


def collect_metrics(repeats=2):
    return asyncio.run(_measure(repeats))


def _check(recorded, live):
    """CI smoke assertions over a fresh measurement.

    Consistency floors always hold; the 2.5x parallel-speedup floor is
    enforced only where ≥ 4 CPUs make it physically meaningful.
    """
    failures = []
    if live["total_scaling_errors"]:
        failures.append(
            f"{live['total_scaling_errors']} error(s) in the closed-loop "
            "scaling rounds (expected zero)")
    over = live["overload"]["over"]
    if not (over["overloaded"] or over["deadline_exceeded"]):
        failures.append(
            f"overload round at {over['offered_rps']} rps produced no typed "
            "rejections (admission control not engaging)")
    if over["errors_untyped"]:
        failures.append(
            f"{over['errors_untyped']} overload error(s) were not typed "
            f"{ErrorCode.OVERLOADED}/{ErrorCode.DEADLINE_EXCEEDED}")
    cpus = live["host"]["cpus"]
    ceiling = (OVERLOAD_P99_CEILING_MS if cpus >= SPEEDUP_CPUS_NEEDED
               else OVERLOAD_P99_SANITY_MS)
    if over["p99_ms"] > ceiling:
        failures.append(
            f"overload p99 {over['p99_ms']:.1f}ms blew the "
            f"{ceiling:.0f}ms bounded-queue ceiling ({cpus}-cpu host)")
    served = over["ok"] + over["overloaded"] + over["deadline_exceeded"] \
        + over["errors_untyped"]
    if not served:
        failures.append("overload round completed zero requests")

    old = recorded["speedup"]["workers4_vs_workers1"]
    new = live["speedup"]["workers4_vs_workers1"]
    if cpus >= SPEEDUP_CPUS_NEEDED:
        need = max(MIN_W4_VS_W1, old * TOLERANCE)
        if new < need:
            failures.append(
                f"workers4_vs_workers1 regressed: {new:.2f}x live vs "
                f"{old:.2f}x recorded (needs >= {need:.2f}x on a "
                f"{cpus}-cpu host)")
    else:
        # Single-/dual-core host: parallel speedup is unavailable, but the
        # grid must not make things *worse* than the recorded trajectory.
        need = old * TOLERANCE
        if new < need:
            failures.append(
                f"workers4_vs_workers1 regressed: {new:.2f}x live vs "
                f"{old:.2f}x recorded (needs >= {need:.2f}x; hard "
                f"{MIN_W4_VS_W1}x floor waived on a {cpus}-cpu host)")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description="grid benchmark trajectory")
    parser.add_argument("--check", action="store_true",
                        help="re-measure and assert no regression vs "
                             f"{BENCH_PATH.name} (exit 1 on failure)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="closed-loop rounds per worker count (best-of)")
    args = parser.parse_args(argv)

    live = collect_metrics(repeats=args.repeats)
    print(json.dumps(live, indent=2))
    if not args.check:
        BENCH_PATH.write_text(json.dumps(live, indent=2) + "\n")
        print(f"wrote {BENCH_PATH}", file=sys.stderr)
        return 0

    recorded = json.loads(BENCH_PATH.read_text())
    failures = _check(recorded, live)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("grid benchmark smoke check passed", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
