"""Fig 1: percentage of hot (ever-enabled) states across the 26 applications.

Paper claim: on average 59% of configured states are cold; CAV4k is ~99%
cold while RandomForest runs essentially fully hot.
"""

from repro.experiments import fig01_hot_states


def test_fig01_hot_states(benchmark, config, record):
    result = benchmark.pedantic(
        lambda: fig01_hot_states(config), rounds=1, iterations=1
    )
    record(result)
    assert len(result.rows) == 26
    # The paper's headline characterization: a majority of states are cold.
    assert 45.0 <= result.summary["avg_cold_pct"] <= 75.0
    # CAV4k is the extreme case (99% cold in the paper).
    cav4k = next(r for r in result.rows if r[0] == "CAV4k")
    assert cav4k[2] < 10.0
    # RandomForest machines run hot.
    rf = next(r for r in result.rows if r[0] == "RF1")
    assert rf[2] > 85.0
