"""Fig 11: performance per STE across AP sizes.

Paper claims: (1) larger APs have lower performance/STE for a fixed
application mix (underutilization), and (2) BaseAP/SpAP improves
performance/STE consistently across sizes — +32.1% at the half-core with
1% profiling.
"""

from repro.experiments import fig11_performance_per_ste


def test_fig11_perf_per_ste(benchmark, config, record):
    result = benchmark.pedantic(
        lambda: fig11_performance_per_ste(config), rounds=1, iterations=1
    )
    record(result)
    assert len(result.rows) == 3  # 12K / 24K / 49K
    by_size = {r[0]: r for r in result.rows}
    # Larger APs: lower baseline perf/STE (capacity sits idle).
    assert by_size["12K"][2] > by_size["24K"][2] > by_size["49K"][2]
    # SpAP improves perf/STE at every size (paper: consistently better).
    for label in ("12K", "24K", "49K"):
        assert by_size[label][4] > 0.0, label
    # The half-core improvement is positive and sizable (paper: +32.1%;
    # the scaled build lands higher because its speedup geomean is ~2.3x).
    assert 15.0 <= by_size["24K"][4] <= 150.0
    # Bigger chips leave more slack for the baseline to waste, so the
    # *relative* SpAP gain shrinks with capacity in our sweep.
    assert by_size["12K"][4] >= by_size["49K"][4]
