"""Fig 8: states the topological/SCC partition is forced to keep hot.

Paper claim: versus a perfect arbitrary-edge cut, layer-granularity
partitioning constrains only ~4% more states on average — except LV and ER,
whose large SCCs block effective partitioning.
"""

from repro.experiments import fig08_constrained_states


def test_fig08_constrained(benchmark, config, record):
    result = benchmark.pedantic(
        lambda: fig08_constrained_states(config), rounds=1, iterations=1
    )
    record(result)
    assert len(result.rows) == 26
    constrained = {r[0]: r[3] for r in result.rows}
    topo_hot = {r[0]: r[2] for r in result.rows}
    others = [v for k, v in constrained.items() if k not in ("LV", "ER")]
    # Cheap on average...
    assert sum(others) / len(others) < 15.0
    # ...but ER is the big outlier the paper calls out, and LV's and ER's
    # SCC-dominated machines are effectively unpartitionable (the paper's
    # real point: their large SCCs prevent effective partitions).
    assert constrained["ER"] > 2 * (sum(others) / len(others))
    assert topo_hot["LV"] > 90.0
    assert topo_hot["ER"] > 85.0
