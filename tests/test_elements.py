"""Tests for counter/boolean elements and the hybrid simulator."""

import pytest

from repro.nfa.automaton import Network, StartKind
from repro.nfa.build import literal_chain
from repro.nfa.elements import Counter, CounterMode, ElementNetwork, Gate, GateKind
from repro.nfa.regex import compile_regex
from repro.nfa.symbolset import SymbolSet
from repro.sim import compile_network, run
from repro.sim.hybrid import element_report_id, hybrid_run


def _ste_net(*patterns):
    network = Network("h")
    for index, pattern in enumerate(patterns):
        network.add(literal_chain(pattern, name=f"p{index}", report_code=f"r{index}"))
    return network


class TestElementValidation:
    def test_counter_target_positive(self):
        with pytest.raises(ValueError):
            Counter(target=0)

    def test_gate_needs_inputs(self):
        with pytest.raises(ValueError):
            Gate(GateKind.AND, inputs=[])

    def test_not_gate_single_input(self):
        with pytest.raises(ValueError):
            Gate(GateKind.NOT, inputs=[("ste", 0), ("ste", 1)])

    def test_bad_signal(self):
        with pytest.raises(ValueError):
            Counter(target=1, count_inputs=[("nope", 0)])

    def test_forward_element_reference_rejected(self):
        wrapped = ElementNetwork(_ste_net(b"a"))
        with pytest.raises(ValueError):
            wrapped.add_gate(Gate(GateKind.OR, inputs=[("element", 0)]))

    def test_missing_ste_rejected(self):
        wrapped = ElementNetwork(_ste_net(b"a"))
        with pytest.raises(ValueError):
            wrapped.add_gate(Gate(GateKind.OR, inputs=[("ste", 99)]))

    def test_connect_enable_bounds(self):
        wrapped = ElementNetwork(_ste_net(b"ab"))
        gate = wrapped.add_gate(Gate(GateKind.OR, inputs=[("ste", 0)]))
        with pytest.raises(IndexError):
            wrapped.connect_enable(gate, 99)
        with pytest.raises(IndexError):
            wrapped.connect_enable(5, 0)

    def test_overwired_not_rejected_at_direct_construction(self):
        # Regression: the simulator's NOT evaluation reads only the first
        # input, so an over-wired NOT that slipped past Gate.__post_init__
        # (here: by mutating the inputs list afterwards) used to be
        # silently mis-evaluated.  The ElementNetwork constructor is the
        # last gate and must reject it.
        gate = Gate(GateKind.NOT, inputs=[("ste", 0)])
        gate.inputs.append(("ste", 1))
        with pytest.raises(ValueError, match="NOT gate takes exactly one"):
            ElementNetwork(_ste_net(b"a", b"b"), elements=[gate])

    def test_overwired_not_rejected_at_add_gate(self):
        wrapped = ElementNetwork(_ste_net(b"a", b"b"))
        gate = Gate(GateKind.NOT, inputs=[("ste", 0)])
        gate.inputs.append(("ste", 1))
        with pytest.raises(ValueError, match="NOT gate takes exactly one"):
            wrapped.add_gate(gate)
        assert wrapped.n_elements == 0  # the malformed gate was not kept

    def test_emptied_gate_rejected_at_construction(self):
        gate = Gate(GateKind.OR, inputs=[("ste", 0)])
        gate.inputs.clear()
        with pytest.raises(ValueError, match="at least one input"):
            ElementNetwork(_ste_net(b"a"), elements=[gate])


class TestCounterSemantics:
    def _counting_net(self, target, mode=CounterMode.LATCH):
        """Count occurrences of 'a'; report when the target is reached."""
        network = Network("h")
        automaton = network.automata if False else None
        from repro.nfa.automaton import Automaton

        a = Automaton("tick")
        a.add_state(SymbolSet.single("a"), start=StartKind.ALL_INPUT)
        network.add(a)
        wrapped = ElementNetwork(network)
        wrapped.add_counter(
            Counter(target=target, mode=mode, count_inputs=[("ste", 0)],
                    reporting=True, report_code="count")
        )
        return wrapped

    def test_latch_reports_from_target_on(self):
        wrapped = self._counting_net(3)
        result = hybrid_run(wrapped, b"aaxaxa")
        # Third 'a' is at position 3; latched output also reports at the
        # subsequent counting... latch asserts continuously once reached.
        positions = result.reports[:, 0].tolist()
        assert positions[0] == 3
        assert result.final_counts[0] == 3

    def test_pulse_reports_once_per_target(self):
        wrapped = self._counting_net(2, CounterMode.PULSE)
        result = hybrid_run(wrapped, b"aaaa")
        # Pulses at the 2nd 'a' only (count holds at target, no re-fire).
        assert result.reports[:, 0].tolist() == [1]

    def test_roll_fires_every_target_counts(self):
        wrapped = self._counting_net(2, CounterMode.ROLL)
        result = hybrid_run(wrapped, b"aaaaaa")
        assert result.reports[:, 0].tolist() == [1, 3, 5]

    def test_reset_wins_and_clears(self):
        network = Network("h")
        from repro.nfa.automaton import Automaton

        a = Automaton("tick")
        a.add_state(SymbolSet.single("a"), start=StartKind.ALL_INPUT)
        a.add_state(SymbolSet.single("r"), start=StartKind.ALL_INPUT)
        network.add(a)
        wrapped = ElementNetwork(network)
        wrapped.add_counter(
            Counter(target=2, count_inputs=[("ste", 0)], reset_inputs=[("ste", 1)],
                    reporting=True)
        )
        result = hybrid_run(wrapped, b"ar a")
        assert result.reports.size == 0  # reset before reaching 2
        assert result.final_counts[0] == 1

    def test_counter_enables_ste(self):
        """A counter output enabling an STE: match 'b' only after 3 'a's."""
        network = Network("h")
        from repro.nfa.automaton import Automaton

        a = Automaton("m")
        a.add_state(SymbolSet.single("a"), start=StartKind.ALL_INPUT)
        a.add_state(SymbolSet.single("b"), reporting=True, report_code="b-after-3a")
        network.add(a)
        wrapped = ElementNetwork(network)
        counter = wrapped.add_counter(
            Counter(target=3, mode=CounterMode.LATCH, count_inputs=[("ste", 0)])
        )
        wrapped.connect_enable(counter, 1)
        early = hybrid_run(wrapped, b"aab")
        assert early.reports.size == 0  # only 2 'a's seen
        late = hybrid_run(wrapped, b"aaab")
        assert late.reports.tolist() == [[3, 1]]


class TestGateSemantics:
    def _two_ste(self):
        network = _ste_net(b"a", b"b")
        return ElementNetwork(network)

    def test_and_gate(self):
        wrapped = self._two_ste()
        wrapped.add_gate(Gate(GateKind.AND, inputs=[("ste", 0), ("ste", 1)],
                              reporting=True, report_code="both"))
        # 'a' and 'b' can never activate on the same symbol here.
        assert hybrid_run(wrapped, b"ab").reports.shape[0] == 2  # only STE reports

    def test_and_gate_fires_on_overlap(self):
        network = Network("h")
        from repro.nfa.automaton import Automaton

        a = Automaton("x")
        a.add_state(SymbolSet.from_symbols("ab"), start=StartKind.ALL_INPUT)
        a.add_state(SymbolSet.from_symbols("ac"), start=StartKind.ALL_INPUT)
        network.add(a)
        wrapped = ElementNetwork(network)
        gate = wrapped.add_gate(
            Gate(GateKind.AND, inputs=[("ste", 0), ("ste", 1)], reporting=True)
        )
        result = hybrid_run(wrapped, b"abc")
        gate_reports = result.reports[
            result.reports[:, 1] == element_report_id(wrapped, gate)
        ]
        assert gate_reports[:, 0].tolist() == [0]  # only 'a' activates both

    def test_or_and_nor(self):
        wrapped = self._two_ste()
        or_gate = wrapped.add_gate(Gate(GateKind.OR, inputs=[("ste", 0), ("ste", 1)],
                                        reporting=True))
        nor_gate = wrapped.add_gate(Gate(GateKind.NOR, inputs=[("ste", 0), ("ste", 1)],
                                         reporting=True))
        result = hybrid_run(wrapped, b"axb")
        or_id = element_report_id(wrapped, or_gate)
        nor_id = element_report_id(wrapped, nor_gate)
        or_positions = result.reports[result.reports[:, 1] == or_id][:, 0].tolist()
        nor_positions = result.reports[result.reports[:, 1] == nor_id][:, 0].tolist()
        assert or_positions == [0, 2]
        assert nor_positions == [1]

    def test_gate_feeding_counter(self):
        """Element-to-element wiring: count cycles where either STE fired."""
        wrapped = self._two_ste()
        or_gate = wrapped.add_gate(Gate(GateKind.OR, inputs=[("ste", 0), ("ste", 1)]))
        wrapped.add_counter(
            Counter(target=3, mode=CounterMode.PULSE,
                    count_inputs=[("element", or_gate)], reporting=True)
        )
        result = hybrid_run(wrapped, b"abxab")
        counter_id = element_report_id(wrapped, 1)
        fired = result.reports[result.reports[:, 1] == counter_id][:, 0].tolist()
        assert fired == [3]  # third firing of (a|b) is at position 3


class TestHybridMatchesPlainEngine:
    def test_no_elements_same_reports(self):
        """With zero elements the hybrid engine IS the reference engine."""
        network = Network("h")
        network.add(compile_regex("a(b|c)+d", name="r"))
        wrapped = ElementNetwork(network)
        data = b"abcbd abd xacd"
        plain = run(compile_network(network), data)
        hybrid = hybrid_run(wrapped, data)
        assert plain.reports.tolist() == hybrid.reports.tolist()

    def test_counter_equivalent_to_expanded_repeat(self):
        """A counter-based a{3} matches the state-expanded a{3} chain —
        the state-savings trade real AP designs use counters for."""
        expanded = Network("e")
        expanded.add(compile_regex("aaab", name="expanded"))

        network = Network("h")
        from repro.nfa.automaton import Automaton

        a = Automaton("m")
        a.add_state(SymbolSet.single("a"), start=StartKind.START_OF_DATA)
        a.add_state(SymbolSet.single("a"))
        a.add_state(SymbolSet.single("b"), reporting=True, report_code="hit")
        a.add_edge(0, 1)
        a.add_edge(1, 1)
        network.add(a)
        wrapped = ElementNetwork(network)
        counter = wrapped.add_counter(
            Counter(target=3, mode=CounterMode.LATCH,
                    count_inputs=[("ste", 0), ("ste", 1)])
        )
        wrapped.connect_enable(counter, 2)

        data = b"aaab"
        plain = run(compile_network(expanded), data)
        hybrid = hybrid_run(wrapped, data)
        assert plain.reports[:, 0].tolist() == hybrid.reports[:, 0].tolist() == [3]
