"""Tests for the AP architecture model: config, batching, placement."""

import numpy as np
import pytest

from repro.ap import (
    FULL_CHIP,
    HALF_CORE,
    QUARTER_CORE,
    APConfig,
    batch_network,
    decode_state_id,
    encode_address,
    min_batches,
    pack_batches,
    place_network,
    slice_network,
)
from repro.ap.chip import STEAddress, enable_decoder_widths
from repro.nfa.automaton import Network
from repro.nfa.build import literal_chain


class TestAPConfig:
    def test_half_core_defaults(self):
        assert HALF_CORE.capacity == 24576
        assert HALF_CORE.cycle_ns == 7.5
        assert HALF_CORE.routing_stes == 96 * 16 * 16 == 24576

    def test_presets(self):
        assert FULL_CHIP.capacity == 2 * HALF_CORE.capacity
        assert QUARTER_CORE.capacity == HALF_CORE.capacity // 2

    def test_report_queue_bytes(self):
        assert HALF_CORE.report_queue_bytes == 128 * 6  # §V-B storage estimate

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            APConfig(capacity=0)

    def test_capacity_beyond_routing_rejected(self):
        with pytest.raises(ValueError):
            APConfig(capacity=25000)  # > 96*256 with default blocks

    def test_with_capacity_scales_routing(self):
        scaled = HALF_CORE.with_capacity(50000)
        assert scaled.capacity == 50000
        assert scaled.routing_stes >= 50000

    @pytest.mark.parametrize("capacity", [1, 2, 3, 17, 255, 256, 257, 24577])
    def test_with_capacity_tiny_and_odd(self, capacity):
        # Regression: every derived config must be a valid APConfig whose
        # routing matrix fits the requested capacity, even for capacities
        # far below (or just past) one block.
        scaled = HALF_CORE.with_capacity(capacity)
        assert scaled.capacity == capacity
        assert scaled.routing_stes >= capacity
        assert scaled.blocks >= 1

    def test_with_capacity_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            HALF_CORE.with_capacity(0)
        with pytest.raises(ValueError, match="positive"):
            HALF_CORE.with_capacity(-5)

    def test_zero_geometry_rejected_at_construction(self):
        with pytest.raises(ValueError, match="rows_per_block"):
            APConfig(capacity=16, rows_per_block=0)
        with pytest.raises(ValueError, match="stes_per_row"):
            APConfig(capacity=16, stes_per_row=0)
        with pytest.raises(ValueError, match="blocks"):
            APConfig(capacity=16, blocks=0)
        with pytest.raises(ValueError, match="report_queue_entries"):
            APConfig(report_queue_entries=0)

    def test_cycles_to_seconds(self):
        assert HALF_CORE.cycles_to_seconds(1_000_000) == pytest.approx(7.5e-3)


class TestPackBatches:
    def test_single_batch(self):
        assert pack_batches([5, 5, 5], 20) == [[0, 1, 2]]

    def test_splits_when_needed(self):
        bins = pack_batches([10, 10, 10], 20)
        assert len(bins) == 2
        assert sorted(i for b in bins for i in b) == [0, 1, 2]

    def test_oversized_item_rejected(self):
        with pytest.raises(ValueError):
            pack_batches([30], 20)

    def test_first_fit_decreasing_efficiency(self):
        # FFD packs [8,7,6,5,4] into capacity 15 in 2 bins: (8+7), (6+5+4).
        assert len(pack_batches([8, 7, 6, 5, 4], 15)) == 2

    def test_deterministic(self):
        sizes = [3, 9, 1, 7, 5]
        assert pack_batches(sizes, 10) == pack_batches(sizes, 10)

    def test_empty(self):
        assert pack_batches([], 10) == []

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            pack_batches([1], 0)


class TestSliceNetwork:
    def _network(self):
        network = Network("n")
        network.add(literal_chain(b"ab", name="p0"))
        network.add(literal_chain(b"cde", name="p1"))
        network.add(literal_chain(b"f", name="p2"))
        return network

    def test_global_ids(self):
        network = self._network()
        s = slice_network(network, [1])
        assert s.global_ids.tolist() == [2, 3, 4]
        assert s.n_states == 3

    def test_multi_automata_slice(self):
        network = self._network()
        s = slice_network(network, [0, 2])
        assert s.global_ids.tolist() == [0, 1, 5]

    def test_report_mapping(self):
        network = self._network()
        s = slice_network(network, [1])
        local_reports = np.array([[4, 2]])  # local state 2 = global 4
        assert s.to_parent_reports(local_reports).tolist() == [[4, 4]]

    def test_batch_network_covers_all(self):
        network = self._network()
        batches = batch_network(network, capacity=3)
        covered = sorted(g for b in batches for g in b.global_ids.tolist())
        assert covered == list(range(network.n_states))

    def test_min_batches(self):
        assert min_batches(100, 24) == 5
        assert min_batches(1, 24) == 1
        assert min_batches(24, 24) == 1
        assert min_batches(25, 24) == 2


#: A non-default geometry: 8 blocks of 4 rows of 8 STEs (256 STEs).
SMALL_GEOMETRY = APConfig(capacity=256, blocks=8, rows_per_block=4, stes_per_row=8)


class TestChip:
    def test_decode_encode_round_trip(self):
        for sid in [0, 15, 16, 255, 256, 24575]:
            address = decode_state_id(sid, HALF_CORE)
            assert encode_address(address, HALF_CORE) == sid

    @pytest.mark.parametrize(
        "config", [HALF_CORE, FULL_CHIP, QUARTER_CORE, SMALL_GEOMETRY],
        ids=["half_core", "full_chip", "quarter_core", "small_geometry"],
    )
    def test_round_trip_every_state_id(self, config):
        # Property: encode(decode(s)) == s for every addressable state id,
        # and decode never exceeds the geometry's field ranges.
        for sid in range(config.routing_stes):
            address = decode_state_id(sid, config)
            assert 0 <= address.ste < config.stes_per_row
            assert 0 <= address.row < config.rows_per_block
            assert 0 <= address.block < config.blocks
            assert encode_address(address, config) == sid

    def test_non_default_geometry_field_split(self):
        # 8 STEs/row -> 3 STE bits; 4 rows/block -> 2 row bits.  State id
        # 0b10110101 = block 0b101, row 0b10, ste 0b101 under this geometry
        # (the old hard-coded 4/4-bit split would have mis-addressed it).
        address = decode_state_id(0b10110101, SMALL_GEOMETRY)
        assert address == STEAddress(block=0b101, row=0b10, ste=0b101)

    def test_decode_matches_row_major_flat(self):
        # The decoder's hierarchical split must agree with the placement
        # model's row-major flattening for any power-of-two geometry.
        for config in (HALF_CORE, SMALL_GEOMETRY):
            for sid in (0, 1, 7, 63, 100, config.routing_stes - 1):
                assert decode_state_id(sid, config).flat(config) == sid

    def test_non_power_of_two_geometry_rejected(self):
        lopsided = APConfig(capacity=96, blocks=2, rows_per_block=4, stes_per_row=12)
        with pytest.raises(ValueError, match="power of two"):
            decode_state_id(5, lopsided)
        with pytest.raises(ValueError, match="power of two"):
            encode_address(STEAddress(0, 0, 0), lopsided)

    def test_decode_fields(self):
        address = decode_state_id(0x1234, HALF_CORE)
        assert address.block == 0x12
        assert address.row == 0x3
        assert address.ste == 0x4

    def test_decode_out_of_range(self):
        with pytest.raises(ValueError):
            decode_state_id(96 * 256, HALF_CORE)  # block 96 of 0..95

    def test_decoder_widths(self):
        # Paper §V-B: block, row, STE decoders over a 16-bit state id.
        assert enable_decoder_widths(HALF_CORE) == [7, 4, 4]

    def test_place_network(self):
        network = Network("n")
        network.add(literal_chain(b"abc"))
        placement = place_network(network, HALF_CORE)
        assert placement.n_states == 3
        assert placement.utilization == pytest.approx(3 / 24576)
        assert placement.address_of(0) == STEAddress(0, 0, 0)
        assert placement.address_of(2).ste == 2

    def test_place_overflow_rejected(self):
        network = Network("n")
        network.add(literal_chain(b"ab" * 3))
        with pytest.raises(ValueError):
            place_network(network, HALF_CORE.with_capacity(4))

    def test_placement_row_major(self):
        network = Network("n")
        big = literal_chain(bytes([65] * 40), name="big")
        network.add(big)
        placement = place_network(network, HALF_CORE)
        assert placement.address_of(16) == STEAddress(0, 1, 0)
        assert placement.address_of(17) == STEAddress(0, 1, 1)
