"""Tests for the experiment harness (config, pipeline, figure functions).

Runs on a tiny configuration (1/64 scale, 512-byte inputs) and an app
subset so the full figure machinery is exercised quickly.
"""

import os

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    clear_cache,
    default_config,
    fig01_hot_states,
    fig05_depth_distribution,
    fig08_constrained_states,
    fig10_speedup_and_savings,
    get_run,
    render_table,
    table1_profiling_effectiveness,
)
from repro.experiments.tables import format_value

TINY = ExperimentConfig(scale=64, input_len=512)
SUBSET = ["Bro217", "LV", "DS03", "RF2"]


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestConfig:
    def test_scaled_capacities(self):
        cfg = ExperimentConfig(scale=16)
        assert cfg.half_core.capacity == 1536
        assert cfg.small_core.capacity == 768
        assert cfg.large_core.capacity == 3072

    def test_scale_one_is_paper_size(self):
        cfg = ExperimentConfig(scale=1)
        assert cfg.half_core.capacity == 24576

    def test_ap_sizes_labels(self):
        labels = [label for label, _cfg in ExperimentConfig().ap_sizes()]
        assert labels == ["12K", "24K", "49K"]

    def test_invalid(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale=0)
        with pytest.raises(ValueError):
            ExperimentConfig(input_len=10)

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "32")
        monkeypatch.setenv("REPRO_INPUT", "4096")
        cfg = default_config()
        assert cfg.scale == 32
        assert cfg.input_len == 4096

    def test_env_full(self, monkeypatch):
        monkeypatch.delenv("REPRO_INPUT", raising=False)
        monkeypatch.setenv("REPRO_FULL", "1")
        assert default_config().input_len == 65536


class TestPipeline:
    def test_run_is_cached(self):
        a = get_run("Bro217", TINY)
        b = get_run("Bro217", TINY)
        assert a is b

    def test_network_built_once(self):
        run = get_run("Bro217", TINY)
        assert run.network is run.network

    def test_input_split(self):
        run = get_run("Bro217", TINY)
        assert len(run.entire_input) == 512
        assert len(run.test_input) == 256
        assert len(run.profile_input(0.01)) == 5

    def test_start_of_data_uses_entire_input(self):
        run = get_run("Fermi", TINY)
        assert len(run.test_input) == 512

    def test_truth_and_profile(self):
        run = get_run("Bro217", TINY)
        assert 0.0 < run.hot_fraction() <= 1.0
        profile = run.profile(0.01)
        # The profile's hot set is a subset of prefix behaviour; both valid masks.
        assert profile.hot_mask().shape == (run.network.n_states,)

    def test_speedup_at_least_captures_baseline(self):
        run = get_run("Bro217", TINY)
        speedup = run.spap_speedup(0.01, TINY.half_core)
        assert speedup > 0.0

    def test_partition_cache_key_includes_capacity(self):
        run = get_run("Bro217", TINY)
        p1, _ = run.partition(0.01, TINY.half_core)
        p2, _ = run.partition(0.01, TINY.small_core)
        assert p1 is not p2


class TestFigureFunctions:
    def test_fig01_subset(self):
        result = fig01_hot_states(TINY, apps=SUBSET)
        assert len(result.rows) == 4
        assert "avg_cold_pct" in result.summary
        hots = [row[2] for row in result.rows]
        assert hots == sorted(hots)  # ascending, like the paper's figure

    def test_fig05_subset(self):
        result = fig05_depth_distribution(TINY, apps=SUBSET)
        assert len(result.rows) == 4
        for row in result.rows:
            assert row[1] + row[2] + row[3] == pytest.approx(100.0, abs=0.5)

    def test_table1_excludes_start_of_data(self):
        result = table1_profiling_effectiveness(TINY, apps=["Bro217", "Fermi", "SPM"])
        # Fermi/SPM dropped; still 4 fraction rows over the remaining app.
        assert len(result.rows) == 4

    def test_fig08_subset(self):
        result = fig08_constrained_states(TINY, apps=SUBSET)
        for row in result.rows:
            assert row[1] <= row[2]  # perfect hot <= topo hot

    def test_fig10_subset(self):
        result = fig10_speedup_and_savings(TINY, apps=["Bro217", "DS03"])
        assert len(result.rows) == 2
        for row in result.rows:
            assert row[3] > 0 and row[4] > 0
            assert 0.0 <= row[5] <= 100.0

    def test_render(self):
        result = fig01_hot_states(TINY, apps=["Bro217"])
        text = result.render()
        assert "Bro217" in text
        assert "avg_cold_pct" in text


class TestTables:
    def test_render_alignment(self):
        text = render_table(["A", "Long"], [[1, 2.5], ["xx", None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")

    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(1.234) == "1.23"
        assert format_value(12.34) == "12.3"
        assert format_value(123.4) == "123"
        assert format_value(float("nan")) == "-"
        assert format_value("x") == "x"
