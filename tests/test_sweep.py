"""Tests for the parallel application sweep (repro.experiments.sweep)."""

import json
from dataclasses import replace

import pytest

import repro.experiments.sweep as sweep_mod
from repro.experiments.config import default_config
from repro.experiments.sweep import (
    AppSweepRow,
    SweepError,
    render_sweep,
    run_sweep,
    sweep_app,
)
from repro.__main__ import main as cli_main


@pytest.fixture(scope="module")
def small_config():
    # A tiny scale keeps the sweep fast; verification stays on.
    return replace(default_config(), scale=4, input_len=512)


class TestRunSweep:
    def test_serial_rows_in_input_order(self, small_config):
        rows = run_sweep(["Bro217", "LV"], small_config, jobs=1)
        assert [row.abbr for row in rows] == ["Bro217", "LV"]
        for row in rows:
            assert row.n_states > 0
            assert row.baseline_batches >= 1
            assert row.baseline_cycles > 0
            assert 0.0 <= row.hot_fraction <= 1.0
            assert row.spap_speedup > 0
            assert row.seconds >= 0

    def test_parallel_matches_serial(self, small_config):
        serial = run_sweep(["Bro217", "LV"], small_config, jobs=1)
        parallel = run_sweep(["Bro217", "LV"], small_config, jobs=2)
        for a, b in zip(serial, parallel):
            # Wall time (and measured MB/s, when a backend executes)
            # differs between processes; the science must not.
            assert replace(a, seconds=0.0, backend_mb_s=0.0) == \
                replace(b, seconds=0.0, backend_mb_s=0.0)

    def test_backend_execution_populates_row(self, small_config):
        (row,) = run_sweep(["Bro217"], small_config, jobs=1, backend="auto")
        assert row.backend in (
            "reference", "bitpacked", "multistream", "dfa", "lazydfa"
        )
        assert row.backend_mb_s > 0.0
        (forced,) = run_sweep(
            ["Bro217"], small_config, jobs=1, backend="bitpacked"
        )
        assert forced.backend == "bitpacked"
        assert forced.advised_backend == row.advised_backend

    def test_explicit_infeasible_backend_fails_the_row(self, small_config):
        # LV bursts the subset budget, so a forced dfa request must fail
        # its row loudly (wrapped per-app by the pool boundary) ...
        with pytest.raises(SweepError, match="LV"):
            run_sweep(["LV"], small_config, jobs=1, backend="dfa")
        # ... unless the operator opted into substitution.
        (row,) = run_sweep(
            ["LV"], small_config, jobs=1, backend="dfa", backend_fallback=True
        )
        assert row.backend == "multistream"
        assert row.backend_mb_s > 0.0

    def test_unknown_app_rejected(self, small_config):
        with pytest.raises(KeyError, match="nope"):
            run_sweep(["nope"], small_config)
        with pytest.raises(KeyError):
            sweep_app("nope", small_config)

    def test_pipeline_failure_names_the_app(self, small_config, monkeypatch):
        def boom(abbr, config):
            raise ValueError("kaboom")

        monkeypatch.setattr(sweep_mod, "get_run", boom)
        with pytest.raises(SweepError, match="Bro217: kaboom") as excinfo:
            run_sweep(["Bro217"], small_config, jobs=1)
        assert excinfo.value.abbr == "Bro217"
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_row_serializes(self, small_config):
        (row,) = run_sweep(["Bro217"], small_config, jobs=1)
        payload = json.loads(json.dumps(row.to_json()))
        assert payload["abbr"] == "Bro217"
        assert AppSweepRow(**payload) == row


class TestRenderSweep:
    def test_table_contains_every_app(self, small_config):
        rows = run_sweep(["Bro217", "LV"], small_config, jobs=1)
        table = render_sweep(rows)
        assert "Bro217" in table and "LV" in table
        assert "SpAP" in table


class TestSweepCli:
    def test_cli_table(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "4")
        monkeypatch.setenv("REPRO_INPUT", "512")
        assert cli_main(["sweep", "Bro217", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "Bro217" in out
        assert "1 applications" in out

    def test_cli_json(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "4")
        monkeypatch.setenv("REPRO_INPUT", "512")
        assert cli_main(["sweep", "Bro217", "--jobs", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["abbr"] == "Bro217"

    def test_cli_unknown_app(self, capsys):
        assert cli_main(["sweep", "nope"]) == 2
        assert "unknown application" in capsys.readouterr().err

    def test_cli_sweep_failure_exits_cleanly(self, capsys, monkeypatch):
        def boom(*args, **kwargs):
            raise SweepError("CAV4k", ValueError("NFA too large"))

        monkeypatch.setattr(sweep_mod, "run_sweep", boom)
        assert cli_main(["sweep", "Bro217"]) == 1
        err = capsys.readouterr().err
        assert "CAV4k" in err and "NFA too large" in err
