"""Tests for the Parallel AP model."""

import random

import pytest

from repro.ap import APConfig
from repro.ap.parallel import run_parallel_ap
from repro.core.scenarios import run_baseline_ap
from repro.nfa.automaton import Network, StartKind
from repro.nfa.build import literal_chain
from repro.sim.result import reports_equal

from helpers import random_input


def _config(capacity):
    return APConfig(capacity=capacity, blocks=max(1, (capacity + 255) // 256))


def _chains_net(n, pattern=b"abcd"):
    network = Network("n")
    for index in range(n):
        network.add(literal_chain(pattern, name=f"p{index}"))
    return network


class TestCorrectness:
    def test_single_segment_equals_baseline(self):
        network = _chains_net(3)
        config = _config(100)
        data = b"xxabcdxxabcdxx"
        baseline = run_baseline_ap(network, data, config)
        parallel = run_parallel_ap(network, data, config, 1)
        assert reports_equal(baseline.reports, parallel.reports)
        assert parallel.segment_cycles == len(data)

    @pytest.mark.parametrize("segments", [2, 3, 5])
    def test_segmented_reports_identical(self, segments):
        network = _chains_net(4)
        config = _config(1000)
        rng = random.Random(9)
        data = random_input(rng, 97, b"abcdxyz")
        data = data[:10] + b"abcd" + data[14:50] + b"abcd" + data[54:]
        baseline = run_baseline_ap(network, data, config)
        parallel = run_parallel_ap(network, data, config, segments)
        assert reports_equal(baseline.reports, parallel.reports)

    def test_boundary_spanning_match_found(self):
        """A match straddling the segment boundary is caught by the overlap."""
        network = _chains_net(1, pattern=b"abcdef")
        config = _config(100)
        data = b"zz" * 10 + b"abcdef" + b"zz" * 10  # len 52; cut at 26 splits it
        parallel = run_parallel_ap(network, data, config, 2)
        assert parallel.reports.shape[0] == 1
        assert parallel.reports[0, 0] == 25

    def test_cyclic_without_overlap_rejected(self):
        network = _chains_net(1)
        network.automata[0].add_edge(1, 1)
        with pytest.raises(ValueError):
            run_parallel_ap(network, b"abcd", _config(100), 2)

    def test_cyclic_with_explicit_overlap(self):
        network = _chains_net(1)
        network.automata[0].add_edge(0, 0)
        outcome = run_parallel_ap(network, b"abcdabcd", _config(100), 2, overlap=8)
        assert outcome.n_segments == 2

    def test_start_of_data_rejected(self):
        network = Network("n")
        network.add(literal_chain(b"ab", start=StartKind.START_OF_DATA))
        with pytest.raises(ValueError):
            run_parallel_ap(network, b"abab", _config(100), 2)

    def test_bad_segments(self):
        with pytest.raises(ValueError):
            run_parallel_ap(_chains_net(1), b"ab", _config(100), 0)


class TestCostModel:
    def test_footprint_multiplies_batches(self):
        network = _chains_net(5)  # 20 states
        config = _config(25)
        serial = run_parallel_ap(network, b"x" * 40, config, 1)
        parallel = run_parallel_ap(network, b"x" * 40, config, 4)
        assert serial.n_batches == 1
        assert parallel.n_batches >= 3  # 80 states over capacity 25

    def test_segment_cycles_shrink_with_k(self):
        network = _chains_net(2)
        config = _config(1000)
        data = b"x" * 120
        one = run_parallel_ap(network, data, config, 1)
        four = run_parallel_ap(network, data, config, 4)
        assert four.segment_cycles < one.segment_cycles
        assert four.segment_cycles >= 30  # n/k

    def test_speedup_when_it_fits(self):
        """If k copies still fit one batch, PAP gives ~k speedup."""
        network = _chains_net(2)
        config = _config(1000)
        data = b"x" * 400
        baseline = run_baseline_ap(network, data, config)
        parallel = run_parallel_ap(network, data, config, 4)
        assert parallel.n_batches == 1
        assert baseline.cycles / parallel.cycles > 3.0

    def test_no_speedup_when_batches_explode(self):
        """The paper's point: duplication costs STEs; once the duplicated
        footprint exceeds the chip, PAP's advantage collapses."""
        network = _chains_net(6)  # 24 states
        config = _config(25)
        data = b"x" * 400
        baseline = run_baseline_ap(network, data, config)
        parallel = run_parallel_ap(network, data, config, 4)
        assert parallel.n_batches >= 4
        assert baseline.cycles / parallel.cycles < 1.5
