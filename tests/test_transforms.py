"""Tests for network transforms: duplication and common-prefix merging."""

import random

import numpy as np
import pytest
from hypothesis import given, settings

from repro.nfa.automaton import Network, StartKind
from repro.nfa.build import literal_chain
from repro.nfa.transforms import duplicate_network, is_chain, merge_common_prefixes
from repro.sim import compile_network, run
from repro.sim.result import reports_equal

from helpers import random_input, random_network, seeds


def _patterns_net(*patterns):
    network = Network("n")
    for index, pattern in enumerate(patterns):
        network.add(literal_chain(pattern, name=f"p{index}", report_code=f"r{index}"))
    return network


class TestDuplicate:
    def test_state_multiplication(self):
        network = _patterns_net(b"abc", b"de")
        doubled = duplicate_network(network, 2)
        assert doubled.n_states == 2 * network.n_states
        assert doubled.n_automata == 2 * network.n_automata

    def test_one_copy_is_identity_shape(self):
        network = _patterns_net(b"abc")
        copy = duplicate_network(network, 1)
        assert copy.n_states == network.n_states

    def test_reports_multiply(self):
        network = _patterns_net(b"ab")
        doubled = duplicate_network(network, 3)
        result = run(compile_network(doubled), b"xxabxx")
        assert result.reports.shape[0] == 3

    def test_report_codes_distinguish_streams(self):
        network = _patterns_net(b"ab")
        doubled = duplicate_network(network, 2)
        codes = {
            s.report_code for _g, _a, s in doubled.global_states() if s.reporting
        }
        assert codes == {"r0", "r0@1"}

    def test_bad_copies(self):
        with pytest.raises(ValueError):
            duplicate_network(_patterns_net(b"ab"), 0)


class TestIsChain:
    def test_chain(self):
        assert is_chain(literal_chain(b"abcd"))

    def test_single_state(self):
        assert is_chain(literal_chain(b"a"))

    def test_branching_not_chain(self):
        automaton = literal_chain(b"abc")
        automaton.add_edge(0, 2)
        assert not is_chain(automaton)

    def test_self_loop_not_chain(self):
        automaton = literal_chain(b"abc")
        automaton.add_edge(1, 1)
        assert not is_chain(automaton)


class TestMergeCommonPrefixes:
    def test_shared_prefix_saves_states(self):
        network = _patterns_net(b"abcX", b"abcY", b"abcZ")
        merged = merge_common_prefixes(network)
        # 3 chains of 4 = 12 states -> trie: 3 shared + 3 leaves = 6.
        assert merged.n_states == 6
        assert merged.n_automata == 1

    def test_disjoint_patterns_keep_states(self):
        network = _patterns_net(b"abc", b"xyz")
        merged = merge_common_prefixes(network)
        assert merged.n_states == 6

    def test_reports_preserved(self):
        network = _patterns_net(b"abcX", b"abcY", b"qq")
        merged = merge_common_prefixes(network)
        data = b"..abcX..abcY..qq.."
        original = run(compile_network(network), data)
        trie = run(compile_network(merged), data)
        # Same report positions with the same multiplicity.
        assert np.array_equal(
            np.sort(original.reports[:, 0]), np.sort(trie.reports[:, 0])
        )

    def test_prefix_of_another_pattern(self):
        """'ab' reporting inside 'abc' must still report at the shared node."""
        network = _patterns_net(b"ab", b"abc")
        merged = merge_common_prefixes(network)
        assert merged.n_states == 3
        data = b"abc"
        original = run(compile_network(network), data)
        trie = run(compile_network(merged), data)
        assert np.array_equal(
            np.sort(original.reports[:, 0]), np.sort(trie.reports[:, 0])
        )

    def test_non_chains_passed_through(self):
        network = _patterns_net(b"abcX", b"abcY")
        loop = literal_chain(b"qr", name="loop")
        loop.add_edge(1, 0)
        network.add(loop)
        merged = merge_common_prefixes(network)
        assert merged.n_automata == 2  # the loop machine + one trie

    def test_start_kinds_not_mixed(self):
        network = Network("n")
        network.add(literal_chain(b"abX", name="u"))
        network.add(literal_chain(b"abY", name="a", start=StartKind.START_OF_DATA))
        merged = merge_common_prefixes(network)
        assert merged.n_automata == 2  # one trie per start kind

    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_random_chain_sets_equivalent(self, seed):
        rng = random.Random(seed)
        alphabet = b"ab"
        patterns = [
            bytes(rng.choice(alphabet) for _ in range(rng.randint(1, 5)))
            for _ in range(rng.randint(1, 6))
        ]
        network = _patterns_net(*patterns)
        merged = merge_common_prefixes(network)
        assert merged.n_states <= network.n_states
        data = random_input(rng, 30, alphabet)
        original = run(compile_network(network), data)
        trie = run(compile_network(merged), data)
        # Duplicate patterns collapse, so compare distinct report positions.
        assert np.array_equal(
            np.unique(original.reports[:, 0] if original.reports.size else []),
            np.unique(trie.reports[:, 0] if trie.reports.size else []),
        )
