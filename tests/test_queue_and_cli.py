"""Tests for the report-queue model and the command-line interface."""

import subprocess
import sys

import pytest

from repro.ap import HALF_CORE
from repro.ap.queue import queue_usage


class TestReportQueue:
    def test_no_reports(self):
        usage = queue_usage(0, HALF_CORE)
        assert usage.refills == 0
        assert usage.device_bytes == 0

    def test_single_window(self):
        usage = queue_usage(100, HALF_CORE)
        assert usage.refills == 1
        assert usage.device_bytes == 600

    def test_exact_boundary(self):
        assert queue_usage(128, HALF_CORE).refills == 1
        assert queue_usage(129, HALF_CORE).refills == 2

    @pytest.mark.parametrize(
        "n_reports,refills",
        [
            (0, 0),          # empty list: the queue is never loaded
            (1, 1),          # a single report still costs one refill
            (127, 1), (128, 1),  # up to one full window
            (129, 2),        # +1 past the window forces a second refill
            (256, 2),        # exact multiple of the 128-entry queue
            (257, 3),        # +1 past an exact multiple
            (3 * 128, 3), (3 * 128 + 1, 4),
        ],
    )
    def test_refill_boundaries(self, n_reports, refills):
        usage = queue_usage(n_reports, HALF_CORE)
        assert usage.refills == refills
        # Device traffic is per report (6 B each), not per refill window.
        assert usage.device_bytes == 6 * n_reports

    def test_boundaries_follow_configured_queue_size(self):
        from repro.ap import APConfig

        tiny = APConfig(report_queue_entries=4)
        assert queue_usage(0, tiny).refills == 0
        assert queue_usage(1, tiny).refills == 1
        assert queue_usage(4, tiny).refills == 1
        assert queue_usage(5, tiny).refills == 2
        assert queue_usage(8, tiny).refills == 2
        assert queue_usage(9, tiny).refills == 3
        assert queue_usage(9, tiny).on_chip_bytes == 4 * 6

    def test_on_chip_budget_matches_paper(self):
        usage = queue_usage(1, HALF_CORE)
        assert usage.on_chip_bytes == 128 * 6  # §V-B storage estimate

    def test_to_json_counters(self):
        payload = queue_usage(129, HALF_CORE).to_json()
        assert payload == {
            "n_reports": 129,
            "refills": 2,
            "device_bytes": 129 * 6,
            "on_chip_bytes": 128 * 6,
        }

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            queue_usage(-1, HALF_CORE)


def _cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=600,
        env={"PYTHONPATH": "src", "REPRO_SCALE": "64", "REPRO_INPUT": "1024",
             "PATH": "/usr/bin:/bin"},
        cwd=str(__import__("pathlib").Path(__file__).parent.parent),
    )


class TestCLI:
    def test_list_apps(self):
        result = _cli("list-apps")
        assert result.returncode == 0
        assert "CAV4k" in result.stdout
        assert "Bro217" in result.stdout

    def test_run_app(self):
        result = _cli("run-app", "Bro217")
        assert result.returncode == 0
        assert "baseline AP" in result.stdout
        assert "BaseAP/SpAP" in result.stdout

    def test_run_app_unknown(self):
        result = _cli("run-app", "nope")
        assert result.returncode == 2

    def test_figure_unknown(self):
        result = _cli("figure", "fig99")
        assert result.returncode == 2

    def test_figure_small(self):
        result = _cli("figure", "table2")
        assert result.returncode == 0
        assert "Table II" in result.stdout

    def test_no_command_errors(self):
        result = _cli()
        assert result.returncode != 0

    def test_semant_app(self):
        result = _cli("semant", "Bro217")
        assert result.returncode == 0
        assert "proven dead" in result.stdout

    def test_semant_unknown(self):
        result = _cli("semant", "nope")
        assert result.returncode == 2


class TestVerifyExitCodes:
    """The documented contract, asserted in-process with a stubbed verifier:
    warnings exit 0, any ERROR-severity finding exits 1, unknown apps exit 2
    (for both ``verify`` and ``semant``)."""

    @staticmethod
    def _stub_report(code=None):
        from repro.verify.diagnostics import VerificationReport

        report = VerificationReport(subject="stub")
        if code is not None:
            report.emit(code, "synthetic finding", location="stub")
        return report

    def _run_verify(self, monkeypatch, code):
        import repro.verify.app as verify_app_module
        from repro.__main__ import main

        report = self._stub_report(code)
        monkeypatch.setattr(
            verify_app_module, "verify_app", lambda *a, **k: report
        )
        return main(["verify", "Bro217"])

    def test_clean_exits_zero(self, monkeypatch, capsys):
        assert self._run_verify(monkeypatch, None) == 0

    def test_warnings_exit_zero(self, monkeypatch, capsys):
        # SPAP-N004 is WARNING severity: findings, but not failures.
        assert self._run_verify(monkeypatch, "SPAP-N004") == 0

    def test_errors_exit_one(self, monkeypatch, capsys):
        assert self._run_verify(monkeypatch, "SPAP-S001") == 1

    def test_unknown_app_exits_two(self, capsys):
        from repro.__main__ import main

        assert main(["verify", "nope"]) == 2
        assert main(["semant", "nope"]) == 2

    def test_no_apps_exits_two(self, capsys):
        from repro.__main__ import main

        assert main(["verify"]) == 2
        assert main(["semant"]) == 2
