"""Tests for SymbolSet: construction, algebra, rendering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nfa.symbolset import ALPHABET_SIZE, SymbolSet

symbol_lists = st.lists(st.integers(min_value=0, max_value=255), unique=True, max_size=40)


class TestConstruction:
    def test_empty(self):
        s = SymbolSet.empty()
        assert len(s) == 0
        assert not s
        assert not s.matches(0)

    def test_universal(self):
        s = SymbolSet.universal()
        assert len(s) == ALPHABET_SIZE
        assert s.is_universal()
        assert s.matches(0) and s.matches(255) and s.matches("a")

    def test_single_char(self):
        s = SymbolSet.single("a")
        assert s.matches("a")
        assert s.matches(97)
        assert s.matches(b"a")
        assert not s.matches("b")
        assert len(s) == 1

    def test_from_symbols_mixed_types(self):
        s = SymbolSet.from_symbols(["a", 98, b"c"])
        assert s.symbols() == [97, 98, 99]

    def test_from_ranges(self):
        s = SymbolSet.from_ranges(("a", "c"), ("0", "1"))
        assert s.symbols() == [48, 49, 97, 98, 99]

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            SymbolSet.from_ranges(("z", "a"))

    def test_out_of_range_symbol_rejected(self):
        with pytest.raises(ValueError):
            SymbolSet.single(256)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            SymbolSet.single("ab")


class TestAlgebra:
    def test_union_intersection(self):
        a = SymbolSet.from_symbols("abc")
        b = SymbolSet.from_symbols("bcd")
        assert (a | b).symbols() == [97, 98, 99, 100]
        assert (a & b).symbols() == [98, 99]

    def test_difference(self):
        a = SymbolSet.from_symbols("abc")
        b = SymbolSet.from_symbols("b")
        assert (a - b).symbols() == [97, 99]

    def test_complement_involution(self):
        a = SymbolSet.from_symbols("xyz")
        assert ~~a == a

    def test_complement_partitions_alphabet(self):
        a = SymbolSet.from_symbols("q")
        assert len(a) + len(~a) == ALPHABET_SIZE
        assert not (a & ~a)

    def test_hash_and_eq(self):
        assert SymbolSet.from_symbols("ab") == SymbolSet.from_symbols("ba")
        assert hash(SymbolSet.from_symbols("ab")) == hash(SymbolSet.from_symbols("ba"))

    def test_is_disjoint(self):
        a = SymbolSet.from_symbols("abc")
        assert a.is_disjoint(SymbolSet.from_symbols("xyz"))
        assert not a.is_disjoint(SymbolSet.from_symbols("cde"))
        assert a.is_disjoint(SymbolSet.empty())
        assert SymbolSet.empty().is_disjoint(SymbolSet.empty())
        assert not a.is_disjoint(SymbolSet.universal())


class TestConversion:
    def test_bool_array(self):
        s = SymbolSet.from_symbols([0, 255])
        arr = s.to_bool_array()
        assert arr[0] and arr[255]
        assert arr.sum() == 2

    def test_iteration_sorted(self):
        s = SymbolSet.from_symbols([200, 3, 50])
        assert list(s) == [3, 50, 200]


class TestDescribe:
    def test_universal_star(self):
        assert SymbolSet.universal().describe() == "*"

    def test_single(self):
        assert SymbolSet.single("a").describe() == "a"

    def test_range_rendering(self):
        assert SymbolSet.from_ranges(("a", "e")).describe() == "[a-e]"

    def test_escapes_metacharacters(self):
        rendered = SymbolSet.from_symbols("]").describe()
        assert "\\]" in rendered

    def test_nonprintable_hex(self):
        assert "\\x00" in SymbolSet.single(0).describe()


@given(symbol_lists, symbol_lists)
def test_algebra_matches_python_sets(left, right):
    a, b = SymbolSet.from_symbols(left), SymbolSet.from_symbols(right)
    sl, sr = set(left), set(right)
    assert set((a | b).symbols()) == sl | sr
    assert set((a & b).symbols()) == sl & sr
    assert set((a - b).symbols()) == sl - sr
    assert set((~a).symbols()) == set(range(256)) - sl
    assert a.is_disjoint(b) == sl.isdisjoint(sr)


@given(symbol_lists)
def test_describe_parses_back(symbols):
    """The ANML renderer and parser must round-trip any symbol set."""
    from repro.nfa.anml import parse_symbol_set

    s = SymbolSet.from_symbols(symbols)
    if not s:
        return  # empty sets are not expressible in class syntax
    assert parse_symbol_set(s.describe()) == s
