"""Smoke tests: every example script runs to completion."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        env={**os.environ, "PYTHONPATH": str(script.parent.parent / "src")},
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they do"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
