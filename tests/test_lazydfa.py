"""Bounded-subset lazy-DFA hybrid: cache discipline and fallback paths.

Cross-engine report/witness equivalence lives in
``test_engine_equivalence.py`` (including the adversarial capacity-1/2
arms); this file pins the *cache machinery* of :mod:`repro.sim.lazydfa`:

* construction-time validation of the capacity and churn knobs;
* LRU eviction accounting under tiny caps, and the churn-burst guard that
  stops inserting (but keeps answering) when one input thrashes;
* cache persistence across runs on one artifact — the second identical
  run must be nearly all hits and build no new cells;
* ``clear_cache`` tombstoning, after which stale direct links must repair
  themselves and results stay bit-identical;
* the registered engine's metadata (no feasibility gate, streaming-only).
"""

import random

import pytest

from repro.nfa.automaton import Automaton, Network, StartKind
from repro.nfa.symbolset import SymbolSet
from repro.sim import (
    ENGINES,
    compile_lazydfa,
    lazydfa_run,
    reference_run,
    reports_equal,
)
from repro.sim.lazydfa import (
    DEFAULT_CHURN_FACTOR,
    DEFAULT_LAZY_CAPACITY,
    CompiledLazyDfa,
)

from helpers import random_input, random_network


def _network(seed=3):
    return random_network(random.Random(seed))


def blowup_network(tail: int = 13) -> Network:
    """``a`` followed by ``tail`` wildcards: 2**tail reachable subsets (the
    classic counting pattern the eager DFA backend must reject)."""
    automaton = Automaton("blowup")
    automaton.add_state(SymbolSet.from_symbols(b"a"), start=StartKind.ALL_INPUT)
    for index in range(tail):
        automaton.add_state(
            SymbolSet.universal(),
            reporting=index == tail - 1,
            report_code="blow" if index == tail - 1 else None,
        )
        automaton.add_edge(index, index + 1)
    network = Network("blowup-net")
    network.add(automaton)
    return network


class TestConstructionValidation:
    def test_capacity_must_be_positive(self):
        network = _network()
        with pytest.raises(ValueError, match="capacity"):
            compile_lazydfa(network, capacity=0)
        with pytest.raises(ValueError, match="capacity"):
            compile_lazydfa(network, capacity=-5)

    def test_churn_factor_must_be_positive(self):
        network = _network()
        with pytest.raises(ValueError, match="churn"):
            compile_lazydfa(network, churn_factor=0.0)

    def test_defaults_recorded_on_artifact(self):
        compiled = compile_lazydfa(_network())
        assert compiled.capacity == DEFAULT_LAZY_CAPACITY
        assert compiled.churn_factor == DEFAULT_CHURN_FACTOR
        stats = compiled.cache_stats()
        assert stats["size"] == 0
        assert stats["hits"] == stats["inserts"] == stats["evictions"] == 0


class TestCacheDiscipline:
    def test_second_identical_run_is_all_hits(self):
        rng = random.Random(11)
        network = _network(11)
        data = random_input(rng, 200)
        compiled = compile_lazydfa(network)
        first = lazydfa_run(compiled, data)
        builds_after_first = compiled.cache_stats()["cell_builds"]
        second = lazydfa_run(compiled, data)
        stats = compiled.cache_stats()
        # A converged cache answers a repeated input without building a
        # single new cell — that is the "table speed on hits" contract.
        assert stats["cell_builds"] == builds_after_first
        assert stats["fallback_steps"] == 0
        assert reports_equal(first.reports, second.reports)

    def test_capacity_bound_is_respected(self):
        rng = random.Random(5)
        network = _network(5)
        data = random_input(rng, 300)
        for capacity in (1, 2, 7):
            compiled = compile_lazydfa(network, capacity=capacity)
            lazydfa_run(compiled, data)
            stats = compiled.cache_stats()
            assert stats["size"] <= capacity
            assert stats["inserts"] - stats["evictions"] == stats["size"]

    def test_tiny_cap_evicts_and_stays_correct(self):
        rng = random.Random(23)
        network = blowup_network()
        data = bytes(rng.randrange(256) for _ in range(400))
        expected = reference_run(network, data)
        compiled = compile_lazydfa(network, capacity=1)
        got = lazydfa_run(compiled, data)
        stats = compiled.cache_stats()
        assert stats["evictions"] > 0
        assert reports_equal(got.reports, expected.reports)

    def test_churn_burst_stops_inserting_and_falls_back(self):
        # The blowup pattern visits a fresh subset almost every position,
        # so a capacity-1 cache evicts on nearly every insert; once one
        # run's evictions exceed capacity * churn_factor the guard must
        # stop inserting and carry the rest of the input on fallback
        # steps — still bit-identical.
        rng = random.Random(29)
        network = blowup_network()
        data = b"a" + bytes(rng.randrange(256) for _ in range(399))
        expected = reference_run(network, data)
        compiled = compile_lazydfa(network, capacity=1, churn_factor=2.0)
        got = lazydfa_run(compiled, data, track_enabled=True)
        stats = compiled.cache_stats()
        assert stats["evictions"] > 2  # the burst actually happened
        assert stats["fallback_steps"] > 0  # ... and tripped the guard
        assert reports_equal(got.reports, expected.reports)
        assert (got.ever_enabled == expected.ever_enabled).all()

    def test_churn_guard_resets_between_runs(self):
        # The guard is per-input: a thrashing input must not poison the
        # artifact for later well-behaved inputs.
        network = blowup_network()
        compiled = compile_lazydfa(network, capacity=1, churn_factor=1.0)
        thrash = b"a" + bytes(range(200))
        lazydfa_run(compiled, thrash)
        assert compiled.cache_stats()["fallback_steps"] > 0
        before = compiled.cache_stats()["inserts"]
        lazydfa_run(compiled, b"bbbb")  # tiny, cache-friendly input
        assert compiled.cache_stats()["inserts"] > before

    def test_clear_cache_tombstones_and_results_survive(self):
        rng = random.Random(31)
        network = _network(31)
        data = random_input(rng, 150)
        compiled = compile_lazydfa(network)
        expected = lazydfa_run(compiled, data, track_enabled=True)
        compiled.clear_cache()
        assert compiled.cache_stats()["size"] == 0
        again = lazydfa_run(compiled, data, track_enabled=True)
        assert reports_equal(again.reports, expected.reports)
        assert (again.ever_enabled == expected.ever_enabled).all()

    def test_clear_cache_resets_lifetime_counters(self):
        # clear_cache is a full reset to the post-compile state: the
        # lifetime counters go back to zero along with the rows, so
        # cache_stats() after a clear describes only post-clear work.
        rng = random.Random(37)
        network = _network(37)
        data = random_input(rng, 150)
        compiled = compile_lazydfa(network)
        lazydfa_run(compiled, data)
        assert compiled.cache_stats()["inserts"] > 0
        compiled.clear_cache()
        stats = compiled.cache_stats()
        assert stats["size"] == 0
        for counter in ("hits", "cell_builds", "inserts", "evictions",
                        "fallback_steps"):
            assert stats[counter] == 0, counter
        # ... and the counters resume counting from zero afterwards.
        lazydfa_run(compiled, data)
        after = compiled.cache_stats()
        assert after["inserts"] > 0 and after["hits"] >= 0


class TestEngineMetadata:
    def test_registered_without_feasibility_gate(self):
        engine = ENGINES["lazydfa"]
        assert engine.streaming_only
        # No proof required: the hybrid is feasible even for the classic
        # exponential-blowup pattern that the eager backend must reject.
        assert engine.feasible(blowup_network())

    def test_artifact_direct_construction_validates(self):
        with pytest.raises(ValueError):
            CompiledLazyDfa(
                n_states=1,
                n_classes=1,
                class_of_symbol=None,
                class_accept=[0],
                succ_masks=[0],
                always_mask=0,
                initial_mask=0,
                report_mask=0,
                mid_report_mask=0,
                capacity=0,
            )
