"""Per-application structural-signature regression tests.

Each workload's documented signature (hot-fraction band, family structure)
is what makes the paper's figures come out right; these tests pin those
signatures at a reduced scale so generator changes that would silently
distort an experiment fail loudly here.  Bands are deliberately wide — the
point is catching structural regressions, not exact percentages.
"""

import pytest

from repro.experiments import ExperimentConfig
from repro.nfa.analysis import analyze_network
from repro.sim import compile_network, run
from repro.workloads import get_app

CFG = ExperimentConfig(scale=32, input_len=4096)

#: (app, expected hot-fraction band at 1/32 scale with 2 KB test input).
HOT_BANDS = [
    ("CAV4k", 0.00, 0.10),
    ("CAV", 0.00, 0.15),
    ("DS", 0.02, 0.30),
    ("Snort_L", 0.05, 0.40),
    ("Snort", 0.10, 0.55),
    ("HM1500", 0.10, 0.50),
    ("Pro", 0.15, 0.65),
    ("Brill", 0.25, 0.75),
    ("SPM", 0.60, 1.00),
    ("Fermi", 0.35, 0.90),
    ("RF1", 0.80, 1.00),
    ("RF2", 0.80, 1.00),
    ("LV", 0.80, 1.00),
]


def _hot_fraction(abbr):
    spec = get_app(abbr)
    network = spec.build(CFG.scale)
    data = spec.make_input(network, CFG.input_len)
    result = run(compile_network(network), data[len(data) // 2 :])
    return result.hot_fraction()


@pytest.mark.parametrize("abbr,low,high", HOT_BANDS)
def test_hot_fraction_band(abbr, low, high):
    hot = _hot_fraction(abbr)
    assert low <= hot <= high, f"{abbr}: hot fraction {hot:.2%} outside [{low}, {high}]"


class TestFamilyStructure:
    def test_clamav_is_pure_chains(self):
        from repro.nfa.transforms import is_chain

        network = get_app("CAV").build(CFG.scale)
        assert all(is_chain(a) for a in network.automata)

    def test_hamming_grid_degree(self):
        """BMIA interior states fan out to at most 2 successors."""
        network = get_app("HM500").build(CFG.scale)
        for automaton in network.automata:
            for sid in range(automaton.n_states):
                assert len(automaton.successors(sid)) <= 2

    def test_spm_gaps_self_loop(self):
        network = get_app("SPM").build(CFG.scale)
        for automaton in network.automata:
            loops = [s for s, d in automaton.edges() if s == d]
            assert loops, "SPM machines must contain self-looping gap states"
            for sid in loops:
                assert automaton.state(sid).symbol_set.is_universal()

    def test_pen_group_sharing(self):
        """PEN NFAs in a group share prefix and body symbol-sets."""
        network = get_app("PEN").build(CFG.scale)
        first, second = network.automata[0], network.automata[1]
        shared = sum(
            first.state(i).symbol_set == second.state(i).symbol_set
            for i in range(min(first.n_states, second.n_states))
        )
        assert shared >= first.n_states - 1

    def test_dotstar_fraction_ordering(self):
        """DS03 < DS06 < DS09 in self-loop (dotstar) density."""
        def star_fraction(abbr):
            network = get_app(abbr).build(CFG.scale)
            stars = sum(
                1 for a in network.automata if any(s == d for s, d in a.edges())
            )
            return stars / network.n_automata

        assert star_fraction("DS03") < star_fraction("DS06") < star_fraction("DS09")

    def test_snort_has_deep_counting_rules(self):
        network = get_app("Snort_L").build(CFG.scale)
        topology = analyze_network(network)
        depths = [t.max_order for t in topology.per_automaton]
        assert max(depths) >= 4 * (sum(depths) / len(depths))

    def test_fermi_spm_anchored(self):
        for abbr in ("Fermi", "SPM"):
            network = get_app(abbr).build(CFG.scale)
            from repro.nfa.automaton import StartKind

            kinds = {s.start for _g, _a, s in network.global_states() if s.is_start}
            assert kinds == {StartKind.START_OF_DATA}, abbr
