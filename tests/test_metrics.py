"""Tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import (
    geometric_mean,
    performance_per_ste,
    prediction_quality,
    speedup,
    throughput,
)


class TestGeometricMean:
    def test_single(self):
        assert geometric_mean([4.0]) == pytest.approx(4.0)

    def test_pair(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=10))
    def test_between_min_and_max(self, values):
        mean = geometric_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


class TestSpeedupThroughput:
    def test_speedup(self):
        assert speedup(100, 50) == 2.0

    def test_slowdown(self):
        assert speedup(50, 100) == 0.5

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            speedup(10, 0)

    def test_throughput(self):
        assert throughput(1000, 2000) == 0.5

    def test_performance_per_ste(self):
        # 1 symbol/cycle on a 24K-STE half-core.
        assert performance_per_ste(100, 100, 24576) == pytest.approx(1 / 24576)

    def test_performance_per_ste_batching_penalty(self):
        # 2 batches halve throughput, halving perf/STE.
        full = performance_per_ste(100, 100, 24576)
        batched = performance_per_ste(100, 200, 24576)
        assert batched == pytest.approx(full / 2)


class TestPredictionQuality:
    def test_perfect(self):
        actual = np.array([True, True, False, False])
        q = prediction_quality(actual, actual)
        assert q.accuracy == 1.0
        assert q.recall == 1.0
        assert q.precision == 1.0

    def test_table1_definitions(self):
        predicted = np.array([True, True, False, False])
        actual = np.array([True, False, True, False])
        q = prediction_quality(predicted, actual)
        assert (q.true_positive, q.false_positive, q.false_negative, q.true_negative) == (
            1, 1, 1, 1,
        )
        assert q.accuracy == 0.5
        assert q.recall == 0.5
        assert q.precision == 0.5

    def test_no_hot_states(self):
        predicted = np.zeros(4, dtype=bool)
        actual = np.zeros(4, dtype=bool)
        q = prediction_quality(predicted, actual)
        assert q.accuracy == 1.0
        assert q.recall == 1.0  # vacuous
        assert q.precision == 1.0  # vacuous

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            prediction_quality(np.zeros(3, dtype=bool), np.zeros(4, dtype=bool))

    @given(st.integers(0, 2**32 - 1))
    def test_counts_partition_total(self, seed):
        rng = np.random.default_rng(seed)
        predicted = rng.random(50) < 0.5
        actual = rng.random(50) < 0.5
        q = prediction_quality(predicted, actual)
        assert q.total == 50
        assert 0.0 <= q.accuracy <= 1.0
        assert 0.0 <= q.recall <= 1.0
        assert 0.0 <= q.precision <= 1.0
