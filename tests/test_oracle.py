"""Tests for the oracle analyses (ideal speedup model, constrained states)."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oracle import constrained_states, ideal_speedup
from repro.nfa.analysis import analyze_network
from repro.nfa.automaton import Network
from repro.nfa.build import literal_chain
from repro.nfa.regex import compile_regex
from repro.sim import compile_network, run

from helpers import random_input, random_network, seeds


class TestIdealSpeedup:
    def test_paper_formula(self):
        # S = 100K states, C = 24K, p = 0.5 -> ceil(100/24)/ceil(50/24) = 5/3.
        assert ideal_speedup(100_000, 24_000, 0.5) == pytest.approx((5 / 3))

    def test_no_cold_states_no_speedup(self):
        assert ideal_speedup(100_000, 24_000, 0.0) == 1.0

    def test_asymptotic_one_over_one_minus_p(self):
        s = ideal_speedup(10_000_000, 24_000, 0.75)
        assert s == pytest.approx(4.0, rel=0.01)

    def test_small_app_no_benefit(self):
        # Application already fits: 1 batch either way.
        assert ideal_speedup(10_000, 24_000, 0.9) == 1.0

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            ideal_speedup(100, 10, 1.0)
        with pytest.raises(ValueError):
            ideal_speedup(100, 10, -0.1)

    @given(
        st.integers(min_value=1, max_value=10**6),
        st.integers(min_value=1, max_value=10**5),
        st.floats(min_value=0.0, max_value=0.99),
    )
    def test_at_least_one(self, states, capacity, p):
        assert ideal_speedup(states, capacity, p) >= 1.0


class TestConstrainedStates:
    def test_chain_no_constraint(self):
        """On a chain, hot prefixes align with layers: zero constrained states."""
        network = Network("n")
        network.add(literal_chain(b"abcdef"))
        topology = analyze_network(network)
        hot = np.array([True, True, True, False, False, False])
        result = constrained_states(network, topology, hot)
        assert result.constrained == 0
        assert result.perfect_hot == 3
        assert result.topo_hot == 3

    def test_branch_constraint(self):
        """In (ab|cd)e with only the 'ab' arm hot, c/d are constrained."""
        network = Network("n")
        network.add(compile_regex("(ab|cd)ef"))
        topology = analyze_network(network)
        # Glushkov positions: a,b,c,d,e,f. Hot: a,b,e (deep hot state e).
        hot = np.array([True, True, False, False, True, False])
        result = constrained_states(network, topology, hot)
        # Layer of e is 3 -> closure covers a,b,c,d,e: c,d constrained.
        assert result.topo_hot == 5
        assert result.constrained == 2
        assert result.constrained_fraction == pytest.approx(2 / 6)

    def test_scc_constraint(self):
        """If one SCC member is hot the whole SCC is forced hot."""
        network = Network("n")
        network.add(compile_regex("a(bc)+d"))
        topology = analyze_network(network)
        orders = topology.per_automaton[0].topo_order
        # Mark only the first SCC member hot.
        scc_states = np.flatnonzero(topology.per_automaton[0].scc_size[
            topology.per_automaton[0].scc_id] > 1)
        hot = np.zeros(network.n_states, dtype=bool)
        hot[0] = True
        hot[scc_states[0]] = True
        result = constrained_states(network, topology, hot)
        assert result.topo_hot >= len(scc_states) + 1

    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_closure_superset_and_bounds(self, seed):
        rng = random.Random(seed)
        network = random_network(rng)
        topology = analyze_network(network)
        data = random_input(rng, 15)
        hot = run(compile_network(network), data).hot_mask()
        result = constrained_states(network, topology, hot)
        assert result.constrained >= 0
        assert result.perfect_hot <= result.topo_hot <= network.n_states
        assert 0.0 <= result.constrained_fraction <= 1.0
