"""Tests for the BMIA (Hamming) and Levenshtein automaton constructions."""

import numpy as np
import pytest

from repro.nfa.analysis import analyze_automaton
from repro.nfa.automaton import Network
from repro.sim import reference_run
from repro.workloads.hamming import bmia_automaton, bmia_size, hamming_network
from repro.workloads.levenshtein import levenshtein_automaton, levenshtein_network


def _hamming_distance(a: bytes, b: bytes) -> int:
    assert len(a) == len(b)
    return sum(x != y for x, y in zip(a, b))


def _reports_end_at(automaton, data: bytes):
    network = Network("t")
    network.add(automaton)
    result = reference_run(network, data)
    return {int(p) for p, _g in result.reports}


class TestBMIA:
    def test_size_formula(self):
        automaton = bmia_automaton(b"ACGTACGT", 2, alphabet=b"ACGT")
        assert automaton.n_states == bmia_size(8, 2) == 8 * 3 + 8 * 2

    def test_exact_match_reports(self):
        automaton = bmia_automaton(b"ACGT", 1, alphabet=b"ACGT")
        assert 3 in _reports_end_at(automaton, b"ACGT")

    def test_within_distance_reports(self):
        pattern = b"ACGTAC"
        automaton = bmia_automaton(pattern, 2, alphabet=b"ACGT")
        candidate = b"AGGTAC"  # distance 1
        assert _hamming_distance(pattern, candidate) == 1
        assert len(candidate) - 1 in _reports_end_at(automaton, candidate)

    def test_beyond_distance_silent(self):
        pattern = b"AAAAAA"
        automaton = bmia_automaton(pattern, 1, alphabet=b"ACGT")
        candidate = b"CCAAAA"  # distance 2 > budget 1
        assert len(candidate) - 1 not in _reports_end_at(automaton, candidate)

    def test_exhaustive_small(self):
        """Every 4-mer within distance d reports; every other 4-mer doesn't."""
        pattern = b"ACGT"
        distance = 1
        automaton = bmia_automaton(pattern, distance, alphabet=b"ACGT")
        alphabet = b"ACGT"
        for i0 in alphabet:
            for i1 in alphabet:
                for i2 in alphabet:
                    for i3 in alphabet:
                        candidate = bytes([i0, i1, i2, i3])
                        expected = _hamming_distance(pattern, candidate) <= distance
                        reported = 3 in _reports_end_at(automaton, candidate)
                        assert reported == expected, candidate

    def test_unanchored_matches_mid_stream(self):
        automaton = bmia_automaton(b"ACGT", 1, alphabet=b"ACGT")
        assert 7 in _reports_end_at(automaton, b"TTTTACGT")

    def test_bad_args(self):
        with pytest.raises(ValueError):
            bmia_automaton(b"", 1)
        with pytest.raises(ValueError):
            bmia_automaton(b"ACGT", -1)
        with pytest.raises(ValueError):
            bmia_automaton(b"AC", 2)

    def test_is_dag(self):
        automaton = bmia_automaton(b"ACGTACGT", 2, alphabet=b"ACGT")
        topology = analyze_automaton(automaton)
        assert (topology.scc_size == 1).all()
        assert not any(s == d for s, d in automaton.edges())


class TestHammingNetwork:
    def test_target_states_respected(self):
        network = hamming_network(seed=1, target_states=2000)
        assert 1700 <= network.n_states <= 2000

    def test_n_nfas(self):
        network = hamming_network(6, seed=1)
        assert network.n_automata == 6

    def test_exclusive_args(self):
        with pytest.raises(ValueError):
            hamming_network(5, 1, target_states=100)
        with pytest.raises(ValueError):
            hamming_network()

    def test_deterministic(self):
        a = hamming_network(4, seed=9)
        b = hamming_network(4, seed=9)
        assert a.n_states == b.n_states
        assert [s.symbol_set for _g, _i, s in a.global_states()] == [
            s.symbol_set for _g, _i, s in b.global_states()
        ]


class TestLevenshtein:
    def test_exact_match_reports(self):
        automaton = levenshtein_automaton(b"ACGT", 2, alphabet=b"ACGT")
        assert 3 in _reports_end_at(automaton, b"ACGT")

    def test_substitution_within_distance(self):
        automaton = levenshtein_automaton(b"ACGTAC", 2, alphabet=b"ACGT")
        assert 5 in _reports_end_at(automaton, b"AGGTAC")

    def test_large_scc_signature(self):
        """Most of the machine must collapse into one SCC (the LV property)."""
        automaton = levenshtein_automaton(b"ACGTACGTACGT", 3, alphabet=b"ACGT")
        topology = analyze_automaton(automaton)
        assert topology.scc_size.max() >= automaton.n_states * 0.5

    def test_network_sizes(self):
        network = levenshtein_network(2, seed=1, pattern_length=24, distance=3)
        assert network.n_automata == 2
        assert all(a.n_states == 24 * 4 + 24 * 3 for a in network.automata)

    def test_bad_distance(self):
        with pytest.raises(ValueError):
            levenshtein_automaton(b"ACGT", 0)
        with pytest.raises(ValueError):
            levenshtein_automaton(b"", 2)
