"""Tests for the static verifier (repro.verify): each malformed fixture must
trigger its documented rule code, every registry app must verify clean, and
the pipeline must refuse to simulate an invalid partition unless asked not
to verify."""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.ap.batching import NetworkSlice, batch_network, slice_network
from repro.core.partition import INTERMEDIATE_CODE, partition_network
from repro.experiments.config import ExperimentConfig
from repro.experiments.pipeline import AppRun
from repro.nfa.automaton import Automaton, Network, StartKind
from repro.nfa.symbolset import SymbolSet
from repro.verify import (
    RULES,
    Severity,
    VerificationError,
    verify_app,
    verify_batch_plan,
    verify_network,
    verify_partition,
)
from repro.workloads.registry import AppSpec, PaperStats, app_names
from repro.workloads.inputs import uniform_bytes


def chain(n=6, name="chain", start=StartKind.ALL_INPUT, reporting=True):
    """a -> a -> ... -> a, reporting at the end."""
    automaton = Automaton(name)
    prev = automaton.add_state(SymbolSet.from_symbols(b"a"), start=start)
    for _ in range(n - 1):
        cur = automaton.add_state(SymbolSet.from_symbols(b"a"))
        automaton.add_edge(prev, cur)
        prev = cur
    if reporting:
        automaton.state(prev).reporting = True
    return automaton


def one_chain_network(n=6):
    network = Network("fixture")
    network.add(chain(n))
    return network


def cut_partition(n=6, k=3):
    """A valid hot/cold partition of one n-state chain cut at layer k."""
    return partition_network(one_chain_network(n), [k])


class TestRuleRegistry:
    def test_codes_are_stable_and_documented(self):
        assert all(code.startswith("SPAP-") for code in RULES)
        for code, rule in RULES.items():
            assert rule.code == code
            assert rule.title and rule.hint and rule.paper.startswith("§")

    def test_passes_cover_six_prefixes(self):
        prefixes = {code.split("-")[1][0] for code in RULES}
        assert prefixes == {"N", "P", "B", "S", "C", "R"}


class TestNetworkLint:
    def test_clean_chain(self):
        report = verify_network(one_chain_network())
        assert report.ok and not report.diagnostics

    def test_dangling_edge_n001(self):
        automaton = chain(3)
        automaton._succ[0].append(9)  # bypass add_edge's validation
        report = verify_network(Network("bad", [automaton]))
        assert "SPAP-N001" in report.codes()
        assert not report.ok

    def test_empty_symbol_set_n002(self):
        automaton = chain(3)
        sid = automaton.add_state(SymbolSet.empty())
        automaton.add_edge(0, sid)
        report = verify_network(Network("bad", [automaton]))
        assert "SPAP-N002" in report.codes()

    def test_no_start_state_n003(self):
        automaton = chain(3, start=StartKind.NONE)
        report = verify_network(Network("bad", [automaton]))
        assert "SPAP-N003" in report.codes()

    def test_startless_allowed_for_partition_fragments(self):
        automaton = chain(3, start=StartKind.NONE)
        report = verify_network(Network("cold", [automaton]), require_start=False)
        assert "SPAP-N003" not in report.codes()

    def test_unreachable_state_n004_is_warning(self):
        automaton = chain(3)
        automaton.add_state(SymbolSet.from_symbols(b"x"))  # no in-edges
        report = verify_network(Network("bad", [automaton]))
        assert "SPAP-N004" in report.codes()
        assert report.ok  # warnings do not fail verification

    def test_dead_state_n005(self):
        automaton = chain(3)
        dead = automaton.add_state(SymbolSet.from_symbols(b"x"))
        automaton.add_edge(0, dead)  # reachable, but reports nothing
        report = verify_network(Network("bad", [automaton]))
        assert "SPAP-N005" in report.codes()

    def test_mixed_start_kinds_n006(self):
        automaton = chain(3)
        extra = automaton.add_state(
            SymbolSet.from_symbols(b"a"), start=StartKind.START_OF_DATA
        )
        automaton.add_edge(extra, 1)
        report = verify_network(Network("bad", [automaton]))
        assert "SPAP-N006" in report.codes()

    def test_eod_without_reporting_n007(self):
        automaton = chain(3)
        automaton.state(1).eod = True
        report = verify_network(Network("bad", [automaton]))
        assert "SPAP-N007" in report.codes()

    def test_desynced_sid_n008(self):
        automaton = chain(3)
        automaton.state(1).sid = 5
        report = verify_network(Network("bad", [automaton]))
        assert "SPAP-N008" in report.codes()

    def test_empty_automaton_n009(self):
        report = verify_network(Network("bad", [Automaton("hollow")]))
        assert report.codes() == ["SPAP-N009"]

    def test_no_reporting_state_n010(self):
        automaton = chain(3, reporting=False)
        report = verify_network(Network("bad", [automaton]))
        assert "SPAP-N010" in report.codes()
        assert report.ok


class TestPartitionChecker:
    def test_valid_partition_is_clean(self):
        report = verify_partition(cut_partition())
        assert report.ok and not report.diagnostics

    def test_split_scc_p001(self):
        partitioned = cut_partition()
        # Doctor the topology so a hot state and a cold state "share" an SCC.
        partitioned.topology.per_automaton[0].scc_id = np.array([0, 1, 2, 2, 3, 4])
        report = verify_partition(partitioned)
        assert "SPAP-P001" in report.codes()

    def test_cold_to_hot_edge_p002(self):
        partitioned = cut_partition()
        partitioned.parent.automata[0].add_edge(5, 1)  # cold state -> hot state
        report = verify_partition(partitioned)
        assert "SPAP-P002" in report.codes()

    def test_missing_intermediate_p003(self):
        partitioned = cut_partition()
        (im_gid,) = list(partitioned.translation)
        del partitioned.translation[im_gid]
        report = verify_partition(partitioned)
        assert "SPAP-P003" in report.codes()
        assert "SPAP-P005" in report.codes()  # flagged intermediate, no entry

    def test_wrong_intermediate_symbols_p004(self):
        partitioned = cut_partition()
        (im_gid,) = list(partitioned.translation)
        a_index, sid = partitioned.hot.locate(im_gid)
        partitioned.hot.automata[a_index].state(sid).symbol_set = (
            SymbolSet.from_symbols(b"z")
        )
        report = verify_partition(partitioned)
        assert "SPAP-P004" in report.codes()

    def test_flag_mapping_disagreement_p005(self):
        partitioned = cut_partition()
        partitioned.hot_is_intermediate[1] = True  # a real state, now "intermediate"
        report = verify_partition(partitioned)
        assert "SPAP-P005" in report.codes()

    def test_intermediate_code_in_cold_p006(self):
        partitioned = cut_partition()
        partitioned.cold.automata[0].state(0).report_code = INTERMEDIATE_CODE
        report = verify_partition(partitioned)
        assert "SPAP-P006" in report.codes()

    def test_broken_cover_p007(self):
        partitioned = cut_partition()
        partitioned.cold_to_parent[0] = 0  # claims a state the hot side owns
        report = verify_partition(partitioned)
        assert "SPAP-P007" in report.codes()

    def test_start_leaked_cold_p008(self):
        partitioned = cut_partition()
        partitioned.cold.automata[0].state(0).start = StartKind.ALL_INPUT
        report = verify_partition(partitioned)
        assert "SPAP-P008" in report.codes()

    def test_edge_divergence_p009(self):
        partitioned = cut_partition()
        partitioned.hot.automata[0].add_edge(0, 2)  # absent from the parent
        report = verify_partition(partitioned)
        assert "SPAP-P009" in report.codes()

    def test_unwired_intermediate_p010(self):
        partitioned = cut_partition()
        (im_gid,) = list(partitioned.translation)
        _, im_sid = partitioned.hot.locate(im_gid)
        partitioned.hot.automata[0]._succ[2].remove(im_sid)
        report = verify_partition(partitioned)
        assert "SPAP-P010" in report.codes()

    def test_strict_constructor_mode(self):
        partitioned = partition_network(one_chain_network(), [3], strict=True)
        assert partitioned.hot.n_states == 4  # 3 hot + 1 intermediate


class TestBatchPlanChecker:
    def setup_method(self):
        self.parent = Network("plan")
        for index, n in enumerate([4, 4, 2]):
            self.parent.add(chain(n, name=f"nfa{index}"))

    def test_clean_plan(self):
        plan = batch_network(self.parent, 8, strict=True)
        report = verify_batch_plan(self.parent, plan, 8)
        assert report.ok and not report.diagnostics

    def test_bins_form(self):
        report = verify_batch_plan(self.parent, [[0, 1], [2]], 8)
        assert report.ok

    def test_oversized_batch_b001(self):
        report = verify_batch_plan(self.parent, [[0, 1, 2]], 5)
        assert "SPAP-B001" in report.codes()

    def test_split_nfa_b002(self):
        report = verify_batch_plan(self.parent, [[0, 1], [1, 2]], 100)
        assert "SPAP-B002" in report.codes()

    def test_missing_nfa_b002(self):
        report = verify_batch_plan(self.parent, [[0]], 100)
        assert "SPAP-B002" in report.codes()

    def test_unknown_index_b002(self):
        report = verify_batch_plan(self.parent, [[0, 7], [1, 2]], 100)
        assert "SPAP-B002" in report.codes()

    def test_wrong_global_ids_b003(self):
        batch = slice_network(self.parent, [1])
        tampered = NetworkSlice(
            network=batch.network, global_ids=np.arange(4, dtype=np.int64)
        )
        report = verify_batch_plan(
            self.parent, [tampered, slice_network(self.parent, [0, 2])], 100
        )
        assert "SPAP-B003" in report.codes()

    def test_roundtrip_failure_b004(self):
        batch = slice_network(self.parent, [1])
        tampered = NetworkSlice(
            network=batch.network, global_ids=batch.global_ids[::-1].copy()
        )
        report = verify_batch_plan(
            self.parent, [tampered, slice_network(self.parent, [0, 2])], 100
        )
        assert "SPAP-B004" in report.codes()


# -- end-to-end: every registry application must be clean ---------------------

_APP_CONFIG = ExperimentConfig(scale=16, input_len=1024)


@pytest.mark.parametrize("abbr", app_names())
def test_registry_app_verifies_clean(abbr):
    report = verify_app(abbr, _APP_CONFIG)
    assert report.ok, "\n" + report.render_text(verbose=True)


# -- pipeline fail-fast -------------------------------------------------------


def _toy_spec():
    def build(_spec, _scale):
        network = Network("toy")
        network.add(chain(20, name="deep"))
        return network

    def make_input(_spec, _network, length, seed):
        return uniform_bytes(length, seed)

    return AppSpec(
        abbr="TOY",
        full_name="toy fixture",
        group="low",
        paper=PaperStats(20, 1, 20, 1),
        description="pipeline fail-fast fixture",
        builder=build,
        input_builder=make_input,
    )


class TestPipelineFailFast:
    CFG = ExperimentConfig(scale=1536, input_len=256)  # AP capacity: 16 STEs

    def _tampered_run(self, config):
        run = AppRun(_toy_spec(), config)
        _ = run.topology  # cache the honest topology...
        run.network.automata[0].add_edge(19, 0)  # ...then sneak in a back-edge
        return run

    def test_refuses_invalid_partition(self):
        run = self._tampered_run(self.CFG)
        with pytest.raises(VerificationError) as excinfo:
            run.partition(0.01, self.CFG.half_core)
        assert excinfo.value.report.by_code("SPAP-P002")

    def test_no_verify_escape_hatch(self):
        from dataclasses import replace

        run = self._tampered_run(replace(self.CFG, verify=False))
        partitioned, bins = run.partition(0.01, self.CFG.half_core)
        assert partitioned.cold.n_states > 0  # simulated anyway, as requested

    def test_valid_app_passes_under_verification(self):
        run = AppRun(_toy_spec(), self.CFG)
        partitioned, _bins = run.partition(0.01, self.CFG.half_core)
        assert partitioned.parent.n_states == 20


# -- CLI ----------------------------------------------------------------------


def _cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=600,
        env={"PYTHONPATH": "src", "REPRO_SCALE": "64", "REPRO_INPUT": "1024",
             "PATH": "/usr/bin:/bin"},
        cwd=str(__import__("pathlib").Path(__file__).parent.parent),
    )


class TestVerifyCLI:
    def test_verify_single_app(self):
        result = _cli("verify", "Bro217")
        assert result.returncode == 0
        assert "Bro217: OK" in result.stdout

    def test_verify_json(self):
        result = _cli("verify", "Bro217", "--json")
        assert result.returncode == 0
        payload = json.loads(result.stdout)
        assert payload[0]["subject"] == "Bro217"
        assert payload[0]["ok"] is True

    def test_verify_no_apps_is_usage_error(self):
        result = _cli("verify")
        assert result.returncode == 2

    def test_verify_unknown_app_suggests(self):
        result = _cli("verify", "Bro21")
        assert result.returncode == 2
        assert "did you mean" in result.stderr
        assert "Bro217" in result.stderr

    def test_run_app_unknown_suggests(self):
        result = _cli("run-app", "Ferm")
        assert result.returncode == 2
        assert "did you mean" in result.stderr
        assert "Fermi" in result.stderr

    def test_figure_unknown_suggests(self):
        result = _cli("figure", "fig9")
        assert result.returncode == 2
        assert "did you mean" in result.stderr


class TestDiagnosticsRendering:
    def test_severity_and_text(self):
        automaton = chain(3)
        automaton._succ[0].append(9)
        report = verify_network(Network("bad", [automaton]))
        assert any(d.severity is Severity.ERROR for d in report.diagnostics)
        text = report.render_text(verbose=True)
        assert "SPAP-N001" in text and "hint:" in text

    def test_json_shape(self):
        report = verify_network(one_chain_network())
        payload = report.to_json()
        assert payload["ok"] is True
        assert payload["diagnostics"] == []
