"""Unit tests for small helpers across the package."""

import math

import numpy as np
import pytest

from repro import bitops
from repro.sim.result import SimResult, reports_equal, reports_to_array
from repro.workloads.registry import (
    _anchored_width,
    _pattern_lengths,
    _tokens,
    _width_for_depth,
)


class TestSimResult:
    def _result(self):
        return SimResult(
            n_states=10,
            n_symbols=5,
            cycles=5,
            reports=reports_to_array([(1, 3), (0, 2)]),
            ever_enabled=bitops.from_indices([0, 2, 3], 10),
        )

    def test_hot_accessors(self):
        result = self._result()
        assert result.hot_indices().tolist() == [0, 2, 3]
        assert result.hot_count() == 3
        assert result.hot_fraction() == pytest.approx(0.3)
        mask = result.hot_mask()
        assert mask.sum() == 3 and mask[2]

    def test_report_tuples_sorted(self):
        assert self._result().report_tuples() == [(0, 2), (1, 3)]

    def test_zero_states_fraction(self):
        result = SimResult(0, 0, 0, reports_to_array([]), bitops.empty(1))
        assert result.hot_fraction() == 0.0


class TestReportsHelpers:
    def test_equal_ignores_order(self):
        assert reports_equal([(2, 1), (0, 5)], [(0, 5), (2, 1)])

    def test_multiplicity_matters(self):
        assert not reports_equal([(0, 1), (0, 1)], [(0, 1)])

    def test_different_content(self):
        assert not reports_equal([(0, 1)], [(0, 2)])

    def test_empty(self):
        assert reports_equal([], np.empty((0, 2), dtype=np.int64))


class TestWidthCalibration:
    def test_depth_one_is_exact_byte(self):
        assert _width_for_depth(1.0) == 1
        assert _width_for_depth(0.5) == 1

    def test_deeper_targets_wider_classes(self):
        widths = [_width_for_depth(d) for d in (2.0, 4.0, 8.0, 16.0)]
        assert widths == sorted(widths)
        assert widths[-1] > widths[0]

    def test_alphabet_scaling(self):
        wide = _width_for_depth(6.0, 256)
        narrow = _width_for_depth(6.0, 4)
        assert narrow <= 4
        # Same match probability implies proportional width.
        assert abs(wide / 256 - narrow / 4) < 0.2

    def test_width_solves_penetration_equation(self):
        """n * q^(d-1) = 1 at the returned width (within rounding)."""
        for depth in (3.0, 6.0, 12.0):
            width = _width_for_depth(depth, 256, input_len=4096)
            q = width / 256
            predicted = 1 + math.log(4096) / math.log(1 / q)
            assert predicted == pytest.approx(depth, rel=0.15)

    def test_anchored_width_hits_target(self):
        for target in (0.3, 0.6, 0.9):
            width = _anchored_width(target, 20)
            q = width / 256
            hot = (1 - q ** 20) / (20 * (1 - q))
            assert hot == pytest.approx(target, abs=0.05)


class TestRegistryHelpers:
    def test_pattern_lengths_clipped(self):
        rng = np.random.default_rng(0)
        lengths = _pattern_lengths(rng, 500, mean=50.0, sigma=0.6, low=10, high=120)
        assert all(10 <= l <= 120 for l in lengths)
        assert 30 <= np.mean(lengths) <= 75

    def test_tokens_shape(self):
        rng = np.random.default_rng(0)
        tokens = _tokens(rng, 10, 4, b"abc")
        assert len(tokens) == 10
        assert all(len(t) == 4 for t in tokens)
        assert all(set(t) <= set(b"abc") for t in tokens)


class TestReportDecoding:
    def _net(self):
        from repro.nfa.automaton import Network
        from repro.nfa.build import literal_chain

        network = Network("n")
        network.add(literal_chain(b"ab", name="alpha", report_code="A"))
        network.add(literal_chain(b"cd", name="beta", report_code="B"))
        return network

    def test_decode(self):
        from repro.sim import compile_network, decode_reports, run

        network = self._net()
        result = run(compile_network(network), b"abcd")
        decoded = decode_reports(network, result.reports)
        assert [(d.position, d.automaton, d.code) for d in decoded] == [
            (1, "alpha", "A"),
            (3, "beta", "B"),
        ]
        assert str(decoded[0]) == "A @ 1"

    def test_group_by_code(self):
        from repro.sim import compile_network, reports_by_code, run

        network = self._net()
        result = run(compile_network(network), b"abab")
        assert reports_by_code(network, result.reports) == {"A": [1, 3]}

    def test_empty(self):
        from repro.sim import decode_reports
        import numpy as np

        assert decode_reports(self._net(), np.empty((0, 2))) == []


class TestEventValidation:
    def test_out_of_range_target_rejected(self):
        from repro.nfa.automaton import Network
        from repro.nfa.build import literal_chain
        from repro.sim import compile_network, run_events

        network = Network("t")
        network.add(literal_chain(b"ab"))
        compiled = compile_network(network)
        with pytest.raises(ValueError):
            run_events(compiled, b"abab", [(0, 99)])
        with pytest.raises(ValueError):
            run_events(compiled, b"abab", [(-1, 0)])
