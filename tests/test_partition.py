"""Tests for topological partitioning and intermediate reporting states.

The central invariant (checked here by hand cases and property tests):
executing the hot partition over the input and then replaying the cold
partition driven by intermediate reports yields exactly the reports of the
unpartitioned network.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.partition import (
    INTERMEDIATE_CODE,
    hot_size_with_intermediates,
    partition_network,
    plan_hot_batches,
)
from repro.core.profiling import choose_partition_layers
from repro.nfa.analysis import analyze_network
from repro.nfa.automaton import Network, StartKind
from repro.nfa.build import literal_chain
from repro.nfa.regex import compile_regex
from repro.sim import compile_network, run, run_events
from repro.sim.result import reports_equal, reports_to_array

from helpers import random_input, random_network, seeds


def _chain_net(pattern=b"abcdef"):
    network = Network("n")
    network.add(literal_chain(pattern, name="p"))
    return network


def partitioned_reports(network, partitioned, data):
    """Run hot then cold (single batches) and merge final reports."""
    hot_result = run(compile_network(partitioned.hot), data)
    reports = hot_result.reports
    if reports.size:
        is_im = partitioned.hot_is_intermediate[reports[:, 1]]
        final = reports[~is_im].copy()
        final[:, 1] = partitioned.hot_to_parent[reports[~is_im][:, 1]]
        events = reports[is_im].copy()
        events[:, 1] = [partitioned.translation[int(g)] for g in reports[is_im][:, 1]]
    else:
        final = reports
        events = reports
    merged = [final]
    if partitioned.cold.n_states:
        cold_out = run_events(compile_network(partitioned.cold), data, events)
        cold_reports = cold_out.reports.copy()
        if cold_reports.size:
            cold_reports[:, 1] = partitioned.cold_to_parent[cold_reports[:, 1]]
        merged.append(cold_reports)
    merged = [m for m in merged if m.size]
    return reports_to_array(np.concatenate(merged) if merged else [])


class TestPartitionStructure:
    def test_chain_cut(self):
        network = _chain_net(b"abcdef")
        partitioned = partition_network(network, [3])
        assert partitioned.n_hot_original == 3
        assert partitioned.n_cold == 3
        assert partitioned.n_intermediate == 1  # one crossing edge c->d
        assert partitioned.hot.n_states == 4

    def test_intermediate_mirrors_target_symbolset(self):
        network = _chain_net(b"abcdef")
        partitioned = partition_network(network, [3])
        intermediates = [
            s for _g, _a, s in partitioned.hot.global_states()
            if s.report_code == INTERMEDIATE_CODE
        ]
        assert len(intermediates) == 1
        assert intermediates[0].symbol_set.matches("d")
        assert intermediates[0].reporting

    def test_translation_points_to_cut_target(self):
        network = _chain_net(b"abcdef")
        partitioned = partition_network(network, [3])
        (cold_gid,) = partitioned.translation.values()
        assert partitioned.cold_to_parent[cold_gid] == 3  # state matching 'd'

    def test_shared_intermediate_for_multi_predecessor_target(self):
        # a(b|c)d: both Glushkov positions b,c feed d; cut at layer 2.
        network = Network("n")
        network.add(compile_regex("a(b|c)de"))
        partitioned = partition_network(network, [2])
        assert partitioned.n_intermediate == 1  # one v' shared for target d

    def test_full_hot_partition(self):
        network = _chain_net(b"abc")
        partitioned = partition_network(network, [3])
        assert partitioned.n_cold == 0
        assert partitioned.n_intermediate == 0
        assert partitioned.cold.n_automata == 0

    def test_layer_below_one_rejected(self):
        network = _chain_net(b"abc")
        with pytest.raises(ValueError):
            partition_network(network, [0])

    def test_wrong_layer_count_rejected(self):
        network = _chain_net(b"abc")
        with pytest.raises(ValueError):
            partition_network(network, [1, 1])

    def test_scc_never_split(self):
        network = Network("n")
        network.add(compile_regex("ab(cd)+e"))
        topology = analyze_network(network)
        for k in range(1, int(topology.max_topo) + 1):
            partitioned = partition_network(network, [k], topology=topology)
            # Every cold automaton state's SCC must be fully cold.
            orders = topology.per_automaton[0].topo_order
            cold_orders = orders[orders > k]
            hot_orders = orders[orders <= k]
            assert not set(cold_orders.tolist()) & set(hot_orders.tolist())

    def test_resource_saving(self):
        network = _chain_net(b"abcdefgh")
        partitioned = partition_network(network, [2])
        assert partitioned.resource_saving() == pytest.approx(6 / 8)

    def test_reporting_counts(self):
        network = _chain_net(b"abcd")
        partitioned = partition_network(network, [2])
        counts = partitioned.reporting_counts()
        assert counts["baseline"] == 1
        assert counts["hot_true"] == 0  # the reporting tail is cold
        assert counts["intermediate"] == 1


class TestHotSize:
    def test_chain(self):
        network = _chain_net(b"abcdef")
        topology = analyze_network(network)
        orders = topology.per_automaton[0].topo_order
        automaton = network.automata[0]
        assert hot_size_with_intermediates(automaton, orders, 3) == 4  # 3 + 1 im
        assert hot_size_with_intermediates(automaton, orders, 6) == 6  # all, no im

    def test_matches_constructed_size(self):
        rng = random.Random(7)
        network = random_network(rng, n_automata=3)
        topology = analyze_network(network)
        for index, automaton in enumerate(network.automata):
            orders = topology.per_automaton[index].topo_order
            max_order = topology.per_automaton[index].max_order
            for k in range(1, max_order + 1):
                layers = [topology.per_automaton[i].max_order for i in range(3)]
                layers[index] = k
                partitioned = partition_network(network, layers, topology=topology)
                expected = sum(
                    hot_size_with_intermediates(
                        network.automata[i],
                        topology.per_automaton[i].topo_order,
                        layers[i],
                    )
                    for i in range(3)
                )
                assert partitioned.hot.n_states == expected


class TestCapacityFill:
    def test_fill_extends_layers(self):
        network = Network("n")
        network.add(literal_chain(b"abcdefgh", name="p0"))
        topology = analyze_network(network)
        # Predicted layer 2 (hot size 3 with im); capacity 6 leaves slack.
        layers, bins = plan_hot_batches(network, topology, [2], capacity=6)
        assert bins == [[0]]
        assert layers[0] > 2  # slack absorbed deeper layers

    def test_fill_respects_capacity(self):
        network = Network("n")
        network.add(literal_chain(b"abcdefgh", name="p0"))
        network.add(literal_chain(b"ijklmnop", name="p1"))
        topology = analyze_network(network)
        layers, bins = plan_hot_batches(network, topology, [2, 2], capacity=7)
        for members in bins:
            total = sum(
                hot_size_with_intermediates(
                    network.automata[i], topology.per_automaton[i].topo_order, int(layers[i])
                )
                for i in members
            )
            assert total <= 7

    def test_fill_disabled(self):
        network = _chain_net(b"abcdefgh")
        topology = analyze_network(network)
        layers, _bins = plan_hot_batches(network, topology, [2], capacity=100, fill=False)
        assert layers.tolist() == [2]

    def test_fill_consumes_whole_network_when_it_fits(self):
        network = _chain_net(b"abcd")
        topology = analyze_network(network)
        layers, _bins = plan_hot_batches(network, topology, [1], capacity=100)
        assert layers.tolist() == [4]


class TestEquivalenceInvariant:
    def test_chain_every_cut(self):
        network = _chain_net(b"abcab")
        data = b"abcababcab"
        baseline = run(compile_network(network), data).reports
        for k in range(1, 6):
            partitioned = partition_network(network, [k])
            assert reports_equal(baseline, partitioned_reports(network, partitioned, data))

    def test_regex_with_cycles_every_cut(self):
        network = Network("n")
        network.add(compile_regex("a((bc)|(cd)+)f"))
        topology = analyze_network(network)
        data = b"abcfacdcdfabcdf"
        baseline = run(compile_network(network), data).reports
        assert baseline.size  # the test must exercise real matches
        for k in range(1, topology.max_topo + 1):
            partitioned = partition_network(network, [k], topology=topology)
            assert reports_equal(baseline, partitioned_reports(network, partitioned, data))

    @settings(max_examples=50, deadline=None)
    @given(seeds)
    def test_random_networks_random_cuts(self, seed):
        rng = random.Random(seed)
        network = random_network(rng, n_automata=rng.randint(1, 3))
        topology = analyze_network(network)
        data = random_input(rng, rng.randint(1, 30))
        layers = [
            rng.randint(1, topology.per_automaton[i].max_order)
            for i in range(network.n_automata)
        ]
        partitioned = partition_network(network, layers, topology=topology)
        baseline = run(compile_network(network), data).reports
        assert reports_equal(baseline, partitioned_reports(network, partitioned, data))

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_profiled_layers_preserve_semantics(self, seed):
        """Layers chosen from (possibly bad) profiling still never lose reports."""
        rng = random.Random(seed)
        network = random_network(rng, n_automata=2)
        topology = analyze_network(network)
        profile_data = random_input(rng, 4)
        test_data = random_input(rng, 30)
        profiled = run(compile_network(network), profile_data)
        layers = choose_partition_layers(network, topology, profiled.hot_mask())
        partitioned = partition_network(network, layers, topology=topology)
        baseline = run(compile_network(network), test_data).reports
        assert reports_equal(baseline, partitioned_reports(network, partitioned, test_data))


class TestPerEdgeIntermediates:
    """The paper-literal construction: one intermediate per cut edge."""

    def test_multi_predecessor_target_gets_one_per_edge(self):
        network = Network("n")
        network.add(compile_regex("a(b|c)de"))
        shared = partition_network(network, [2], share_intermediates=True)
        literal = partition_network(network, [2], share_intermediates=False)
        assert shared.n_intermediate == 1
        assert literal.n_intermediate == 2  # edges b->d and c->d

    def test_equivalence_holds_in_both_modes(self):
        network = Network("n")
        network.add(compile_regex("a(b|c)de"))
        data = b"abdeacde.abde"
        baseline = run(compile_network(network), data).reports
        for share in (True, False):
            partitioned = partition_network(network, [2], share_intermediates=share)
            assert reports_equal(
                baseline, partitioned_reports(network, partitioned, data)
            ), share

    def test_single_predecessor_identical(self):
        network = _chain_net(b"abcdef")
        shared = partition_network(network, [3], share_intermediates=True)
        literal = partition_network(network, [3], share_intermediates=False)
        assert shared.n_intermediate == literal.n_intermediate == 1

    def test_literal_mode_never_fewer_intermediates(self):
        rng = random.Random(11)
        for _ in range(10):
            network = random_network(rng, n_automata=2)
            from repro.nfa.analysis import analyze_network as _an

            topology = _an(network)
            layers = [
                rng.randint(1, topology.per_automaton[i].max_order)
                for i in range(network.n_automata)
            ]
            shared = partition_network(network, layers, topology=topology)
            literal = partition_network(
                network, layers, topology=topology, share_intermediates=False
            )
            assert literal.n_intermediate >= shared.n_intermediate
