"""Table-driven DFA backend: tables, budgets, registry, and app sweep.

Four layers of pinning for :mod:`repro.sim.dfa` and the pluggable-engine
registry (DESIGN.md §13):

* the dense transition table is re-derived cell-by-cell from the
  :class:`~repro.nfa.determinize.NetworkTables` successor function, so the
  materialized array can never drift from subset construction;
* symbol→class translation composes with the per-class representatives,
  and the executor is byte-for-byte identical to the reference engine over
  the *full* 256-symbol alphabet (not just the small test alphabet);
* the determinize/explorer state budgets share exact boundary semantics
  (admit exactly ``budget`` states, reject ``budget`` + 1, reject a
  budget of 0 loudly) — the off-by-one regression tests;
* the engine registry mirrors the cost model's canonical backend names,
  and the ``dfa`` engine is bit-identical to the reference engine on
  every DFA-safe registry application at the standard bench scale.
"""

import random

import pytest
from hypothesis import given, settings

from repro import bitops
from repro.cost.explore import explore_subset_construction
from repro.cost.model import (
    BACKENDS,
    STREAMING_BACKENDS,
    CostFeatures,
    dfa_entry_bytes,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.pipeline import get_run
from repro.nfa.automaton import Automaton, Network, StartKind
from repro.nfa.determinize import (
    DeterminizeError,
    class_representatives,
    determinize,
    flatten_network,
)
from repro.nfa.symbolset import ALPHABET_SIZE, SymbolSet
from repro.sim import (
    ENGINES,
    FALLBACK_BACKEND,
    BackendInfeasibleError,
    DfaInfeasibleError,
    compile_dfa,
    dfa_feasible,
    dfa_run,
    dfa_table_dtype,
    get_engine,
    reference_run,
    reports_equal,
    resolve_backend,
)
from repro.sim.dfa import compile_determinized
from repro.workloads.registry import app_names

from helpers import input_lengths, random_input, random_network, seeds

_CONFIG = ExperimentConfig(scale=64, input_len=512)


def _blowup_network(tail: int = 13) -> Network:
    """``a`` followed by ``tail`` wildcards: 2**tail reachable subsets.

    The classic counting pattern whose subset construction bursts any
    reasonable budget (here 8192 > DEFAULT_DFA_BUDGET = 4096), used to
    exercise the infeasible paths without waiting on a real blowup.
    """
    automaton = Automaton("blowup")
    automaton.add_state(
        SymbolSet.from_symbols(b"a"), start=StartKind.ALL_INPUT
    )
    for index in range(tail):
        automaton.add_state(
            SymbolSet.universal(),
            reporting=index == tail - 1,
            report_code="blow" if index == tail - 1 else None,
        )
        automaton.add_edge(index, index + 1)
    network = Network("blowup-net")
    network.add(automaton)
    return network


class TestTableMatchesNetworkTables:
    """The dense table is exactly the NetworkTables transition function."""

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_random_cells_match_successor_function(self, seed):
        rng = random.Random(seed)
        network = random_network(rng)
        dfa = determinize(network)
        compiled = compile_determinized(network, dfa)
        tables = flatten_network(network)
        representative = class_representatives(
            dfa.class_of_symbol, compiled.n_classes
        )
        index_of = {subset: index for index, subset in enumerate(dfa.subsets)}

        assert compiled.transitions.shape == (dfa.n_states, dfa.n_classes)
        assert compiled.transitions.dtype == dfa_table_dtype(dfa.n_states)
        for _ in range(25):
            s = rng.randrange(dfa.n_states)
            c = rng.randrange(compiled.n_classes)
            symbol = int(representative[c])
            activated = [
                gid for gid in dfa.subsets[s]
                if tables.symbol_sets[gid].matches(symbol)
            ]
            target = set(tables.always)
            for gid in activated:
                target.update(tables.successors[gid])
            assert int(compiled.transitions[s, c]) == index_of[frozenset(target)]
            fired = tuple(
                sorted(gid for gid in activated if tables.reporting[gid])
            )
            assert compiled.reports[s * compiled.n_classes + c] == fired

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_subset_masks_encode_witnesses(self, seed):
        rng = random.Random(seed)
        network = random_network(rng)
        dfa = determinize(network)
        compiled = compile_determinized(network, dfa)
        n = max(network.n_states, 1)
        for index, subset in enumerate(dfa.subsets):
            expected = bitops.from_indices(sorted(subset), n)
            assert (compiled.subset_masks[index] == expected).all()


class TestClassComposition:
    """Symbol→class translation composes with the representatives, and the
    executor matches the reference engine over the full byte alphabet."""

    @settings(max_examples=50, deadline=None)
    @given(seeds, input_lengths)
    def test_full_alphabet_byte_identical_to_reference(self, seed, length):
        rng = random.Random(seed)
        network = random_network(rng)
        # Full 256-symbol inputs: most bytes fall in the none-match class,
        # exercising columns the small-alphabet suite never touches.
        data = bytes(rng.randrange(ALPHABET_SIZE) for _ in range(length))
        if not dfa_feasible(network):
            return
        compiled = compile_dfa(network)
        expected = reference_run(network, data)
        got = dfa_run(compiled, data, track_enabled=True)
        assert reports_equal(got.reports, expected.reports)
        assert (got.ever_enabled == expected.ever_enabled).all()
        assert got.cycles == expected.cycles

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_representative_is_class_fixed_point(self, seed):
        rng = random.Random(seed)
        network = random_network(rng)
        dfa = determinize(network)
        representative = class_representatives(
            dfa.class_of_symbol, dfa.n_classes
        )
        for symbol in range(ALPHABET_SIZE):
            cls = int(dfa.class_of_symbol[symbol])
            # The representative must land back in the class it represents:
            # running it through the translation is the identity on classes.
            assert int(dfa.class_of_symbol[int(representative[cls])]) == cls


class TestBudgetBoundary:
    """Determinize/explorer budget semantics: exact-fit admits, +1 rejects.

    Regression tests for the budget off-by-one audit: both walkers admit a
    reachable-subset count of exactly ``budget`` and reject ``budget + 1``,
    and both reject a zero budget loudly instead of vacuously succeeding
    (``determinize(max_states=0)`` used to return a 1-state DFA, silently
    violating its own cap).
    """

    def test_zero_budget_rejected(self):
        network = random_network(random.Random(7))
        with pytest.raises(ValueError):
            determinize(network, max_states=0)
        with pytest.raises(ValueError):
            explore_subset_construction(network, budget=0)

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_exact_budget_admits_and_minus_one_rejects(self, seed):
        rng = random.Random(seed)
        network = random_network(rng)
        exact = determinize(network).n_states

        dfa = determinize(network, max_states=exact)
        assert dfa.n_states == exact
        outcome = explore_subset_construction(network, budget=exact)
        assert outcome.dfa_safe
        assert outcome.n_subset_states == exact

        if exact > 1:
            with pytest.raises(DeterminizeError):
                determinize(network, max_states=exact - 1)
            tight = explore_subset_construction(network, budget=exact - 1)
            assert not tight.dfa_safe

    def test_explorer_and_determinize_agree_on_blowup(self):
        network = _blowup_network()
        assert not explore_subset_construction(network, budget=4096).dfa_safe
        with pytest.raises(DeterminizeError):
            determinize(network, max_states=4096)


class TestFeasibilityGates:
    """compile_dfa/dfa_feasible enforce the same two budgets, and the
    table pricing matches the cost model byte-for-byte."""

    def test_state_budget_gate(self):
        network = _blowup_network()
        assert not dfa_feasible(network)
        with pytest.raises(DfaInfeasibleError):
            compile_dfa(network)

    def test_table_budget_gate(self):
        network = random_network(random.Random(11))
        assert dfa_feasible(network)
        assert not dfa_feasible(network, table_budget=1)
        with pytest.raises(DfaInfeasibleError):
            compile_dfa(network, table_budget=1)

    def test_table_bytes_match_cost_features(self):
        network = random_network(random.Random(3))
        compiled = compile_dfa(network)
        features = CostFeatures(
            n_states=network.n_states,
            n_words=compiled.n_words,
            n_classes=compiled.n_classes,
            mean_fanout=1.0,
            hot_fraction=0.1,
            event_driven=False,
            dfa_safe=True,
            dfa_states=compiled.n_states,
        )
        assert compiled.table_bytes == features.dfa_table_bytes_actual
        # The 8-byte figure is a deliberate over-estimate, never an
        # under-estimate, so it can be quoted before the build.
        assert features.dfa_table_bytes >= (
            features.dfa_table_bytes_actual - ALPHABET_SIZE
        )

    @pytest.mark.parametrize("n", [1, 0xFFFF, 0x10000, 5_000_000])
    def test_dtype_ladder_matches_entry_bytes(self, n):
        assert dfa_table_dtype(n).itemsize == dfa_entry_bytes(n)


class TestEngineRegistry:
    """The registry mirrors the cost model's canonical backend names."""

    def test_registry_keys_are_canonical(self):
        assert tuple(ENGINES) == BACKENDS

    def test_streaming_flags_match_cost_model(self):
        for name, engine in ENGINES.items():
            assert engine.streaming_only == (name in STREAMING_BACKENDS), name

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            get_engine("systolic")

    def test_resolve_explicit_beats_advice(self):
        network = random_network(random.Random(5))
        name, engine = resolve_backend("reference", network, advised="dfa")
        assert name == "reference"
        assert engine is ENGINES["reference"]

    def test_resolve_auto_takes_advice(self):
        network = random_network(random.Random(5))
        for requested in (None, "auto"):
            name, _ = resolve_backend(requested, network, advised="dfa")
            assert name == "dfa"

    def test_infeasible_explicit_request_raises(self):
        # The silent-substitution regression: an explicitly requested
        # engine that cannot run must fail loudly, never quietly hand the
        # operator a different backend's numbers.
        network = _blowup_network()
        with pytest.raises(BackendInfeasibleError, match="explicitly requested"):
            resolve_backend("dfa", network)
        with pytest.raises(BackendInfeasibleError):
            resolve_backend("dfa", network, allow_fallback=False)

    def test_infeasible_explicit_request_with_fallback_substitutes(self):
        network = _blowup_network()
        name, engine = resolve_backend("dfa", network, allow_fallback=True)
        assert name == FALLBACK_BACKEND
        assert engine is ENGINES[FALLBACK_BACKEND]

    def test_infeasible_advice_still_falls_back_silently(self):
        network = _blowup_network()
        for requested in (None, "auto"):
            name, engine = resolve_backend(requested, network, advised="dfa")
            assert name == FALLBACK_BACKEND
            assert engine is ENGINES[FALLBACK_BACKEND]
        # ... unless the caller explicitly forbids any substitution.
        with pytest.raises(BackendInfeasibleError):
            resolve_backend("auto", network, advised="dfa",
                            allow_fallback=False)

    @settings(max_examples=15, deadline=None)
    @given(seeds, input_lengths)
    def test_every_engine_matches_reference_via_interface(self, seed, length):
        rng = random.Random(seed)
        network = random_network(rng)
        data = random_input(rng, length)
        expected = reference_run(network, data).reports
        for name, engine in ENGINES.items():
            if not engine.feasible(network):
                continue
            got = engine.run_network(network, data)
            assert reports_equal(got.reports, expected), name


class TestRegistryApps:
    """Acceptance sweep: dfa is bit-identical to the reference engine on
    every DFA-safe registry application at the standard bench scale."""

    @pytest.mark.parametrize("abbr", app_names())
    def test_dfa_safe_apps_bit_identical(self, abbr):
        app_run = get_run(abbr, _CONFIG)
        network = app_run.network
        if not dfa_feasible(network):
            pytest.skip(f"{abbr} is not DFA-safe within the default budgets")
        data = app_run.test_input
        expected = reference_run(network, data).reports
        got = dfa_run(app_run.compiled_dfa, data)
        assert reports_equal(got.reports, expected)

    def test_pipeline_selection_uses_advisory(self):
        app_run = get_run("Bro217", _CONFIG)
        advised = app_run.backend_advisory(0.01).recommended
        name, _ = app_run.select_backend("auto", 0.01)
        feasible = ENGINES[advised].feasible(app_run.network)
        assert name == (advised if feasible else FALLBACK_BACKEND)
        forced, _ = app_run.select_backend("bitpacked", 0.01)
        assert forced == "bitpacked"

    def test_auto_selects_lazydfa_on_dfa_unsafe_app(self):
        # Acceptance pin: on a DFA-unsafe streaming app the calibrated
        # cost model must rank the hybrid ahead of multistream, and
        # --backend auto must follow that ranking (DESIGN.md §14).
        app_run = get_run("LV", _CONFIG)
        assert not dfa_feasible(app_run.network)
        advisory = app_run.backend_advisory(0.01)
        assert advisory.recommended == "lazydfa"
        name, engine = app_run.select_backend("auto", 0.01)
        assert name == "lazydfa"
        assert engine is ENGINES["lazydfa"]

    def test_pipeline_explicit_infeasible_raises(self):
        app_run = get_run("LV", _CONFIG)
        with pytest.raises(BackendInfeasibleError):
            app_run.select_backend("dfa", 0.01)
        name, _ = app_run.select_backend("dfa", 0.01, allow_fallback=True)
        assert name == FALLBACK_BACKEND
