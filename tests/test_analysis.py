"""Tests for SCC condensation and topological ordering."""

import random

import networkx as nx
import numpy as np
from hypothesis import given, settings

from repro.nfa.analysis import (
    analyze_automaton,
    analyze_network,
    depth_buckets,
    strongly_connected_components,
)
from repro.nfa.automaton import Automaton, Network, StartKind
from repro.nfa.build import literal_chain
from repro.nfa.symbolset import SymbolSet

from helpers import random_automaton, random_network, seeds


def _chain(n):
    return literal_chain(bytes(b"a" * n), name="chain")


class TestSCC:
    def test_chain_all_singletons(self):
        automaton = _chain(5)
        topology = analyze_automaton(automaton)
        assert topology.n_sccs == 5
        assert (topology.scc_size == 1).all()

    def test_two_cycle(self):
        """The paper's Fig 4: S4 and S5 form one SCC sharing an order."""
        a = Automaton("fig4")
        sym = SymbolSet.single("a")
        ids = [
            a.add_state(sym, start=StartKind.ALL_INPUT if i == 0 else StartKind.NONE)
            for i in range(6)
        ]
        edges = [(0, 1), (1, 2), (0, 3), (3, 4), (4, 3), (2, 5), (4, 5)]
        for src, dst in edges:
            a.add_edge(ids[src], ids[dst])
        topology = analyze_automaton(a)
        assert topology.scc_id[3] == topology.scc_id[4]
        assert topology.topo_order[3] == topology.topo_order[4]

    def test_self_loop_is_cycle_of_one(self):
        a = _chain(3)
        a.add_edge(1, 1)
        topology = analyze_automaton(a)
        # Self loop keeps singleton SCC but the state is still ordered.
        assert topology.n_sccs == 3
        assert topology.topo_order.tolist() == [1, 2, 3]

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_matches_networkx(self, seed):
        rng = random.Random(seed)
        automaton = random_automaton(rng, n_states=rng.randint(2, 15))
        scc = strongly_connected_components(automaton.n_states, automaton.successors)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(automaton.n_states))
        graph.add_edges_from(automaton.edges())
        expected = {frozenset(c) for c in nx.strongly_connected_components(graph)}
        ours = {}
        for state, component in enumerate(scc):
            ours.setdefault(component, set()).add(state)
        assert {frozenset(c) for c in ours.values()} == expected


class TestTopoOrder:
    def test_chain_orders(self):
        topology = analyze_automaton(_chain(4))
        assert topology.topo_order.tolist() == [1, 2, 3, 4]
        assert topology.max_order == 4

    def test_start_state_is_layer_one(self):
        topology = analyze_automaton(_chain(3))
        assert topology.topo_order[0] == 1

    def test_diamond_longest_path(self):
        """Topological order is the *maximum* steps from a start (§III-A)."""
        a = Automaton("diamond")
        sym = SymbolSet.single("a")
        s0 = a.add_state(sym, start=StartKind.ALL_INPUT)
        s1 = a.add_state(sym)
        s2 = a.add_state(sym)
        s3 = a.add_state(sym, reporting=True, report_code="r")
        a.add_edge(s0, s1)
        a.add_edge(s1, s2)
        a.add_edge(s0, s3)
        a.add_edge(s2, s3)
        topology = analyze_automaton(a)
        assert topology.topo_order[s3] == 4  # via the long path, not the short one

    def test_fig4_orders(self):
        """Full check of the paper's Fig 4 worked example."""
        a = Automaton("fig4")
        sym = SymbolSet.single("a")
        for i in range(6):
            a.add_state(sym, start=StartKind.ALL_INPUT if i == 0 else StartKind.NONE)
        for src, dst in [(0, 1), (1, 2), (0, 3), (3, 4), (4, 3), (2, 5), (4, 5)]:
            a.add_edge(src, dst)
        topology = analyze_automaton(a)
        # S1=1; S2=2; S3=3; S4=S5=2 (one SCC); S6=4.
        assert topology.topo_order.tolist() == [1, 2, 3, 2, 2, 4]
        assert topology.max_order == 4
        depths = topology.normalized_depth
        assert depths[0] == 0.25
        assert depths[3] == 0.5
        assert depths[5] == 1.0

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_edges_never_decrease_order_across_sccs(self, seed):
        """Matching proceeds from lower to higher order; crossing edges go one way."""
        rng = random.Random(seed)
        automaton = random_automaton(rng, n_states=rng.randint(2, 15))
        topology = analyze_automaton(automaton)
        for src, dst in automaton.edges():
            if topology.scc_id[src] != topology.scc_id[dst]:
                assert topology.topo_order[src] < topology.topo_order[dst]
            else:
                assert topology.topo_order[src] == topology.topo_order[dst]

    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_orders_start_at_one(self, seed):
        rng = random.Random(seed)
        automaton = random_automaton(rng)
        topology = analyze_automaton(automaton)
        assert topology.topo_order.min() >= 1
        assert topology.topo_order.max() == topology.max_order


class TestNetworkTopology:
    def test_concatenation(self):
        network = Network("n")
        network.add(_chain(3))
        network.add(_chain(5))
        topology = analyze_network(network)
        assert topology.topo_order.tolist() == [1, 2, 3, 1, 2, 3, 4, 5]
        assert topology.max_topo == 5

    def test_normalized_depth_per_automaton(self):
        network = Network("n")
        network.add(_chain(2))
        network.add(_chain(4))
        topology = analyze_network(network)
        assert topology.normalized_depth[1] == 1.0  # end of short chain
        assert topology.normalized_depth[2] == 0.25  # head of long chain

    def test_empty_network(self):
        topology = analyze_network(Network("empty"))
        assert topology.max_topo == 0
        assert topology.topo_order.size == 0

    def test_empty_automaton_normalized_depth(self):
        """max_order == 0 must yield an empty array, not a 0/0 division
        (regression: this used to emit a numpy invalid-value warning)."""
        topology = analyze_automaton(Automaton("empty"))
        assert topology.max_order == 0
        with np.errstate(invalid="raise", divide="raise"):
            depths = topology.normalized_depth
        assert depths.shape == (0,)
        assert depths.dtype == float

    def test_empty_network_normalized_depth(self):
        network = Network("n")
        network.add(Automaton("empty"))
        topology = analyze_network(network)
        with np.errstate(invalid="raise", divide="raise"):
            assert topology.normalized_depth.shape == (0,)


class TestDepthBuckets:
    def test_buckets_partition(self):
        buckets = depth_buckets([0.1, 0.2, 0.4, 0.9, 1.0])
        assert buckets["shallow"] == 0.4
        assert buckets["medium"] == 0.2
        assert buckets["deep"] == 0.4
        assert abs(sum(buckets.values()) - 1.0) < 1e-12

    def test_empty(self):
        assert sum(depth_buckets([]).values()) == 0.0

    def test_boundaries(self):
        buckets = depth_buckets([0.3, 0.6])
        assert buckets["medium"] == 0.5
        assert buckets["deep"] == 0.5
