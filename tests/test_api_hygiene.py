"""API hygiene: exports resolve, modules are documented, version sane."""

import importlib
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _finder, name, _pkg in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.startswith("repro.__main__")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_importable_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize(
    "module_name",
    [
        "repro",
        "repro.bitops",
        "repro.nfa",
        "repro.sim",
        "repro.ap",
        "repro.core",
        "repro.workloads",
        "repro.experiments",
    ],
)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{module_name} declares no public API"
    for name in exported:
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_version():
    major, _minor, _patch = repro.__version__.split(".")
    assert int(major) >= 1


def test_public_symbols_documented():
    """Every function/class exported from the top packages carries a docstring."""
    import inspect

    for module_name in ["repro.nfa", "repro.sim", "repro.ap", "repro.core"]:
        module = importlib.import_module(module_name)
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
