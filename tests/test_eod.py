"""Tests for end-of-data reporting (``$`` anchors, ANML/MNRL eod) across
every engine, both interchange formats, and the partition pipeline."""

import random

import pytest

from repro.ap import APConfig
from repro.core import (
    prepare_partition,
    run_base_spap,
    run_baseline_ap,
    verify_equivalence,
)
from repro.nfa.anml import network_from_anml, network_to_anml
from repro.nfa.automaton import Network, StartKind
from repro.nfa.build import literal_chain
from repro.nfa.determinize import determinize
from repro.nfa.mnrl import network_from_mnrl, network_to_mnrl
from repro.nfa.regex import RegexError, compile_regex
from repro.sim import compile_network, reference_run, run, run_events
from repro.sim.matrix import matrix_compile, matrix_run
from repro.sim.result import reports_equal

from helpers import random_input


def _eod_net(pattern=b"ab"):
    """A chain reporting only at end-of-data."""
    network = Network("t")
    automaton = literal_chain(pattern, name="p")
    automaton.state(automaton.n_states - 1).eod = True
    network.add(automaton)
    return network


class TestEngineSemantics:
    def test_fires_only_at_last_position(self):
        network = _eod_net(b"ab")
        result = run(compile_network(network), b"abxab")
        assert result.reports.tolist() == [[4, 1]]

    def test_silent_when_no_match_at_end(self):
        network = _eod_net(b"ab")
        result = run(compile_network(network), b"abxx")
        assert result.reports.size == 0

    def test_all_engines_agree(self):
        network = _eod_net(b"ab")
        rng = random.Random(4)
        for _ in range(10):
            data = random_input(rng, rng.randint(1, 20), b"abx")
            fast = run(compile_network(network), data)
            ref = reference_run(network, data)
            matrix = matrix_run(matrix_compile(network), data)
            dfa = determinize(network)
            assert reports_equal(fast.reports, ref.reports)
            assert reports_equal(fast.reports, matrix.reports)
            assert reports_equal(fast.reports, dfa.run(data))

    def test_run_events_respects_eod(self):
        network = _eod_net(b"ab")
        outcome = run_events(compile_network(network), b"abab", [])
        assert outcome.reports.tolist() == [[3, 1]]

    def test_non_eod_states_unaffected(self):
        network = Network("t")
        network.add(literal_chain(b"ab"))
        network.add(_eod_net(b"ab").automata[0].copy("p2"))
        result = run(compile_network(network), b"abab")
        # Plain reporter fires at 1 and 3; eod reporter only at 3.
        assert result.reports.tolist() == [[1, 1], [3, 1], [3, 3]]


class TestRegexAnchors:
    def test_dollar_sets_eod(self):
        automaton = compile_regex("ab$")
        last = automaton.state(automaton.n_states - 1)
        assert last.eod and last.reporting

    def test_caret_sets_start_of_data(self):
        automaton = compile_regex("^ab")
        assert automaton.state(0).start is StartKind.START_OF_DATA

    def test_full_anchoring_semantics(self):
        network = Network("t")
        network.add(compile_regex("^ab$"))
        compiled = compile_network(network)
        assert run(compiled, b"ab").reports.shape[0] == 1
        assert run(compiled, b"abx").reports.size == 0
        assert run(compiled, b"xab").reports.size == 0

    def test_dollar_only_rejected(self):
        with pytest.raises(RegexError):
            compile_regex("$")
        with pytest.raises(RegexError):
            compile_regex("^")

    def test_dollar_semantics_match_re(self):
        import re

        network = Network("t")
        network.add(compile_regex("ab$"))
        compiled = compile_network(network)
        for text in ("ab", "xab", "abx", "abab", ""):
            ours = run(compiled, text.encode()).reports.shape[0] > 0
            theirs = re.search("ab$", text) is not None
            assert ours == theirs, text


class TestInterchange:
    def test_anml_round_trip(self):
        network = _eod_net(b"abc")
        loaded = network_from_anml(network_to_anml(network))
        flags = [s.eod for _g, _a, s in loaded.global_states() if s.reporting]
        assert flags == [True]

    def test_mnrl_round_trip(self):
        network = _eod_net(b"abc")
        loaded = network_from_mnrl(network_to_mnrl(network))
        flags = [s.eod for _g, _a, s in loaded.global_states() if s.reporting]
        assert flags == [True]


class TestPartitionWithEod:
    def test_equivalence_preserved(self):
        """The partition invariant must hold for eod reporters in cold sets."""
        network = Network("t")
        for index in range(3):
            automaton = compile_regex("abcdef$", name=f"p{index}")
            network.add(automaton)
        config = APConfig(capacity=10, blocks=96)
        data = b"zzabcdefzz" * 3 + b"abcdef"
        baseline = run_baseline_ap(network, data, config)
        assert baseline.reports.shape[0] == 3  # once per NFA, at the end
        partitioned, bins = prepare_partition(network, b"zzzz", config, fill=False)
        outcome = run_base_spap(partitioned, data, config, bins)
        assert verify_equivalence(baseline, outcome)
