"""Sans-IO protocol tests: round-trips, malformed-frame fuzz, validation."""

import json
import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import protocol
from repro.serve.protocol import (
    MAX_HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
    PROTOCOL_VERSION,
    ErrorCode,
    ProtocolError,
    decode_frame,
    encode_frame,
    parse_request_header,
)

#: JSON-representable header values (no NaN: JSON round-trips must be exact).
_json_values = st.recursive(
    st.none() | st.booleans() | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False) | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=10,
)
_headers = st.dictionaries(st.text(max_size=16), _json_values, max_size=8)


class TestRoundTrip:
    @given(header=_headers, payload=st.binary(max_size=512))
    def test_encode_decode_identity(self, header, payload):
        buffer = encode_frame(header, payload)
        decoded = decode_frame(buffer)
        assert decoded is not None
        frame, consumed = decoded
        assert consumed == len(buffer)
        assert frame.payload == payload
        # JSON round-trip equality (keys may reorder, values must survive).
        assert frame.header == json.loads(json.dumps(header))

    @given(
        request_id=st.integers(min_value=0, max_value=2**31),
        app=st.text(min_size=1, max_size=12),
        payload=st.binary(max_size=256),
        deadline_ms=st.none() | st.floats(min_value=0, max_value=1e6,
                                          allow_nan=False),
        max_reports=st.none() | st.integers(min_value=0, max_value=10_000),
    )
    def test_match_request_round_trip(self, request_id, app, payload,
                                      deadline_ms, max_reports):
        buffer = protocol.request_frame(request_id, app, payload,
                                        deadline_ms=deadline_ms,
                                        max_reports=max_reports)
        frame, consumed = decode_frame(buffer)
        assert consumed == len(buffer)
        assert frame.payload == payload
        request = parse_request_header(frame.header)
        assert request.type == "match"
        assert request.request_id == request_id
        assert request.app == app
        assert request.max_reports == max_reports
        if deadline_ms is None:
            assert request.deadline_ms is None
        else:
            assert request.deadline_ms == pytest.approx(deadline_ms)

    @given(header=_headers, payload=st.binary(max_size=64),
           cut=st.integers(min_value=0, max_value=1_000))
    def test_every_prefix_is_need_more_not_error(self, header, payload, cut):
        """A prefix of a valid frame never raises — it decodes to None."""
        buffer = encode_frame(header, payload)
        prefix = buffer[: min(cut, len(buffer) - 1)]
        assert decode_frame(prefix) is None

    def test_concatenated_frames_decode_sequentially(self):
        first = encode_frame({"type": "ping", "id": 1})
        second = protocol.request_frame(2, "Snort", b"payload")
        buffer = first + second
        frame1, used1 = decode_frame(buffer)
        assert frame1.header["type"] == "ping"
        frame2, used2 = decode_frame(buffer[used1:])
        assert frame2.header["type"] == "match"
        assert frame2.payload == b"payload"
        assert used1 + used2 == len(buffer)

    def test_reply_frame_carries_reports_as_pairs(self):
        buffer = protocol.reply_frame(
            7, "LV", n_symbols=100, reports=[(3, 1), (9, 4)], truncated=False,
            batch_size=5, queue_ms=0.5, exec_ms=2.0,
        )
        frame, _ = decode_frame(buffer)
        assert frame.header["reports"] == [[3, 1], [9, 4]]
        assert frame.header["n_reports"] == 2
        assert frame.header["batch_size"] == 5


def _valid_preamble(header_len: int, payload_len: int) -> bytes:
    return struct.pack(">2sBxII", protocol.MAGIC, PROTOCOL_VERSION,
                       header_len, payload_len)


class TestMalformedFrames:
    def _expect(self, buffer: bytes, code: str, recoverable: bool) -> ProtocolError:
        with pytest.raises(ProtocolError) as info:
            decode_frame(buffer)
        assert info.value.code == code
        assert info.value.recoverable is recoverable
        return info.value

    def test_bad_magic(self):
        buffer = b"XX" + encode_frame({"type": "ping"})[2:]
        self._expect(buffer, ErrorCode.BAD_FRAME, recoverable=False)

    def test_unsupported_version(self):
        good = encode_frame({"type": "ping"})
        buffer = good[:2] + bytes([PROTOCOL_VERSION + 1]) + good[3:]
        self._expect(buffer, ErrorCode.UNSUPPORTED_VERSION, recoverable=False)

    def test_nonzero_reserved_byte(self):
        good = encode_frame({"type": "ping"})
        buffer = good[:3] + b"\x01" + good[4:]
        self._expect(buffer, ErrorCode.BAD_FRAME, recoverable=False)

    def test_oversized_header_length_rejected_before_allocation(self):
        buffer = _valid_preamble(MAX_HEADER_BYTES + 1, 0)
        self._expect(buffer, ErrorCode.FRAME_TOO_LARGE, recoverable=False)

    def test_oversized_payload_length_rejected_before_allocation(self):
        buffer = _valid_preamble(2, MAX_PAYLOAD_BYTES + 1) + b"{}"
        self._expect(buffer, ErrorCode.FRAME_TOO_LARGE, recoverable=False)

    def test_bad_json_header_is_recoverable(self):
        raw = b"{not json!"
        buffer = _valid_preamble(len(raw), 0) + raw
        self._expect(buffer, ErrorCode.BAD_HEADER, recoverable=True)

    def test_non_object_json_header_is_recoverable(self):
        raw = b"[1,2,3]"
        buffer = _valid_preamble(len(raw), 0) + raw
        self._expect(buffer, ErrorCode.BAD_HEADER, recoverable=True)

    def test_non_utf8_header_is_recoverable(self):
        raw = b"\xff\xfe\xfd\xfc"
        buffer = _valid_preamble(len(raw), 0) + raw
        self._expect(buffer, ErrorCode.BAD_HEADER, recoverable=True)

    def test_encode_rejects_oversized_header(self):
        with pytest.raises(ProtocolError) as info:
            encode_frame({"blob": "x" * (MAX_HEADER_BYTES + 1)})
        assert info.value.code == ErrorCode.FRAME_TOO_LARGE

    def test_encode_rejects_oversized_payload(self):
        with pytest.raises(ProtocolError) as info:
            encode_frame({"type": "match"}, b"\x00" * (MAX_PAYLOAD_BYTES + 1))
        assert info.value.code == ErrorCode.FRAME_TOO_LARGE

    def test_random_garbage_never_raises_anything_untyped(self):
        """Fuzz: arbitrary bytes either need-more, decode, or typed error."""
        rng = random.Random(0xC0FFEE)
        for _ in range(2000):
            size = rng.randrange(0, 64)
            blob = bytes(rng.randrange(256) for _ in range(size))
            try:
                decoded = decode_frame(blob)
            except ProtocolError as exc:
                assert exc.code in ErrorCode.ALL
            else:
                assert decoded is None or decoded[1] <= len(blob)

    @given(st.binary(max_size=128))
    @settings(max_examples=200)
    def test_hypothesis_garbage_never_raises_anything_untyped(self, blob):
        try:
            decoded = decode_frame(blob)
        except ProtocolError as exc:
            assert exc.code in ErrorCode.ALL
        else:
            assert decoded is None or decoded[1] <= len(blob)


class TestParseRequestHeader:
    def _expect(self, header, code, request_id=None):
        with pytest.raises(ProtocolError) as info:
            parse_request_header(header)
        assert info.value.code == code
        assert info.value.recoverable is True
        assert info.value.request_id == request_id

    def test_missing_type(self):
        self._expect({"id": 3}, ErrorCode.BAD_REQUEST, request_id=3)

    def test_unknown_type_echoes_id(self):
        self._expect({"type": "bogus", "id": 9}, ErrorCode.UNKNOWN_TYPE,
                     request_id=9)

    def test_missing_id(self):
        self._expect({"type": "ping"}, ErrorCode.BAD_REQUEST)

    def test_boolean_id_rejected(self):
        self._expect({"type": "ping", "id": True}, ErrorCode.BAD_REQUEST)

    def test_match_needs_app(self):
        self._expect({"type": "match", "id": 1}, ErrorCode.BAD_REQUEST,
                     request_id=1)

    def test_match_rejects_non_numeric_deadline(self):
        self._expect({"type": "match", "id": 1, "app": "LV",
                      "deadline_ms": "soon"}, ErrorCode.BAD_REQUEST,
                     request_id=1)

    def test_match_rejects_negative_max_reports(self):
        self._expect({"type": "match", "id": 1, "app": "LV",
                      "max_reports": -1}, ErrorCode.BAD_REQUEST, request_id=1)

    def test_control_types_need_no_app(self):
        for frame_type in ("ping", "stats", "shutdown"):
            request = parse_request_header({"type": frame_type, "id": 2})
            assert request.type == frame_type
            assert request.app is None


def test_expand_errors_rows_sorted():
    rows = protocol.expand_errors({"OVERLOADED": 2, "BAD_FRAME": 1})
    assert rows == [{"code": "BAD_FRAME", "count": 1},
                    {"code": "OVERLOADED", "count": 2}]
