"""Tests for repro.reduce: the SPAP-R equivalence-preserving reducer.

The reducer's contract (DESIGN.md §15) is *report equivalence* in both
modes and *witness equivalence* in exact mode: running any engine on the
reduced network and lifting the result through the state-mapping table
must be bit-identical to running the parent network.  The full-registry
gate replays that claim across the 26-app corpus (SPAP-R001), the
cross-engine class replays it on all five backends, and the hypothesis
properties pin the partition-refinement algebra itself: refinement is a
fixpoint, merged states are observably indistinguishable under the
reference semantics, and reduce∘reduce == reduce.
"""

import json
import random

import numpy as np
import pytest
from hypothesis import given, settings

from repro import bitops
from repro.__main__ import main as cli_main
from repro.cost.advisory import advise_network
from repro.experiments.config import ExperimentConfig
from repro.experiments.pipeline import get_run
from repro.nfa.automaton import Automaton, Network, StartKind
from repro.nfa.build import literal_chain
from repro.nfa.elements import ElementNetwork, Gate, GateKind
from repro.nfa.symbolset import SymbolSet
from repro.reduce import (
    MODES,
    analyze_run_reduce,
    element_pinned_gids,
    reduce_app,
    reduce_element_network,
    reduce_network,
    refine_backward,
    refine_forward,
    refinement_round,
)
from repro.sim import ENGINES, reference_run, reports_equal
from repro.sim.hybrid import hybrid_run
from repro.workloads.registry import app_names

from helpers import input_lengths, random_input, random_network, seeds

_CONFIG = ExperimentConfig(scale=64, input_len=512)


def _masks_equal(a, b, n_states):
    return np.array_equal(bitops.to_bool(a, n_states), bitops.to_bool(b, n_states))


# ---------------------------------------------------------------------------
# The 26-app soundness gate (SPAP-R001) — an acceptance criterion, not a
# statistic: both modes, structural rules plus reference replay of the
# reduced network with lifted reports/witness compared to the truth run.
# ---------------------------------------------------------------------------


class TestSoundnessGate:
    @pytest.mark.parametrize("abbr", app_names())
    def test_every_app_reduces_sound_in_both_modes(self, abbr):
        run = get_run(abbr, _CONFIG)
        for mode in MODES:
            outcome = analyze_run_reduce(run, mode=mode, check=True)
            assert outcome.ok, outcome.report.render_text(verbose=True)
            assert "SPAP-R001" not in outcome.report.codes()
            summary = outcome.summary
            assert 0 <= summary.states_after <= summary.states_before
            # Aggressive subsumes exact: it can only strip/merge more.
            if mode == "aggressive":
                exact = run.reduction("exact")
                assert run.reduction("aggressive").saved_states >= exact.saved_states


class TestCrossEngineLifted:
    """Reports and witness masks must lift bit-identically from every
    backend run on the reduced network — the --reduce execution path."""

    @pytest.mark.parametrize("abbr", ["HM", "LV"])  # both reduce at scale 64
    @pytest.mark.parametrize("engine_name", sorted(ENGINES))
    def test_lifted_results_match_truth(self, abbr, engine_name):
        run = get_run(abbr, _CONFIG)
        reduction = run.reduced
        assert reduction.saved_states > 0  # the arm must actually exercise a lift
        engine = ENGINES[engine_name]
        if not engine.feasible(reduction.network):
            pytest.skip(f"{engine_name} infeasible for reduced {abbr}")
        prepared = run.reduced_prepared_for(engine_name)
        result = engine.run(prepared, run.test_input, track_enabled=True)
        lifted = reduction.lift_result(result)
        assert reports_equal(lifted.reports, run.truth.reports)
        assert reduction.witness_exact
        n = run.network.n_states
        assert _masks_equal(lifted.ever_enabled, run.truth.ever_enabled, n)


# ---------------------------------------------------------------------------
# Partition-refinement algebra (hypothesis properties).
# ---------------------------------------------------------------------------


class TestPartitionProperties:
    @given(seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_refinement_output_is_a_fixpoint(self, seed):
        network = random_network(random.Random(seed))
        for automaton in network.automata:
            for backward, refine in ((True, refine_backward), (False, refine_forward)):
                partition = refine(automaton)
                again = refinement_round(
                    automaton, partition.class_of, backward=backward
                )
                assert again.n_classes == partition.n_classes
                assert again.class_of == partition.class_of

    @given(seed=seeds, length=input_lengths)
    @settings(max_examples=60, deadline=None)
    def test_backward_merged_states_are_enabled_identically(self, seed, length):
        """Members of one exact-mode class are enabled at exactly the same
        input positions — checked against an independent per-position
        tracker transcribing the §II-A semantics (not sim internals)."""
        rng = random.Random(seed)
        network = random_network(rng)
        data = random_input(rng, length)
        reduction = reduce_network(network, mode="exact")
        positions = _enabled_position_sets(network, data)
        for group in reduction.members:
            for gid in group[1:]:
                assert positions[gid] == positions[group[0]]

    @given(seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_reduce_is_idempotent(self, seed):
        network = random_network(random.Random(seed))
        for mode in MODES:
            first = reduce_network(network, mode=mode)
            second = reduce_network(first.network, mode=mode)
            assert second.saved_states == 0

    @given(seed=seeds, length=input_lengths)
    @settings(max_examples=60, deadline=None)
    def test_exact_lift_is_bit_identical(self, seed, length):
        rng = random.Random(seed)
        network = random_network(rng)
        data = random_input(rng, length)
        truth = reference_run(network, data)
        reduction = reduce_network(network, mode="exact")
        lifted = reduction.lift_result(reference_run(reduction.network, data))
        assert reports_equal(lifted.reports, truth.reports)
        assert _masks_equal(lifted.ever_enabled, truth.ever_enabled, network.n_states)

    @given(seed=seeds, length=input_lengths)
    @settings(max_examples=60, deadline=None)
    def test_aggressive_lift_preserves_reports(self, seed, length):
        rng = random.Random(seed)
        network = random_network(rng)
        data = random_input(rng, length)
        truth = reference_run(network, data)
        reduction = reduce_network(network, mode="aggressive")
        lifted = reduction.lift_result(reference_run(reduction.network, data))
        assert reports_equal(lifted.reports, truth.reports)

    @given(seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_mapping_is_a_cover_and_proofs_reconcile(self, seed):
        network = random_network(random.Random(seed))
        for mode in MODES:
            reduction = reduce_network(network, mode=mode)
            state_map = reduction.state_map
            assert state_map.shape == (network.n_states,)
            covered = sorted(g for group in reduction.members for g in group)
            assert covered == sorted(np.flatnonzero(state_map >= 0))
            for reduced_gid, group in enumerate(reduction.members):
                assert group, "every reduced state has at least one parent member"
                assert all(int(state_map[g]) == reduced_gid for g in group)
            stripped = int((state_map < 0).sum())
            assert stripped == reduction.n_dead_stripped + reduction.n_never_stripped
            merges = reduction.merges_by_rule()
            assert sum(merges.values()) == reduction.saved_states
            doc = reduction.to_json()
            assert doc["states_before"] - doc["states_after"] == reduction.saved_states
            json.dumps(doc)  # the proof artifact must be serializable


def _enabled_position_sets(network, data):
    """Independent transcription of the reference semantics: for each global
    state, the set of positions at which it was enabled."""
    offsets = network.offsets()
    symbol_sets = {}
    succ = {}
    always = set()
    initial = set()
    for a_index, automaton in enumerate(network.automata):
        base = offsets[a_index]
        for state in automaton.states():
            gid = base + state.sid
            symbol_sets[gid] = state.symbol_set
            succ[gid] = [base + dst for dst in automaton.successors(state.sid)]
            if state.start is StartKind.ALL_INPUT:
                always.add(gid)
                initial.add(gid)
            elif state.start is StartKind.START_OF_DATA:
                initial.add(gid)
    positions = {gid: set() for gid in symbol_sets}
    enabled = set(initial)
    for index, symbol in enumerate(data):
        for gid in enabled:
            positions[gid].add(index)
        activated = [gid for gid in enabled if symbol_sets[gid].matches(symbol)]
        enabled = set(always)
        for gid in activated:
            enabled.update(succ[gid])
    return positions


# ---------------------------------------------------------------------------
# Cost-model interplay: reduction flipping a network DFA-unsafe -> safe.
# ---------------------------------------------------------------------------


def _cost_flip_network():
    """A tiny reporter chain plus a subset-blowup gadget with no path to any
    reporter.  The 8 always-enabled bit-indexed states make every byte
    produce a distinct activation subset (~2**8 reachable DFA states), so
    subset construction blows a small budget — but the whole gadget is
    never-reporting, so aggressive reduction strips it."""
    automaton = Automaton("flip")
    automaton.add_state(SymbolSet.from_symbols(b"a"), start=StartKind.ALL_INPUT)
    automaton.add_state(
        SymbolSet.from_symbols(b"b"), reporting=True, report_code="hit"
    )
    automaton.add_edge(0, 1)
    for bit in range(8):
        gadget = automaton.add_state(
            SymbolSet.from_symbols(bytes(b for b in range(256) if b & (1 << bit))),
            start=StartKind.ALL_INPUT,
        )
        sink = automaton.add_state(SymbolSet.from_symbols(b"z"))
        automaton.add_edge(gadget, sink)
    network = Network("flip-net")
    network.add(automaton)
    return network


class TestCostFlip:
    BUDGET = 200

    def test_aggressive_reduction_flips_dfa_unsafe_to_safe(self):
        network = _cost_flip_network()
        before = advise_network(network, budget=self.BUDGET)
        assert not before.dfa_safe
        reduction = reduce_network(network, mode="aggressive")
        assert reduction.n_never_stripped == 16
        after = advise_network(
            reduction.network, partition="reduced", budget=self.BUDGET
        )
        assert after.dfa_safe

    def test_exact_mode_keeps_the_gadget_and_stays_unsafe(self):
        # The gadget states are live (enabled every cycle), so the
        # witness-preserving mode must keep them — the flip is exactly the
        # extra power aggressive mode buys.
        network = _cost_flip_network()
        exact = reduce_network(network, mode="exact")
        advisory = advise_network(
            exact.network, partition="reduced", budget=self.BUDGET
        )
        assert not advisory.dfa_safe

    def test_flip_is_sound(self):
        network = _cost_flip_network()
        reduction = reduce_network(network, mode="aggressive")
        rng = random.Random(7)
        data = b"abab" + bytes(rng.randrange(256) for _ in range(200))
        truth = reference_run(network, data)
        lifted = reduction.lift_result(reference_run(reduction.network, data))
        assert truth.reports.shape[0] > 0
        assert reports_equal(lifted.reports, truth.reports)


# ---------------------------------------------------------------------------
# Element networks: gate-boundary STEs are pinned, signals remap, and the
# hybrid simulator agrees end to end.
# ---------------------------------------------------------------------------


def _element_network():
    network = Network("h")
    network.add(literal_chain(b"ab", name="p0", report_code="r0"))
    network.add(literal_chain(b"cd", name="p1", report_code="r1"))
    extra = Automaton("extra")
    extra.add_state(SymbolSet.from_symbols(b"a"), start=StartKind.ALL_INPUT)
    extra.add_state(SymbolSet.from_symbols(b"b"), reporting=True, report_code="x")
    extra.add_edge(0, 1)
    extra.add_state(SymbolSet.from_symbols(b"c"))  # no inflow, no start: dead
    network.add(extra)
    wrapped = ElementNetwork(network)
    gate = wrapped.add_gate(
        Gate(GateKind.OR, inputs=[("ste", 1)], reporting=True, report_code="g")
    )
    # The gate re-arms p1's second state, so gid 3 is element-enabled and
    # must survive reduction even though no proof covers the extra enables.
    wrapped.connect_enable(gate, 3)
    return wrapped


class TestElementNetworkReduction:
    def test_pinned_stes_survive_and_signals_remap(self):
        wrapped = _element_network()
        pins = element_pinned_gids(wrapped)
        assert pins  # the gate input and the enable target at minimum
        reduced_en, reduction = reduce_element_network(wrapped)
        assert reduction.saved_states > 0  # the dead state went away
        for gid in pins:
            assert int(reduction.state_map[gid]) >= 0, f"pinned STE {gid} stripped"
        mapped = frozenset(int(reduction.state_map[gid]) for gid in pins)
        assert element_pinned_gids(reduced_en) == mapped

    @pytest.mark.parametrize(
        "data", [b"", b"ab", b"abcdabab", b"aabbccdd", b"gababcdcd"]
    )
    def test_hybrid_reports_lift_to_the_original(self, data):
        wrapped = _element_network()
        reduced_en, reduction = reduce_element_network(wrapped)
        original = hybrid_run(wrapped, data)
        got = hybrid_run(reduced_en, data)
        parent_n = wrapped.network.n_states
        reduced_n = reduced_en.network.n_states
        lifted = set()
        for position, gid in map(tuple, got.reports):
            if gid >= reduced_n:  # element report: ids sit above the STE block
                lifted.add((position, parent_n + (gid - reduced_n)))
            else:
                lifted.update((position, g) for g in reduction.members[gid])
        assert lifted == set(map(tuple, original.reports))


# ---------------------------------------------------------------------------
# Analyzer outcomes and the CLI surface.
# ---------------------------------------------------------------------------


class TestReduceOutcome:
    def test_minimal_app_reports_r004_and_r005(self):
        # ER is exact-minimal at scale 64 but has never-reporting states, so
        # the exact outcome must advertise both the no-op (R004) and the
        # withheld aggressive savings (R005) as INFO findings.
        outcome = analyze_run_reduce(get_run("ER", _CONFIG))
        assert outcome.ok
        codes = outcome.report.codes()
        assert "SPAP-R004" in codes
        assert "SPAP-R005" in codes
        assert outcome.summary.saved_states == 0
        assert outcome.summary.aggressive_extra_saved > 0

    def test_outcome_json_shape(self):
        outcome = analyze_run_reduce(get_run("HM", _CONFIG))
        doc = outcome.to_json()
        assert set(doc) == {"summary", "report"}
        summary = doc["summary"]
        assert summary["app"] == "HM"
        assert summary["states_before"] - summary["states_after"] == summary[
            "saved_states"
        ]
        assert sum(summary["merges"].values()) == summary["saved_states"]
        assert set(summary["cost"]) >= {
            "dfa_safe_before",
            "dfa_safe_after",
            "recommended_before",
            "recommended_after",
            "improved",
        }
        json.dumps(doc)

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            reduce_app("NotAnApp", _CONFIG)


class TestReduceCli:
    def _env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "64")
        monkeypatch.setenv("REPRO_INPUT", "512")

    def test_json_payload(self, capsys, monkeypatch):
        self._env(monkeypatch)
        assert cli_main(["reduce", "HM", "--json", "--check"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["summary"]["app"] == "HM"
        assert payload[0]["summary"]["saved_states"] > 0
        assert payload[0]["report"]["n_errors"] == 0

    def test_text_mode_mentions_savings(self, capsys, monkeypatch):
        self._env(monkeypatch)
        assert cli_main(["reduce", "HM", "LV"]) == 0
        out = capsys.readouterr().out
        assert "states" in out and "saved" in out
        assert "2/2 applications reduced sound" in out

    def test_aggressive_flag(self, capsys, monkeypatch):
        self._env(monkeypatch)
        assert cli_main(["reduce", "ER", "--aggressive"]) == 0
        assert "mode=aggressive" in capsys.readouterr().out

    def test_no_apps_is_usage_error(self, capsys):
        assert cli_main(["reduce"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_unknown_app(self, capsys):
        assert cli_main(["reduce", "nope"]) == 2
        assert "unknown application" in capsys.readouterr().err

    def test_run_app_reduce_flag(self, capsys, monkeypatch):
        self._env(monkeypatch)
        assert cli_main(["run-app", "HM", "--reduce", "--backend", "multistream"]) == 0
        out = capsys.readouterr().out
        assert "reduce" in out and "backend" in out
