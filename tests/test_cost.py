"""Tests for repro.cost: DFA-safety proofs, class compression, cost model.

The explorer's ``dfa_safe`` verdict is a *proof* about
``nfa.determinize.determinize`` (DESIGN.md §12): every safe verdict must be
reproducible by real determinization at the same budget with exactly the
proven state count, and the materialized DFA must replay bit-identical
reports against the reference simulator.  The full-registry gate at the
bottom replays that claim across the 26-app corpus — zero false proofs is
an acceptance criterion, not a statistic.
"""

import json
import random
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.__main__ import main as cli_main
from repro.cost import (
    BACKENDS,
    DEFAULT_COST_MODEL,
    DFA_TABLE_BUDGET,
    CostFeatures,
    CostModel,
    advise_network,
    analyze_symbol_classes,
    check_advisory_soundness,
    cost_app,
    emit_advisory_diagnostics,
    explore_subset_construction,
    rank_backends,
)
from repro.experiments.config import ExperimentConfig
from repro.nfa.automaton import Network
from repro.nfa.build import literal_chain
from repro.nfa.determinize import DeterminizeError, determinize
from repro.sim.reference import reference_run
from repro.sim.result import reports_equal
from repro.verify.diagnostics import VerificationReport
from repro.workloads.registry import app_names

from helpers import random_automaton, random_input, seeds

_CONFIG = ExperimentConfig(scale=64, input_len=512)

#: The committed calibration document the default coefficients were solved
#: from (resolved relative to the repo, not the pytest invocation cwd).
_BENCH_ENGINE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _patterns_net(*patterns):
    network = Network("n")
    for index, pattern in enumerate(patterns):
        network.add(literal_chain(pattern, name=f"p{index}", report_code=f"r{index}"))
    return network


def _random_net(rng):
    network = Network("rand")
    for index in range(rng.randint(1, 3)):
        network.add(random_automaton(rng, n_states=rng.randint(1, 5), name=f"a{index}"))
    return network


class TestExplorer:
    def test_safe_verdict_matches_determinize_exactly(self):
        network = _patterns_net(b"abc", b"abd", b"xy")
        outcome = explore_subset_construction(network, budget=4096)
        assert outcome.dfa_safe
        dfa = determinize(network, max_states=4096)
        assert outcome.n_subset_states == dfa.n_states

    def test_burst_budget_reports_frontier(self):
        network = _patterns_net(b"abc", b"abd", b"xy")
        exhaustive = explore_subset_construction(network, budget=4096)
        tight = exhaustive.n_subset_states - 1
        outcome = explore_subset_construction(network, budget=tight)
        assert not outcome.dfa_safe
        assert outcome.n_subset_states == tight + 1
        assert outcome.frontier_depth is not None and outcome.frontier_depth >= 1
        assert 1 <= outcome.max_subset_size <= network.n_states
        assert "exceeded" in outcome.describe()
        # And determinize bursts the same budget the same way.
        with pytest.raises(DeterminizeError):
            determinize(network, max_states=tight)

    def test_budget_of_one_bursts_on_any_growing_network(self):
        outcome = explore_subset_construction(_patterns_net(b"ab"), budget=1)
        assert not outcome.dfa_safe

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            explore_subset_construction(_patterns_net(b"a"), budget=0)

    @settings(max_examples=60, deadline=None)
    @given(seeds)
    def test_verdict_agrees_with_determinize(self, seed):
        """Safe => determinize succeeds with the proven count; unsafe =>
        determinize bursts the identical budget.  Worklist order differs
        between the two (BFS vs FIFO-of-discovery), so agreement here is
        exactly the order-independence the proof leans on."""
        rng = random.Random(seed)
        network = _random_net(rng)
        budget = rng.randint(1, 64)
        outcome = explore_subset_construction(network, budget=budget)
        if outcome.dfa_safe:
            dfa = determinize(network, max_states=budget)
            assert dfa.n_states == outcome.n_subset_states
        else:
            with pytest.raises(DeterminizeError):
                determinize(network, max_states=budget)

    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_safe_proof_replays_reports(self, seed):
        rng = random.Random(seed)
        network = _random_net(rng)
        outcome = explore_subset_construction(network, budget=512)
        if not outcome.dfa_safe:
            return
        dfa = determinize(network, max_states=512)
        data = random_input(rng, rng.randint(0, 30))
        assert reports_equal(dfa.run(data), reference_run(network, data).reports)


class TestClassAnalysis:
    def test_literal_alphabet_collapses(self):
        analysis = analyze_symbol_classes(_patterns_net(b"ab"))
        # 'a', 'b', and the 254 indistinguishable other bytes.
        assert analysis.n_classes == 3
        assert analysis.n_distinct_symbol_sets == 2
        assert analysis.n_states == 2

    def test_table_byte_accounting(self):
        analysis = analyze_symbol_classes(_patterns_net(b"ab", b"cd"))
        assert analysis.table_bytes_dense == 256 * analysis.n_words * 8
        assert (
            analysis.table_bytes_classed
            == analysis.n_classes * analysis.n_words * 8 + 256
        )
        assert analysis.compression_ratio > 1.0
        payload = analysis.to_json()
        assert payload["n_classes"] == analysis.n_classes

    def test_empty_network_is_one_class(self):
        analysis = analyze_symbol_classes(Network("empty"))
        assert analysis.n_classes == 1
        assert analysis.n_states == 0


class TestCostModel:
    def test_calibration_reproduces_default_coefficients(self):
        with open(_BENCH_ENGINE) as handle:
            document = json.load(handle)
        solved = CostModel.from_engine_bench(document)
        assert solved.ref_base == pytest.approx(DEFAULT_COST_MODEL.ref_base, rel=1e-2)
        assert solved.ref_per_active == pytest.approx(
            DEFAULT_COST_MODEL.ref_per_active, rel=1e-2
        )
        assert solved.bp_base == pytest.approx(DEFAULT_COST_MODEL.bp_base, rel=1e-2)
        assert solved.bp_per_word == pytest.approx(
            DEFAULT_COST_MODEL.bp_per_word, rel=1e-2
        )
        assert solved.ms_per_word == pytest.approx(
            DEFAULT_COST_MODEL.ms_per_word, rel=1e-2
        )

    def test_calibration_point_is_recovered(self):
        """At the calibration features the model must reproduce the measured
        throughputs it was solved from (the defining property of a fit)."""
        with open(_BENCH_ENGINE) as handle:
            document = json.load(handle)
        n_states = document["workload"]["n_states"]
        features = CostFeatures(
            n_states=n_states,
            n_words=(n_states + 63) // 64,
            n_classes=256,
            mean_fanout=1.0,
            hot_fraction=0.10,
            event_driven=False,
            dfa_safe=False,
            dfa_states=None,
        )
        costs = DEFAULT_COST_MODEL.predict(features)
        throughput = document["throughput_mb_s"]
        assert costs["reference"] == pytest.approx(1 / throughput["reference"], rel=0.02)
        assert costs["bitpacked"] == pytest.approx(1 / throughput["bitpacked"], rel=0.02)
        assert costs["multistream"] == pytest.approx(
            1 / throughput["multistream_aggregate"], rel=0.02
        )

    def _features(self, **overrides):
        base = dict(
            n_states=64, n_words=1, n_classes=8, mean_fanout=1.5,
            hot_fraction=0.2, event_driven=False, dfa_safe=True, dfa_states=100,
        )
        base.update(overrides)
        return CostFeatures(**base)

    def test_event_driven_disables_streaming_backends(self):
        costs = DEFAULT_COST_MODEL.predict(self._features(event_driven=True))
        assert costs["multistream"] is None and costs["dfa"] is None
        assert costs["reference"] is not None and costs["bitpacked"] is not None

    def test_dfa_requires_proof_and_table_fit(self):
        assert DEFAULT_COST_MODEL.predict(
            self._features(dfa_safe=False, dfa_states=None)
        )["dfa"] is None
        huge = DFA_TABLE_BUDGET  # states * classes * 8 > budget
        assert DEFAULT_COST_MODEL.predict(self._features(dfa_states=huge))["dfa"] is None
        assert DEFAULT_COST_MODEL.predict(self._features())["dfa"] == pytest.approx(
            DEFAULT_COST_MODEL.dfa_base
        )

    def test_sparse_activity_favors_reference(self):
        sparse = DEFAULT_COST_MODEL.predict(
            self._features(hot_fraction=0.0, n_states=1024, n_words=16,
                           event_driven=True)
        )
        assert sparse["reference"] < sparse["bitpacked"]

    def test_rank_backends_orders_and_breaks_ties_canonically(self):
        ranked = rank_backends(
            {"reference": 2.0, "bitpacked": 1.0, "multistream": None, "dfa": 1.0}
        )
        assert [name for name, _cost in ranked] == ["bitpacked", "dfa", "reference"]


class TestAdvisory:
    def test_fused_advisory_shape(self):
        advisory = advise_network(_patterns_net(b"abc", b"abd"))
        assert advisory.dfa_safe and advisory.dfa_states is not None
        assert advisory.recommended in BACKENDS
        assert advisory.margin >= 1.0
        assert set(advisory.costs) == set(BACKENDS)
        payload = advisory.to_json()
        assert payload["recommended"] == advisory.recommended
        assert advisory.recommended in advisory.render()

    def test_burst_budget_emits_c002_as_info(self):
        advisory = advise_network(_patterns_net(b"abc", b"abd"), budget=2)
        report = VerificationReport(subject="t")
        emit_advisory_diagnostics(advisory, report)
        assert "SPAP-C002" in report.codes()
        assert report.ok  # blowup is a finding, not an error

    def test_sound_proof_is_silent(self):
        network = _patterns_net(b"abc", b"abd")
        advisory = advise_network(network)
        report = VerificationReport(subject="t")
        check_advisory_soundness(network, advisory, report, replay_input=b"abcabdxx")
        assert "SPAP-C001" not in report.codes()
        assert report.ok

    def test_lying_proof_trips_c001(self):
        network = _patterns_net(b"abc", b"abd")
        advisory = advise_network(network)
        lying = replace(
            advisory,
            exploration=replace(
                advisory.exploration,
                n_subset_states=advisory.exploration.n_subset_states + 1,
            ),
        )
        report = VerificationReport(subject="t")
        check_advisory_soundness(network, lying, report)
        assert "SPAP-C001" in report.codes()
        assert not report.ok

    def test_unsafe_advisory_skips_the_differential(self):
        advisory = advise_network(_patterns_net(b"abc", b"abd"), budget=2)
        report = VerificationReport(subject="t")
        check_advisory_soundness(_patterns_net(b"abc", b"abd"), advisory, report)
        assert report.codes() == []


class TestCostApp:
    def test_outcome_shape(self):
        outcome = cost_app("Bro217", _CONFIG)
        assert outcome.cost.app == "Bro217"
        names = [advisory.partition for advisory in outcome.cost.advisories]
        assert "network" in names and "hot" in names
        assert outcome.cost.network.partition == "network"
        assert 0.0 <= outcome.cost.dfa_safe_fraction <= 1.0
        payload = outcome.to_json()
        assert set(payload) == {"cost", "report"}
        assert "budget" in outcome.render()

    def test_cold_partition_is_event_driven(self):
        outcome = cost_app("HM", _CONFIG)
        cold = outcome.cost.advisory("cold")
        if cold is not None:  # empty cold partitions are skipped
            assert cold.costs["multistream"] is None
            assert cold.costs["dfa"] is None

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            cost_app("NotAnApp", _CONFIG)

    @pytest.mark.parametrize("abbr", app_names())
    def test_soundness_gate(self, abbr):
        """The CI gate: zero false DFA-safe proofs across the corpus.

        Every partition proven safe at the default budget is replayed
        through real determinization and a bit-identical report comparison
        against the reference simulator (SPAP-C001 differential)."""
        outcome = cost_app(abbr, _CONFIG, check=True)
        assert outcome.ok, outcome.report.render_text(verbose=True)
        assert "SPAP-C001" not in outcome.report.codes()


class TestCostCli:
    def _env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "64")
        monkeypatch.setenv("REPRO_INPUT", "512")

    def test_json_payload(self, capsys, monkeypatch):
        self._env(monkeypatch)
        assert cli_main(["cost", "Bro217", "--json", "--check"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["cost"]["app"] == "Bro217"
        assert payload[0]["cost"]["advisories"]

    def test_text_mode_mentions_backends(self, capsys, monkeypatch):
        self._env(monkeypatch)
        assert cli_main(["cost", "Bro217"]) == 0
        out = capsys.readouterr().out
        assert "advise" in out and "budget" in out

    def test_tiny_budget_still_exits_zero(self, capsys, monkeypatch):
        self._env(monkeypatch)
        assert cli_main(["cost", "Bro217", "--budget", "2"]) == 0
        assert "exceeded" in capsys.readouterr().out

    def test_no_apps_is_usage_error(self, capsys):
        assert cli_main(["cost"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_unknown_app(self, capsys):
        assert cli_main(["cost", "nope"]) == 2
        assert "unknown application" in capsys.readouterr().err
