"""Integration tests: the full pipeline end-to-end on real workload apps.

These stitch every subsystem together — workload generation, ANML round
trips, analysis, profiling, partitioning, all three execution scenarios —
at a small scale, asserting the system-level invariants the paper's design
relies on.
"""

import numpy as np
import pytest

from repro.ap import batch_network
from repro.core import (
    prepare_partition,
    run_ap_cpu,
    run_base_spap,
    run_baseline_ap,
    verify_equivalence,
)
from repro.experiments import ExperimentConfig
from repro.nfa.anml import network_from_anml, network_to_anml
from repro.nfa.analysis import analyze_network
from repro.sim import compile_network, run
from repro.sim.result import reports_equal
from repro.workloads import get_app

CFG = ExperimentConfig(scale=64, input_len=1024)
PIPELINE_APPS = ["Bro217", "DS03", "HM", "LV", "RF2", "CAV"]


@pytest.mark.parametrize("abbr", PIPELINE_APPS)
class TestFullPipeline:
    def _setup(self, abbr):
        spec = get_app(abbr)
        network = spec.build(CFG.scale)
        data = spec.make_input(network, CFG.input_len)
        profile_input = data[: max(8, len(data) // 100)]
        test_input = data[len(data) // 2 :]
        return network, profile_input, test_input

    def test_all_scenarios_equivalent(self, abbr):
        network, profile_input, test_input = self._setup(abbr)
        config = CFG.half_core
        baseline = run_baseline_ap(network, test_input, config)
        partitioned, bins = prepare_partition(network, profile_input, config)
        spap = run_base_spap(partitioned, test_input, config, bins)
        cpu = run_ap_cpu(partitioned, test_input, config, bins)
        assert verify_equivalence(baseline, spap), abbr
        assert verify_equivalence(baseline, cpu), abbr

    def test_cycle_accounting_consistent(self, abbr):
        network, profile_input, test_input = self._setup(abbr)
        config = CFG.half_core
        baseline = run_baseline_ap(network, test_input, config)
        partitioned, bins = prepare_partition(network, profile_input, config)
        spap = run_base_spap(partitioned, test_input, config, bins)
        assert baseline.cycles == baseline.n_batches * len(test_input)
        assert spap.base_cycles == spap.n_hot_batches * len(test_input)
        assert spap.spap_cycles == spap.spap_consumed_cycles + spap.spap_stall_cycles
        assert spap.n_hot_batches <= baseline.n_batches

    def test_partition_sizes_conserve_states(self, abbr):
        network, profile_input, _ = self._setup(abbr)
        partitioned, _bins = prepare_partition(network, profile_input, CFG.half_core)
        assert partitioned.n_hot_original + partitioned.n_cold == network.n_states
        assert partitioned.hot.n_states == (
            partitioned.n_hot_original + partitioned.n_intermediate
        )

    def test_anml_round_trip_preserves_reports(self, abbr):
        network, _profile, test_input = self._setup(abbr)
        loaded = network_from_anml(network_to_anml(network), name=abbr)
        original = run(compile_network(network), test_input)
        reloaded = run(compile_network(loaded), test_input)
        assert original.reports.shape == reloaded.reports.shape
        assert np.array_equal(
            np.unique(original.reports[:, 0]), np.unique(reloaded.reports[:, 0])
        )


class TestBatchingInvariants:
    @pytest.mark.parametrize("abbr", PIPELINE_APPS)
    def test_batches_partition_the_network(self, abbr):
        spec = get_app(abbr)
        network = spec.build(CFG.scale)
        batches = batch_network(network, CFG.half_core.capacity)
        covered = np.concatenate([b.global_ids for b in batches])
        assert sorted(covered.tolist()) == list(range(network.n_states))
        for batch in batches:
            assert batch.n_states <= CFG.half_core.capacity

    def test_per_batch_reports_equal_union_run(self):
        """Simulating batches separately == simulating the whole network."""
        spec = get_app("DS03")
        network = spec.build(CFG.scale)
        data = spec.make_input(network, 512)
        whole = run(compile_network(network), data)
        merged = []
        for batch in batch_network(network, 200):
            result = run(compile_network(batch.network), data)
            merged.extend(map(tuple, batch.to_parent_reports(result.reports)))
        assert reports_equal(whole.reports, merged)


class TestProfileQualityOnWorkloads:
    def test_longer_profile_never_lowers_recall(self):
        from repro.core.metrics import prediction_quality

        spec = get_app("Bro217")
        network = spec.build(CFG.scale)
        data = spec.make_input(network, 2048)
        compiled = compile_network(network)
        truth = run(compiled, data[1024:]).hot_mask()
        recalls = []
        for take in (8, 64, 512, 1024):
            predicted = run(compiled, data[:take]).hot_mask()
            recalls.append(prediction_quality(predicted, truth).recall)
        assert all(b >= a - 1e-9 for a, b in zip(recalls, recalls[1:]))

    def test_profile_hot_is_superset_over_prefixes(self):
        """Ever-enabled sets grow monotonically with the profiled prefix."""
        spec = get_app("HM")
        network = spec.build(CFG.scale)
        data = spec.make_input(network, 1024)
        compiled = compile_network(network)
        previous = None
        for take in (16, 64, 256, 1024):
            hot = run(compiled, data[:take]).hot_mask()
            if previous is not None:
                assert not np.any(previous & ~hot)
            previous = hot
