"""Regression tests for silent-corruption footguns fixed in the sim core.

Each class pins one bug that used to corrupt results without raising:

* ``Network([automaton])`` bound the list to ``name`` and built an empty
  network — every downstream metric was computed over zero states.
* ``as_input_array`` wrapped out-of-range integers mod 256 and truncated
  floats — the engine silently matched a different input.
* ``jump_ratio()`` went negative on stall-dominated runs, and the final
  jump over an idle tail was missing from ``jumps``.
"""

import numpy as np
import pytest

from repro.nfa.automaton import Automaton, Network, StartKind
from repro.nfa.symbolset import SymbolSet
from repro.sim import as_input_array, compile_network, run, run_events


def _automaton(name: str = "a") -> Automaton:
    automaton = Automaton(name)
    automaton.add_state(
        SymbolSet.from_symbols(b"x"),
        start=StartKind.ALL_INPUT,
        reporting=True,
        report_code=f"{name}:0",
    )
    return automaton


class TestNetworkConstructorValidation:
    def test_positional_list_rejected(self):
        # The footgun: Network([automaton]) used to bind the list to `name`.
        with pytest.raises(TypeError, match="automata"):
            Network([_automaton()])

    def test_non_list_automata_rejected(self):
        with pytest.raises(TypeError):
            Network("net", automata=_automaton())

    def test_non_automaton_entry_rejected(self):
        with pytest.raises(TypeError):
            Network("net", automata=[_automaton(), "not-an-automaton"])

    def test_add_rejects_non_automaton(self):
        network = Network("net")
        with pytest.raises(TypeError):
            network.add("not-an-automaton")

    def test_valid_constructions_still_work(self):
        assert Network("net").n_automata == 0
        assert Network("net", automata=[_automaton()]).n_automata == 1
        network = Network("net")
        network.add(_automaton())
        assert network.n_states == 1


class TestAsInputArrayValidation:
    def test_float_array_rejected(self):
        # Used to silently truncate 1.9 -> 1.
        with pytest.raises(ValueError, match="integer dtype"):
            as_input_array(np.array([1.9, 2.0]))

    def test_out_of_range_rejected(self):
        # Used to silently wrap 300 -> 44.
        with pytest.raises(ValueError, match="wrap"):
            as_input_array(np.array([300, 65]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="wrap"):
            as_input_array(np.array([-1, 65]))

    def test_multidimensional_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            as_input_array(np.zeros((2, 3), dtype=np.uint8))

    def test_valid_inputs_still_work(self):
        assert as_input_array(b"ab").tolist() == [97, 98]
        assert as_input_array("ab").tolist() == [97, 98]
        assert as_input_array(np.array([0, 255], dtype=np.int64)).tolist() == [0, 255]
        passthrough = np.array([1, 2], dtype=np.uint8)
        assert as_input_array(passthrough) is passthrough
        assert as_input_array(np.array([], dtype=np.int32)).size == 0


class TestJumpAccounting:
    def test_jump_ratio_clamped_nonnegative(self):
        # Many simultaneous enables on a short input: stalls push
        # total_cycles past n_symbols; the ratio must clamp at 0, not go
        # negative.
        network = Network("net", automata=[_automaton(f"a{i}") for i in range(6)])
        compiled = compile_network(network)
        events = [(0, gid) for gid in range(6)]
        outcome = run_events(compiled, b"xy", events)
        assert outcome.total_cycles > outcome.n_symbols
        assert outcome.jump_ratio() == 0.0

    def test_final_jump_over_idle_tail_counted(self):
        # One event early in a long input, nothing afterwards: the machine
        # jumps over the idle tail, and that jump must be counted.
        automaton = Automaton("chain")
        automaton.add_state(SymbolSet.from_symbols(b"x"), start=StartKind.NONE,
                            reporting=True, report_code="chain:0")
        compiled = compile_network(Network("net", automata=[automaton]))
        outcome = run_events(compiled, b"xyyyyyyy", [(0, 0)])
        assert outcome.consumed_cycles < outcome.n_symbols
        assert outcome.jumps >= 1

    def test_no_events_one_jump_to_end(self):
        automaton = Automaton("chain")
        automaton.add_state(SymbolSet.from_symbols(b"x"), start=StartKind.NONE)
        compiled = compile_network(Network("net", automata=[automaton]))
        outcome = run_events(compiled, b"yyyy", [])
        assert outcome.consumed_cycles == 0
        assert outcome.jumps == 1
        assert outcome.jump_ratio() == 1.0

    def test_jump_ratio_empty_input(self):
        automaton = Automaton("chain")
        automaton.add_state(SymbolSet.from_symbols(b"x"), start=StartKind.NONE)
        compiled = compile_network(Network("net", automata=[automaton]))
        assert run_events(compiled, b"", []).jump_ratio() == 0.0


class TestEmptyEdges:
    def test_empty_network_runs(self):
        compiled = compile_network(Network("empty"))
        result = run(compiled, b"abc")
        assert result.reports.size == 0
        assert result.cycles == 3

    def test_empty_network_empty_input(self):
        compiled = compile_network(Network("empty"))
        result = run(compiled, b"")
        assert result.reports.size == 0
        assert result.cycles == 0
        assert result.hot_count() == 0
