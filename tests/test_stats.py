"""Tests for the unified runtime-statistics layer (repro.stats)."""

import json
import math
from dataclasses import replace

import pytest

from repro.__main__ import main as cli_main
from repro.experiments.config import default_config
from repro.experiments.pipeline import AppRun
from repro.experiments.sweep import render_sweep, run_sweep, sweep_summary
from repro.stats import (
    SCHEMA_VERSION,
    SchemaError,
    StageTimer,
    collect_run_stats,
    render_stats,
    stats_enabled,
    validate_spans,
    validate_stats,
    validate_stats_json,
)
from repro.workloads.registry import get_app


@pytest.fixture(scope="module")
def small_config():
    return replace(default_config(), scale=4, input_len=512)


@pytest.fixture(scope="module")
def bro_stats(small_config):
    return collect_run_stats("Bro217", small_config)


class TestStageTimer:
    def test_records_calls_and_seconds(self):
        timer = StageTimer(enabled=True)
        for _ in range(3):
            with timer.stage("work"):
                pass
        assert timer.calls("work") == 3
        assert timer.seconds("work") >= 0.0
        (span,) = timer.spans()
        assert span.name == "work" and span.calls == 3

    def test_disabled_records_nothing(self):
        timer = StageTimer(enabled=False)
        with timer.stage("work"):
            pass
        assert timer.spans() == []
        assert timer.calls("work") == 0

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_STATS", "1")
        assert not stats_enabled()
        assert not StageTimer().enabled
        monkeypatch.delenv("REPRO_NO_STATS")
        assert stats_enabled()
        assert StageTimer().enabled

    def test_records_through_exceptions(self):
        timer = StageTimer(enabled=True)
        with pytest.raises(RuntimeError):
            with timer.stage("boom"):
                raise RuntimeError("kaboom")
        assert timer.calls("boom") == 1

    def test_spans_validate_against_schema(self):
        timer = StageTimer(enabled=True)
        with timer.stage("a"):
            pass
        assert validate_spans(timer.to_json()) == 1


class TestSchema:
    def test_collected_document_is_valid(self, bro_stats):
        validate_stats(bro_stats.to_json())

    def test_round_trips_through_json(self, bro_stats):
        document = json.loads(json.dumps(bro_stats.to_json()))
        validate_stats(document)
        assert document["schema_version"] == SCHEMA_VERSION

    def test_wrong_version_rejected(self, bro_stats):
        document = bro_stats.to_json()
        document["schema_version"] = 999
        with pytest.raises(SchemaError, match="schema_version"):
            validate_stats(document)

    def test_missing_field_rejected(self, bro_stats):
        document = bro_stats.to_json()
        del document["queue"]["refills"]
        with pytest.raises(SchemaError, match="refills"):
            validate_stats(document)

    def test_wrong_type_rejected(self, bro_stats):
        document = bro_stats.to_json()
        document["baseline"]["cycles"] = "lots"
        with pytest.raises(SchemaError, match="cycles"):
            validate_stats(document)

    def test_unexpected_field_rejected(self, bro_stats):
        document = bro_stats.to_json()
        document["surprise"] = 1
        with pytest.raises(SchemaError, match="surprise"):
            validate_stats(document)

    def test_null_only_where_nullable(self, bro_stats):
        document = bro_stats.to_json()
        document["spap"]["jump_ratio"] = None  # nullable: no cold batches
        validate_stats(document)
        document["spap"]["cycles"] = None
        with pytest.raises(SchemaError, match="cycles"):
            validate_stats(document)

    def test_bool_is_not_a_counter(self, bro_stats):
        document = bro_stats.to_json()
        document["queue"]["refills"] = True
        with pytest.raises(SchemaError, match="refills"):
            validate_stats(document)

    def test_v5_document_carries_cost_section(self, bro_stats):
        document = bro_stats.to_json()
        assert document["schema_version"] == 5
        cost = document["cost"]
        assert cost["budget"] > 0 and cost["n_classes"] >= 1
        assert cost["table_bytes_dense"] >= cost["table_bytes_classed"] > 0
        # v4+: the backend-execution record is present (and nullable — this
        # collection ran no backend, so the document does not guess).
        assert cost["requested_backend"] is None
        assert cost["selected_backend"] is None
        names = [p["name"] for p in cost["partitions"]]
        assert "network" in names
        for partition in cost["partitions"]:
            assert partition["recommended"]
            assert (partition["dfa_states"] is None) == (not partition["dfa_safe"])

    def test_v5_document_carries_reduce_section(self, bro_stats):
        document = bro_stats.to_json()
        reduce = document["reduce"]
        assert reduce["mode"] == "exact"
        assert reduce["states_before"] == document["workload"]["n_states"]
        assert 0 <= reduce["states_after"] <= reduce["states_before"]
        assert 0.0 <= reduce["saving"] <= 1.0
        merged = sum(reduce["merges"].values())
        assert merged == reduce["states_before"] - reduce["states_after"]
        assert reduce["baseline_batches_before"] >= reduce["baseline_batches_after"]

    def test_v5_document_missing_cost_rejected(self, bro_stats):
        document = bro_stats.to_json()
        del document["cost"]
        with pytest.raises(SchemaError, match="cost"):
            validate_stats(document)

    def test_v4_document_validates_under_v4(self, bro_stats):
        """Archived pre-reduce exports keep validating under their own
        version."""
        document = bro_stats.to_json()
        del document["reduce"]
        document["schema_version"] = 4
        validate_stats(document)

    def test_v4_document_with_reduce_rejected(self, bro_stats):
        document = bro_stats.to_json()
        document["schema_version"] = 4
        with pytest.raises(SchemaError, match="reduce"):
            validate_stats(document)

    def test_v3_document_validates_under_v3(self, bro_stats):
        """Archived pre-backend-record exports keep validating under their
        own version."""
        document = bro_stats.to_json()
        del document["cost"]["requested_backend"]
        del document["cost"]["selected_backend"]
        del document["reduce"]
        document["schema_version"] = 3
        validate_stats(document)

    def test_v3_document_with_backend_record_rejected(self, bro_stats):
        document = bro_stats.to_json()
        document["schema_version"] = 3
        with pytest.raises(SchemaError, match="backend"):
            validate_stats(document)

    def test_v2_document_validates_under_v2(self, bro_stats):
        """Archived pre-cost exports must keep validating under their own
        version — the schema dispatch, not a compatibility shim."""
        document = bro_stats.to_json()
        del document["cost"]
        del document["reduce"]
        document["schema_version"] = 2
        validate_stats(document)

    def test_v2_document_with_cost_rejected(self, bro_stats):
        document = bro_stats.to_json()
        document["schema_version"] = 2
        with pytest.raises(SchemaError, match="cost"):
            validate_stats(document)

    def test_array_export(self, bro_stats):
        document = bro_stats.to_json()
        assert validate_stats_json([document, document]) == 2
        assert validate_stats_json(document) == 1

    @pytest.mark.parametrize("version", [99, 0, -3, "4", 4.0, None, True, False])
    def test_unknown_version_is_a_typed_error_naming_the_supported_set(
        self, bro_stats, version
    ):
        """Any unsupported or non-integer version — including ``True``,
        which is an ``int`` subclass hashing equal to 1 — must raise
        :class:`SchemaError` naming the supported set, never ``KeyError``
        and never a wall of field errors."""
        document = bro_stats.to_json()
        document["schema_version"] = version
        with pytest.raises(SchemaError) as excinfo:
            validate_stats(document)
        message = str(excinfo.value)
        assert "unsupported stats schema_version" in message
        assert "5, 4, 3, 2" in message

    def test_missing_version_is_a_typed_error(self, bro_stats):
        document = bro_stats.to_json()
        del document["schema_version"]
        with pytest.raises(SchemaError, match="5, 4, 3, 2"):
            validate_stats(document)


class TestCollect:
    def test_counters_are_internally_consistent(self, bro_stats, small_config):
        stats = bro_stats
        ap = small_config.half_core
        assert stats.app == "Bro217"
        assert stats.baseline_cycles == stats.baseline_batches * (
            small_config.input_len // 2
        )
        assert stats.spap_cycles == stats.spap_consumed_cycles + stats.spap_stall_cycles
        assert stats.queue_refills == (
            0 if stats.n_intermediate_reports == 0
            else math.ceil(stats.n_intermediate_reports / ap.report_queue_entries)
        )
        assert stats.device_bytes == stats.n_intermediate_reports * ap.report_entry_bytes
        assert 0.0 <= stats.hot_fraction <= 1.0
        assert 0.0 <= stats.prediction_accuracy <= 1.0
        assert 0.0 <= stats.prediction_recall <= 1.0
        assert stats.spap_speedup > 0
        assert stats.spap_speedup == pytest.approx(
            stats.baseline_cycles / (stats.base_cycles + stats.spap_cycles)
        )

    def test_stage_timings_cover_the_pipeline(self, bro_stats):
        names = {span.name for span in bro_stats.stages}
        assert {"build", "compile", "truth", "profile",
                "partition", "baseline", "base_spap", "ap_cpu"} <= names
        assert all(span.seconds >= 0 and span.calls >= 1 for span in bro_stats.stages)

    def test_render_is_readable(self, bro_stats):
        text = render_stats(bro_stats)
        assert "Bro217" in text
        assert "queue refills" in text
        assert "stages" in text
        assert "cost" in text and "classes" in text

    def test_no_stats_env_empties_stages_only(self, small_config, monkeypatch):
        monkeypatch.setenv("REPRO_NO_STATS", "1")
        run = AppRun(get_app("Bro217"), small_config)
        stats = collect_run_stats("Bro217", small_config, app_run=run)
        assert stats.stages == []
        assert stats.baseline_cycles > 0  # counters unaffected
        validate_stats(stats.to_json())


class TestSweepStats:
    def test_rows_carry_stats_columns(self, small_config):
        (row,) = run_sweep(["Bro217"], small_config, jobs=1)
        assert row.spap_cycles >= row.spap_stall_cycles
        assert row.base_cycles > 0
        assert row.queue_refills >= 0
        assert row.device_bytes == row.n_intermediate_reports * 6
        assert 0.0 <= row.prediction_accuracy <= 1.0

    def test_render_has_stats_columns(self, small_config):
        rows = run_sweep(["Bro217", "LV"], small_config, jobs=1)
        table = render_sweep(rows)
        for header in ("Stalls", "IRs", "Refills", "PredAcc", "Classes", "Backend"):
            assert header in table

    def test_rows_carry_cost_columns(self, small_config):
        (row,) = run_sweep(["Bro217"], small_config, jobs=1)
        assert row.n_classes >= 1
        assert row.backend in ("reference", "bitpacked", "multistream", "dfa")
        assert isinstance(row.dfa_safe, bool)

    def test_summary_cost_aggregates(self, small_config):
        rows = run_sweep(["Bro217", "LV"], small_config, jobs=1)
        summary = sweep_summary(rows)
        assert summary["mean_class_count"] == pytest.approx(
            (rows[0].n_classes + rows[1].n_classes) / 2
        )
        assert 0.0 <= summary["fraction_dfa_safe"] <= 1.0

    def test_summary_geomeans(self, small_config):
        rows = run_sweep(["Bro217", "LV"], small_config, jobs=1)
        summary = sweep_summary(rows)
        assert summary["n_apps"] == 2
        expected = math.sqrt(rows[0].spap_speedup * rows[1].spap_speedup)
        assert summary["geomean_spap_speedup"] == pytest.approx(expected)
        assert summary["total_intermediate_reports"] == sum(
            r.n_intermediate_reports for r in rows
        )
        with pytest.raises(ValueError):
            sweep_summary([])

    def test_rows_carry_reduce_columns(self, small_config):
        rows = run_sweep(["Bro217", "LV"], small_config, jobs=1)
        for row in rows:
            assert 0 <= row.n_states_reduced <= row.n_states
            assert 0.0 <= row.reduce_saving <= 1.0
            assert row.reduced is False  # no backend executed
        table = render_sweep(rows)
        assert "Reduce" in table

    def test_summary_reduce_aggregates(self, small_config):
        rows = run_sweep(["Bro217", "LV"], small_config, jobs=1)
        summary = sweep_summary(rows)
        assert summary["mean_reduce_saving"] == pytest.approx(
            (rows[0].reduce_saving + rows[1].reduce_saving) / 2
        )
        assert 0.0 < summary["geomean_reduce_state_ratio"] <= 1.0

    def test_reduced_backend_execution_matches_unreduced(self, small_config):
        plain = run_sweep(["LV"], small_config, jobs=1,
                          backend="multistream")[0]
        reduced = run_sweep(["LV"], small_config, jobs=1,
                            backend="multistream", reduce=True)[0]
        assert reduced.reduced is True and plain.reduced is False
        assert reduced.backend == plain.backend == "multistream"
        assert reduced.backend_mb_s > 0
        table = render_sweep([reduced])
        assert "%+" in table  # the '+' marker for reduced execution


class TestStatsCli:
    def _env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "4")
        monkeypatch.setenv("REPRO_INPUT", "512")

    def test_json_single_app_is_schema_valid(self, capsys, monkeypatch):
        self._env(monkeypatch)
        assert cli_main(["stats", "Bro217", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_stats(payload)
        assert payload["app"] == "Bro217"

    def test_json_multi_app_is_an_array(self, capsys, monkeypatch):
        self._env(monkeypatch)
        assert cli_main(["stats", "Bro217", "LV", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_stats_json(payload) == 2
        assert [doc["app"] for doc in payload] == ["Bro217", "LV"]

    def test_alias_resolves(self, capsys, monkeypatch):
        self._env(monkeypatch)
        monkeypatch.setenv("REPRO_SCALE", "64")
        monkeypatch.setenv("REPRO_INPUT", "1024")
        assert cli_main(["stats", "SNT", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_stats(payload)
        assert payload["app"] == "Snort"

    def test_text_mode(self, capsys, monkeypatch):
        self._env(monkeypatch)
        assert cli_main(["stats", "Bro217"]) == 0
        out = capsys.readouterr().out
        assert "baseline AP" in out and "prediction" in out

    def test_no_apps_is_usage_error(self, capsys):
        assert cli_main(["stats"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_unknown_app(self, capsys):
        assert cli_main(["stats", "nope"]) == 2
        assert "unknown application" in capsys.readouterr().err
