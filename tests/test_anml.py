"""ANML serialization round-trip tests."""

import random

import numpy as np
from hypothesis import given, settings

from repro.nfa.anml import format_symbol_set, network_from_anml, network_to_anml, parse_symbol_set
from repro.nfa.automaton import Network, StartKind
from repro.nfa.build import literal_chain
from repro.nfa.regex import compile_regex
from repro.nfa.symbolset import SymbolSet
from repro.sim import compile_network, run
from repro.sim.result import reports_equal

from helpers import random_input, random_network, seeds


class TestSymbolSetSyntax:
    def test_star(self):
        assert parse_symbol_set("*").is_universal()

    def test_single_char(self):
        assert parse_symbol_set("a") == SymbolSet.single("a")

    def test_class(self):
        assert parse_symbol_set("[a-c]") == SymbolSet.from_ranges(("a", "c"))

    def test_negated_class(self):
        assert parse_symbol_set("[^a]") == SymbolSet.single("a").complement()

    def test_format_round_trip(self):
        for s in [
            SymbolSet.single(0),
            SymbolSet.from_ranges(("a", "z")),
            SymbolSet.from_symbols("a-]^"),
            SymbolSet.universal(),
        ]:
            assert parse_symbol_set(format_symbol_set(s)) == s


class TestNetworkRoundTrip:
    def _round_trip(self, network: Network) -> Network:
        return network_from_anml(network_to_anml(network), name=network.name)

    def test_structure_preserved(self):
        network = Network("demo")
        network.add(compile_regex("a((bc)|(cd)+)f", name="p"))
        network.add(literal_chain(b"virus", name="sig"))
        loaded = self._round_trip(network)
        assert loaded.n_automata == 2
        assert loaded.n_states == network.n_states
        assert loaded.n_edges == network.n_edges
        assert loaded.reporting_count() == network.reporting_count()
        assert loaded.start_count() == network.start_count()

    def test_start_kinds_preserved(self):
        network = Network("starts")
        network.add(literal_chain(b"ab", start=StartKind.START_OF_DATA))
        loaded = self._round_trip(network)
        kinds = {s.start for _g, _a, s in loaded.global_states() if s.is_start}
        assert kinds == {StartKind.START_OF_DATA}

    def test_report_codes_preserved(self):
        network = Network("codes")
        network.add(literal_chain(b"ab", report_code="R42"))
        loaded = self._round_trip(network)
        codes = [s.report_code for _g, _a, s in loaded.global_states() if s.reporting]
        assert codes == ["R42"]

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_behaviour_preserved(self, seed):
        """The loaded network must produce identical report streams."""
        rng = random.Random(seed)
        network = random_network(rng)
        data = random_input(rng, 25)
        loaded = self._round_trip(network)
        original = run(compile_network(network), data)
        reloaded = run(compile_network(loaded), data)
        # State ids may be permuted across automata grouping, so compare
        # report positions and counts only.
        assert original.reports.shape == reloaded.reports.shape
        assert np.array_equal(
            np.unique(original.reports[:, 0]), np.unique(reloaded.reports[:, 0])
        )


class TestErrors:
    def test_duplicate_id_rejected(self):
        text = """<anml><automata-network id="x">
        <state-transition-element id="a" symbol-set="a"/>
        <state-transition-element id="a" symbol-set="b"/>
        </automata-network></anml>"""
        try:
            network_from_anml(text)
            assert False, "expected ValueError"
        except ValueError:
            pass

    def test_dangling_edge_rejected(self):
        text = """<anml><automata-network id="x">
        <state-transition-element id="a" symbol-set="a">
          <activate-on-match element="missing"/>
        </state-transition-element>
        </automata-network></anml>"""
        try:
            network_from_anml(text)
            assert False, "expected ValueError"
        except ValueError:
            pass

    def test_missing_network_rejected(self):
        try:
            network_from_anml("<anml></anml>")
            assert False, "expected ValueError"
        except ValueError:
            pass

    def test_bare_network_element_accepted(self):
        text = """<automata-network id="x">
        <state-transition-element id="a" symbol-set="a" start="all-input">
          <report-on-match reportcode="r"/>
        </state-transition-element>
        </automata-network>"""
        network = network_from_anml(text)
        assert network.n_states == 1
        assert network.name == "x"
