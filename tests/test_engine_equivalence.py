"""Cross-engine equivalence: all engines report bit-identically.

The execution paths — the pure-Python reference, the bit-packed scalar
engine, the boolean-matrix engine, the multi-stream lock-step engine, the
table-driven DFA engine, and the bounded-subset lazy-DFA hybrid —
implement the same homogeneous-NFA semantics through completely different
datapaths.  These property tests pin them to each other on random
networks (cyclic, eod reporters, multiple automata) and random inputs,
including both internal dispatch paths of the multi-stream engine and the
hybrid under adversarially tiny LRU caps (capacity 1 and 2, where every
transition evicts and the fallback path carries the run); the ``dfa`` arm
additionally sweeps every DFA-safe registry application at the standard
bench scale.  Degenerate inputs — empty and single-symbol — get explicit
parity arms across every registered engine (reports *and* witness masks).
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings

from repro import bitops
from repro.reduce import reduce_network
from repro.sim import (
    ENGINES,
    compile_dfa,
    compile_lazydfa,
    compile_network,
    dfa_feasible,
    dfa_run,
    lazydfa_run,
    matrix_compile,
    matrix_run,
    reference_run,
    reports_equal,
    run,
    run_multi,
)
from repro.sim import multistream as ms

from helpers import input_lengths, random_input, random_network, seeds


class _forced_path:
    """Pin run_multi to its big-int or packed-word internal path.

    A plain context manager (not the ``monkeypatch`` fixture) so it can be
    used inside hypothesis tests, which forbid function-scoped fixtures.
    """

    def __init__(self, path):
        self.path = path

    def __enter__(self):
        self.saved = (ms._BIGINT_WORD_LIMIT, ms._BIGINT_STREAM_LIMIT)
        if self.path == "bigint":
            ms._BIGINT_WORD_LIMIT = ms._BIGINT_STREAM_LIMIT = 1 << 30
        else:
            ms._BIGINT_WORD_LIMIT = 0

    def __exit__(self, *exc):
        ms._BIGINT_WORD_LIMIT, ms._BIGINT_STREAM_LIMIT = self.saved
        return False


class TestFourEngineEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(seeds, input_lengths)
    def test_reports_identical_across_engines(self, seed, length):
        rng = random.Random(seed)
        network = random_network(rng)
        data = random_input(rng, length)
        compiled = compile_network(network)

        expected = reference_run(network, data).reports
        assert reports_equal(run(compiled, data).reports, expected)
        assert reports_equal(matrix_run(matrix_compile(network), data).reports, expected)
        (multi,) = run_multi(compiled, [data])
        assert reports_equal(multi.reports, expected)
        if dfa_feasible(network):  # the dfa arm covers every safe network
            assert reports_equal(dfa_run(compile_dfa(network), data).reports, expected)
        # The hybrid needs no feasibility gate; capacity 1 forces an
        # eviction on every distinct subset, so the fallback/re-entry path
        # carries most of the run.
        for capacity in (1, 2, None):
            lazy = (compile_lazydfa(network) if capacity is None
                    else compile_lazydfa(network, capacity=capacity))
            assert reports_equal(
                lazydfa_run(lazy, data).reports, expected
            ), f"capacity={capacity}"

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_hot_sets_identical(self, seed):
        rng = random.Random(seed)
        network = random_network(rng)
        data = random_input(rng, rng.randint(1, 30))
        compiled = compile_network(network)

        scalar = run(compiled, data, track_enabled=True)
        (multi,) = run_multi(compiled, [data], track_enabled=True)
        assert (scalar.ever_enabled == multi.ever_enabled).all()
        matrix = matrix_run(matrix_compile(network), data)
        assert (scalar.ever_enabled == matrix.ever_enabled).all()
        if dfa_feasible(network):
            dfa = dfa_run(compile_dfa(network), data, track_enabled=True)
            assert (scalar.ever_enabled == dfa.ever_enabled).all()
        # Witness recovery from cached subset keys must survive eviction
        # churn: the visited-subset OR is taken per position, not from the
        # (lossy) cache contents.
        for capacity in (1, 2, None):
            lazy = (compile_lazydfa(network) if capacity is None
                    else compile_lazydfa(network, capacity=capacity))
            hybrid = lazydfa_run(lazy, data, track_enabled=True)
            assert (scalar.ever_enabled == hybrid.ever_enabled).all(), (
                f"capacity={capacity}"
            )

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_multistream_both_paths_match_scalar(self, seed):
        """K ragged streams, each bit-identical to its own scalar run, on
        both the big-int and packed-word internal paths."""
        rng = random.Random(seed)
        network = random_network(rng)
        compiled = compile_network(network)
        streams = [random_input(rng, rng.randint(0, 30)) for _ in range(rng.randint(1, 6))]
        expected = [run(compiled, s, track_enabled=True) for s in streams]

        for path in ("bigint", "packed"):
            with _forced_path(path):
                results = run_multi(compiled, streams, track_enabled=True)
            assert len(results) == len(streams)
            for got, want in zip(results, expected):
                assert reports_equal(got.reports, want.reports), path
                assert (got.ever_enabled == want.ever_enabled).all(), path
                assert got.cycles == want.cycles


class TestReducedNetworkEquivalence:
    """The ``--reduce`` execution path: every engine run on the
    SPAP-R-reduced network, lifted through the state-mapping table, must
    match the reference run on the *parent* network — reports in both
    modes, witness masks additionally in exact mode.  This closes the
    loop the per-engine arms above leave open: reduction composes with
    every datapath, not just the reference simulator.
    """

    @settings(max_examples=40, deadline=None)
    @given(seeds, input_lengths)
    def test_exact_reduction_lifts_bit_identically(self, seed, length):
        rng = random.Random(seed)
        network = random_network(rng)
        data = random_input(rng, length)
        truth = reference_run(network, data)
        reduction = reduce_network(network, mode="exact")
        n = network.n_states
        truth_mask = bitops.to_bool(truth.ever_enabled, n)
        for name, engine in ENGINES.items():
            if not engine.feasible(reduction.network):
                continue
            got = engine.run_network(reduction.network, data, track_enabled=True)
            lifted = reduction.lift_result(got)
            assert reports_equal(lifted.reports, truth.reports), name
            assert np.array_equal(
                bitops.to_bool(lifted.ever_enabled, n), truth_mask
            ), name

    @settings(max_examples=30, deadline=None)
    @given(seeds, input_lengths)
    def test_aggressive_reduction_preserves_reports(self, seed, length):
        rng = random.Random(seed)
        network = random_network(rng)
        data = random_input(rng, length)
        expected = reference_run(network, data).reports
        reduction = reduce_network(network, mode="aggressive")
        for name, engine in ENGINES.items():
            if not engine.feasible(reduction.network):
                continue
            got = engine.run_network(reduction.network, data)
            assert reports_equal(reduction.lift_reports(got.reports), expected), name


class TestDegenerateInputs:
    """Empty and single-symbol streams across every registered engine.

    The boundary positions are where engines disagree first: an empty
    stream must produce zero reports and an all-zero witness mask without
    stepping any datapath, and a one-symbol stream is simultaneously the
    first *and* last position (eod reporters fire, mid-only bookkeeping
    must not).  Every entry in the registry — not a hand-kept list — is
    pinned to the reference engine on both, so a sixth engine cannot land
    without inheriting the parity bar.
    """

    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_empty_input_parity(self, seed):
        rng = random.Random(seed)
        network = random_network(rng)
        expected = reference_run(network, b"")
        assert expected.reports.shape[0] == 0
        for name, engine in ENGINES.items():
            if not engine.feasible(network):
                continue
            got = engine.run_network(network, b"", track_enabled=True)
            assert got.reports.shape[0] == 0, name
            assert (got.ever_enabled == expected.ever_enabled).all(), name
            assert not got.ever_enabled.any(), name

    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_single_symbol_parity(self, seed):
        rng = random.Random(seed)
        network = random_network(rng)
        data = random_input(rng, 1)
        expected = reference_run(network, data)
        for name, engine in ENGINES.items():
            if not engine.feasible(network):
                continue
            got = engine.run_network(network, data, track_enabled=True)
            assert reports_equal(got.reports, expected.reports), name
            assert (got.ever_enabled == expected.ever_enabled).all(), name
