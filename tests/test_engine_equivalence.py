"""Cross-engine equivalence: all five engines report bit-identically.

The five execution paths — the pure-Python reference, the bit-packed scalar
engine, the boolean-matrix engine, the multi-stream lock-step engine, and
the table-driven DFA engine — implement the same homogeneous-NFA semantics
through completely different datapaths.  These property tests pin them to
each other on random networks (cyclic, eod reporters, multiple automata)
and random inputs, including both internal dispatch paths of the
multi-stream engine; the ``dfa`` arm additionally sweeps every DFA-safe
registry application at the standard bench scale.
"""

import random

import pytest
from hypothesis import given, settings

from repro.sim import (
    compile_dfa,
    compile_network,
    dfa_feasible,
    dfa_run,
    matrix_compile,
    matrix_run,
    reference_run,
    reports_equal,
    run,
    run_multi,
)
from repro.sim import multistream as ms

from helpers import input_lengths, random_input, random_network, seeds


class _forced_path:
    """Pin run_multi to its big-int or packed-word internal path.

    A plain context manager (not the ``monkeypatch`` fixture) so it can be
    used inside hypothesis tests, which forbid function-scoped fixtures.
    """

    def __init__(self, path):
        self.path = path

    def __enter__(self):
        self.saved = (ms._BIGINT_WORD_LIMIT, ms._BIGINT_STREAM_LIMIT)
        if self.path == "bigint":
            ms._BIGINT_WORD_LIMIT = ms._BIGINT_STREAM_LIMIT = 1 << 30
        else:
            ms._BIGINT_WORD_LIMIT = 0

    def __exit__(self, *exc):
        ms._BIGINT_WORD_LIMIT, ms._BIGINT_STREAM_LIMIT = self.saved
        return False


class TestFourEngineEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(seeds, input_lengths)
    def test_reports_identical_across_engines(self, seed, length):
        rng = random.Random(seed)
        network = random_network(rng)
        data = random_input(rng, length)
        compiled = compile_network(network)

        expected = reference_run(network, data).reports
        assert reports_equal(run(compiled, data).reports, expected)
        assert reports_equal(matrix_run(matrix_compile(network), data).reports, expected)
        (multi,) = run_multi(compiled, [data])
        assert reports_equal(multi.reports, expected)
        if dfa_feasible(network):  # the dfa arm covers every safe network
            assert reports_equal(dfa_run(compile_dfa(network), data).reports, expected)

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_hot_sets_identical(self, seed):
        rng = random.Random(seed)
        network = random_network(rng)
        data = random_input(rng, rng.randint(1, 30))
        compiled = compile_network(network)

        scalar = run(compiled, data, track_enabled=True)
        (multi,) = run_multi(compiled, [data], track_enabled=True)
        assert (scalar.ever_enabled == multi.ever_enabled).all()
        matrix = matrix_run(matrix_compile(network), data)
        assert (scalar.ever_enabled == matrix.ever_enabled).all()
        if dfa_feasible(network):
            dfa = dfa_run(compile_dfa(network), data, track_enabled=True)
            assert (scalar.ever_enabled == dfa.ever_enabled).all()

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_multistream_both_paths_match_scalar(self, seed):
        """K ragged streams, each bit-identical to its own scalar run, on
        both the big-int and packed-word internal paths."""
        rng = random.Random(seed)
        network = random_network(rng)
        compiled = compile_network(network)
        streams = [random_input(rng, rng.randint(0, 30)) for _ in range(rng.randint(1, 6))]
        expected = [run(compiled, s, track_enabled=True) for s in streams]

        for path in ("bigint", "packed"):
            with _forced_path(path):
                results = run_multi(compiled, streams, track_enabled=True)
            assert len(results) == len(streams)
            for got, want in zip(results, expected):
                assert reports_equal(got.reports, want.reports), path
                assert (got.ever_enabled == want.ever_enabled).all(), path
                assert got.cycles == want.cycles
