"""Thread-safety regressions for the AppRun pipeline cache.

The match server (``repro.serve``) shares the pipeline cache between the
asyncio loop and its executor workers, so ``get_run`` must hand every
thread the *same* run object and the lazy construction stages must compute
exactly once however many threads race on first access.
"""

import threading

from repro.experiments.config import ExperimentConfig
from repro.experiments.pipeline import clear_cache, get_run

# A deliberately tiny operating point so a hammering test stays fast.
CONFIG = ExperimentConfig(scale=2048, input_len=64)
N_THREADS = 8
N_ROUNDS = 25


def _hammer(worker, n_threads=N_THREADS):
    barrier = threading.Barrier(n_threads)
    failures = []

    def body(index):
        try:
            barrier.wait()
            worker(index)
        except Exception as exc:  # pragma: no cover - failure path
            failures.append(exc)

    threads = [threading.Thread(target=body, args=(i,)) for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures


class TestGetRunThreadSafety:
    def setup_method(self):
        clear_cache()

    def teardown_method(self):
        clear_cache()

    def test_same_key_yields_one_instance(self):
        seen = [None] * N_THREADS

        def worker(index):
            for _ in range(N_ROUNDS):
                seen[index] = get_run("LV", CONFIG)

        _hammer(worker)
        assert all(run is seen[0] for run in seen)

    def test_distinct_keys_do_not_collide(self):
        apps = ["LV", "HM", "Bro217", "Fermi"]
        seen = {}
        mutex = threading.Lock()

        def worker(index):
            for round_no in range(N_ROUNDS):
                abbr = apps[(index + round_no) % len(apps)]
                run = get_run(abbr, CONFIG)
                assert run.spec.abbr == abbr
                with mutex:
                    previous = seen.setdefault(abbr, run)
                assert previous is run

        _hammer(worker)
        assert len(seen) == len(apps)

    def test_clear_cache_concurrent_with_lookups(self):
        def worker(index):
            for _ in range(N_ROUNDS):
                if index % 2:
                    clear_cache()
                else:
                    run = get_run("LV", CONFIG)
                    assert run.spec.abbr == "LV"

        _hammer(worker)

    def test_lazy_compile_races_compute_once(self):
        run = get_run("LV", CONFIG)
        compiled = [None] * N_THREADS

        def worker(index):
            compiled[index] = run.compiled

        _hammer(worker)
        assert all(c is compiled[0] for c in compiled)
        # Double-checked locking admitted exactly one compute per stage.
        assert run.stats.calls("build") == 1
        assert run.stats.calls("compile") == 1


class TestCompiledDfaFlatTableThreadSafety:
    """The CompiledDFA hot-loop table build races (repro.sim.dfa).

    ``run_tables`` materializes its flat transition list lazily; the serve
    executor calls ``dfa_run`` from several workers at once, so the first
    batch after compilation races threads on that build.  The regression:
    the build used to be unguarded, so racing threads could each build a
    list and — worse — a reader could observe a partially initialized
    object had the assignment not been a single post-build store.  Pinned
    here: every racing thread gets the *same* list object back and the
    concurrent runs stay bit-identical to a serial run.
    """

    def test_run_tables_race_yields_one_list(self):
        from repro.experiments.pipeline import clear_cache, get_run

        clear_cache()
        run = get_run("Bro217", CONFIG)  # DFA-safe at this operating point
        compiled = run.compiled_dfa
        flats = [None] * N_THREADS

        def worker(index):
            flats[index], _, _ = compiled.run_tables()

        _hammer(worker)
        assert all(flat is flats[0] for flat in flats)

    def test_concurrent_dfa_runs_match_serial(self):
        from repro.experiments.pipeline import clear_cache, get_run
        from repro.sim import compile_dfa, dfa_run, reports_equal

        clear_cache()
        run = get_run("Bro217", CONFIG)
        data = run.test_input
        expected = dfa_run(run.compiled_dfa, data)
        # A fresh artifact per round so every round races the lazy build.
        for _ in range(3):
            target = compile_dfa(run.network)
            results = [None] * N_THREADS

            def worker(index, target=target):
                results[index] = dfa_run(target, data)

            _hammer(worker)
            for result in results:
                assert reports_equal(result.reports, expected.reports)
