"""Thread-safety regressions for the AppRun pipeline cache.

The match server (``repro.serve``) shares the pipeline cache between the
asyncio loop and its executor workers, so ``get_run`` must hand every
thread the *same* run object and the lazy construction stages must compute
exactly once however many threads race on first access.
"""

import threading

from repro.experiments.config import ExperimentConfig
from repro.experiments.pipeline import clear_cache, get_run

# A deliberately tiny operating point so a hammering test stays fast.
CONFIG = ExperimentConfig(scale=2048, input_len=64)
N_THREADS = 8
N_ROUNDS = 25


def _hammer(worker, n_threads=N_THREADS):
    barrier = threading.Barrier(n_threads)
    failures = []

    def body(index):
        try:
            barrier.wait()
            worker(index)
        except Exception as exc:  # pragma: no cover - failure path
            failures.append(exc)

    threads = [threading.Thread(target=body, args=(i,)) for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures


class TestGetRunThreadSafety:
    def setup_method(self):
        clear_cache()

    def teardown_method(self):
        clear_cache()

    def test_same_key_yields_one_instance(self):
        seen = [None] * N_THREADS

        def worker(index):
            for _ in range(N_ROUNDS):
                seen[index] = get_run("LV", CONFIG)

        _hammer(worker)
        assert all(run is seen[0] for run in seen)

    def test_distinct_keys_do_not_collide(self):
        apps = ["LV", "HM", "Bro217", "Fermi"]
        seen = {}
        mutex = threading.Lock()

        def worker(index):
            for round_no in range(N_ROUNDS):
                abbr = apps[(index + round_no) % len(apps)]
                run = get_run(abbr, CONFIG)
                assert run.spec.abbr == abbr
                with mutex:
                    previous = seen.setdefault(abbr, run)
                assert previous is run

        _hammer(worker)
        assert len(seen) == len(apps)

    def test_clear_cache_concurrent_with_lookups(self):
        def worker(index):
            for _ in range(N_ROUNDS):
                if index % 2:
                    clear_cache()
                else:
                    run = get_run("LV", CONFIG)
                    assert run.spec.abbr == "LV"

        _hammer(worker)

    def test_lazy_compile_races_compute_once(self):
        run = get_run("LV", CONFIG)
        compiled = [None] * N_THREADS

        def worker(index):
            compiled[index] = run.compiled

        _hammer(worker)
        assert all(c is compiled[0] for c in compiled)
        # Double-checked locking admitted exactly one compute per stage.
        assert run.stats.calls("build") == 1
        assert run.stats.calls("compile") == 1
