"""End-to-end tests for the match service (server, batcher, client, loadgen).

Every test spins a real :class:`MatchServer` on a unix socket inside a
private event loop and talks to it through the framed protocol — injected
toy networks keep this fast (no registry compile).
"""

import asyncio
import contextlib
import random
import struct

import pytest

from repro.nfa.automaton import Automaton, Network, StartKind
from repro.nfa.symbolset import SymbolSet
from repro.serve import protocol
from repro.serve.batcher import BatchPolicy, MicroBatcher
from repro.serve.client import (
    AsyncServeClient,
    ConnectionLostError,
    ServeRequestError,
)
from repro.serve.loadgen import (
    LoadgenConfig,
    RequestClass,
    render_results,
    run_loadgen,
)
from repro.serve.protocol import ErrorCode, ProtocolError
from repro.serve.server import MatchServer, ServerOptions
from repro.serve.state import ServeState
from repro.sim import run
from repro.stats import validate_serve_stats


def _chain_network(word: bytes = b"ab") -> Network:
    """One automaton matching ``word`` anywhere, reporting on its last state."""
    automaton = Automaton("chain")
    for index, symbol in enumerate(word):
        automaton.add_state(
            SymbolSet.from_symbols([symbol]),
            start=StartKind.ALL_INPUT if index == 0 else StartKind.NONE,
            reporting=index == len(word) - 1,
            report_code=f"chain:{index}" if index == len(word) - 1 else None,
        )
        if index:
            automaton.add_edge(index - 1, index)
    network = Network(f"chain-{word.decode()}")
    network.add(automaton)
    return network


@contextlib.asynccontextmanager
async def _server(tmp_path, **overrides):
    """A running server on a unix socket with two injected toy apps."""
    sock = str(tmp_path / "serve.sock")
    options = ServerOptions(unix_path=sock, warmup=False, **overrides)
    server = MatchServer(None, options)
    server.state.add_network("toy", _chain_network(b"ab"))
    server.state.add_network("toy2", _chain_network(b"abc"))
    await server.start()
    loop_task = asyncio.ensure_future(server.serve_until_stopped())
    try:
        yield server, sock
    finally:
        await server.stop()
        await asyncio.wait_for(loop_task, 10)


async def _read_reply(reader) -> protocol.Frame:
    preamble = await reader.readexactly(protocol.PREAMBLE_SIZE)
    header_len, payload_len = protocol.decode_preamble(preamble)
    body = await reader.readexactly(header_len + payload_len)
    decoded = protocol.decode_frame(preamble + body)
    assert decoded is not None
    return decoded[0]


class TestMatchCorrectness:
    def test_reply_matches_scalar_run(self, tmp_path):
        async def scenario():
            async with _server(tmp_path) as (server, sock):
                data = b"xxabyababz" * 7
                async with await AsyncServeClient.open(unix_path=sock) as client:
                    outcome = await client.match("toy", data)
                compiled = server.state.get_blocking("toy").compiled
                scalar = run(compiled, data)
                assert outcome.n_symbols == len(data)
                assert outcome.reports == [tuple(r) for r in scalar.reports.tolist()]
                assert not outcome.reports_truncated
                assert outcome.batch_size == 1  # eager when idle: no window paid

        asyncio.run(scenario())

    def test_empty_payload_is_a_valid_match(self, tmp_path):
        async def scenario():
            async with _server(tmp_path) as (_server_obj, sock):
                async with await AsyncServeClient.open(unix_path=sock) as client:
                    outcome = await client.match("toy", b"")
                assert outcome.n_symbols == 0
                assert outcome.reports == []

        asyncio.run(scenario())

    def test_max_reports_truncates_reply(self, tmp_path):
        async def scenario():
            async with _server(tmp_path) as (_server_obj, sock):
                async with await AsyncServeClient.open(unix_path=sock) as client:
                    outcome = await client.match("toy", b"ab" * 50, max_reports=3)
                assert len(outcome.reports) == 3
                assert outcome.reports_truncated

        asyncio.run(scenario())

    def test_two_apps_route_to_their_own_networks(self, tmp_path):
        async def scenario():
            async with _server(tmp_path) as (_server_obj, sock):
                async with await AsyncServeClient.open(unix_path=sock) as client:
                    out_ab, out_abc = await asyncio.gather(
                        client.match("toy", b"zabz"),
                        client.match("toy2", b"zabcz"),
                    )
                assert out_ab.app == "toy" and len(out_ab.reports) == 1
                assert out_abc.app == "toy2" and len(out_abc.reports) == 1

        asyncio.run(scenario())


class TestCoalescing:
    def test_concurrent_requests_batch_together(self, tmp_path):
        async def scenario():
            async with _server(tmp_path, window_ms=50.0) as (server, sock):
                data = b"xyab" * 512  # big enough that a batch takes a while
                async with await AsyncServeClient.open(unix_path=sock) as client:
                    outcomes = await asyncio.gather(
                        *[client.match("toy", data) for _ in range(16)]
                    )
                sizes = sorted(o.batch_size for o in outcomes)
                assert sizes[-1] >= 2, f"no coalescing happened: {sizes}"
                assert server.batcher.batched_requests == 16
                assert server.batcher.batches_dispatched < 16
                # Everyone still got the right answer.
                expected = len(run(server.state.get_blocking("toy").compiled,
                                   data).reports)
                assert all(len(o.reports) == expected for o in outcomes)

        asyncio.run(scenario())


class TestDeadlines:
    def test_already_expired_deadline_is_typed_and_dropped(self, tmp_path):
        async def scenario():
            async with _server(tmp_path) as (server, sock):
                async with await AsyncServeClient.open(unix_path=sock) as client:
                    with pytest.raises(ServeRequestError) as info:
                        await client.match("toy", b"abab", deadline_ms=0.0)
                    assert info.value.code == ErrorCode.DEADLINE_EXCEEDED
                    # The connection survived; a generous deadline succeeds.
                    outcome = await client.match("toy", b"abab",
                                                 deadline_ms=60_000.0)
                    assert len(outcome.reports) == 2
                assert server.batcher.expired == 1

        asyncio.run(scenario())


class TestAdmissionControl:
    def test_batcher_rejects_above_queue_depth(self, tmp_path):
        """Deterministic: eager dispatch takes #1, #2 queues, #3 rejected."""
        async def scenario():
            state = ServeState()
            entry = state.add_network("toy", _chain_network(b"ab"))
            batcher = MicroBatcher(BatchPolicy(window_s=0.05, max_batch=1,
                                               max_queue_depth=1))
            results = await asyncio.gather(
                batcher.submit(entry, b"ab"),
                batcher.submit(entry, b"ab"),
                batcher.submit(entry, b"ab"),
                return_exceptions=True,
            )
            codes = [r.code if isinstance(r, ProtocolError) else "ok"
                     for r in results]
            assert codes == ["ok", "ok", ErrorCode.OVERLOADED]

        asyncio.run(scenario())

    def test_server_counts_rejections(self, tmp_path):
        async def scenario():
            async with _server(tmp_path, max_queue_depth=1) as (server, sock):
                data = b"xyab" * 512
                async with await AsyncServeClient.open(unix_path=sock) as client:
                    outcomes = await asyncio.gather(
                        *[client.match("toy", data) for _ in range(16)],
                        return_exceptions=True,
                    )
                ok = [o for o in outcomes if not isinstance(o, Exception)]
                rejected = [o for o in outcomes
                            if isinstance(o, ServeRequestError)]
                assert len(ok) + len(rejected) == 16
                assert all(o.code == ErrorCode.OVERLOADED for o in rejected)
                assert server.requests_rejected == len(rejected)

        asyncio.run(scenario())

    def test_drain_fails_queued_requests(self, tmp_path):
        async def scenario():
            state = ServeState()
            entry = state.add_network("toy", _chain_network(b"ab"))
            batcher = MicroBatcher(BatchPolicy(window_s=30.0, max_batch=4))
            first = asyncio.ensure_future(batcher.submit(entry, b"ab"))
            await first  # dispatched eagerly; queue now idle
            second = asyncio.ensure_future(batcher.submit(entry, b"ab"))
            third = asyncio.ensure_future(batcher.submit(entry, b"ab"))
            await asyncio.sleep(0)  # both parked behind the 30s window
            assert batcher.queue_depth == 1  # second dispatched eagerly
            await batcher.drain()
            with pytest.raises(ProtocolError) as info:
                await third
            assert info.value.code == ErrorCode.OVERLOADED
            await second  # its batch was already in flight when we drained

        asyncio.run(scenario())


class TestErrorPaths:
    def test_unknown_app_is_typed(self, tmp_path):
        async def scenario():
            async with _server(tmp_path) as (_server_obj, sock):
                async with await AsyncServeClient.open(unix_path=sock) as client:
                    with pytest.raises(ServeRequestError) as info:
                        await client.match("no-such-app", b"ab")
                    assert info.value.code == ErrorCode.UNKNOWN_APP
                    # Typed errors are recoverable: the connection still works.
                    assert (await client.match("toy", b"ab")).n_symbols == 2

        asyncio.run(scenario())

    def test_disallowed_registry_app_is_typed(self, tmp_path):
        async def scenario():
            # Serve only toy networks; a real registry app must be refused
            # without compiling anything.
            async with _server(tmp_path, max_apps=2) as (server, sock):
                server.state.allowed = []
                async with await AsyncServeClient.open(unix_path=sock) as client:
                    with pytest.raises(ServeRequestError) as info:
                        await client.match("Snort", b"ab")
                    assert info.value.code == ErrorCode.UNKNOWN_APP

        asyncio.run(scenario())


class TestClientConnectionLoss:
    """Regression: a connection that dies mid-flight must fail every
    pending future with the typed :class:`ConnectionLostError` — and every
    later request too — instead of leaving callers hung on futures whose
    replies can never arrive (the grid router's failover trigger)."""

    def test_mid_flight_kill_fails_pending_and_later_requests(self, tmp_path):
        async def scenario():
            sock = str(tmp_path / "stub.sock")

            async def swallow_and_die(reader, writer):
                await reader.read(64)  # accept part of the request, then die
                writer.close()

            stub = await asyncio.start_unix_server(swallow_and_die, path=sock)
            try:
                client = await AsyncServeClient.open(unix_path=sock)
                with pytest.raises(ConnectionLostError):
                    await client.match("toy", b"abcd")
                # Terminal: the client never offers the dead connection again.
                assert not client.connected
                with pytest.raises(ConnectionLostError):
                    await client.ping()
                await client.close()
            finally:
                stub.close()
                await stub.wait_closed()

        asyncio.run(scenario())

    def test_kill_with_many_requests_parked_fails_all_of_them(self, tmp_path):
        async def scenario():
            sock = str(tmp_path / "stub.sock")
            writers = []

            async def park_forever(reader, writer):
                writers.append(writer)
                await reader.read(1 << 16)  # never reply

            stub = await asyncio.start_unix_server(park_forever, path=sock)
            try:
                client = await AsyncServeClient.open(unix_path=sock)
                parked = [asyncio.ensure_future(client.match("toy", b"abcd"))
                          for _ in range(8)]
                await asyncio.sleep(0.05)  # all eight are in flight
                assert not any(f.done() for f in parked)
                for writer in writers:
                    writer.close()  # the "worker" dies mid-flight
                results = await asyncio.gather(*parked, return_exceptions=True)
                assert len(results) == 8
                assert all(isinstance(r, ConnectionLostError) for r in results)
                # ...and it is a ConnectionError subclass, so existing
                # broad handlers keep working.
                assert all(isinstance(r, ConnectionError) for r in results)
                await client.close()
            finally:
                stub.close()
                await stub.wait_closed()

        asyncio.run(scenario())

    def test_server_side_errors_do_not_terminal_state_the_client(self, tmp_path):
        """Null-id error frames (connection-level, but recoverable) fail
        the in-flight requests without poisoning the connection."""
        async def scenario():
            async with _server(tmp_path) as (_server_obj, sock):
                async with await AsyncServeClient.open(unix_path=sock) as client:
                    with pytest.raises(ServeRequestError):
                        await client.match("no-such-app", b"ab")
                    assert client.connected
                    assert (await client.match("toy", b"ab")).n_symbols == 2

        asyncio.run(scenario())


class TestMalformedFramesOverTheWire:
    def test_bad_magic_gets_error_reply_then_close(self, tmp_path):
        async def scenario():
            async with _server(tmp_path) as (_server_obj, sock):
                reader, writer = await asyncio.open_unix_connection(sock)
                writer.write(b"XX" + protocol.control_frame("ping", 1)[2:])
                await writer.drain()
                reply = await _read_reply(reader)
                assert reply.header["type"] == "error"
                assert reply.header["code"] == ErrorCode.BAD_FRAME
                assert await reader.read() == b""  # server closed the stream
                writer.close()

        asyncio.run(scenario())

    def test_oversized_length_gets_error_reply_then_close(self, tmp_path):
        async def scenario():
            async with _server(tmp_path) as (_server_obj, sock):
                reader, writer = await asyncio.open_unix_connection(sock)
                writer.write(struct.pack(
                    ">2sBxII", protocol.MAGIC, protocol.PROTOCOL_VERSION,
                    protocol.MAX_HEADER_BYTES + 1, 0,
                ))
                await writer.drain()
                reply = await _read_reply(reader)
                assert reply.header["code"] == ErrorCode.FRAME_TOO_LARGE
                assert await reader.read() == b""
                writer.close()

        asyncio.run(scenario())

    def test_bad_json_header_keeps_the_connection_framed(self, tmp_path):
        async def scenario():
            async with _server(tmp_path) as (_server_obj, sock):
                reader, writer = await asyncio.open_unix_connection(sock)
                raw = b"{broken json"
                writer.write(struct.pack(
                    ">2sBxII", protocol.MAGIC, protocol.PROTOCOL_VERSION,
                    len(raw), 0,
                ) + raw)
                await writer.drain()
                reply = await _read_reply(reader)
                assert reply.header["code"] == ErrorCode.BAD_HEADER
                # Recoverable: a valid frame on the same connection still works.
                writer.write(protocol.control_frame("ping", 5))
                await writer.drain()
                pong = await _read_reply(reader)
                assert pong.header["type"] == "pong"
                assert pong.header["id"] == 5
                writer.close()

        asyncio.run(scenario())

    def test_truncated_preamble_then_disconnect_does_not_kill_server(self, tmp_path):
        async def scenario():
            async with _server(tmp_path) as (_server_obj, sock):
                _reader, writer = await asyncio.open_unix_connection(sock)
                writer.write(b"RS\x01")  # 3 of 12 preamble bytes
                await writer.drain()
                writer.close()
                # Server must survive; prove it with a fresh client.
                async with await AsyncServeClient.open(unix_path=sock) as client:
                    await client.ping()

        asyncio.run(scenario())

    def test_server_survives_random_garbage_corpus(self, tmp_path):
        async def scenario():
            async with _server(tmp_path) as (server, sock):
                rng = random.Random(0xF022)
                for _ in range(25):
                    _reader, writer = await asyncio.open_unix_connection(sock)
                    blob = bytes(rng.randrange(256)
                                 for _ in range(rng.randrange(1, 200)))
                    writer.write(blob)
                    await writer.drain()
                    writer.close()
                    with contextlib.suppress(ConnectionError):
                        await writer.wait_closed()
                # Still serving, and the stats export is still schema-valid.
                async with await AsyncServeClient.open(unix_path=sock) as client:
                    await client.ping()
                    document = await client.stats()
                validate_serve_stats(document)

        asyncio.run(scenario())


class TestStatsAndLifecycle:
    def test_stats_document_validates_and_adds_up(self, tmp_path):
        async def scenario():
            async with _server(tmp_path) as (_server_obj, sock):
                async with await AsyncServeClient.open(unix_path=sock) as client:
                    await client.ping()
                    await client.match("toy", b"abab")
                    with contextlib.suppress(ServeRequestError):
                        await client.match("nope", b"ab")
                    document = await client.stats()
                validate_serve_stats(document)
                requests = document["requests"]
                assert requests["received"] >= 4
                assert requests["errors"] == 1
                assert document["errors_by_code"] == [
                    {"code": ErrorCode.UNKNOWN_APP, "count": 1}
                ]
                assert document["batches"]["dispatched"] >= 1
                stage_names = {span["name"] for span in document["stages"]}
                assert {"execute", "request", "reply"} <= stage_names

        asyncio.run(scenario())

    def test_remote_shutdown_stops_the_server(self, tmp_path):
        async def scenario():
            sock = str(tmp_path / "serve.sock")
            server = MatchServer(None, ServerOptions(unix_path=sock,
                                                     warmup=False))
            server.state.add_network("toy", _chain_network(b"ab"))
            await server.start()
            loop_task = asyncio.ensure_future(server.serve_until_stopped())
            client = await AsyncServeClient.open(unix_path=sock)
            await client.shutdown()
            await client.close()
            await asyncio.wait_for(loop_task, 10)  # returned on its own

        asyncio.run(scenario())

    def test_shutdown_frames_can_be_disabled(self, tmp_path):
        async def scenario():
            async with _server(tmp_path, allow_shutdown=False) as (_s, sock):
                async with await AsyncServeClient.open(unix_path=sock) as client:
                    with pytest.raises(ServeRequestError) as info:
                        await client.shutdown()
                    assert info.value.code == ErrorCode.SHUTDOWN_DISABLED
                    await client.ping()  # still serving

        asyncio.run(scenario())

    def test_lru_keeps_at_most_max_apps(self):
        state = ServeState(max_apps=1)
        state.add_network("one", _chain_network(b"ab"))
        state.add_network("two", _chain_network(b"abc"))
        assert state.resident() == ["two"]
        assert state.evictions == 1

    def test_warmup_compiles_and_runs_injected_apps(self):
        state = ServeState()
        state.add_network("toy", _chain_network(b"ab"))
        assert state.warmup(["toy"]) == ["toy"]
        assert state.timer.calls("warmup") == 1

    def test_lazydfa_backend_serves_injected_network(self):
        from repro.sim import run as scalar_run
        from repro.sim.compiled import compile_network

        state = ServeState(backend="lazydfa")
        network = _chain_network(b"ab")
        entry = state.add_network("toy", network)
        assert entry.backend == "lazydfa"
        assert entry.lazydfa is not None
        data = b"xabababx"
        (got,) = entry.execute_batch([data])
        expected = scalar_run(compile_network(network), data)
        assert (got.reports == expected.reports).all()

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="serve backend"):
            ServeState(backend="systolic")


class TestLoadgen:
    def test_closed_loop_counts_every_request(self, tmp_path):
        async def scenario():
            async with _server(tmp_path) as (_server_obj, sock):
                config = LoadgenConfig(apps=["toy", "toy2"], requests=24,
                                       concurrency=4, input_len=64,
                                       unix_path=sock)
                result = await run_loadgen(config)
                assert result.ok == 24
                assert result.errors == 0
                assert result.rps > 0
                assert len(result.latencies_ms) == 24
                assert result.percentile(50) <= result.percentile(99)
                table = render_results([result])
                assert "closed" in table and "p99ms" in table
                payload = result.to_json()
                assert payload["ok"] == 24
                assert payload["latency_ms"]["p50"] > 0

        asyncio.run(scenario())

    def test_open_loop_paces_arrivals(self, tmp_path):
        async def scenario():
            async with _server(tmp_path) as (_server_obj, sock):
                config = LoadgenConfig(apps=["toy"], requests=10,
                                       concurrency=2, mode="open", rate=500.0,
                                       input_len=32, unix_path=sock)
                result = await run_loadgen(config)
                assert result.ok == 10
                assert result.errors == 0
                # 10 arrivals at 500/s cannot finish faster than 18ms.
                assert result.elapsed_s >= 9 / 500.0

        asyncio.run(scenario())

    def test_loadgen_counts_typed_errors_instead_of_raising(self, tmp_path):
        async def scenario():
            async with _server(tmp_path) as (_server_obj, sock):
                config = LoadgenConfig(apps=["no-such-app"], requests=5,
                                       concurrency=2, input_len=16,
                                       unix_path=sock)
                result = await run_loadgen(config)
                assert result.ok == 0
                assert result.errors == 5
                assert result.errors_by_code == {ErrorCode.UNKNOWN_APP: 5}

        asyncio.run(scenario())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadgenConfig(apps=[])
        with pytest.raises(ValueError):
            LoadgenConfig(apps=["toy"], mode="open")  # open loop needs a rate
        with pytest.raises(ValueError):
            LoadgenConfig(apps=["toy"], mode="sideways")
        with pytest.raises(ValueError, match="open-loop"):
            LoadgenConfig(apps=["toy"], duration_s=1.0)  # closed + duration
        with pytest.raises(ValueError, match="positive"):
            LoadgenConfig(apps=["toy"], mode="open", rate=10.0, duration_s=0.0)
        with pytest.raises(ValueError, match="non-empty"):
            LoadgenConfig(apps=["toy"], classes=())
        with pytest.raises(ValueError, match="positive weight"):
            RequestClass("batch", weight=0.0)

    def test_duration_overrides_request_count(self):
        config = LoadgenConfig(apps=["toy"], requests=5, mode="open",
                               rate=40.0, duration_s=0.5)
        assert config.total_requests() == 20  # ceil(40 * 0.5), not 5

    def test_open_loop_duration_with_weighted_classes(self, tmp_path):
        """The overload-sweep shape: a fixed-duration open loop split into
        weighted classes, each with its own deadline and percentiles."""
        async def scenario():
            async with _server(tmp_path) as (_server_obj, sock):
                config = LoadgenConfig(
                    apps=["toy"], concurrency=4, mode="open", rate=400.0,
                    duration_s=0.25, input_len=32, unix_path=sock,
                    classes=(
                        RequestClass("interactive", weight=3.0,
                                     deadline_ms=60_000.0),
                        RequestClass("batch", weight=1.0),
                    ),
                )
                result = await run_loadgen(config)
                total = config.total_requests()
                assert result.ok == total and result.errors == 0
                assert set(result.classes) == {"interactive", "batch"}
                per_class = result.classes
                assert sum(c.ok for c in per_class.values()) == total
                # 3:1 weights: interactive dominates (seed-stable split).
                assert per_class["interactive"].ok > per_class["batch"].ok
                payload = result.to_json()
                assert payload["requests"] == total
                assert payload["overloaded"] == 0
                assert payload["classes"]["interactive"]["latency_ms"]["p50"] > 0
                table = render_results([result])
                assert "class interactive" in table and "class batch" in table

        asyncio.run(scenario())

    def test_expired_deadlines_count_per_class(self, tmp_path):
        """A class whose deadline is already expired collects typed
        DEADLINE_EXCEEDED rejections; the other class is untouched."""
        async def scenario():
            async with _server(tmp_path) as (_server_obj, sock):
                config = LoadgenConfig(
                    apps=["toy"], concurrency=2, mode="open", rate=500.0,
                    duration_s=0.1, input_len=16, unix_path=sock, seed=3,
                    classes=(
                        RequestClass("doomed", weight=1.0, deadline_ms=0.0),
                        RequestClass("fine", weight=1.0),
                    ),
                )
                result = await run_loadgen(config)
                doomed, fine = result.classes["doomed"], result.classes["fine"]
                assert doomed.ok == 0
                assert doomed.deadline_exceeded == doomed.errors > 0
                assert fine.errors == 0 and fine.ok > 0
                assert result.deadline_exceeded == doomed.deadline_exceeded
                assert result.ok == fine.ok
                json_doc = result.to_json()
                assert json_doc["deadline_exceeded"] == doomed.errors
                assert json_doc["classes"]["doomed"]["deadline_exceeded"] \
                    == doomed.errors

        asyncio.run(scenario())

    def test_overloaded_rejections_are_counted_not_raised(self, tmp_path):
        """Open-loop overload against a tiny admission bound: the round
        completes, with OVERLOADED counted on the result (the bounded-p99
        contract the grid bench asserts)."""
        async def scenario():
            async with _server(tmp_path, max_queue_depth=1,
                               window_ms=20.0) as (_server_obj, sock):
                config = LoadgenConfig(
                    apps=["toy"], concurrency=8, mode="open", rate=2000.0,
                    duration_s=0.2, input_len=2048, unix_path=sock,
                )
                result = await run_loadgen(config)
                assert result.ok + result.errors == config.total_requests()
                assert result.overloaded == result.errors > 0
                assert result.errors_by_code[ErrorCode.OVERLOADED] \
                    == result.overloaded

        asyncio.run(scenario())
