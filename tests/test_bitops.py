"""Unit and property tests for the packed bitset kernels."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import bitops


class TestNumWords:
    def test_zero_bits(self):
        assert bitops.num_words(0) == 0

    def test_exact_word(self):
        assert bitops.num_words(64) == 1

    def test_one_over(self):
        assert bitops.num_words(65) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bitops.num_words(-1)


class TestRoundTrip:
    def test_empty(self):
        words = bitops.empty(100)
        assert not bitops.any_set(words)
        assert bitops.popcount(words) == 0
        assert bitops.to_indices(words).size == 0

    def test_single_bit(self):
        words = bitops.from_indices([63], 128)
        assert bitops.test_index(words, 63)
        assert not bitops.test_index(words, 62)
        assert not bitops.test_index(words, 64)
        assert bitops.to_indices(words).tolist() == [63]

    def test_word_boundary_bits(self):
        indices = [0, 63, 64, 127, 128]
        words = bitops.from_indices(indices, 200)
        assert bitops.to_indices(words).tolist() == indices

    def test_set_then_clear(self):
        words = bitops.empty(70)
        bitops.set_indices(words, [3, 68])
        bitops.clear_indices(words, [3])
        assert bitops.to_indices(words).tolist() == [68]

    def test_duplicates_idempotent(self):
        words = bitops.from_indices([5, 5, 5], 64)
        assert bitops.popcount(words) == 1

    def test_bool_round_trip(self):
        mask = np.zeros(130, dtype=bool)
        mask[[0, 1, 64, 129]] = True
        words = bitops.from_bool(mask)
        assert np.array_equal(bitops.to_bool(words, 130), mask)


@given(
    st.lists(st.integers(min_value=0, max_value=299), unique=True, max_size=50),
    st.integers(min_value=300, max_value=400),
)
def test_from_indices_to_indices_round_trip(indices, n_bits):
    words = bitops.from_indices(indices, n_bits)
    assert bitops.to_indices(words).tolist() == sorted(indices)
    assert bitops.popcount(words) == len(indices)


@given(
    st.lists(st.integers(min_value=0, max_value=199), unique=True, max_size=30),
    st.lists(st.integers(min_value=0, max_value=199), unique=True, max_size=30),
)
def test_or_matches_set_union(left, right):
    a = bitops.from_indices(left, 200)
    b = bitops.from_indices(right, 200)
    assert bitops.to_indices(a | b).tolist() == sorted(set(left) | set(right))
    assert bitops.to_indices(a & b).tolist() == sorted(set(left) & set(right))


@given(st.lists(st.integers(min_value=0, max_value=100), unique=True, max_size=20))
def test_bool_conversion_matches(indices):
    words = bitops.from_indices(indices, 101)
    mask = bitops.to_bool(words, 101)
    assert np.array_equal(bitops.from_bool(mask), words)
    assert sorted(np.flatnonzero(mask).tolist()) == sorted(indices)
