"""End-to-end tests for the three execution scenarios and cycle accounting."""

import random

import pytest
from hypothesis import given, settings

from repro.ap import APConfig
from repro.core.cpu_model import CPUCostModel
from repro.core.scenarios import (
    prepare_partition,
    run_ap_cpu,
    run_base_spap,
    run_baseline_ap,
    verify_equivalence,
)
from repro.nfa.automaton import Network
from repro.nfa.build import literal_chain

from helpers import random_input, random_network, seeds


def _config(capacity: int) -> APConfig:
    return APConfig(capacity=capacity, blocks=max(1, (capacity + 255) // 256))


def _many_chains(n: int, pattern: bytes = b"abcdef") -> Network:
    network = Network("many")
    for index in range(n):
        network.add(literal_chain(pattern, name=f"p{index}"))
    return network


class TestBaseline:
    def test_single_batch(self):
        network = _many_chains(2)
        config = _config(100)
        outcome = run_baseline_ap(network, b"xxabcdef", config)
        assert outcome.n_batches == 1
        assert outcome.cycles == 8
        assert outcome.reports.shape[0] == 2  # both NFAs match once

    def test_multi_batch_cycle_multiplication(self):
        network = _many_chains(10)  # 60 states
        config = _config(12)  # 2 NFAs per batch -> 5 batches
        outcome = run_baseline_ap(network, b"abcdef", config)
        assert outcome.n_batches == 5
        assert outcome.cycles == 5 * 6

    def test_seconds(self):
        network = _many_chains(1)
        config = _config(100)
        outcome = run_baseline_ap(network, b"ab", config)
        assert outcome.seconds(config) == pytest.approx(2 * 7.5e-9)


class TestBaseSpAP:
    def test_perfect_prediction_single_pass(self):
        """With cold states never reached, SpAP consumes zero extra cycles."""
        network = _many_chains(4)  # 24 states
        config = _config(12)  # baseline: 2 batches
        data = b"zzzz" * 8  # never matches beyond the start states
        # Profile shows only layer 1 hot -> hot set = 4 starts + 4 intermediates.
        partitioned, bins = prepare_partition(network, b"zzzz", config, fill=False)
        outcome = run_base_spap(partitioned, data, config, bins)
        assert outcome.n_hot_batches == 1
        assert outcome.spap_cycles == 0
        assert outcome.n_intermediate_reports == 0
        baseline = run_baseline_ap(network, data, config)
        assert verify_equivalence(baseline, outcome)
        assert baseline.cycles / outcome.cycles == 2.0  # 2 batches -> 1

    def test_mispredictions_handled(self):
        """Cold states that do get enabled are recovered through SpAP."""
        network = _many_chains(4)
        config = _config(12)
        profile_data = b"zzzz"  # predicts everything beyond starts cold
        test_data = b"xxabcdefxx" * 2  # actually matches fully
        partitioned, bins = prepare_partition(network, profile_data, config, fill=False)
        outcome = run_base_spap(partitioned, test_data, config, bins)
        baseline = run_baseline_ap(network, test_data, config)
        assert outcome.n_intermediate_reports > 0
        assert verify_equivalence(baseline, outcome)

    def test_jump_ratio_counts_skips(self):
        network = _many_chains(2, pattern=b"abcd")
        config = _config(100)
        profile_data = b"zz"
        test_data = b"abcd" + b"z" * 60
        partitioned, bins = prepare_partition(network, profile_data, config, fill=False)
        outcome = run_base_spap(partitioned, test_data, config, bins)
        ratio = outcome.jump_ratio()
        assert ratio is not None
        assert ratio > 0.9  # almost all of the input is skipped

    def test_stalls_accumulate_for_simultaneous_reports(self):
        # Two NFAs with identical patterns cross the boundary at the same
        # position -> simultaneous intermediate reports -> 1 stall each time.
        network = _many_chains(2, pattern=b"ab")
        config = _config(100)
        partitioned, bins = prepare_partition(network, b"zz", config, fill=False)
        outcome = run_base_spap(partitioned, b"ababab", config, bins)
        # Both cold parts live in one batch; events at same positions target
        # different states -> stalls.
        assert outcome.spap_stall_cycles > 0

    def test_fill_optimization_absorbs_cold(self):
        network = _many_chains(2)  # 12 states
        config = _config(100)  # plenty of room
        partitioned, bins = prepare_partition(network, b"zz", config, fill=True)
        # Fill should pull every state hot: nothing cold remains.
        assert partitioned.n_cold == 0
        outcome = run_base_spap(partitioned, b"abcdef", config, bins)
        baseline = run_baseline_ap(network, b"abcdef", config)
        assert verify_equivalence(baseline, outcome)

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_random_equivalence(self, seed):
        rng = random.Random(seed)
        network = random_network(rng, n_automata=rng.randint(1, 4))
        capacity = max(a.n_states for a in network.automata) + rng.randint(0, 10)
        config = _config(capacity)
        profile_data = random_input(rng, rng.randint(1, 8))
        test_data = random_input(rng, rng.randint(1, 40))
        partitioned, bins = prepare_partition(network, profile_data, config)
        baseline = run_baseline_ap(network, test_data, config)
        spap = run_base_spap(partitioned, test_data, config, bins)
        assert verify_equivalence(baseline, spap)
        cpu = run_ap_cpu(partitioned, test_data, config, bins)
        assert verify_equivalence(baseline, cpu)


class TestAPCPU:
    def test_cpu_time_charged_per_work(self):
        network = _many_chains(2)
        config = _config(100)
        model = CPUCostModel(symbol_ns=100.0, report_ns=1000.0)
        partitioned, bins = prepare_partition(network, b"zz", config, fill=False)
        outcome = run_ap_cpu(partitioned, b"abcdefzz", config, bins, model)
        assert outcome.mode == "cpu"
        assert outcome.n_intermediate_reports == 2
        assert outcome.cpu_seconds > 0
        assert outcome.spap_cycles == 0

    def test_no_reports_no_cpu_time(self):
        network = _many_chains(2)
        config = _config(100)
        partitioned, bins = prepare_partition(network, b"zz", config, fill=False)
        outcome = run_ap_cpu(partitioned, b"zzzz", config, bins)
        assert outcome.cpu_seconds == 0.0

    def test_seconds_combines_ap_and_cpu(self):
        network = _many_chains(2)
        config = _config(100)
        model = CPUCostModel(symbol_ns=100.0, report_ns=1000.0)
        partitioned, bins = prepare_partition(network, b"zz", config, fill=False)
        outcome = run_ap_cpu(partitioned, b"abcdefzz", config, bins, model)
        ap_seconds = config.cycles_to_seconds(outcome.base_cycles)
        assert outcome.seconds(config) == pytest.approx(ap_seconds + outcome.cpu_seconds)


class TestCPUCostModel:
    def test_linear(self):
        model = CPUCostModel(symbol_ns=100.0, report_ns=1000.0)
        assert model.seconds(10, 2) == pytest.approx((1000 + 2000) * 1e-9)

    def test_zero_work(self):
        assert CPUCostModel().seconds(0, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CPUCostModel().seconds(-1, 0)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            CPUCostModel(symbol_ns=0.0)
