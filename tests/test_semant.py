"""Tests for repro.semant: dead-state prover, static predictor, differential.

The abstract interpreter's verdicts are one-sided proofs (DESIGN.md §10):
"dead" must never be contradicted by any simulation, which is what the
randomized soundness properties and the full-registry gate at the bottom
check.  The fixtures at the top pin the intended semantics of each verdict
on hand-built automata.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.partition import partition_network
from repro.experiments.config import ExperimentConfig
from repro.nfa.automaton import Automaton, Network, StartKind
from repro.nfa.build import literal_chain
from repro.nfa.symbolset import SymbolSet
from repro.semant.absint import (
    analyze_automaton_semantics,
    analyze_network_semantics,
)
from repro.semant.app import semant_app
from repro.semant.differential import agreement_fraction, differential_report
from repro.semant.predict import predict_hot_cold
from repro.sim.reference import reference_run
from repro.workloads.registry import app_names

from helpers import random_input, random_network, seeds


def _blockade() -> Automaton:
    """start('a') -> empty-set state -> reporter: the reporter is provably
    dead (its only enabling path crosses a state that can never activate)."""
    automaton = Automaton("blockade")
    s0 = automaton.add_state(SymbolSet.from_symbols("a"), start=StartKind.ALL_INPUT)
    s1 = automaton.add_state(SymbolSet.empty())
    s2 = automaton.add_state(
        SymbolSet.from_symbols("c"), reporting=True, report_code="r"
    )
    automaton.add_edge(s0, s1)
    automaton.add_edge(s1, s2)
    return automaton


class TestAbstractInterpreter:
    def test_empty_handoff_blockade(self):
        facts = analyze_automaton_semantics(_blockade())
        # The empty-set state is *enableable* (its predecessor activates on
        # 'a') but can never activate, so everything behind it is dead.
        assert not facts.statically_dead[0]
        assert not facts.statically_dead[1]
        assert not facts.activatable[1]
        assert facts.statically_dead[2]
        # Pure graph reachability would call the reporter live: that gap is
        # exactly the semantically-blocked verdict (SPAP-S004 vs SPAP-N004).
        assert facts.graph_reachable[2]
        assert facts.semantically_blocked[2]

    def test_unreachable_state_dead_but_not_blocked(self):
        automaton = Automaton("orphan")
        automaton.add_state(SymbolSet.from_symbols("a"), start=StartKind.ALL_INPUT)
        orphan = automaton.add_state(SymbolSet.from_symbols("b"))
        facts = analyze_automaton_semantics(automaton)
        assert facts.statically_dead[orphan]
        assert not facts.graph_reachable[orphan]
        assert not facts.semantically_blocked[orphan]

    def test_start_states_always_enableable(self):
        automaton = Automaton("starts")
        automaton.add_state(SymbolSet.from_symbols("a"), start=StartKind.ALL_INPUT)
        automaton.add_state(
            SymbolSet.from_symbols("b"), start=StartKind.START_OF_DATA
        )
        facts = analyze_automaton_semantics(automaton)
        assert facts.enableable.all()

    def test_never_reporting_branch(self):
        automaton = Automaton("silent")
        s0 = automaton.add_state(
            SymbolSet.from_symbols("a"), start=StartKind.ALL_INPUT
        )
        dead_end = automaton.add_state(SymbolSet.from_symbols("b"))
        reporter = automaton.add_state(
            SymbolSet.from_symbols("c"), reporting=True, report_code="r"
        )
        automaton.add_edge(s0, dead_end)
        automaton.add_edge(s0, reporter)
        facts = analyze_automaton_semantics(automaton)
        assert facts.never_reporting[dead_end]
        # s0 feeds the reporter, the reporter fires: both are observable.
        assert facts.can_report[s0]
        assert facts.can_report[reporter]
        assert not facts.never_reporting[s0]

    def test_empty_set_reporter_cannot_fire(self):
        """A reporting state with an empty symbol-set never activates, so it
        never fires — it must not seed the backward pass."""
        automaton = Automaton("mute")
        s0 = automaton.add_state(
            SymbolSet.from_symbols("a"), start=StartKind.ALL_INPUT
        )
        mute = automaton.add_state(SymbolSet.empty(), reporting=True)
        automaton.add_edge(s0, mute)
        facts = analyze_automaton_semantics(automaton)
        assert not facts.can_report[s0]
        assert facts.never_reporting[s0]

    def test_cycle_fixpoint(self):
        automaton = Automaton("cycle")
        s0 = automaton.add_state(
            SymbolSet.from_symbols("a"), start=StartKind.ALL_INPUT
        )
        s1 = automaton.add_state(SymbolSet.from_symbols("b"))
        s2 = automaton.add_state(
            SymbolSet.from_symbols("c"), reporting=True, report_code="r"
        )
        automaton.add_edge(s0, s1)
        automaton.add_edge(s1, s2)
        automaton.add_edge(s2, s1)  # back edge: {s1, s2} form an SCC
        facts = analyze_automaton_semantics(automaton)
        assert facts.enableable.all()
        assert facts.can_report.all()
        # The cycle feeds 'b' and 'c' into s1's inflow, plus 'a' from s0.
        assert set(facts.inflow[s1].symbols()) == {ord("a"), ord("c")}

    def test_network_concatenation(self):
        network = Network("pair")
        network.add(_blockade())
        network.add(literal_chain(b"xy", name="chain"))
        facts = analyze_network_semantics(network)
        assert facts.enableable.shape == (network.n_states,)
        assert facts.n_statically_dead == 1
        assert len(facts.per_automaton) == 2

    def test_empty_network(self):
        facts = analyze_network_semantics(Network("empty"))
        assert facts.enableable.shape == (0,)
        assert facts.n_statically_dead == 0

    @settings(max_examples=50, deadline=None)
    @given(seeds)
    def test_soundness_on_random_networks(self, seed):
        """No simulation may contradict a proof: truth-enabled => not dead,
        observed report => can_report."""
        rng = random.Random(seed)
        network = random_network(rng)
        facts = analyze_network_semantics(network)
        data = random_input(rng, rng.randint(0, 40))
        result = reference_run(network, data)
        truth = result.hot_mask()
        assert not np.any(truth & facts.statically_dead)
        for gid in result.reports[:, 1]:
            assert not facts.statically_dead[gid]
            assert facts.can_report[gid]


class TestStaticPredictor:
    def test_shapes_and_types(self):
        network = Network("n")
        network.add(literal_chain(b"abc"))
        prediction = predict_hot_cold(network, horizon=1024)
        n = network.n_states
        assert prediction.hot_mask.shape == (n,)
        assert prediction.predicted_hot_mask.shape == (n,)
        assert prediction.hot_mask.dtype == bool
        assert prediction.layers.shape == (network.n_automata,)
        assert prediction.horizon == 1024

    def test_dead_states_never_raw_hot(self):
        network = Network("n")
        network.add(_blockade())
        prediction = predict_hot_cold(network, horizon=1 << 30)
        facts = analyze_network_semantics(network)
        assert not np.any(prediction.hot_mask & facts.statically_dead)

    def test_horizon_monotone(self):
        rng = random.Random(7)
        network = random_network(rng)
        small = predict_hot_cold(network, horizon=16)
        large = predict_hot_cold(network, horizon=1 << 20)
        # More enabling opportunities can only add hot states.
        assert np.all(large.hot_mask | ~small.hot_mask)

    def test_anchored_automata_launch_once(self):
        """A fully START_OF_DATA network gets a one-shot budget: a deep
        selective chain stays cold no matter the nominal horizon."""
        network = Network("n")
        network.add(
            literal_chain(b"abcdefgh", name="anchored", start=StartKind.START_OF_DATA)
        )
        prediction = predict_hot_cold(network, horizon=1 << 40)
        # Only the start itself has log2 weight 0 (expectation exactly 1).
        assert prediction.hot_mask[0]
        assert not prediction.hot_mask[1:].any()

    def test_partitioner_consumes_layers(self):
        rng = random.Random(3)
        network = random_network(rng)
        prediction = predict_hot_cold(network)
        partitioned = partition_network(network, prediction.layers)
        partitioned.validate()
        assert partitioned.n_hot_original + partitioned.n_cold == network.n_states

    def test_bad_horizon_rejected(self):
        network = Network("n")
        network.add(literal_chain(b"ab"))
        with pytest.raises(ValueError):
            predict_hot_cold(network, horizon=0)


class TestDifferential:
    def _fixture(self):
        network = Network("net")
        network.add(_blockade())
        facts = analyze_network_semantics(network)
        zeros = np.zeros(network.n_states, dtype=bool)
        return network, facts, zeros

    def test_clean_report(self):
        network, facts, zeros = self._fixture()
        report = differential_report(
            network, facts, profiled_hot=zeros, static_hot=zeros, truth_hot=zeros
        )
        assert report.ok
        assert "SPAP-S001" not in report.codes()

    def test_s001_truth_contradicts_proof(self):
        network, facts, zeros = self._fixture()
        truth = zeros.copy()
        truth[2] = True  # the provably-dead reporter
        report = differential_report(
            network, facts, profiled_hot=zeros, static_hot=zeros, truth_hot=truth
        )
        assert not report.ok
        assert "SPAP-S001" in [d.code for d in report.errors]

    def test_s002_report_from_dead_state(self):
        network, facts, zeros = self._fixture()
        report = differential_report(
            network,
            facts,
            profiled_hot=zeros,
            static_hot=zeros,
            truth_hot=zeros,
            truth_report_states=[2],
        )
        assert not report.ok
        assert "SPAP-S002" in [d.code for d in report.errors]

    def test_s003_profiler_keeps_dead_state_hot(self):
        network, facts, zeros = self._fixture()
        profiled = zeros.copy()
        profiled[2] = True
        report = differential_report(
            network, facts, profiled_hot=profiled, static_hot=profiled,
            truth_hot=zeros,
        )
        assert report.ok  # waste is a warning, not an error
        assert "SPAP-S003" in [d.code for d in report.warnings]

    def test_s004_semantically_blocked(self):
        network, facts, zeros = self._fixture()
        report = differential_report(
            network, facts, profiled_hot=zeros, static_hot=zeros, truth_hot=zeros
        )
        assert "SPAP-S004" in [d.code for d in report.warnings]

    def test_s005_never_reporting_hot(self):
        automaton = Automaton("silent")
        s0 = automaton.add_state(
            SymbolSet.from_symbols("a"), start=StartKind.ALL_INPUT
        )
        automaton.add_state(SymbolSet.from_symbols("b"))
        automaton.add_edge(s0, 1)
        network = Network("net")
        network.add(automaton)
        facts = analyze_network_semantics(network)
        hot = np.ones(2, dtype=bool)
        report = differential_report(
            network, facts, profiled_hot=hot, static_hot=hot,
            truth_hot=np.zeros(2, dtype=bool),
        )
        assert "SPAP-S005" in [d.code for d in report.warnings]

    def test_s006_drift_aggregate(self):
        network, facts, zeros = self._fixture()
        static = zeros.copy()
        static[0] = True
        report = differential_report(
            network, facts, profiled_hot=zeros, static_hot=static, truth_hot=zeros
        )
        drift = report.by_code("SPAP-S006")
        assert len(drift) == 1  # one aggregate line, not one per state
        assert "1/3" in drift[0].message

    def test_shape_mismatch_rejected(self):
        network, facts, zeros = self._fixture()
        with pytest.raises(ValueError):
            differential_report(
                network, facts, profiled_hot=zeros[:-1], static_hot=zeros,
                truth_hot=zeros,
            )

    def test_agreement_fraction(self):
        a = np.array([True, False, True])
        b = np.array([True, True, True])
        assert agreement_fraction(a, b) == pytest.approx(2 / 3)
        assert agreement_fraction(np.zeros(0, bool), np.zeros(0, bool)) == 1.0
        with pytest.raises(ValueError):
            agreement_fraction(a, b[:-1])


class TestSemantApp:
    _CONFIG = ExperimentConfig(scale=64, input_len=512)

    def test_outcome_shape(self):
        outcome = semant_app("Bro217", self._CONFIG)
        assert outcome.summary.app == "Bro217"
        assert outcome.summary.n_states > 0
        payload = outcome.to_json()
        assert set(payload) == {"summary", "report"}
        assert 0.0 <= payload["summary"]["static_accuracy"] <= 1.0
        assert "proven dead" in outcome.summary.render()

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            semant_app("NotAnApp", self._CONFIG)

    @pytest.mark.parametrize("abbr", app_names())
    def test_soundness_gate(self, abbr):
        """The CI gate: no SPAP-S hard error on any registry application."""
        outcome = semant_app(abbr, self._CONFIG)
        assert outcome.ok, outcome.report.render_text(verbose=True)
