"""Property tests: determinized/transformed automata vs the reference engine.

The subset-construction DFA (``nfa/determinize.py``) and the network
transforms (``nfa/transforms.py``) both claim to preserve matching
behaviour.  These tests check that claim directly against the set-based
reference simulator (``sim/reference.py``) — the transcription of the paper
§II-A semantics — on randomized networks and inputs, rather than against
the bit-parallel engine (which has its own equivalence suite).
"""

import random

import numpy as np
from hypothesis import assume, given, settings

from repro.cost.explore import explore_subset_construction
from repro.nfa.automaton import Network, StartKind
from repro.nfa.build import literal_chain
from repro.nfa.determinize import (
    DeterminizeError,
    alphabet_classes,
    class_representatives,
    determinize,
    flatten_network,
)
from repro.nfa.transforms import duplicate_network, merge_common_prefixes
from repro.sim.reference import reference_run
from repro.sim.result import reports_equal

from helpers import random_automaton, random_input, seeds

#: Subset construction is exponential in the worst case; random cyclic
#: networks are kept small enough that blowup past this cap is rare, and
#: the rare case is discarded (it is DeterminizeError's own test's job).
_DFA_STATE_CAP = 4096


def _small_network(rng: random.Random, start: StartKind = StartKind.ALL_INPUT) -> Network:
    """A random network small enough to determinize."""
    network = Network("rand-small")
    for index in range(rng.randint(1, 3)):
        network.add(
            random_automaton(
                rng, n_states=rng.randint(1, 5), name=f"nfa{index}", start=start
            )
        )
    return network


def _patterns_net(*patterns):
    network = Network("n")
    for index, pattern in enumerate(patterns):
        network.add(literal_chain(pattern, name=f"p{index}", report_code=f"r{index}"))
    return network


class TestDeterminizeVsReference:
    @settings(max_examples=60, deadline=None)
    @given(seeds)
    def test_random_networks_equivalent(self, seed):
        rng = random.Random(seed)
        network = _small_network(rng)
        data = random_input(rng, rng.randint(0, 30))
        try:
            dfa = determinize(network, max_states=_DFA_STATE_CAP)
        except DeterminizeError:
            assume(False)  # pathological blowup: discard, don't fail
        expected = reference_run(network, data)
        assert reports_equal(dfa.run(data), expected.reports)

    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_start_of_data_networks_equivalent(self, seed):
        rng = random.Random(seed)
        network = _small_network(rng, start=StartKind.START_OF_DATA)
        data = random_input(rng, rng.randint(0, 20))
        dfa = determinize(network, max_states=_DFA_STATE_CAP)
        expected = reference_run(network, data)
        assert reports_equal(dfa.run(data), expected.reports)

    def test_empty_input(self):
        network = _patterns_net(b"ab")
        dfa = determinize(network)
        assert reports_equal(dfa.run(b""), reference_run(network, b"").reports)


class TestDeterminizeHelpers:
    """The flattened tables and alphabet classes ``determinize`` and the
    budgeted explorer (``repro.cost.explore``) now share."""

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_alphabet_classes_are_a_partition(self, seed):
        rng = random.Random(seed)
        network = _small_network(rng)
        class_of, n_classes = alphabet_classes(network)
        assert class_of.shape == (256,)
        assert sorted(set(int(c) for c in class_of)) == list(range(n_classes))
        representative = class_representatives(class_of, n_classes)
        for cls in range(n_classes):
            assert class_of[representative[cls]] == cls

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_class_members_are_indistinguishable(self, seed):
        """No symbol-set in the network separates two symbols of one class."""
        rng = random.Random(seed)
        network = _small_network(rng)
        class_of, n_classes = alphabet_classes(network)
        tables = flatten_network(network)
        representative = class_representatives(class_of, n_classes)
        for symbol in range(0, 256, 7):  # a sample is plenty
            twin = int(representative[class_of[symbol]])
            for symbol_set in tables.symbol_sets:
                assert symbol_set.matches(symbol) == symbol_set.matches(twin)

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_explorer_verdict_is_order_independent_of_determinize(self, seed):
        """The BFS explorer and determinize's insertion-order walk must agree
        exactly: same safe/unsafe verdict at the same budget, and on safe
        networks the same subset-state count (DESIGN.md §12 soundness)."""
        rng = random.Random(seed)
        network = _small_network(rng)
        budget = rng.randint(1, _DFA_STATE_CAP)
        outcome = explore_subset_construction(network, budget=budget)
        try:
            dfa = determinize(network, max_states=budget)
        except DeterminizeError:
            assert not outcome.dfa_safe
        else:
            assert outcome.dfa_safe
            assert dfa.n_states == outcome.n_subset_states


class TestDuplicateVsReference:
    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_copy_zero_preserves_reports(self, seed):
        """Copy 0 keeps its global ids, so its reports match the original's."""
        rng = random.Random(seed)
        network = _small_network(rng)
        copies = rng.randint(1, 3)
        doubled = duplicate_network(network, copies)
        data = random_input(rng, rng.randint(0, 25))
        original = reference_run(network, data)
        dup = reference_run(doubled, data)
        first_copy = dup.reports[dup.reports[:, 1] < network.n_states]
        assert reports_equal(first_copy, original.reports)

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_match_ends_multiply(self, seed):
        """Every copy reports at exactly the original's match positions."""
        rng = random.Random(seed)
        network = _small_network(rng)
        copies = rng.randint(1, 3)
        doubled = duplicate_network(network, copies)
        data = random_input(rng, rng.randint(0, 25))
        original = reference_run(network, data)
        dup = reference_run(doubled, data)
        assert np.array_equal(
            np.sort(dup.reports[:, 0]),
            np.sort(np.tile(original.reports[:, 0], copies)),
        )


class TestMergeVsReference:
    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_match_ends_preserved(self, seed):
        """The trie reports at exactly the distinct positions the chains do.

        Duplicate patterns collapse onto one trie node (their report codes
        merge), so the comparison is on distinct match-end positions.
        """
        rng = random.Random(seed)
        alphabet = b"ab"
        patterns = [
            bytes(rng.choice(alphabet) for _ in range(rng.randint(1, 5)))
            for _ in range(rng.randint(1, 6))
        ]
        network = _patterns_net(*patterns)
        merged = merge_common_prefixes(network)
        data = random_input(rng, 30, alphabet)
        original = reference_run(network, data)
        trie = reference_run(merged, data)
        assert np.array_equal(
            np.unique(original.reports[:, 0]), np.unique(trie.reports[:, 0])
        )

    def test_distinct_patterns_keep_multiplicity(self):
        network = _patterns_net(b"abX", b"abY", b"q")
        merged = merge_common_prefixes(network)
        data = b".abX.abY.q.abX"
        original = reference_run(network, data)
        trie = reference_run(merged, data)
        assert np.array_equal(
            np.sort(original.reports[:, 0]), np.sort(trie.reports[:, 0])
        )

    def test_merged_codes_cover_originals(self):
        """Every original report code survives (possibly '+'-combined)."""
        network = _patterns_net(b"ab", b"ab", b"ac")
        merged = merge_common_prefixes(network)
        combined = "+".join(
            state.report_code or ""
            for _g, _a, state in merged.global_states()
            if state.reporting
        )
        for code in ("r0", "r1", "r2"):
            assert code in combined
