"""Tests for the regex parser and Glushkov construction.

The ground truth for matching semantics is Python's ``re``: our unanchored
homogeneous NFA must report at position ``i`` exactly when some substring
ending at ``i`` fully matches the pattern.
"""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nfa.automaton import StartKind
from repro.nfa.regex import RegexError, compile_regex, parse
from repro.sim import reference_run


def match_end_positions(pattern: str, text: str) -> set:
    """Oracle: positions where some substring ending there matches fully."""
    compiled = re.compile(pattern)
    ends = set()
    for end in range(1, len(text) + 1):
        for start in range(end):
            if compiled.fullmatch(text, start, end):
                ends.add(end - 1)
                break
    return ends


def nfa_end_positions(pattern: str, text: str) -> set:
    automaton = compile_regex(pattern)
    from repro.nfa.automaton import Network

    network = Network("t")
    network.add(automaton)
    result = reference_run(network, text.encode())
    return {int(position) for position, _gid in result.reports}


CASES = [
    ("abc", "xxabcxabc"),
    ("a|b", "ab"),
    ("ab|cd", "xabxcdx"),
    ("a*b", "aaab b"),
    ("a+b", "b aab"),
    ("a?b", "ab b"),
    ("(ab)+", "ababab"),
    ("a(bc|de)f", "xabcf adef"),
    ("[a-c]x", "ax bx cx dx"),
    ("[^a]x", "ax bx"),
    ("a.c", "abc axc a c"),
    ("a{3}", "aaaa"),
    ("a{2,4}b", "aab aaaab ab"),
    ("a{2,}b", "ab aab aaaab"),
    ("ab*c", "ac abc abbbc"),
    ("(a|b)(c|d)", "ac bd bc"),
    ("a((bc)|(cd)+)f", "xabcf acdcdf"),
]


@pytest.mark.parametrize("pattern,text", CASES)
def test_matches_python_re(pattern, text):
    assert nfa_end_positions(pattern, text) == match_end_positions(pattern, text)


class TestParserErrors:
    @pytest.mark.parametrize(
        "bad",
        ["", "a(", "a)", "[", "[]", "a{2,1}", "*a", "a|", "|a", "a\\x0", "a{99999}"],
    )
    def test_rejects(self, bad):
        with pytest.raises(RegexError):
            parse(bad)

    def test_nullable_pattern_rejected(self):
        with pytest.raises(RegexError):
            compile_regex("a*")

    def test_nullable_alternation_rejected(self):
        with pytest.raises(RegexError):
            compile_regex("(a?)|(b?)")


class TestEscapes:
    def test_hex_escape(self):
        automaton = compile_regex(r"\x41")
        assert automaton.state(0).symbol_set.matches("A")

    def test_digit_class(self):
        automaton = compile_regex(r"\d")
        assert automaton.state(0).symbol_set.matches("5")
        assert not automaton.state(0).symbol_set.matches("a")

    def test_escaped_metachar(self):
        automaton = compile_regex(r"\.")
        assert automaton.state(0).symbol_set.matches(".")
        assert not automaton.state(0).symbol_set.matches("x")


class TestStructure:
    def test_state_count_literal(self):
        assert compile_regex("abcd").n_states == 4

    def test_counted_repeat_expands_states(self):
        assert compile_regex("a{10}").n_states == 10
        assert compile_regex("a{2,5}").n_states == 5

    def test_unanchored_start_kind(self):
        automaton = compile_regex("ab")
        assert automaton.state(0).start is StartKind.ALL_INPUT

    def test_anchored_start_kind(self):
        automaton = compile_regex("ab", anchored=True)
        assert automaton.state(0).start is StartKind.START_OF_DATA

    def test_anchored_semantics(self):
        from repro.nfa.automaton import Network

        network = Network("t")
        network.add(compile_regex("ab", anchored=True))
        hits = reference_run(network, b"abab").reports
        assert hits.tolist() == [[1, 1]]

    def test_report_code_propagates(self):
        automaton = compile_regex("ab", name="rule7", report_code="R7")
        reporting = [s for s in automaton.states() if s.reporting]
        assert all(s.report_code == "R7" for s in reporting)

    def test_plus_loop_has_cycle(self):
        from repro.nfa.analysis import analyze_automaton

        automaton = compile_regex("x(ab)+y")
        topology = analyze_automaton(automaton)
        assert (topology.scc_size > 1).any()


# Random fuzz: literal-ish patterns assembled from safe pieces.
_pieces = st.sampled_from(["a", "b", "c", "ab", "a|b", "[ab]", "a?", "b+", "(ab)?", "c*", "a{2}"])


@settings(max_examples=60, deadline=None)
@given(st.lists(_pieces, min_size=1, max_size=5), st.text(alphabet="abc", max_size=12))
def test_random_patterns_match_re(pieces, text):
    pattern = "".join(pieces)
    try:
        nfa_ends = nfa_end_positions(pattern, text)
    except RegexError:
        return  # nullable pattern; inexpressible by design
    assert nfa_ends == match_end_positions(pattern, text)
