"""Shared test utilities: random network generation and hypothesis strategies."""

from __future__ import annotations

import random
from typing import List, Optional

from hypothesis import strategies as st

from repro.nfa.automaton import Automaton, Network, StartKind
from repro.nfa.symbolset import SymbolSet

#: A small alphabet keeps random inputs likely to hit transitions.
SMALL_ALPHABET = b"abcd"


def random_symbol_set(rng: random.Random, alphabet: bytes = SMALL_ALPHABET) -> SymbolSet:
    size = rng.randint(1, len(alphabet))
    return SymbolSet.from_symbols(rng.sample(list(alphabet), size))


def random_automaton(
    rng: random.Random,
    *,
    n_states: Optional[int] = None,
    cyclic: bool = True,
    name: str = "rand",
    start: StartKind = StartKind.ALL_INPUT,
) -> Automaton:
    """A random connected-ish automaton over the small alphabet.

    Guarantees at least one start and one reporting state.  With
    ``cyclic=True``, back edges (and hence SCCs) may appear.
    """
    n = n_states if n_states is not None else rng.randint(1, 12)
    automaton = Automaton(name)
    for index in range(n):
        automaton.add_state(
            random_symbol_set(rng),
            start=start if index == 0 else StartKind.NONE,
            reporting=index == n - 1,
            report_code=f"{name}:{index}" if index == n - 1 else None,
        )
    # A spine keeps every state reachable.
    for index in range(1, n):
        automaton.add_edge(rng.randint(0, index - 1), index)
    # Extra random edges.
    extra = rng.randint(0, n)
    for _ in range(extra):
        src = rng.randrange(n)
        if cyclic:
            dst = rng.randrange(n)
        else:
            if src == n - 1:
                continue
            dst = rng.randint(src + 1, n - 1)
        automaton.add_edge(src, dst)
    # A few extra reporting states make report comparisons more sensitive.
    for _ in range(rng.randint(0, 2)):
        state = automaton.state(rng.randrange(n))
        state.reporting = True
        if state.report_code is None:
            state.report_code = f"{name}:{state.sid}"
    # Occasionally make a reporter end-of-data-only (exercises eod paths).
    if rng.random() < 0.3:
        reporters = automaton.reporting_states()
        automaton.state(rng.choice(reporters)).eod = True
    return automaton


def random_network(
    rng: random.Random,
    *,
    n_automata: Optional[int] = None,
    cyclic: bool = True,
    start: StartKind = StartKind.ALL_INPUT,
) -> Network:
    count = n_automata if n_automata is not None else rng.randint(1, 5)
    network = Network("rand-net")
    for index in range(count):
        network.add(
            random_automaton(rng, cyclic=cyclic, name=f"nfa{index}", start=start)
        )
    return network


def random_input(rng: random.Random, length: int, alphabet: bytes = SMALL_ALPHABET) -> bytes:
    return bytes(rng.choice(alphabet) for _ in range(length))


#: Hypothesis strategy: a seed we expand into (network, input) via random.Random,
#: which shrinks better than composite object strategies for graph-shaped data.
seeds = st.integers(min_value=0, max_value=2**32 - 1)
input_lengths = st.integers(min_value=0, max_value=40)
