"""Tests for the NFA data model and construction helpers."""

import pytest

from repro.nfa.automaton import Automaton, Network, StartKind
from repro.nfa.build import add_chain, literal_chain, self_loop_prefix, symbolset_chain
from repro.nfa.symbolset import SymbolSet


class TestAutomaton:
    def test_add_state_and_edges(self):
        a = Automaton("t")
        s0 = a.add_state(SymbolSet.single("a"), start=StartKind.ALL_INPUT)
        s1 = a.add_state(SymbolSet.single("b"), reporting=True, report_code="r")
        a.add_edge(s0, s1)
        assert a.n_states == 2
        assert a.n_edges == 1
        assert a.successors(s0) == (s1,)
        assert a.successors(s1) == ()

    def test_edge_idempotent(self):
        a = literal_chain(b"ab")
        a.add_edge(0, 1)
        a.add_edge(0, 1)
        assert a.n_edges == 1

    def test_bad_edge_rejected(self):
        a = literal_chain(b"ab")
        with pytest.raises(IndexError):
            a.add_edge(0, 9)
        with pytest.raises(IndexError):
            a.state(-1)

    def test_predecessors_map(self):
        a = literal_chain(b"abc")
        a.add_edge(0, 2)
        preds = a.predecessors_map()
        assert preds[0] == []
        assert preds[1] == [0]
        assert sorted(preds[2]) == [0, 1]

    def test_copy_independent(self):
        a = literal_chain(b"ab")
        b = a.copy("b")
        b.add_state(SymbolSet.single("z"))
        assert a.n_states == 2
        assert b.n_states == 3
        assert b.name == "b"

    def test_induced_remaps(self):
        a = literal_chain(b"abcd")
        sub, mapping = a.induced([1, 2])
        assert sub.n_states == 2
        assert mapping == {1: 0, 2: 1}
        assert sub.successors(0) == (1,)

    def test_induced_drops_cross_edges(self):
        a = literal_chain(b"abcd")
        sub, _ = a.induced([0, 2])
        assert sub.n_edges == 0

    def test_validate_no_states(self):
        with pytest.raises(ValueError):
            Automaton("empty").validate()

    def test_validate_no_start(self):
        a = Automaton("t")
        a.add_state(SymbolSet.single("a"))
        with pytest.raises(ValueError):
            a.validate()

    def test_edges_iterator(self):
        a = literal_chain(b"abc")
        assert list(a.edges()) == [(0, 1), (1, 2)]


class TestNetwork:
    def _net(self):
        network = Network("n")
        network.add(literal_chain(b"ab", name="p0"))
        network.add(literal_chain(b"cde", name="p1"))
        return network

    def test_offsets_and_global_id(self):
        network = self._net()
        assert network.offsets() == [0, 2]
        assert network.global_id(1, 2) == 4

    def test_locate_round_trip(self):
        network = self._net()
        for gid in range(network.n_states):
            a_index, sid = network.locate(gid)
            assert network.global_id(a_index, sid) == gid

    def test_locate_out_of_range(self):
        network = self._net()
        with pytest.raises(IndexError):
            network.locate(5)
        with pytest.raises(IndexError):
            network.locate(-1)

    def test_global_states_order(self):
        network = self._net()
        gids = [gid for gid, _a, _s in network.global_states()]
        assert gids == list(range(5))

    def test_counts(self):
        network = self._net()
        assert network.n_states == 5
        assert network.n_edges == 3
        assert network.reporting_count() == 2
        assert network.start_count() == 2

    def test_repr(self):
        assert "states=5" in repr(self._net())


class TestBuilders:
    def test_literal_chain_from_str(self):
        a = literal_chain("xy")
        assert a.state(0).symbol_set.matches("x")

    def test_symbolset_chain_rejects_empty(self):
        with pytest.raises(ValueError):
            symbolset_chain([])

    def test_add_chain_appends(self):
        a = literal_chain(b"ab")
        tail = add_chain(a, 1, [SymbolSet.single("c")], reporting_tail=True)
        assert a.n_states == 3
        assert a.state(tail).reporting
        assert a.successors(1) == (2,)

    def test_add_chain_empty_noop(self):
        a = literal_chain(b"ab")
        tail = add_chain(a, 1, [])
        assert tail == 1
        assert a.n_states == 2

    def test_self_loop_prefix(self):
        a = literal_chain(b"ab")
        self_loop_prefix(a, 0)
        assert (0, 0) in list(a.edges())
