"""Tests for the workload generator building blocks."""

import numpy as np
import pytest

from repro.nfa.analysis import analyze_automaton, analyze_network
from repro.nfa.automaton import Network, StartKind
from repro.sim import compile_network, reference_run, run
from repro.workloads.generators import (
    ClassChainSpec,
    class_chain_network,
    class_of_width,
    dotstar_network,
    patterns_network,
    representative_match,
    tree_network,
)


class TestClassOfWidth:
    def test_width_respected(self):
        rng = np.random.default_rng(0)
        for width in [1, 5, 100, 256]:
            assert len(class_of_width(rng, width)) == width

    def test_width_clamped(self):
        rng = np.random.default_rng(0)
        assert len(class_of_width(rng, 0)) == 1
        assert len(class_of_width(rng, 500)) == 256

    def test_alphabet_restriction(self):
        rng = np.random.default_rng(0)
        s = class_of_width(rng, 3, b"ACGT")
        assert all(chr(v) in "ACGT" for v in s.symbols())

    def test_alphabet_width_clamped(self):
        rng = np.random.default_rng(0)
        assert len(class_of_width(rng, 10, b"ACGT")) == 4


class TestClassChains:
    def _spec(self, **kwargs):
        defaults = dict(
            n_nfas=5,
            length=lambda rng: 4,
            width=lambda rng: 2,
            name="cc",
        )
        defaults.update(kwargs)
        return ClassChainSpec(**defaults)

    def test_shape(self):
        network = class_chain_network(self._spec(), seed=1)
        assert network.n_automata == 5
        assert network.n_states == 20
        for automaton in network.automata:
            assert len(automaton.start_states()) == 1
            assert len(automaton.reporting_states()) == 1
            assert automaton.n_edges == 3

    def test_deterministic(self):
        a = class_chain_network(self._spec(), seed=1)
        b = class_chain_network(self._spec(), seed=1)
        assert [s.symbol_set for _g, _a, s in a.global_states()] == [
            s.symbol_set for _g, _a, s in b.global_states()
        ]

    def test_shared_prefix(self):
        network = class_chain_network(self._spec(shared_prefix=2), seed=1)
        first = [a.state(0).symbol_set for a in network.automata]
        second = [a.state(1).symbol_set for a in network.automata]
        assert len(set(first)) == 1
        assert len(set(second)) == 1
        third = [a.state(2).symbol_set for a in network.automata]
        assert len(set(third)) > 1  # beyond the prefix, sets diverge

    def test_start_kind(self):
        network = class_chain_network(self._spec(start=StartKind.START_OF_DATA), seed=1)
        kinds = {a.state(0).start for a in network.automata}
        assert kinds == {StartKind.START_OF_DATA}


class TestDotstar:
    def test_star_state_self_loop(self):
        network = dotstar_network(
            10, lambda r: 3, lambda r: 3, dotstar_fraction=1.0, seed=2
        )
        for automaton in network.automata:
            loops = [s for s, d in automaton.edges() if s == d]
            assert len(loops) == 1
            star = automaton.state(loops[0])
            assert star.symbol_set.is_universal()

    def test_fraction_zero_plain_chains(self):
        network = dotstar_network(
            10, lambda r: 3, lambda r: 3, dotstar_fraction=0.0, seed=2
        )
        assert all(
            not any(s == d for s, d in a.edges()) for a in network.automata
        )

    def test_dotstar_match_semantics(self):
        """Once the prefix matches, a suffix match at ANY later gap reports."""
        network = dotstar_network(
            1, lambda r: 2, lambda r: 2, dotstar_fraction=1.0, seed=3
        )
        automaton = network.automata[0]
        rng = np.random.default_rng(0)
        rep = representative_match(automaton, rng)
        assert rep is not None
        prefix, suffix = rep[:2], rep[-2:]
        data = prefix + b"\x00\x00\x00" + suffix
        result = reference_run(network, data)
        assert result.reports.shape[0] >= 1
        assert result.reports[-1, 0] == len(data) - 1


class TestTrees:
    def test_shape(self):
        network = tree_network(3, depth=3, leaves=7, width=lambda r: 200, seed=4)
        assert network.n_automata == 3
        assert all(a.n_states == 21 for a in network.automata)

    def test_max_topo_is_depth(self):
        network = tree_network(2, depth=3, leaves=4, width=lambda r: 200, seed=4)
        topology = analyze_network(network)
        assert topology.max_topo == 3

    def test_leaves_report(self):
        network = tree_network(1, depth=3, leaves=4, width=lambda r: 200, seed=4)
        assert len(network.automata[0].reporting_states()) == 4


class TestPatternsNetwork:
    def test_pattern_matches_itself(self):
        patterns = [b"hello", b"world"]
        network = patterns_network(patterns, name="p", seed=5)
        result = reference_run(network, b"xxhelloxxworldxx")
        positions = sorted(result.reports[:, 0].tolist())
        assert positions == [6, 13]

    def test_class_widening_keeps_pattern_match(self):
        patterns = [b"signature"]
        network = patterns_network(
            patterns, name="p", class_prob=0.5, class_width=10, seed=6
        )
        result = reference_run(network, b"..signature..")
        assert result.reports.shape[0] >= 1

    def test_wildcards_keep_pattern_match(self):
        network = patterns_network([b"abcdef"], name="p", wildcard_prob=0.4, seed=7)
        result = reference_run(network, b"abcdef")
        assert result.reports.shape[0] == 1

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            patterns_network([b""], name="p")


class TestRepresentativeMatch:
    def test_chain(self):
        network = patterns_network([b"abc"], name="p")
        rng = np.random.default_rng(0)
        rep = representative_match(network.automata[0], rng)
        assert rep == b"abc"

    def test_representative_reaches_report(self):
        network = dotstar_network(
            4, lambda r: 3, lambda r: 4, dotstar_fraction=0.5, seed=8
        )
        rng = np.random.default_rng(0)
        for automaton in network.automata:
            rep = representative_match(automaton, rng)
            assert rep is not None
            single = Network("one")
            single.add(automaton)
            result = reference_run(single, rep)
            assert result.reports.shape[0] >= 1

    def test_unreachable_returns_none(self):
        from repro.nfa.automaton import Automaton
        from repro.nfa.symbolset import SymbolSet

        automaton = Automaton("dead")
        automaton.add_state(SymbolSet.single("a"), start=StartKind.ALL_INPUT)
        automaton.add_state(SymbolSet.single("b"), reporting=True)  # disconnected
        rng = np.random.default_rng(0)
        assert representative_match(automaton, rng) is None
