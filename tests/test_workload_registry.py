"""Tests for the 26-application registry: structure, determinism, signatures.

These run at an aggressive scale (1/64) to stay fast; structural invariants
are scale-independent.
"""

import numpy as np
import pytest

from repro.ap.batching import batch_network
from repro.nfa.analysis import analyze_network
from repro.nfa.automaton import StartKind
from repro.sim import compile_network, run
from repro.workloads.inputs import dna_bytes, plant, token_stream, uniform_bytes
from repro.workloads.registry import APPS, app_names, get_app

FAST_SCALE = 64


class TestRegistryShape:
    def test_26_applications(self):
        assert len(app_names()) == 26

    def test_table2_order_and_groups(self):
        names = app_names()
        assert names[0] == "CAV4k"
        assert names[-1] == "Bro217"
        groups = [APPS[n].group for n in names]
        assert groups.count("high") == 11
        assert groups.count("medium") == 5
        assert groups.count("low") == 10

    def test_get_app_unknown(self):
        with pytest.raises(KeyError):
            get_app("nope")

    def test_paper_stats_recorded(self):
        for abbr in app_names():
            paper = APPS[abbr].paper
            assert paper.states > 0
            assert paper.nfas > 0
            assert paper.rstates > 0

    def test_start_of_data_flags(self):
        flagged = {abbr for abbr in app_names() if APPS[abbr].start_of_data}
        assert flagged == {"SPM", "Fermi"}


@pytest.mark.parametrize("abbr", app_names())
class TestEveryApplication:
    def test_builds_and_validates(self, abbr):
        network = get_app(abbr).build(FAST_SCALE)
        network.validate()
        assert network.n_automata >= 2

    def test_state_budget(self, abbr):
        spec = get_app(abbr)
        network = spec.build(FAST_SCALE)
        target = spec.scaled_states(FAST_SCALE)
        largest = max(a.n_states for a in network.automata)
        # Within one NFA of the budget in either direction.
        assert network.n_states <= target + largest
        assert network.n_states >= min(0.5 * target, target - largest)

    def test_deterministic_build(self, abbr):
        spec = get_app(abbr)
        a = spec.build(FAST_SCALE)
        b = spec.build(FAST_SCALE)
        assert a.n_states == b.n_states
        assert a.n_edges == b.n_edges

    def test_every_nfa_fits_reference_capacity(self, abbr):
        """No single NFA may exceed the reference-scale half-core (1,536 STEs
        at scale 16) — batching requires whole NFAs to fit."""
        network = get_app(abbr).build(FAST_SCALE)
        assert max(a.n_states for a in network.automata) <= 24576 // 16

    def test_input_generation(self, abbr):
        spec = get_app(abbr)
        network = spec.build(FAST_SCALE)
        data = spec.make_input(network, 1024)
        assert len(data) == 1024
        again = spec.make_input(network, 1024)
        assert data == again  # deterministic by default seed

    def test_runs_end_to_end(self, abbr):
        spec = get_app(abbr)
        network = spec.build(FAST_SCALE)
        data = spec.make_input(network, 512)
        result = run(compile_network(network), data)
        assert result.cycles == 512
        assert 0.0 < result.hot_fraction() <= 1.0

    def test_start_kind_consistent(self, abbr):
        spec = get_app(abbr)
        network = spec.build(FAST_SCALE)
        kinds = {
            s.start for _g, _a, s in network.global_states() if s.is_start
        }
        if spec.start_of_data:
            assert kinds == {StartKind.START_OF_DATA}
        else:
            assert kinds == {StartKind.ALL_INPUT}


class TestStructuralSignatures:
    def test_cav4k_mostly_cold(self):
        spec = get_app("CAV4k")
        network = spec.build(FAST_SCALE)
        data = spec.make_input(network, 2048)
        result = run(compile_network(network), data)
        assert result.hot_fraction() < 0.10

    def test_rf_mostly_hot(self):
        spec = get_app("RF1")
        network = spec.build(FAST_SCALE)
        data = spec.make_input(network, 2048)
        result = run(compile_network(network), data)
        assert result.hot_fraction() > 0.85

    def test_lv_large_scc(self):
        network = get_app("LV").build(FAST_SCALE)
        topology = analyze_network(network)
        for t in topology.per_automaton:
            assert t.scc_size.max() >= 0.5 * t.scc_id.size

    def test_er_large_scc(self):
        network = get_app("ER").build(FAST_SCALE)
        topology = analyze_network(network)
        for t in topology.per_automaton:
            assert t.scc_size.max() >= 0.5 * t.scc_id.size

    def test_rf_max_topo_3(self):
        network = get_app("RF1").build(FAST_SCALE)
        assert analyze_network(network).max_topo == 3

    def test_baseline_batches_match_paper_at_reference_scale(self):
        """The headline ratio check: S/C preserved => Table IV batch counts.

        Run at the reference scale for a representative subset (full-suite
        check lives in the benchmarks).
        """
        from repro.experiments.config import ExperimentConfig

        cfg = ExperimentConfig(scale=16)
        for abbr in ["HM500", "DS", "Snort", "Brill", "RF2"]:
            spec = get_app(abbr)
            network = spec.build(16)
            batches = batch_network(network, cfg.half_core.capacity)
            assert len(batches) == spec.paper.baseline_execs, abbr


class TestInputs:
    def test_uniform_deterministic(self):
        assert uniform_bytes(100, 7) == uniform_bytes(100, 7)
        assert uniform_bytes(100, 7) != uniform_bytes(100, 8)

    def test_uniform_alphabet(self):
        data = uniform_bytes(500, 1, b"xy")
        assert set(data) <= {ord("x"), ord("y")}

    def test_dna(self):
        assert set(dna_bytes(200, 3)) <= set(b"ACGT")

    def test_token_stream_tokens_present(self):
        tokens = [b"GET ", b"POST"]
        data = token_stream(400, 5, tokens, noise=0.0)
        assert b"GET " in data or b"POST" in data
        assert len(data) == 400

    def test_token_stream_requires_tokens(self):
        with pytest.raises(ValueError):
            token_stream(10, 1, [])

    def test_plant_inserts(self):
        data = bytes(500)
        planted = plant(data, [b"NEEDLE"], seed=2)
        assert b"NEEDLE" in planted
        assert len(planted) == 500

    def test_plant_skips_oversized(self):
        data = bytes(4)
        assert plant(data, [b"TOOLONG"], seed=2) == data
