"""Tests for the MNRL interchange format and DFA determinization."""

import json
import random

import numpy as np
import pytest
from hypothesis import given, settings

from repro.nfa.automaton import Network, StartKind
from repro.nfa.build import literal_chain
from repro.nfa.determinize import DeterminizeError, determinize
from repro.nfa.mnrl import network_from_mnrl, network_to_mnrl
from repro.nfa.regex import compile_regex
from repro.sim import compile_network, run
from repro.sim.result import reports_equal

from helpers import random_input, random_network, seeds


def _net(*patterns, start=StartKind.ALL_INPUT):
    network = Network("n")
    for index, pattern in enumerate(patterns):
        network.add(literal_chain(pattern, name=f"p{index}", start=start))
    return network


class TestMNRL:
    def test_round_trip_structure(self):
        network = Network("demo")
        network.add(compile_regex("a(b|c)+d", name="r"))
        network.add(literal_chain(b"xyz", start=StartKind.START_OF_DATA))
        loaded = network_from_mnrl(network_to_mnrl(network))
        assert loaded.n_states == network.n_states
        assert loaded.n_edges == network.n_edges
        assert loaded.reporting_count() == network.reporting_count()
        kinds = sorted(
            s.start.value for _g, _a, s in loaded.global_states() if s.is_start
        )
        assert kinds == sorted(
            s.start.value for _g, _a, s in network.global_states() if s.is_start
        )

    def test_document_shape(self):
        network = _net(b"ab")
        document = json.loads(network_to_mnrl(network))
        assert document["id"] == "n"
        assert all(node["type"] == "hState" for node in document["nodes"])
        reporting = [n for n in document["nodes"] if n["report"]]
        assert len(reporting) == 1
        assert reporting[0]["attributes"]["reportId"] == "p0"

    def test_unknown_node_type_rejected(self):
        text = json.dumps({"id": "x", "nodes": [{"id": "a", "type": "upCounter"}]})
        with pytest.raises(ValueError):
            network_from_mnrl(text)

    def test_dangling_edge_rejected(self):
        text = json.dumps({
            "id": "x",
            "nodes": [{
                "id": "a", "type": "hState",
                "attributes": {"symbolSet": "a"},
                "activate": [{"id": "missing"}],
            }],
        })
        with pytest.raises(ValueError):
            network_from_mnrl(text)

    def test_duplicate_id_rejected(self):
        node = {"id": "a", "type": "hState", "attributes": {"symbolSet": "a"}}
        with pytest.raises(ValueError):
            network_from_mnrl(json.dumps({"id": "x", "nodes": [node, node]}))

    def test_missing_nodes_rejected(self):
        with pytest.raises(ValueError):
            network_from_mnrl(json.dumps({"id": "x"}))

    @settings(max_examples=20, deadline=None)
    @given(seeds)
    def test_behaviour_preserved(self, seed):
        rng = random.Random(seed)
        network = random_network(rng)
        data = random_input(rng, 20)
        loaded = network_from_mnrl(network_to_mnrl(network))
        original = run(compile_network(network), data)
        reloaded = run(compile_network(loaded), data)
        assert original.reports.shape == reloaded.reports.shape
        assert np.array_equal(
            np.unique(original.reports[:, 0]), np.unique(reloaded.reports[:, 0])
        )


class TestDeterminize:
    def test_single_chain(self):
        network = _net(b"abc")
        dfa = determinize(network)
        assert dfa.run(b"xxabcxabc").tolist() == [[4, 2], [8, 2]]

    def test_matches_nfa_on_regex(self):
        network = Network("n")
        network.add(compile_regex("a((bc)|(cd)+)f"))
        dfa = determinize(network)
        data = b"abcfacdcdfzzabcdf"
        nfa_result = run(compile_network(network), data)
        assert reports_equal(dfa.run(data), nfa_result.reports)

    def test_start_of_data(self):
        network = _net(b"ab", start=StartKind.START_OF_DATA)
        dfa = determinize(network)
        assert dfa.run(b"abab").tolist() == [[1, 1]]

    def test_alphabet_compression(self):
        network = _net(b"ab")
        dfa = determinize(network)
        # Only 'a', 'b', and everything-else: 3 symbol classes.
        assert dfa.n_classes == 3

    def test_state_cap(self):
        # Many distinct patterns force subset blowup past a tiny cap.
        network = _net(b"abcd", b"bcda", b"cdab", b"dabc")
        with pytest.raises(DeterminizeError):
            determinize(network, max_states=2)

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_equivalent_to_nfa(self, seed):
        """The determinized machine reports exactly what the network does."""
        rng = random.Random(seed)
        network = random_network(rng, n_automata=rng.randint(1, 3))
        data = random_input(rng, rng.randint(0, 30))
        dfa = determinize(network, max_states=20000)
        nfa_result = run(compile_network(network), data)
        assert reports_equal(dfa.run(data), nfa_result.reports)

    def test_dfa_blowup_vs_nfa_size(self):
        """The classic motivation: DFAs can dwarf the NFA they encode."""
        network = Network("n")
        network.add(compile_regex("a.{6}b"))  # overlapping windows
        dfa = determinize(network, max_states=100000)
        assert dfa.n_states > network.n_states
