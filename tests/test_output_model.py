"""Tests for the output-reporting overhead model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.output_model import OutputModel, output_stalls


class TestOutputStalls:
    def test_empty(self):
        assert output_stalls(np.empty((0, 2), dtype=np.int64)) == 0

    def test_one_report_per_cycle_free(self):
        reports = np.array([[0, 1], [1, 2], [2, 3]])
        assert output_stalls(reports, 1) == 0

    def test_burst_stalls(self):
        reports = np.array([[5, 1], [5, 2], [5, 3]])
        assert output_stalls(reports, 1) == 2

    def test_wider_path_absorbs_burst(self):
        reports = np.array([[5, 1], [5, 2], [5, 3]])
        assert output_stalls(reports, 3) == 0
        assert output_stalls(reports, 2) == 1

    def test_mixed_positions(self):
        reports = np.array([[0, 1], [0, 2], [7, 3], [7, 4], [7, 5]])
        assert output_stalls(reports, 1) == 1 + 2

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            output_stalls(np.array([[0, 1]]), 0)

    def test_model_wrapper(self):
        model = OutputModel(reports_per_cycle=2)
        reports = np.array([[3, 1], [3, 2], [3, 3]])
        assert model.stall_cycles(reports) == 1

    def test_model_validation(self):
        with pytest.raises(ValueError):
            OutputModel(reports_per_cycle=0)

    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=4),
    )
    def test_matches_bruteforce(self, positions, bandwidth):
        reports = np.array([[p, 0] for p in positions])
        expected = 0
        for p in set(positions):
            k = positions.count(p)
            expected += -(-k // bandwidth) - 1  # ceil(k/b) - 1
        assert output_stalls(reports, bandwidth) == expected

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=60))
    def test_wider_path_never_worse(self, positions):
        reports = np.array([[p, 0] for p in positions])
        narrow = output_stalls(reports, 1)
        wide = output_stalls(reports, 4)
        assert wide <= narrow
