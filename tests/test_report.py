"""Tests for the EXPERIMENTS.md report generator (on a tiny app subset)."""

import pytest

from repro.experiments import ExperimentConfig, clear_cache
from repro.experiments import report as report_module


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.fixture()
def tiny_suite(monkeypatch):
    """Shrink the registry view so a full report run stays fast."""
    subset = ["Bro217", "LV", "DS03", "RF2", "SPM"]
    monkeypatch.setattr(report_module, "_PAPER_NOTES", report_module._PAPER_NOTES)
    import repro.experiments.figures as figures

    monkeypatch.setattr(figures, "app_names", lambda: list(subset))
    monkeypatch.setattr(
        figures, "_apps_in",
        lambda groups: [a for a in subset if figures.APPS[a].group in groups],
    )
    return subset


def test_generate_report_structure(tiny_suite):
    cfg = ExperimentConfig(scale=64, input_len=512)
    text = report_module.generate_report(cfg)
    assert text.startswith("# EXPERIMENTS")
    # Every experiment section present.
    for heading in (
        "## Fig 1", "## Fig 5", "## Table I", "## Fig 8", "## Table II",
        "## Fig 10", "## Fig 11", "## Fig 12", "## Table IV", "## Fig 13",
    ):
        assert heading in text, heading
    # Paper comparison notes are embedded.
    assert "59% of states are cold" in text
    assert "scale 1/64" in text
    # Rows for the subset apps appear.
    for abbr in tiny_suite:
        assert abbr in text


def test_report_main_writes_file(tiny_suite, tmp_path, monkeypatch):
    cfg = ExperimentConfig(scale=64, input_len=512)
    monkeypatch.setattr(report_module, "default_config", lambda: cfg)
    out = tmp_path / "EXP.md"
    monkeypatch.setattr("sys.argv", ["report", str(out)])
    report_module.main()
    assert out.exists()
    assert "# EXPERIMENTS" in out.read_text()
