"""Tests for the sharded serving grid (``repro.grid``).

Three layers, matching the subsystem:

* shard assignment — deterministic rendezvous hashing, replication,
  minimal reshuffling;
* the network store — build/partition/save/load round-trips, operating
  point enforcement, and the bit-identical fresh-process guarantee
  (a subprocess loads a pickled store and must reproduce the in-process
  pipeline's reports across all five engines);
* the router — pure routing policy (spill/failover/typed errors), the
  merged v2 stats schema, and a real end-to-end grid with a mid-run
  worker kill.
"""

import asyncio
import json
import os
import pickle
import subprocess
import sys
import textwrap

import pytest

import repro
from repro.experiments.config import ExperimentConfig
from repro.experiments.pipeline import get_run
from repro.grid import Grid, GridOptions, GridRouter, RouterOptions, StoreError
from repro.grid.shard import Assignment, ShardMap, assign_shards, rendezvous_weight
from repro.grid.store import STORE_FORMAT, build_store, load_store
from repro.serve.client import AsyncServeClient, ServeRequestError
from repro.serve.protocol import ErrorCode, ParsedRequest, ProtocolError
from repro.sim import ENGINES, run
from repro.stats import validate_serve_stats
from repro.stats.schema import SchemaError

SMALL = ExperimentConfig(scale=8, input_len=512)
#: Two registry apps whose auto advisories cover both table-driven
#: engines at scale 8: Bro217 is DFA-safe, LV takes the lazy hybrid.
STORE_APPS = ["Bro217", "LV"]


@pytest.fixture(scope="module")
def store():
    return build_store(STORE_APPS, SMALL, backend="auto")


class TestShardAssignment:
    APPS = [f"app-{i}" for i in range(64)]

    def test_assignment_is_deterministic(self):
        first = assign_shards(self.APPS, 4)
        second = assign_shards(self.APPS, 4)
        assert first.assignments == second.assignments

    def test_primary_is_the_top_ranked_worker(self):
        shards = assign_shards(self.APPS, 4)
        for app, assignment in shards.assignments.items():
            weights = {w: rendezvous_weight(app, w) for w in range(4)}
            assert assignment.primary == max(weights, key=weights.get)

    def test_replica_is_distinct_runner_up(self):
        shards = assign_shards(self.APPS, 4)
        for assignment in shards.assignments.values():
            assert assignment.replica is not None
            assert assignment.replica != assignment.primary

    def test_single_worker_has_no_replica(self):
        shards = assign_shards(self.APPS, 1)
        assert all(a.primary == 0 and a.replica is None
                   for a in shards.assignments.values())

    def test_removing_the_last_worker_only_moves_its_apps(self):
        """The rendezvous property the failover design leans on: shrinking
        the pool never reassigns an app whose primary survives."""
        before = assign_shards(self.APPS, 4)
        after = assign_shards(self.APPS, 3)
        for app in self.APPS:
            if before.assignments[app].primary != 3:
                assert after.assignments[app].primary == \
                    before.assignments[app].primary

    def test_shards_are_roughly_balanced(self):
        shards = assign_shards([f"app-{i}" for i in range(400)], 4)
        counts = [len(shards.primaries_for(w)) for w in range(4)]
        assert sum(counts) == 400
        assert min(counts) >= 50  # i.i.d. uniform: wildly lopsided = bug

    def test_apps_for_includes_replicas(self):
        shards = assign_shards(["A", "B"], 2)
        resident = {w: set(shards.apps_for(w)) for w in (0, 1)}
        # With two workers every app is resident everywhere (primary+replica).
        assert resident[0] == resident[1] == {"A", "B"}

    def test_owner_raises_a_helpful_keyerror(self):
        shards = assign_shards(["A"], 2)
        with pytest.raises(KeyError, match="not in this shard map"):
            shards.owner("missing")

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError, match="at least one worker"):
            assign_shards(["A"], 0)


class TestNetworkStore:
    def test_auto_backend_follows_the_advisory(self, store):
        bro = store.apps["Bro217"]
        assert bro.backend == "dfa" and bro.dfa is not None
        lv = store.apps["LV"]
        assert lv.backend == "lazydfa" and lv.lazydfa is not None

    def test_partition_slices_and_rejects_missing(self, store):
        part = store.partition(["LV"])
        assert part.names == ["LV"]
        assert part.scale == store.scale
        with pytest.raises(StoreError, match="no entry for nope"):
            store.partition(["nope"])

    def test_save_load_round_trip(self, store, tmp_path):
        path = str(tmp_path / "store.bin")
        store.save(path)
        loaded = load_store(path, SMALL)
        assert loaded.names == store.names
        assert loaded.apps["Bro217"].backend == "dfa"

    def test_operating_point_mismatch_fails_loudly(self, store, tmp_path):
        path = str(tmp_path / "store.bin")
        store.save(path)
        other = ExperimentConfig(scale=16, input_len=512)
        with pytest.raises(StoreError, match="built at scale=8"):
            load_store(path, other)

    def test_missing_and_corrupt_files_are_typed(self, tmp_path):
        with pytest.raises(StoreError, match="no network store"):
            load_store(str(tmp_path / "absent.bin"))
        garbage = str(tmp_path / "garbage.bin")
        with open(garbage, "wb") as fh:
            fh.write(b"not a pickle at all")
        with pytest.raises(StoreError):
            load_store(garbage)

    def test_wrong_envelope_and_version_are_typed(self, store, tmp_path):
        alien = str(tmp_path / "alien.bin")
        with open(alien, "wb") as fh:
            pickle.dump({"format": "something-else"}, fh)
        with pytest.raises(StoreError, match="not a repro network store"):
            load_store(alien)
        future = str(tmp_path / "future.bin")
        with open(future, "wb") as fh:
            pickle.dump({"format": STORE_FORMAT, "version": 99,
                         "store": store}, fh)
        with pytest.raises(StoreError, match="version 99"):
            load_store(future)

    def test_unknown_app_rejected_at_build(self):
        with pytest.raises(StoreError, match="unknown application"):
            build_store(["no-such-app"], SMALL)

    def test_fresh_process_reports_are_bit_identical(self, store, tmp_path):
        """The satellite guarantee: a store loaded in a *fresh interpreter*
        reproduces the in-process pipeline's reports bit-for-bit on every
        engine whose artifact it carries — all five engines across the two
        apps (reference/bitpacked/multistream everywhere, dfa on Bro217,
        lazydfa on LV)."""
        store_path = str(tmp_path / "store.bin")
        store.save(store_path)
        data = bytes((7 * i + 3) % 256 for i in range(SMALL.input_len))
        data_path = str(tmp_path / "input.bin")
        with open(data_path, "wb") as fh:
            fh.write(data)
        out_path = str(tmp_path / "reports.json")
        script = str(tmp_path / "replay.py")
        with open(script, "w") as fh:
            fh.write(textwrap.dedent("""\
                import json, sys
                from repro.experiments.config import ExperimentConfig
                from repro.grid.store import load_store
                from repro.sim import dfa_run, lazydfa_run, reference_run, run, run_multi

                store_path, data_path, out_path, scale, input_len = sys.argv[1:6]
                config = ExperimentConfig(scale=int(scale), input_len=int(input_len))
                store = load_store(store_path, config)
                data = open(data_path, "rb").read()
                out = {}
                for name, app in store.apps.items():
                    (multi,) = run_multi(app.compiled, [data])
                    engines = {
                        "reference": reference_run(app.network, data),
                        "bitpacked": run(app.compiled, data),
                        "multistream": multi,
                    }
                    if app.dfa is not None:
                        engines["dfa"] = dfa_run(app.dfa, data)
                    if app.lazydfa is not None:
                        engines["lazydfa"] = lazydfa_run(app.lazydfa, data)
                    out[name] = {k: r.reports.tolist() for k, r in engines.items()}
                json.dump(out, open(out_path, "w"))
            """))
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, script, store_path, data_path, out_path,
             str(SMALL.scale), str(SMALL.input_len)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        with open(out_path) as fh:
            fresh = json.load(fh)

        expected_engines = {"Bro217": 4, "LV": 4}  # 3 common + 1 table engine
        seen = set()
        for app in STORE_APPS:
            pipeline = get_run(app, SMALL)
            in_process = {
                "reference": ENGINES["reference"].run_network(
                    pipeline.network, data),
                "bitpacked": run(pipeline.compiled, data),
                "multistream": ENGINES["multistream"].run(
                    pipeline.compiled, data),
            }
            if store.apps[app].dfa is not None:
                in_process["dfa"] = ENGINES["dfa"].run(
                    pipeline.compiled_dfa, data)
            if store.apps[app].lazydfa is not None:
                in_process["lazydfa"] = ENGINES["lazydfa"].run(
                    pipeline.compiled_lazydfa, data)
            assert set(fresh[app]) == set(in_process)
            assert len(fresh[app]) == expected_engines[app]
            seen |= set(fresh[app])
            for engine, result in in_process.items():
                got = [tuple(r) for r in fresh[app][engine]]
                want = [tuple(r) for r in result.reports.tolist()]
                assert got == want, f"{app}/{engine} diverged in fresh process"
        assert seen == {"reference", "bitpacked", "multistream",
                        "dfa", "lazydfa"}


def _policy_router(spill_threshold: int = 2) -> GridRouter:
    shard_map = ShardMap(n_workers=2, assignments={
        "A": Assignment(app="A", primary=0, replica=1),
        "S": Assignment(app="S", primary=0, replica=None),
    })
    router = GridRouter(shard_map, {0: "w0.sock", 1: "w1.sock"},
                        RouterOptions(spill_threshold=spill_threshold))
    for link in router.links.values():
        link.up = True
    return router


class TestRoutingPolicy:
    """`_pick_target` is pure routing policy: test it without processes."""

    def test_primary_wins_when_idle(self):
        router = _policy_router()
        assert router._pick_target("A").worker_id == 0
        assert router.spills == 0

    def test_hot_primary_spills_to_cooler_replica(self):
        router = _policy_router(spill_threshold=2)
        router.links[0].inflight = 5
        assert router._pick_target("A").worker_id == 1
        assert router.spills == 1

    def test_no_spill_when_replica_is_just_as_loaded(self):
        router = _policy_router(spill_threshold=2)
        router.links[0].inflight = 5
        router.links[1].inflight = 5
        assert router._pick_target("A").worker_id == 0
        assert router.spills == 0

    def test_unreplicated_app_never_spills(self):
        router = _policy_router(spill_threshold=2)
        router.links[0].inflight = 50
        assert router._pick_target("S").worker_id == 0
        assert router.spills == 0

    def test_dead_primary_fails_over_to_replica(self):
        router = _policy_router()
        router.links[0].mark_down()
        assert router._pick_target("A").worker_id == 1

    def test_everyone_down_is_a_typed_overload(self):
        router = _policy_router()
        router.links[0].mark_down()
        router.links[1].mark_down()
        with pytest.raises(ProtocolError) as info:
            router._pick_target("A")
        assert info.value.code == ErrorCode.OVERLOADED
        assert info.value.recoverable

    def test_unknown_app_is_typed(self):
        router = _policy_router()
        with pytest.raises(ProtocolError) as info:
            router._pick_target("missing")
        assert info.value.code == ErrorCode.UNKNOWN_APP

    def test_admission_bound_rejects_before_routing(self):
        router = _policy_router()
        router.options = RouterOptions(max_inflight=0)
        request = ParsedRequest(type="match", request_id=7, app="A",
                                deadline_ms=None, max_reports=None)
        with pytest.raises(ProtocolError) as info:
            asyncio.run(router._route_match(request, b"xy"))
        assert info.value.code == ErrorCode.OVERLOADED
        assert router.requests_rejected == 1

    def test_failover_target_skips_the_failed_worker(self):
        router = _policy_router()
        fallback = router._failover_target("A", router.links[0])
        assert fallback is not None and fallback.worker_id == 1
        assert router._failover_target("S", router.links[0]) is None


class TestGridStatsSchema:
    """Satellite: the v2 serve schema with its ``grid`` section."""

    def _document(self):
        router = GridRouter(ShardMap(n_workers=1, assignments={}), {})
        return router.stats_document()

    def test_router_document_is_v2_and_valid(self):
        document = self._document()
        assert document["schema_version"] == 2
        validate_serve_stats(document)  # also validated at export, belt+braces
        assert document["grid"]["n_workers"] == 0
        assert document["grid"]["workers"] == []

    def test_v2_without_grid_section_rejected(self):
        document = self._document()
        del document["grid"]
        with pytest.raises(SchemaError, match="grid"):
            validate_serve_stats(document)

    def test_v1_with_grid_section_rejected(self):
        """Version dispatch, not a union schema: a v1 export must not
        smuggle in the grid section."""
        document = self._document()
        document["schema_version"] = 1
        with pytest.raises(SchemaError, match="grid"):
            validate_serve_stats(document)

    def test_grid_worker_row_shape_enforced(self):
        document = self._document()
        document["grid"]["workers"] = [{"worker": 0, "up": True}]
        with pytest.raises(SchemaError, match="forwarded"):
            validate_serve_stats(document)

    def test_grid_counter_types_enforced(self):
        document = self._document()
        document["grid"]["failovers"] = "many"
        with pytest.raises(SchemaError, match="failovers"):
            validate_serve_stats(document)

    def test_merge_lag_is_nullable(self):
        document = self._document()
        assert document["grid"]["merge_lag_ms"] is None  # no merge ran

    @pytest.mark.parametrize("version", [0, 3, "2", None, 2.0, True, False])
    def test_unsupported_versions_are_typed(self, version):
        """Any unsupported or non-integer version — including ``True``,
        an ``int`` subclass hashing equal to 1 — names the supported set."""
        document = self._document()
        document["schema_version"] = version
        with pytest.raises(SchemaError) as info:
            validate_serve_stats(document)
        message = str(info.value)
        assert "unsupported serve schema_version" in message
        assert "2, 1" in message


class TestGridEndToEnd:
    """Real worker processes, real sockets: serve, merge stats, kill a
    worker mid-run, and keep serving through the replica."""

    def test_grid_serves_matches_and_survives_a_worker_kill(
            self, store, tmp_path):
        payload = bytes((5 * i + 1) % 256 for i in range(256))
        expected = {
            app: [tuple(r) for r in
                  run(store.apps[app].compiled, payload).reports.tolist()]
            for app in STORE_APPS
        }

        async def scenario():
            sock = str(tmp_path / "router.sock")
            options = GridOptions(workers=2, unix_path=sock,
                                  merge_interval_s=0.1)
            async with Grid(STORE_APPS, SMALL, options) as grid:
                router = grid.router
                assert router is not None
                client = await AsyncServeClient.open(unix_path=sock)
                try:
                    for app in STORE_APPS:
                        outcome = await client.match(app, payload)
                        assert outcome.reports == expected[app]

                    with pytest.raises(ServeRequestError) as info:
                        await client.match("no-such-app", payload)
                    assert info.value.code == ErrorCode.UNKNOWN_APP

                    document = await client.stats()
                    validate_serve_stats(document)
                    assert document["schema_version"] == 2
                    assert document["grid"]["n_workers"] == 2
                    assert document["grid"]["workers_down"] == 0

                    # Kill one primary; its apps must keep serving
                    # (identical reports) through the replica, with zero
                    # protocol-level errors for the client.
                    shard_map = grid.shard_map
                    assert shard_map is not None
                    victim = shard_map.owner(STORE_APPS[0]).primary
                    grid.kill_worker(victim)
                    for app in STORE_APPS:
                        outcome = await client.match(app, payload)
                        assert outcome.reports == expected[app]
                    assert router.failovers >= 1

                    await asyncio.sleep(0.3)  # let the merge loop notice
                    document = await client.stats()
                    validate_serve_stats(document)
                    assert document["grid"]["failovers"] >= 1
                    assert document["grid"]["workers_down"] == 1
                finally:
                    await client.close()

        asyncio.run(scenario())
