"""Three-way engine equivalence: bit-packed vs reference vs matrix."""

import random

import numpy as np
from hypothesis import given, settings

from repro.nfa.automaton import Network, StartKind
from repro.nfa.build import literal_chain
from repro.sim import compile_network, reference_run, run
from repro.sim.matrix import matrix_compile, matrix_run
from repro.sim.result import reports_equal

from helpers import input_lengths, random_input, random_network, seeds


class TestMatrixEngineBasics:
    def test_simple_chain(self):
        network = Network("t")
        network.add(literal_chain(b"abc"))
        result = matrix_run(matrix_compile(network), b"xxabcx")
        assert result.reports.tolist() == [[4, 2]]
        assert result.cycles == 6

    def test_empty_input(self):
        network = Network("t")
        network.add(literal_chain(b"ab"))
        result = matrix_run(matrix_compile(network), b"")
        assert result.reports.size == 0
        assert result.hot_count() == 0

    def test_start_of_data(self):
        network = Network("t")
        network.add(literal_chain(b"ab", start=StartKind.START_OF_DATA))
        result = matrix_run(matrix_compile(network), b"abab")
        assert result.reports[:, 0].tolist() == [1]

    def test_hot_tracking(self):
        network = Network("t")
        network.add(literal_chain(b"abc"))
        result = matrix_run(matrix_compile(network), b"abzz")
        assert result.hot_indices().tolist() == [0, 1, 2]


class TestThreeWayEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(seeds, input_lengths)
    def test_all_engines_agree(self, seed, length):
        rng = random.Random(seed)
        network = random_network(rng)
        data = random_input(rng, length)
        fast = run(compile_network(network), data)
        ref = reference_run(network, data)
        matrix = matrix_run(matrix_compile(network), data)
        assert reports_equal(fast.reports, matrix.reports)
        assert reports_equal(ref.reports, matrix.reports)
        assert np.array_equal(fast.ever_enabled, matrix.ever_enabled)

    @settings(max_examples=20, deadline=None)
    @given(seeds)
    def test_workload_app_agreement(self, seed):
        """Engines agree on a real (tiny-scale) workload application."""
        from repro.workloads import get_app

        rng = random.Random(seed)
        abbr = rng.choice(["Bro217", "DS03", "LV"])
        spec = get_app(abbr)
        network = spec.build(128)
        data = spec.make_input(network, 256, seed=seed)
        fast = run(compile_network(network), data)
        matrix = matrix_run(matrix_compile(network), data)
        assert reports_equal(fast.reports, matrix.reports)
        assert fast.hot_count() == matrix.hot_count()
