"""Tests for the fast bit-parallel engine against the reference engine."""

import random

import numpy as np
import pytest
from hypothesis import given, settings

from repro import bitops
from repro.nfa.automaton import Automaton, Network, StartKind
from repro.nfa.build import literal_chain
from repro.nfa.symbolset import SymbolSet
from repro.sim import compile_network, reference_run, run, run_events
from repro.sim.result import reports_equal

from helpers import input_lengths, random_input, random_network, seeds


def _single(automaton) -> Network:
    network = Network("t")
    network.add(automaton)
    return network


class TestFastEngineBasics:
    def test_paper_example(self):
        """Fig 2: a((bc)|(cd)+)f over 'abcf' reports at the final f."""
        from repro.nfa.regex import compile_regex

        network = _single(compile_regex("a((bc)|(cd)+)f"))
        result = run(compile_network(network), b"abcf")
        assert result.reports.shape[0] == 1
        assert result.reports[0, 0] == 3

    def test_no_match(self):
        network = _single(literal_chain(b"abc"))
        result = run(compile_network(network), b"xyz")
        assert result.reports.size == 0

    def test_overlapping_matches(self):
        network = _single(literal_chain(b"aa"))
        result = run(compile_network(network), b"aaaa")
        assert result.reports[:, 0].tolist() == [1, 2, 3]

    def test_empty_input(self):
        network = _single(literal_chain(b"abc"))
        result = run(compile_network(network), b"")
        assert result.cycles == 0
        assert result.reports.size == 0
        assert result.hot_count() == 0

    def test_cycles_equal_input_length(self):
        network = _single(literal_chain(b"ab"))
        assert run(compile_network(network), b"qwerty").cycles == 6

    def test_start_of_data_only_matches_at_zero(self):
        network = _single(literal_chain(b"ab", start=StartKind.START_OF_DATA))
        result = run(compile_network(network), b"abab")
        assert result.reports[:, 0].tolist() == [1]

    def test_hot_set_includes_starts(self):
        network = _single(literal_chain(b"abc"))
        result = run(compile_network(network), b"zzz")
        assert result.hot_indices().tolist() == [0]
        assert result.hot_fraction() == pytest.approx(1 / 3)

    def test_hot_set_grows_with_matching_prefix(self):
        network = _single(literal_chain(b"abc"))
        result = run(compile_network(network), b"abz")
        # 'a' activates s0 enabling s1; 'b' activates s1 enabling s2.
        assert result.hot_indices().tolist() == [0, 1, 2]


class TestEquivalenceWithReference:
    @settings(max_examples=60, deadline=None)
    @given(seeds, input_lengths)
    def test_reports_and_hot_sets_match(self, seed, length):
        rng = random.Random(seed)
        network = random_network(rng)
        data = random_input(rng, length)
        fast = run(compile_network(network), data)
        ref = reference_run(network, data)
        assert reports_equal(fast.reports, ref.reports)
        assert np.array_equal(fast.ever_enabled, ref.ever_enabled)

    @settings(max_examples=30, deadline=None)
    @given(seeds, input_lengths)
    def test_start_of_data_networks(self, seed, length):
        rng = random.Random(seed)
        network = random_network(rng, start=StartKind.START_OF_DATA)
        data = random_input(rng, length)
        fast = run(compile_network(network), data)
        ref = reference_run(network, data)
        assert reports_equal(fast.reports, ref.reports)


class TestRunEvents:
    def _cold_chain(self):
        """A chain with NO start states: only events can enable it."""
        automaton = Automaton("cold")
        for index, char in enumerate(b"abc"):
            automaton.add_state(
                SymbolSet.single(char), reporting=index == 2, report_code="hit"
            )
        automaton.add_edge(0, 1)
        automaton.add_edge(1, 2)
        network = Network("cold-net")
        network.add(automaton)
        return network

    def test_no_events_consumes_nothing(self):
        network = self._cold_chain()
        outcome = run_events(compile_network(network), b"abcabc", [])
        assert outcome.consumed_cycles == 0
        assert outcome.total_cycles == 0
        assert outcome.reports.size == 0

    def test_jump_skips_idle_prefix(self):
        network = self._cold_chain()
        outcome = run_events(compile_network(network), b"zzzzabc", [(4, 0)])
        assert outcome.jumps == 1
        assert outcome.consumed_cycles == 3  # positions 4, 5, 6
        assert outcome.reports.tolist() == [[6, 2]]

    def test_event_matches_reference_injection(self):
        network = self._cold_chain()
        data = b"xxabcxx"
        events = [(2, 0)]
        fast = run_events(compile_network(network), data, events)
        ref = reference_run(network, data, events=events)
        assert reports_equal(fast.reports, ref.reports)

    def test_simultaneous_events_stall(self):
        network = self._cold_chain()
        outcome = run_events(
            compile_network(network), b"abc", [(0, 0), (0, 1), (0, 2)]
        )
        assert outcome.stall_cycles == 2  # 3 simultaneous enables -> 2 stalls

    def test_stalls_can_be_disabled(self):
        network = self._cold_chain()
        outcome = run_events(
            compile_network(network), b"abc", [(0, 0), (0, 1)], count_stalls=False
        )
        assert outcome.stall_cycles == 0

    def test_event_beyond_input_ignored(self):
        network = self._cold_chain()
        outcome = run_events(compile_network(network), b"abc", [(3, 0)])
        assert outcome.consumed_cycles == 0
        assert outcome.reports.size == 0

    def test_jump_ratio(self):
        network = self._cold_chain()
        outcome = run_events(compile_network(network), b"zzzzzzza", [(7, 0)])
        assert outcome.consumed_cycles == 1
        assert outcome.jump_ratio() == pytest.approx(7 / 8)

    @settings(max_examples=40, deadline=None)
    @given(seeds, input_lengths)
    def test_random_events_match_reference(self, seed, length):
        rng = random.Random(seed)
        network = random_network(rng)
        data = random_input(rng, length)
        n = network.n_states
        events = sorted(
            (rng.randrange(max(1, length)), rng.randrange(n))
            for _ in range(rng.randint(0, 5))
            if length > 0
        )
        fast = run_events(compile_network(network), data, events)
        ref = reference_run(network, data, events=events)
        assert reports_equal(fast.reports, ref.reports)


class TestCompiledNetwork:
    def test_accept_matrix_shape(self):
        network = _single(literal_chain(b"ab"))
        compiled = compile_network(network)
        assert compiled.accept.shape == (256, compiled.n_words)

    def test_accept_matrix_contents(self):
        network = _single(literal_chain(b"ab"))
        compiled = compile_network(network)
        assert bitops.to_indices(compiled.accept[ord("a")]).tolist() == [0]
        assert bitops.to_indices(compiled.accept[ord("b")]).tolist() == [1]

    def test_csr_successors(self):
        network = _single(literal_chain(b"abc"))
        compiled = compile_network(network)
        assert compiled.successors_of(np.array([0])).tolist() == [1]
        assert compiled.successors_of(np.array([0, 1])).tolist() == [1, 2]
        assert compiled.successors_of(np.array([2])).size == 0

    def test_global_id_offsets(self):
        network = Network("two")
        network.add(literal_chain(b"ab"))
        network.add(literal_chain(b"cd"))
        compiled = compile_network(network)
        # Second automaton's head accepts 'c' and is state 2.
        assert bitops.to_indices(compiled.accept[ord("c")]).tolist() == [2]
        assert compiled.successors_of(np.array([2])).tolist() == [3]

    def test_report_codes(self):
        network = _single(literal_chain(b"ab", report_code="R1"))
        compiled = compile_network(network)
        assert compiled.report_codes[1] == "R1"
        assert compiled.report_codes[0] is None
