"""Cross-cutting property tests on core invariants (hypothesis-driven)."""

import math
import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ap.batching import min_batches, pack_batches
from repro.core.partition import hot_size_with_intermediates, partition_network, plan_hot_batches
from repro.nfa.analysis import analyze_network
from repro.sim import compile_network, run, run_events
from repro.sim.result import reports_to_array

from helpers import random_input, random_network, seeds


class TestPackingProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=30),
        st.integers(min_value=40, max_value=100),
    )
    def test_bins_valid(self, sizes, capacity):
        bins = pack_batches(sizes, capacity)
        covered = sorted(i for b in bins for i in b)
        assert covered == list(range(len(sizes)))
        for members in bins:
            assert sum(sizes[i] for i in members) <= capacity

    @given(
        st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=30),
        st.integers(min_value=40, max_value=100),
    )
    def test_ffd_near_optimal(self, sizes, capacity):
        """FFD uses at most (11/9)·OPT + 1 bins; check the lower bound too."""
        bins = pack_batches(sizes, capacity)
        optimal_lower = min_batches(sum(sizes), capacity)
        assert len(bins) >= optimal_lower
        assert len(bins) <= math.ceil(11 / 9 * optimal_lower) + 1


class TestEventRunProperties:
    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_cycle_bounds(self, seed):
        rng = random.Random(seed)
        network = random_network(rng, n_automata=2)
        data = random_input(rng, rng.randint(1, 40))
        n = len(data)
        events = sorted(
            (rng.randrange(n), rng.randrange(network.n_states))
            for _ in range(rng.randint(0, 8))
        )
        outcome = run_events(compile_network(network), data, events)
        assert 0 <= outcome.consumed_cycles <= n
        assert 0 <= outcome.stall_cycles <= len(events)
        assert outcome.total_cycles == outcome.consumed_cycles + outcome.stall_cycles
        # Reports only at consumed positions within the input.
        if outcome.reports.size:
            assert outcome.reports[:, 0].max() < n
            assert outcome.reports[:, 0].min() >= 0

    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_more_events_never_fewer_reports(self, seed):
        """Adding enable events can only add report opportunities."""
        rng = random.Random(seed)
        network = random_network(rng, n_automata=2)
        data = random_input(rng, rng.randint(5, 30))
        base_events = sorted(
            (rng.randrange(len(data)), rng.randrange(network.n_states))
            for _ in range(3)
        )
        extra_events = sorted(
            base_events
            + [(rng.randrange(len(data)), rng.randrange(network.n_states))]
        )
        compiled = compile_network(network)
        fewer = run_events(compiled, data, base_events)
        more = run_events(compiled, data, extra_events)
        assert more.reports.shape[0] >= fewer.reports.shape[0]


class TestPartitionPlanningProperties:
    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_filled_batches_respect_capacity(self, seed):
        rng = random.Random(seed)
        network = random_network(rng, n_automata=rng.randint(2, 5))
        topology = analyze_network(network)
        capacity = max(
            hot_size_with_intermediates(
                network.automata[i], topology.per_automaton[i].topo_order,
                topology.per_automaton[i].max_order,
            )
            for i in range(network.n_automata)
        ) + rng.randint(0, 8)
        layers = np.ones(network.n_automata, dtype=np.int64)
        filled, bins = plan_hot_batches(network, topology, layers, capacity)
        for members in bins:
            total = sum(
                hot_size_with_intermediates(
                    network.automata[i], topology.per_automaton[i].topo_order,
                    int(filled[i]),
                )
                for i in members
            )
            assert total <= capacity

    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_fill_only_deepens(self, seed):
        rng = random.Random(seed)
        network = random_network(rng, n_automata=rng.randint(2, 4))
        topology = analyze_network(network)
        capacity = network.n_states + 20
        layers = np.ones(network.n_automata, dtype=np.int64)
        filled, _bins = plan_hot_batches(network, topology, layers, capacity)
        assert (filled >= layers).all()
        for index in range(network.n_automata):
            assert filled[index] <= topology.per_automaton[index].max_order

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_deeper_layers_monotone_partition_sizes(self, seed):
        """Raising a partition layer moves states hot-ward, never cold-ward."""
        rng = random.Random(seed)
        network = random_network(rng, n_automata=1)
        topology = analyze_network(network)
        max_order = topology.per_automaton[0].max_order
        previous_cold = None
        for k in range(1, max_order + 1):
            partitioned = partition_network(network, [k], topology=topology)
            if previous_cold is not None:
                assert partitioned.n_cold <= previous_cold
            previous_cold = partitioned.n_cold
        assert previous_cold == 0  # at max order everything is hot


class TestReportHelpers:
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 20)), max_size=30))
    def test_reports_to_array_sorted(self, pairs):
        arr = reports_to_array(pairs)
        assert arr.shape == (len(pairs), 2)
        if len(pairs) > 1:
            keys = [tuple(row) for row in arr]
            assert keys == sorted(keys)
