"""Tests for profiling-based hot/cold prediction."""

import random

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.profiling import (
    choose_partition_layers,
    layer_closure_mask,
    profile_network,
    split_input,
)
from repro.nfa.analysis import analyze_network
from repro.nfa.automaton import Network
from repro.nfa.build import literal_chain
from repro.sim import compile_network, run

from helpers import random_input, random_network, seeds


def _net(*patterns):
    network = Network("n")
    for index, pattern in enumerate(patterns):
        network.add(literal_chain(pattern, name=f"p{index}"))
    return network


class TestProfileNetwork:
    def test_idle_input_keeps_only_starts_hot(self):
        network = _net(b"abc")
        profile = profile_network(network, b"zzzz")
        assert profile.hot_mask.tolist() == [True, False, False]
        assert profile.layers.tolist() == [1]
        assert profile.predicted_hot_mask.tolist() == [True, False, False]

    def test_matching_prefix_deepens_layer(self):
        network = _net(b"abcde")
        profile = profile_network(network, b"xxabxx")
        # 'ab' enables up to state 2 (depth 3 layer of 'c').
        assert profile.layers.tolist() == [3]
        assert profile.predicted_hot_mask.sum() == 3

    def test_full_match_makes_all_hot(self):
        network = _net(b"abc")
        profile = profile_network(network, b"abc")
        assert profile.layers.tolist() == [3]
        assert profile.n_predicted_hot == 3

    def test_independent_layers_per_nfa(self):
        network = _net(b"abz", b"qrs")
        profile = profile_network(network, b"abqq")
        assert profile.layers.tolist() == [3, 2]

    def test_layer_closure_includes_skipped_shallow_states(self):
        """A cold state shallower than k_U is still predicted hot (§IV-D)."""
        from repro.nfa.regex import compile_regex

        network = Network("n")
        network.add(compile_regex("(ab|cd)e"))
        # Profile with only 'ab' seen: positions for c,d never enabled... but
        # layer closure must still include them (same topological layers).
        profile = profile_network(network, b"abe")
        assert profile.predicted_hot_mask.all()

    def test_empty_profile_input(self):
        network = _net(b"abc")
        profile = profile_network(network, b"")
        assert profile.layers.tolist() == [1]  # defensive floor keeps starts


class TestChooseLayers:
    def test_all_cold_floor(self):
        network = _net(b"abc")
        topology = analyze_network(network)
        layers = choose_partition_layers(network, topology, np.zeros(3, dtype=bool))
        assert layers.tolist() == [1]

    def test_shape_mismatch_rejected(self):
        network = _net(b"abc")
        topology = analyze_network(network)
        with pytest.raises(ValueError):
            choose_partition_layers(network, topology, np.zeros(5, dtype=bool))

    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_closure_contains_profile_hot(self, seed):
        """Predicted hot set is a layer-closed superset of the profiled hot set."""
        rng = random.Random(seed)
        network = random_network(rng)
        topology = analyze_network(network)
        data = random_input(rng, 12)
        result = run(compile_network(network), data)
        layers = choose_partition_layers(network, topology, result.hot_mask())
        closure = layer_closure_mask(network, topology, layers)
        assert not np.any(result.hot_mask() & ~closure)


class TestSplitInput:
    def test_halves(self):
        profile, test = split_input(bytes(range(100)), 0.5)
        assert len(profile) == 50
        assert test == bytes(range(50, 100))

    def test_one_percent(self):
        profile, _test = split_input(b"x" * 1000, 0.01)
        assert len(profile) == 10

    def test_minimum_one_symbol(self):
        profile, _test = split_input(b"x" * 100, 0.001)
        assert len(profile) == 1

    def test_profile_never_exceeds_half(self):
        profile, test = split_input(b"x" * 10, 0.5)
        assert len(profile) == 5 and len(test) == 5

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            split_input(b"x" * 10, 0.6)
        with pytest.raises(ValueError):
            split_input(b"x" * 10, 0.0)

    def test_too_short_input_rejected(self):
        # Regression: a 0- or 1-symbol input used to come back with an
        # *empty* profiling input (the 1-symbol floor clamped to half == 0),
        # silently profiling nothing.
        for data in (b"", b"x"):
            with pytest.raises(ValueError, match="at least 2"):
                split_input(data, 0.5)

    def test_two_symbols_is_the_floor(self):
        profile, test = split_input(b"ab", 0.5)
        assert profile == b"a" and test == b"b"

    def test_profile_is_prefix_of_first_half(self):
        data = bytes(range(200))
        profile, _ = split_input(data, 0.1)
        assert data.startswith(profile)
