"""Unit tests for the multi-stream lock-step engine (repro.sim.multistream)."""

import numpy as np
import pytest

from repro.nfa.automaton import Automaton, Network, StartKind
from repro.nfa.symbolset import SymbolSet
from repro.sim import compile_network, reports_equal, run, run_multi
from repro.sim import multistream as ms


def _chain_network(word: bytes = b"ab", eod: bool = False) -> Network:
    """One automaton matching ``word`` anywhere, reporting on its last state."""
    automaton = Automaton("chain")
    for index, symbol in enumerate(word):
        automaton.add_state(
            SymbolSet.from_symbols([symbol]),
            start=StartKind.ALL_INPUT if index == 0 else StartKind.NONE,
            reporting=index == len(word) - 1,
            report_code=f"chain:{index}" if index == len(word) - 1 else None,
        )
        if index:
            automaton.add_edge(index - 1, index)
    if eod:
        automaton.state(len(word) - 1).eod = True
    network = Network("chain-net")
    network.add(automaton)
    return network


class TestRunMulti:
    def test_no_streams(self):
        compiled = compile_network(_chain_network())
        assert run_multi(compiled, []) == []

    def test_single_stream_matches_scalar(self):
        compiled = compile_network(_chain_network())
        data = b"xxabyabz"
        (multi,) = run_multi(compiled, [data], track_enabled=True)
        scalar = run(compiled, data, track_enabled=True)
        assert reports_equal(multi.reports, scalar.reports)
        assert (multi.ever_enabled == scalar.ever_enabled).all()
        assert multi.cycles == scalar.cycles == len(data)

    def test_empty_stream_among_live_ones(self):
        compiled = compile_network(_chain_network())
        results = run_multi(compiled, [b"ab", b"", b"xabab"])
        assert [r.n_symbols for r in results] == [2, 0, 5]
        assert results[0].reports.shape[0] == 1
        assert results[1].reports.size == 0
        assert results[2].reports.shape[0] == 2

    def test_all_streams_empty(self):
        compiled = compile_network(_chain_network())
        results = run_multi(compiled, [b"", b""])
        assert all(r.reports.size == 0 and r.cycles == 0 for r in results)

    def test_all_streams_empty_with_tracking(self):
        # Degenerate lanes must still produce a correctly-shaped (all-zero)
        # hot set when tracking is on.
        compiled = compile_network(_chain_network())
        results = run_multi(compiled, [b"", b""], track_enabled=True)
        for result in results:
            assert result.hot_count() == 0
            assert result.ever_enabled.shape == (compiled.n_words,)

    def test_empty_lanes_never_enter_the_matrix(self, monkeypatch):
        # A zero-length stream gets its trivial result without occupying a
        # lock-step lane: the surviving single live stream still rides the
        # bigint path even when the stream limit is 1.
        compiled = compile_network(_chain_network())
        monkeypatch.setattr(ms, "_BIGINT_STREAM_LIMIT", 1)
        seen = {}
        original = ms._lockstep_bigint

        def spy(compiled_, sym_rows, lengths, reports, ever):
            seen["lengths"] = list(lengths)
            return original(compiled_, sym_rows, lengths, reports, ever)

        monkeypatch.setattr(ms, "_lockstep_bigint", spy)
        results = run_multi(compiled, [b"", b"abab", b""], track_enabled=True)
        assert seen["lengths"] == [4]
        assert [r.n_symbols for r in results] == [0, 4, 0]
        scalar = run(compiled, b"abab", track_enabled=True)
        assert reports_equal(results[1].reports, scalar.reports)
        assert (results[1].ever_enabled == scalar.ever_enabled).all()
        assert results[0].hot_count() == results[2].hot_count() == 0

    def test_packed_path_with_empty_and_ragged_lanes(self):
        # Force the packed (k > _BIGINT_STREAM_LIMIT) path with a mix of
        # empty, short, and long streams; every lane must match the scalar
        # engine bit for bit.
        compiled = compile_network(_chain_network())
        streams = ([b"abab", b"", b"xxabx", b"ab"] * 8)[: ms._BIGINT_STREAM_LIMIT + 6]
        results = run_multi(compiled, streams, track_enabled=True)
        assert len(results) == len(streams)
        for stream, got in zip(streams, results):
            want = run(compiled, stream, track_enabled=True)
            assert reports_equal(got.reports, want.reports)
            assert (got.ever_enabled == want.ever_enabled).all()
            assert got.cycles == len(stream)

    def test_ragged_eod_fires_at_each_streams_own_end(self):
        # End-of-data reporters must fire at each stream's final position,
        # not the longest stream's.
        compiled = compile_network(_chain_network(eod=True))
        short, long = b"ab", b"abxxab"
        results = run_multi(compiled, [short, long])
        expected = [run(compiled, s) for s in (short, long)]
        for got, want in zip(results, expected):
            assert reports_equal(got.reports, want.reports)
        assert results[0].reports.shape[0] == 1  # "ab" ends at position 1
        assert results[1].reports.shape[0] == 1  # only the final "ab" reports

    def test_identical_streams_identical_results(self):
        compiled = compile_network(_chain_network())
        data = b"abab"
        results = run_multi(compiled, [data] * 5)
        for result in results[1:]:
            assert reports_equal(result.reports, results[0].reports)

    def test_packed_path_csr_fallback(self, monkeypatch):
        # Packed path with successor_masks disabled: the CSR scatter branch.
        compiled = compile_network(_chain_network())
        monkeypatch.setattr(ms, "_BIGINT_WORD_LIMIT", 0)
        monkeypatch.setattr(type(compiled), "successor_masks", lambda self: None)
        results = run_multi(compiled, [b"abab", b"xxab"])
        monkeypatch.undo()
        expected = [run(compiled, s) for s in (b"abab", b"xxab")]
        for got, want in zip(results, expected):
            assert reports_equal(got.reports, want.reports)

    def test_bigint_path_csr_fallback(self, monkeypatch):
        compiled = compile_network(_chain_network())
        monkeypatch.setattr(ms, "_BIGINT_WORD_LIMIT", 1 << 30)
        monkeypatch.setattr(ms, "_BIGINT_STREAM_LIMIT", 1 << 30)
        monkeypatch.setattr(type(compiled), "successor_masks", lambda self: None)
        results = run_multi(compiled, [b"abab", b"xxab"])
        monkeypatch.undo()
        expected = [run(compiled, s) for s in (b"abab", b"xxab")]
        for got, want in zip(results, expected):
            assert reports_equal(got.reports, want.reports)

    def test_rejects_bad_input(self):
        compiled = compile_network(_chain_network())
        with pytest.raises(ValueError):
            run_multi(compiled, [np.array([1.5, 2.5])])
