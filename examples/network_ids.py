#!/usr/bin/env python
"""Network intrusion detection: Snort-style rules over synthetic traffic.

Shows the mechanism under realistic misprediction: token-structured
traffic keeps mid-depth rule states warm, so profiling inevitably misses a
few states that later become enabled.  Intermediate reporting states catch
every such crossing and SpAP mode replays only the handful of input
windows that matter (the JumpRatio), preserving every alert.
"""

from repro.core import (
    prepare_partition,
    run_base_spap,
    run_baseline_ap,
    verify_equivalence,
)
from repro.experiments import ExperimentConfig
from repro.workloads import get_app


def main() -> None:
    config = ExperimentConfig(scale=16, input_len=8192)
    spec = get_app("Snort_L")
    network = spec.build(config.scale)
    print(f"rule set: {network.n_automata} rules, {network.n_states} states")

    stream = spec.make_input(network, config.input_len)
    half = len(stream) // 2
    traffic = stream[half:]

    baseline = run_baseline_ap(network, traffic, config.half_core)
    print(f"baseline: {baseline.n_batches} configurations, "
          f"{baseline.reports.shape[0]} alerts")

    for fraction in (0.001, 0.01):
        profile_input = stream[: max(1, int(len(stream) * fraction))]
        partitioned, hot_bins = prepare_partition(
            network, profile_input, config.half_core
        )
        outcome = run_base_spap(partitioned, traffic, config.half_core, hot_bins)
        assert verify_equivalence(baseline, outcome), "alerts must be preserved"
        ratio = outcome.jump_ratio()
        print(
            f"profile {100 * fraction:4.1f}%: "
            f"{outcome.n_hot_batches} hot batch(es), "
            f"{outcome.n_intermediate_reports:5d} boundary crossings, "
            f"JumpRatio {100 * (ratio or 0):5.1f}%, "
            f"speedup {baseline.cycles / outcome.cycles:.2f}x"
        )

    print("\nall alerts identical to the baseline in every configuration")


if __name__ == "__main__":
    main()
