#!/usr/bin/env python
"""Quickstart: compile regexes, partition hot/cold, and run all three
execution scenarios on a deliberately tiny AP.

This walks the full pipeline of the paper on a small rule set:

1. compile regex rules to homogeneous NFAs (the AP's native program form);
2. run the *baseline AP*: the rule set doesn't fit, so every batch
   re-streams the whole input;
3. profile a prefix of the input to predict hot/cold states;
4. partition at each NFA's topological layer, adding intermediate
   reporting states;
5. run BaseAP/SpAP and AP-CPU, and check the reports are identical.
"""

from repro import APConfig, Network, compile_regex
from repro.core import (
    prepare_partition,
    run_ap_cpu,
    run_base_spap,
    run_baseline_ap,
    verify_equivalence,
)

RULES = [
    ("login-probe", "admin[0-9]{2}"),
    ("shell-rm", "rm -rf /"),
    ("paper-fig2", "a((bc)|(cd)+)f"),
    ("long-token", "BEGIN[a-z]{8}END"),
    ("hex-blob", r"\x90\x90\x90\x90"),
    ("query", "(GET|PUT) /secret"),
]


def main() -> None:
    network = Network("quickstart")
    for name, pattern in RULES:
        network.add(compile_regex(pattern, name=name, report_code=name))
    print(f"rule set: {network.n_automata} NFAs, {network.n_states} states")

    # A toy AP that can hold roughly half of the rule set at once.
    config = APConfig(capacity=max(16, network.n_states // 2 + 4),
                      blocks=96)

    stream = (
        b"nothing here ... admin42 logged in ... abcf ... "
        b"GET /secret and then BEGINpayloadsEND and \x90\x90\x90\x90 done"
    ) * 40

    baseline = run_baseline_ap(network, stream, config)
    print(f"\nbaseline AP : {baseline.n_batches} batches x {baseline.n_symbols} symbols "
          f"= {baseline.cycles} cycles, {baseline.reports.shape[0]} reports")

    # Profile on a short prefix; everything never enabled is predicted cold.
    profile_input = stream[: len(stream) // 100]
    partitioned, hot_bins = prepare_partition(network, profile_input, config)
    print(f"partition   : {partitioned.n_hot_original} hot states + "
          f"{partitioned.n_intermediate} intermediate reporters, "
          f"{partitioned.n_cold} cold states "
          f"({100 * partitioned.resource_saving():.0f}% resource saving)")

    spap = run_base_spap(partitioned, stream, config, hot_bins)
    print(f"BaseAP/SpAP : {spap.base_cycles} BaseAP + {spap.spap_cycles} SpAP cycles "
          f"({spap.n_intermediate_reports} intermediate reports, "
          f"{spap.spap_stall_cycles} enable stalls)")
    print(f"  speedup   : {baseline.cycles / spap.cycles:.2f}x over the baseline AP")

    cpu = run_ap_cpu(partitioned, stream, config, hot_bins)
    print(f"AP-CPU      : {cpu.base_cycles} AP cycles + {1e6 * cpu.cpu_seconds:.1f} us CPU "
          f"handler time")
    print(f"  speedup   : {baseline.seconds(config) / cpu.seconds(config):.2f}x")

    assert verify_equivalence(baseline, spap), "SpAP must reproduce baseline reports"
    assert verify_equivalence(baseline, cpu), "AP-CPU must reproduce baseline reports"
    print("\nreport streams identical across all three scenarios — semantics preserved")


if __name__ == "__main__":
    main()
