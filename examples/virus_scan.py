#!/usr/bin/env python
"""Virus scanning: the paper's motivating large-scale application.

Builds a ClamAV-style signature database far larger than the AP, scans a
mostly-benign byte stream containing a few planted infections, and shows
why hot/cold partitioning wins so big here: on benign traffic ~98% of
signature states are never enabled, so the whole database's hot set fits
in a single AP configuration instead of dozens of re-executions.
"""

import numpy as np

from repro.core import (
    prepare_partition,
    run_base_spap,
    run_baseline_ap,
    verify_equivalence,
)
from repro.experiments import ExperimentConfig
from repro.sim import compile_network, run
from repro.workloads import get_app


def main() -> None:
    config = ExperimentConfig(scale=16, input_len=8192)
    spec = get_app("CAV4k")
    network = spec.build(config.scale)
    print(f"signature database: {network.n_automata} signatures, "
          f"{network.n_states} states (AP capacity {config.half_core.capacity})")

    stream = spec.make_input(network, config.input_len)
    profile_input, scan_input = stream[:82], stream[len(stream) // 2 :]

    baseline = run_baseline_ap(network, scan_input, config.half_core)
    print(f"\nbaseline AP: {baseline.n_batches} configurations; the scan runs "
          f"{baseline.n_batches}x over every byte")

    partitioned, hot_bins = prepare_partition(network, profile_input, config.half_core)
    print(f"profiling 82 bytes predicts {partitioned.n_cold} of "
          f"{network.n_states} states cold "
          f"({100 * partitioned.resource_saving():.1f}% of the database)")

    outcome = run_base_spap(partitioned, scan_input, config.half_core, hot_bins)
    assert verify_equivalence(baseline, outcome)
    print(f"BaseAP/SpAP: {outcome.n_hot_batches} hot configuration(s) + "
          f"{outcome.spap_cycles} SpAP cycles for "
          f"{outcome.n_intermediate_reports} mispredictions")
    print(f"speedup: {baseline.cycles / outcome.cycles:.1f}x  "
          f"(paper reports up to 47x for ClamAV4k)")

    # Show the detections themselves: identical under both executions.
    from repro.sim import reports_by_code

    full = run(compile_network(network), scan_input)
    detections = reports_by_code(network, full.reports)
    print(f"\ndetected signatures ({len(detections)}):")
    for code, positions in sorted(detections.items())[:10]:
        print(f"  - {code} at offset(s) {positions}")


if __name__ == "__main__":
    main()
