#!/usr/bin/env python
"""Scale-out study: what happens when automata programs keep growing.

The paper's introduction argues NFA applications will outgrow any AP:
multi-stream execution and the Parallel AP all *duplicate* machines for
throughput.  This example walks that trajectory on a ClamAV-style workload
and shows the §VIII synergy: duplicating only the predicted-hot partition
gets the throughput of parallel execution without paying for cold states.
"""

from repro.ap.parallel import run_parallel_ap
from repro.core import (
    partition_network,
    choose_partition_layers,
    prepare_partition,
    run_base_spap,
    run_baseline_ap,
)
from repro.core.profiling import profile_network
from repro.experiments import ExperimentConfig
from repro.nfa.analysis import analyze_network
from repro.nfa.transforms import duplicate_network, merge_common_prefixes
from repro.workloads import get_app


def main() -> None:
    config = ExperimentConfig(scale=16, input_len=8192)
    ap = config.half_core
    spec = get_app("CAV")
    network = spec.build(config.scale)
    stream = spec.make_input(network, config.input_len)
    profile_input, scan_input = stream[:82], stream[len(stream) // 2 :]

    print(f"{spec.full_name}: {network.n_states} states on a "
          f"{ap.capacity}-STE half-core\n")

    print("growing the program (multi-stream duplication):")
    for copies in (1, 2, 4):
        grown = duplicate_network(network, copies)
        baseline = run_baseline_ap(grown, scan_input, ap)
        partitioned, bins = prepare_partition(grown, profile_input, ap)
        spap = run_base_spap(partitioned, scan_input, ap, bins)
        print(f"  x{copies}: {grown.n_states:6d} states | baseline "
              f"{baseline.n_batches:2d} batches | SparseAP "
              f"{spap.n_hot_batches} hot batch(es) -> "
              f"{baseline.cycles / spap.cycles:.1f}x")

    print("\nthroughput via the Parallel AP (4 input segments):")
    baseline = run_baseline_ap(network, scan_input, ap)
    pap_full = run_parallel_ap(network, scan_input, ap, 4)
    print(f"  duplicate the FULL machine : {pap_full.n_batches} batches, "
          f"{baseline.cycles / pap_full.cycles:.2f}x")

    topology = analyze_network(network)
    profile = profile_network(network, profile_input, topology=topology)
    layers = choose_partition_layers(network, topology, profile.hot_mask)
    partitioned = partition_network(network, layers, topology=topology)
    pap_hot = run_parallel_ap(partitioned.hot, scan_input, ap, 4)
    print(f"  duplicate only the HOT set: {pap_hot.n_batches} batch(es), "
          f"{baseline.cycles / pap_hot.cycles:.2f}x  "
          f"(+ SpAP recovery for mispredictions)")

    merged = merge_common_prefixes(network)
    print(f"\ncompiler-side counterpoint — common-prefix (trie) merging: "
          f"{network.n_states} -> {merged.n_states} states")
    print("\nTakeaway: cold-state elimination compounds with every "
          "scale-out technique, exactly the paper's §VIII argument.")


if __name__ == "__main__":
    main()
