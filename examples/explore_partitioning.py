#!/usr/bin/env python
"""Explore why partitioning works: depth vs hotness, SCCs, and the oracle.

A compact tour of the paper's §III analysis on three contrasting
applications: ClamAV (deep chains, almost everything cold), Hamming
(mismatch grids, mid-depth hot front), and EntityResolution (a large SCC
that defeats topological cuts).
"""

from repro.core.oracle import constrained_states, ideal_speedup
from repro.experiments import ExperimentConfig
from repro.nfa.analysis import analyze_network, depth_buckets
from repro.sim import compile_network, run
from repro.workloads import get_app


def analyze(abbr: str, config: ExperimentConfig) -> None:
    spec = get_app(abbr)
    network = spec.build(config.scale)
    topology = analyze_network(network)
    data = spec.make_input(network, config.input_len)
    result = run(compile_network(network), data[len(data) // 2 :])
    hot = result.hot_mask()

    print(f"\n=== {abbr}: {network.n_states} states, "
          f"{100 * hot.mean():.1f}% hot ===")

    depth = topology.normalized_depth
    hot_b = depth_buckets(depth[hot])
    cold_b = depth_buckets(depth[~hot])
    print(f"  hot  states by depth: {100 * hot_b['shallow']:.0f}% shallow / "
          f"{100 * hot_b['medium']:.0f}% medium / {100 * hot_b['deep']:.0f}% deep")
    print(f"  cold states by depth: {100 * cold_b['shallow']:.0f}% shallow / "
          f"{100 * cold_b['medium']:.0f}% medium / {100 * cold_b['deep']:.0f}% deep")

    biggest_scc = max(t.scc_size.max() for t in topology.per_automaton)
    print(f"  largest SCC: {biggest_scc} states")

    oracle = constrained_states(network, topology, hot)
    print(f"  topological cut must keep {oracle.topo_hot} states hot "
          f"({oracle.constrained} more than a perfect arbitrary-edge cut, "
          f"+{100 * oracle.constrained_fraction:.1f}%)")

    capacity = config.half_core.capacity
    print(f"  oracle speedup at capacity {capacity}: "
          f"{ideal_speedup(network.n_states, capacity, 1 - hot.mean()):.2f}x")


def main() -> None:
    config = ExperimentConfig(scale=16, input_len=8192)
    for abbr in ("CAV", "HM500", "ER"):
        analyze(abbr, config)
    print("\nTakeaway: depth predicts hotness except where SCCs span the "
          "machine (ER) — exactly the paper's Fig 5 / Fig 8 story.")


if __name__ == "__main__":
    main()
