#!/usr/bin/env python
"""Approximate DNA motif search with Hamming (BMIA) automata.

Builds bounded-mismatch automata for a set of motifs, scans a genome-like
random sequence with a few mutated motif occurrences planted in it, and
reports each hit with its mismatch budget — then shows the hot/cold
pipeline preserving those hits while cutting AP configurations.
"""

import numpy as np

from repro.ap import APConfig
from repro.core import (
    prepare_partition,
    run_base_spap,
    run_baseline_ap,
    verify_equivalence,
)
from repro.nfa.automaton import Network
from repro.sim import compile_network, run
from repro.workloads import bmia_automaton
from repro.workloads.inputs import dna_bytes


def mutate(motif: bytes, positions, base: int) -> bytes:
    out = bytearray(motif)
    for p in positions:
        out[p] = base
    return bytes(out)


def main() -> None:
    rng = np.random.default_rng(7)
    motifs = [
        bytes(b"ACGT"[rng.integers(0, 4)] for _ in range(24)) for _ in range(40)
    ]
    network = Network("motifs")
    for index, motif in enumerate(motifs):
        network.add(
            bmia_automaton(motif, distance=3, name=f"motif{index}", alphabet=b"ACGT")
        )
    print(f"{len(motifs)} motifs -> {network.n_states} BMIA states")

    genome = bytearray(dna_bytes(6000, seed=11))
    # Plant: one exact occurrence, one 2-mismatch occurrence, one 5-mismatch
    # occurrence (beyond budget, must NOT report).
    genome[100:124] = motifs[0]
    genome[2000:2024] = mutate(motifs[1], [3, 17], ord("A") if motifs[1][3] != ord("A") else ord("C"))
    genome[4000:4024] = mutate(motifs[2], [1, 5, 9, 13, 21], ord("G") if motifs[2][1] != ord("G") else ord("T"))
    genome = bytes(genome)

    result = run(compile_network(network), genome)
    print(f"\nhits ({result.reports.shape[0]}):")
    for position, gid in result.report_tuples():
        a_index, sid = network.locate(gid)
        state = network.automata[a_index].state(sid)
        print(f"  motif {network.automata[a_index].name} ends at {position} "
              f"({state.report_code.split('/')[-1]} mismatches used)")

    # Hot/cold pipeline on an AP sized at a third of the motif set.
    config = APConfig(capacity=network.n_states // 3 + 50, blocks=96)
    baseline = run_baseline_ap(network, genome, config)
    partitioned, hot_bins = prepare_partition(network, genome[:300], config)
    outcome = run_base_spap(partitioned, genome, config, hot_bins)
    assert verify_equivalence(baseline, outcome)
    print(f"\nbaseline {baseline.n_batches} configurations -> "
          f"{outcome.n_hot_batches} hot + SpAP replay; "
          f"speedup {baseline.cycles / outcome.cycles:.2f}x, all hits preserved")


if __name__ == "__main__":
    main()
