"""Homogeneous NFA data model.

The AP executes *homogeneous* NFAs: every incoming transition of a state
accepts the same symbol-set, so the symbol-set lives on the state (an STE)
rather than on edges.  An :class:`Automaton` is one connected machine (one
pattern); a :class:`Network` is an application — a bag of automata that run in
parallel over a shared input stream, exactly as a set of patterns configured
together on an AP chip.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .symbolset import SymbolSet

__all__ = ["StartKind", "State", "Automaton", "Network"]


class StartKind(enum.Enum):
    """How a state participates in the start set.

    ``ALL_INPUT`` states are enabled at every input position (ANML
    ``start-of-input=all-input``); ``START_OF_DATA`` states are enabled only
    at position 0 (ANML ``start-of-data``), as used by Fermi and SPM in the
    paper.
    """

    NONE = "none"
    ALL_INPUT = "all-input"
    START_OF_DATA = "start-of-data"


@dataclass
class State:
    """One homogeneous NFA state (maps 1:1 onto an STE column).

    ``eod`` restricts reporting to the final input position (ANML's
    end-of-data reporting; the compilation target of a ``$`` anchor).
    """

    sid: int
    symbol_set: SymbolSet
    start: StartKind = StartKind.NONE
    reporting: bool = False
    report_code: Optional[str] = None
    eod: bool = False
    label: str = ""

    @property
    def is_start(self) -> bool:
        return self.start is not StartKind.NONE


class Automaton:
    """A single homogeneous NFA (one pattern).

    States are indexed densely from 0.  Edges are directed ``u -> v`` meaning
    "when ``u`` is activated, ``v`` is enabled for the next cycle".
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._states: List[State] = []
        self._succ: List[List[int]] = []

    # -- construction --------------------------------------------------------

    def add_state(
        self,
        symbol_set: SymbolSet,
        *,
        start: StartKind = StartKind.NONE,
        reporting: bool = False,
        report_code: Optional[str] = None,
        eod: bool = False,
        label: str = "",
    ) -> int:
        """Add a state and return its id."""
        sid = len(self._states)
        self._states.append(
            State(
                sid=sid,
                symbol_set=symbol_set,
                start=start,
                reporting=reporting,
                report_code=report_code,
                eod=eod,
                label=label or f"{self.name}:{sid}" if self.name else str(sid),
            )
        )
        self._succ.append([])
        return sid

    def add_edge(self, src: int, dst: int) -> None:
        """Add transition ``src -> dst`` (idempotent)."""
        self._check_sid(src)
        self._check_sid(dst)
        if dst not in self._succ[src]:
            self._succ[src].append(dst)

    def _check_sid(self, sid: int) -> None:
        if not 0 <= sid < len(self._states):
            raise IndexError(f"no state {sid} in automaton {self.name!r}")

    # -- queries ---------------------------------------------------------------

    @property
    def n_states(self) -> int:
        return len(self._states)

    @property
    def n_edges(self) -> int:
        return sum(len(s) for s in self._succ)

    def state(self, sid: int) -> State:
        self._check_sid(sid)
        return self._states[sid]

    def states(self) -> Iterator[State]:
        return iter(self._states)

    def successors(self, sid: int) -> Sequence[int]:
        self._check_sid(sid)
        return tuple(self._succ[sid])

    def edges(self) -> Iterator[Tuple[int, int]]:
        for src, dsts in enumerate(self._succ):
            for dst in dsts:
                yield src, dst

    def predecessors_map(self) -> List[List[int]]:
        """Predecessor adjacency, computed on demand."""
        preds: List[List[int]] = [[] for _ in range(self.n_states)]
        for src, dst in self.edges():
            preds[dst].append(src)
        return preds

    def start_states(self) -> List[int]:
        return [s.sid for s in self._states if s.is_start]

    def reporting_states(self) -> List[int]:
        return [s.sid for s in self._states if s.reporting]

    # -- transforms --------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Automaton":
        out = Automaton(self.name if name is None else name)
        for s in self._states:
            out.add_state(
                s.symbol_set,
                start=s.start,
                reporting=s.reporting,
                report_code=s.report_code,
                eod=s.eod,
                label=s.label,
            )
        for src, dst in self.edges():
            out.add_edge(src, dst)
        return out

    def induced(
        self, keep: Iterable[int], name: Optional[str] = None
    ) -> Tuple["Automaton", Dict[int, int]]:
        """The sub-automaton induced by ``keep`` state ids.

        Returns the new automaton and the old-id -> new-id mapping.  Edges to
        or from dropped states are removed; the caller is responsible for any
        stitching (e.g. intermediate reporting states).
        """
        keep_sorted = sorted(set(keep))
        mapping: Dict[int, int] = {}
        out = Automaton(self.name if name is None else name)
        for old in keep_sorted:
            s = self.state(old)
            mapping[old] = out.add_state(
                s.symbol_set,
                start=s.start,
                reporting=s.reporting,
                report_code=s.report_code,
                eod=s.eod,
                label=s.label,
            )
        for src, dst in self.edges():
            if src in mapping and dst in mapping:
                out.add_edge(mapping[src], mapping[dst])
        return out, mapping

    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation."""
        if self.n_states == 0:
            raise ValueError(f"automaton {self.name!r} has no states")
        for src, dsts in enumerate(self._succ):
            for dst in dsts:
                if not 0 <= dst < self.n_states:
                    raise ValueError(f"dangling edge {src}->{dst} in {self.name!r}")
        if not self.start_states():
            raise ValueError(f"automaton {self.name!r} has no start state")

    def __repr__(self) -> str:
        return f"Automaton({self.name!r}, states={self.n_states}, edges={self.n_edges})"


@dataclass
class Network:
    """An application: many automata executing in parallel on one input.

    Global state ids are assigned contiguously per automaton in order, which
    is the id space used by the simulation engines, the partitioner, and the
    intermediate-report translation table.
    """

    name: str = ""
    automata: List[Automaton] = field(default_factory=list)

    def __post_init__(self) -> None:
        # ``Network([automaton])`` used to bind the list to ``name`` and yield
        # an empty network that silently simulated to zero reports.  Fail
        # loudly instead: ``name`` must be a string and every entry of
        # ``automata`` an :class:`Automaton`.
        if not isinstance(self.name, str):
            raise TypeError(
                f"Network name must be a str, got {type(self.name).__name__}; "
                "did you mean Network(automata=[...])?"
            )
        if not isinstance(self.automata, list):
            raise TypeError(
                f"Network automata must be a list, got {type(self.automata).__name__}"
            )
        for entry in self.automata:
            if not isinstance(entry, Automaton):
                raise TypeError(
                    f"Network automata entries must be Automaton, "
                    f"got {type(entry).__name__}"
                )

    def add(self, automaton: Automaton) -> None:
        if not isinstance(automaton, Automaton):
            raise TypeError(
                f"Network.add expects an Automaton, got {type(automaton).__name__}"
            )
        self.automata.append(automaton)

    @property
    def n_automata(self) -> int:
        return len(self.automata)

    @property
    def n_states(self) -> int:
        return sum(a.n_states for a in self.automata)

    @property
    def n_edges(self) -> int:
        return sum(a.n_edges for a in self.automata)

    def offsets(self) -> List[int]:
        """Global-id offset of each automaton (prefix sums of sizes)."""
        out = []
        total = 0
        for a in self.automata:
            out.append(total)
            total += a.n_states
        return out

    def global_id(self, automaton_index: int, sid: int) -> int:
        return self.offsets()[automaton_index] + sid

    def locate(self, global_id: int) -> Tuple[int, int]:
        """Map a global state id back to ``(automaton_index, sid)``."""
        if global_id < 0:
            raise IndexError(global_id)
        remaining = global_id
        for index, a in enumerate(self.automata):
            if remaining < a.n_states:
                return index, remaining
            remaining -= a.n_states
        raise IndexError(f"no global state {global_id} in network {self.name!r}")

    def global_states(self) -> Iterator[Tuple[int, int, State]]:
        """Yield ``(global_id, automaton_index, state)`` for every state."""
        gid = 0
        for index, a in enumerate(self.automata):
            for s in a.states():
                yield gid, index, s
                gid += 1

    def reporting_count(self) -> int:
        return sum(len(a.reporting_states()) for a in self.automata)

    def start_count(self) -> int:
        return sum(len(a.start_states()) for a in self.automata)

    def validate(self) -> None:
        for a in self.automata:
            a.validate()

    def __repr__(self) -> str:
        return (
            f"Network({self.name!r}, automata={self.n_automata}, "
            f"states={self.n_states}, edges={self.n_edges})"
        )
