"""Symbol sets over the 8-bit alphabet used by AP state transition elements.

The AP's address decoder is 256 rows wide (one per input byte value), so a
state's symbol-set is exactly a subset of ``{0, ..., 255}``.  We store it as a
256-bit Python integer bitmask, which makes union/intersection/negation cheap
and hashable.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

ALPHABET_SIZE = 256
_FULL_MASK = (1 << ALPHABET_SIZE) - 1

__all__ = ["ALPHABET_SIZE", "SymbolSet"]


def _symbol_value(symbol) -> int:
    """Normalize a symbol given as an int, a length-1 str, or a length-1 bytes."""
    if isinstance(symbol, (int, np.integer)):
        value = int(symbol)
    elif isinstance(symbol, str) and len(symbol) == 1:
        value = ord(symbol)
    elif isinstance(symbol, (bytes, bytearray)) and len(symbol) == 1:
        value = symbol[0]
    else:
        raise TypeError(f"not a symbol: {symbol!r}")
    if not 0 <= value < ALPHABET_SIZE:
        raise ValueError(f"symbol out of range [0, 256): {value}")
    return value


class SymbolSet:
    """An immutable subset of the 256-symbol alphabet.

    Construct via the classmethods (:meth:`from_symbols`, :meth:`from_ranges`,
    :meth:`universal`, ...) or set algebra on existing instances.
    """

    __slots__ = ("_mask",)

    def __init__(self, mask: int = 0):
        if not 0 <= mask <= _FULL_MASK:
            raise ValueError("mask out of range for a 256-bit symbol set")
        self._mask = mask

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls) -> "SymbolSet":
        return cls(0)

    @classmethod
    def universal(cls) -> "SymbolSet":
        """The ``*`` symbol-set matching every byte (ANML's dot)."""
        return cls(_FULL_MASK)

    @classmethod
    def from_symbols(cls, symbols: Iterable) -> "SymbolSet":
        mask = 0
        for symbol in symbols:
            mask |= 1 << _symbol_value(symbol)
        return cls(mask)

    @classmethod
    def single(cls, symbol) -> "SymbolSet":
        return cls(1 << _symbol_value(symbol))

    @classmethod
    def from_ranges(cls, *ranges: tuple) -> "SymbolSet":
        """Build from inclusive ``(low, high)`` pairs, e.g. ``('a', 'z')``."""
        mask = 0
        for low, high in ranges:
            lo, hi = _symbol_value(low), _symbol_value(high)
            if lo > hi:
                raise ValueError(f"empty range: ({lo}, {hi})")
            mask |= ((1 << (hi - lo + 1)) - 1) << lo
        return cls(mask)

    # -- queries -----------------------------------------------------------

    @property
    def mask(self) -> int:
        return self._mask

    def matches(self, symbol) -> bool:
        """Whether this set accepts ``symbol``."""
        return bool(self._mask >> _symbol_value(symbol) & 1)

    def __contains__(self, symbol) -> bool:
        return self.matches(symbol)

    def __len__(self) -> int:
        return bin(self._mask).count("1")

    def __bool__(self) -> bool:
        return self._mask != 0

    def __iter__(self) -> Iterator[int]:
        mask = self._mask
        value = 0
        while mask:
            if mask & 1:
                yield value
            mask >>= 1
            value += 1

    def symbols(self) -> list:
        """All accepted symbol values, ascending."""
        return list(self)

    def is_universal(self) -> bool:
        return self._mask == _FULL_MASK

    def is_disjoint(self, other: "SymbolSet") -> bool:
        """Whether this set shares no symbol with ``other``."""
        return not self._mask & other._mask

    def to_bool_array(self) -> np.ndarray:
        """A length-256 boolean accept vector (row layout of an STE column)."""
        out = np.zeros(ALPHABET_SIZE, dtype=bool)
        for value in self:
            out[value] = True
        return out

    # -- set algebra ---------------------------------------------------------

    def union(self, other: "SymbolSet") -> "SymbolSet":
        return SymbolSet(self._mask | other._mask)

    def intersection(self, other: "SymbolSet") -> "SymbolSet":
        return SymbolSet(self._mask & other._mask)

    def difference(self, other: "SymbolSet") -> "SymbolSet":
        return SymbolSet(self._mask & ~other._mask & _FULL_MASK)

    def complement(self) -> "SymbolSet":
        return SymbolSet(~self._mask & _FULL_MASK)

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __invert__ = complement

    def __eq__(self, other) -> bool:
        return isinstance(other, SymbolSet) and self._mask == other._mask

    def __hash__(self) -> int:
        return hash(self._mask)

    def __repr__(self) -> str:
        return f"SymbolSet({self.describe()!r})"

    # -- display -------------------------------------------------------------

    def describe(self) -> str:
        """A compact, human-readable character-class-like rendering."""
        if self.is_universal():
            return "*"
        if not self:
            return "[]"
        parts = []
        values = self.symbols()
        start = prev = values[0]
        for value in values[1:] + [None]:
            if value is not None and value == prev + 1:
                prev = value
                continue
            parts.append(_render_run(start, prev))
            if value is not None:
                start = prev = value
        body = "".join(parts)
        if len(values) == 1 and len(body) <= 4:
            return body
        return f"[{body}]"


def _render_char(value: int) -> str:
    char = chr(value)
    if char in "[]-\\^*":
        return "\\" + char
    if 32 <= value < 127:
        return char
    return f"\\x{value:02x}"


def _render_run(start: int, end: int) -> str:
    if start == end:
        return _render_char(start)
    if end == start + 1:
        return _render_char(start) + _render_char(end)
    return f"{_render_char(start)}-{_render_char(end)}"
