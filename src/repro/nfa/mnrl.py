"""MNRL interchange: the MNCaRT ecosystem's JSON automata format.

MNRL (paper ref [36], Angstadt et al., CAL 2018) is the JSON counterpart to
ANML used across the open automata-processing toolchain (VASim, ANMLZoo
tooling).  We support the ``hState`` node type — homogeneous states with a
symbol set, ``enable`` semantics, and ``reportId`` — which covers every
machine this library builds.

Schema subset::

    {"id": "net", "nodes": [
        {"id": "a0s0", "type": "hState",
         "attributes": {"symbolSet": "[ab]", "reportId": "r0"},
         "enable": "onStartAndActivateIn",   # or onActivateIn / onAll
         "report": true,
         "activate": [{"id": "a0s1"}]}
    ]}
"""

from __future__ import annotations

import json
from typing import Dict, List

from .anml import format_symbol_set, parse_symbol_set
from .automaton import Automaton, Network, StartKind

__all__ = ["network_to_mnrl", "network_from_mnrl"]

_ENABLE_OF_START = {
    StartKind.NONE: "onActivateIn",
    StartKind.ALL_INPUT: "onAll",
    StartKind.START_OF_DATA: "onStartAndActivateIn",
}
_START_OF_ENABLE = {v: k for k, v in _ENABLE_OF_START.items()}


def network_to_mnrl(network: Network) -> str:
    """Serialize a network to an MNRL JSON string."""
    nodes: List[dict] = []
    for a_index, automaton in enumerate(network.automata):
        for state in automaton.states():
            node = {
                "id": f"a{a_index}s{state.sid}",
                "type": "hState",
                "enable": _ENABLE_OF_START[state.start],
                "report": bool(state.reporting),
                "attributes": {"symbolSet": format_symbol_set(state.symbol_set)},
                "activate": [
                    {"id": f"a{a_index}s{dst}"} for dst in automaton.successors(state.sid)
                ],
            }
            if state.reporting and state.report_code is not None:
                node["attributes"]["reportId"] = str(state.report_code)
            if state.eod:
                node["reportEnable"] = "onLast"
            nodes.append(node)
    return json.dumps({"id": network.name or "network", "nodes": nodes}, indent=1)


def network_from_mnrl(text: str, name: str = "") -> Network:
    """Parse an MNRL JSON string; groups nodes into automata by connectivity."""
    document = json.loads(text)
    nodes = document.get("nodes")
    if nodes is None:
        raise ValueError("MNRL document has no 'nodes' array")

    ids: List[str] = []
    attrs: Dict[str, dict] = {}
    edges: List[tuple] = []
    for node in nodes:
        node_id = node.get("id")
        if node_id is None:
            raise ValueError("MNRL node without id")
        if node_id in attrs:
            raise ValueError(f"duplicate MNRL node id: {node_id}")
        node_type = node.get("type", "hState")
        if node_type != "hState":
            raise ValueError(f"unsupported MNRL node type: {node_type}")
        enable = node.get("enable", "onActivateIn")
        if enable not in _START_OF_ENABLE:
            raise ValueError(f"unsupported enable kind: {enable}")
        attributes = node.get("attributes", {})
        attrs[node_id] = {
            "symbol_set": parse_symbol_set(attributes.get("symbolSet", "*")),
            "start": _START_OF_ENABLE[enable],
            "reporting": bool(node.get("report", False)),
            "report_code": attributes.get("reportId"),
            "eod": node.get("reportEnable") == "onLast",
        }
        ids.append(node_id)
        for target in node.get("activate", []):
            target_id = target.get("id")
            if target_id is None:
                raise ValueError(f"activate entry without id in {node_id}")
            edges.append((node_id, target_id))

    for src, dst in edges:
        if dst not in attrs:
            raise ValueError(f"edge to unknown MNRL node: {src} -> {dst}")

    # Weak-connectivity grouping, as for ANML.
    parent = {node_id: node_id for node_id in ids}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for src, dst in edges:
        root_src, root_dst = find(src), find(dst)
        if root_src != root_dst:
            parent[root_src] = root_dst

    groups: Dict[str, List[str]] = {}
    for node_id in ids:
        groups.setdefault(find(node_id), []).append(node_id)

    network = Network(name=name or str(document.get("id", "")))
    local_of: Dict[str, tuple] = {}
    for group_index, members in enumerate(groups.values()):
        automaton = Automaton(f"{network.name}#{group_index}")
        for node_id in members:
            info = attrs[node_id]
            sid = automaton.add_state(
                info["symbol_set"],
                start=info["start"],
                reporting=info["reporting"],
                report_code=info["report_code"],
                eod=info["eod"],
                label=node_id,
            )
            local_of[node_id] = (len(network.automata), sid)
        network.add(automaton)
    for src, dst in edges:
        a_src, sid_src = local_of[src]
        a_dst, sid_dst = local_of[dst]
        if a_src != a_dst:
            raise ValueError("edge crosses automata after grouping (internal error)")
        network.automata[a_src].add_edge(sid_src, sid_dst)
    return network
