"""Network transforms: throughput duplication and common-prefix merging.

Two transformations the paper's introduction cites as drivers of NFA state
growth and AP pressure:

* :func:`duplicate_network` — the AP supports running multiple input
  streams by *duplicating* the NFAs (paper ref [30]; the Parallel Automata
  Processor [31] duplicates for parallel enumeration).  Duplication
  multiplies states, which is exactly the scaling problem SparseAP targets;
  the ablation benchmark uses this to show the baseline degrading linearly
  while the partitioned execution holds.
* :func:`merge_common_prefixes` — a trie-style compiler optimization that
  merges chain NFAs sharing a symbol-set prefix into one machine.  It
  reduces states (helping everything fit) but couples previously
  independent NFAs into one placement unit.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .automaton import Automaton, Network, StartKind
from .symbolset import SymbolSet

__all__ = ["duplicate_network", "is_chain", "merge_common_prefixes"]


def duplicate_network(network: Network, copies: int) -> Network:
    """``copies`` independent copies of every NFA (multi-stream execution).

    Report codes gain a ``@k`` stream suffix so the streams' reports remain
    distinguishable, as the AP's logical-stream ids do.
    """
    if copies < 1:
        raise ValueError(f"copies must be >= 1, got {copies}")
    out = Network(name=f"{network.name}x{copies}")
    for copy in range(copies):
        for automaton in network.automata:
            duplicate = automaton.copy(name=f"{automaton.name}@{copy}")
            if copy > 0:
                for state in duplicate.states():
                    if state.reporting and state.report_code is not None:
                        state.report_code = f"{state.report_code}@{copy}"
            out.add(duplicate)
    return out


def is_chain(automaton: Automaton) -> bool:
    """Whether the automaton is a pure chain: one start at state 0 and each
    state feeding exactly the next (the signature/rule-set shape)."""
    if automaton.start_states() != [0]:
        return False
    for sid in range(automaton.n_states):
        successors = automaton.successors(sid)
        if sid == automaton.n_states - 1:
            if successors:
                return False
        elif successors != (sid + 1,):
            return False
    return True


def merge_common_prefixes(network: Network) -> Network:
    """Merge chain NFAs sharing symbol-set prefixes into trie machines.

    Only pure chains with the same start kind participate; anything else is
    passed through untouched.  Matching behaviour (the multiset of
    ``(position, report_code)`` pairs) is preserved: a reporting chain state
    maps onto a reporting trie node.
    """
    out = Network(name=f"{network.name}/trie")
    chains: Dict[StartKind, List[Automaton]] = {}
    for automaton in network.automata:
        if is_chain(automaton) and automaton.n_states > 0:
            chains.setdefault(automaton.state(0).start, []).append(automaton)
        else:
            out.add(automaton.copy())

    for start_kind, members in chains.items():
        trie = Automaton(f"{network.name}/trie/{start_kind.value}")
        # node key: path of symbol sets from the root (SymbolSet is hashable).
        children: Dict[Tuple, Dict[SymbolSet, Tuple]] = {(): {}}
        node_state: Dict[Tuple, int] = {}

        def node_for(path: Tuple, symbol_set: SymbolSet, depth: int) -> Tuple:
            parent_children = children[path]
            if symbol_set in parent_children:
                return parent_children[symbol_set]
            new_path = path + (symbol_set,)
            sid = trie.add_state(
                symbol_set,
                start=start_kind if depth == 0 else StartKind.NONE,
            )
            if path in node_state:
                trie.add_edge(node_state[path], sid)
            node_state[new_path] = sid
            children[new_path] = {}
            parent_children[symbol_set] = new_path
            return new_path

        for automaton in members:
            path: Tuple = ()
            for depth, state in enumerate(automaton.states()):
                path = node_for(path, state.symbol_set, depth)
                if state.reporting:
                    trie_state = trie.state(node_state[path])
                    trie_state.reporting = True
                    if trie_state.report_code is None:
                        trie_state.report_code = state.report_code
                    elif state.report_code and state.report_code not in trie_state.report_code:
                        trie_state.report_code += f"+{state.report_code}"
        if trie.n_states:
            out.add(trie)
    return out
