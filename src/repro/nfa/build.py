"""Programmatic NFA construction helpers.

These builders cover the structural motifs that recur across the workload
generators and the tests: literal chains, chains with self-loop heads
(unanchored search), grids, and star states.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .automaton import Automaton, StartKind
from .symbolset import SymbolSet

__all__ = [
    "literal_chain",
    "symbolset_chain",
    "add_chain",
    "self_loop_prefix",
]


def _as_symbol_sets(pattern) -> list:
    """Normalize a pattern given as bytes/str/iterable-of-SymbolSet."""
    if isinstance(pattern, (bytes, bytearray)):
        return [SymbolSet.single(b) for b in pattern]
    if isinstance(pattern, str):
        return [SymbolSet.single(c) for c in pattern]
    sets = list(pattern)
    for item in sets:
        if not isinstance(item, SymbolSet):
            raise TypeError(f"expected SymbolSet items, got {type(item).__name__}")
    return sets


def literal_chain(
    pattern,
    *,
    name: str = "",
    start: StartKind = StartKind.ALL_INPUT,
    report_code: Optional[str] = None,
) -> Automaton:
    """An automaton matching a literal pattern anywhere in the input.

    The first state is a start state (enabled every cycle by default, so the
    pattern is unanchored); the last state reports.
    """
    return symbolset_chain(
        _as_symbol_sets(pattern), name=name, start=start, report_code=report_code
    )


def symbolset_chain(
    symbol_sets: Sequence[SymbolSet],
    *,
    name: str = "",
    start: StartKind = StartKind.ALL_INPUT,
    report_code: Optional[str] = None,
) -> Automaton:
    """A chain of symbol-sets; the final state reports."""
    sets = list(symbol_sets)
    if not sets:
        raise ValueError("cannot build a chain from an empty pattern")
    a = Automaton(name)
    prev = a.add_state(sets[0], start=start)
    for symbol_set in sets[1:]:
        nxt = a.add_state(symbol_set)
        a.add_edge(prev, nxt)
        prev = nxt
    last = a.state(prev)
    last.reporting = True
    last.report_code = report_code if report_code is not None else name or "match"
    return a


def add_chain(
    automaton: Automaton,
    from_state: int,
    symbol_sets: Iterable[SymbolSet],
    *,
    reporting_tail: bool = False,
    report_code: Optional[str] = None,
) -> int:
    """Append a chain of new states after ``from_state``; return the tail id."""
    prev = from_state
    tail = from_state
    for symbol_set in symbol_sets:
        tail = automaton.add_state(symbol_set)
        automaton.add_edge(prev, tail)
        prev = tail
    if reporting_tail and tail != from_state:
        s = automaton.state(tail)
        s.reporting = True
        s.report_code = report_code if report_code is not None else automaton.name
    return tail


def self_loop_prefix(automaton: Automaton, state: int) -> None:
    """Give ``state`` a universal self-loop (classic ``.*`` search head).

    Note this creates a singleton SCC with a self edge; the analysis pass
    treats it as a cycle, as the paper's SCC preprocessing does.
    """
    automaton.add_edge(state, state)
