"""Special ANML elements: counters and boolean gates.

Real AP chips (and ANML/VASim) provide two non-STE element types that the
pure-NFA pipeline in this library does not need but a faithful AP toolchain
must support:

* **Counters** (ANML ``counter``): count activations on a count input; when
  the count reaches the target the counter asserts its output (``latch``:
  stays asserted until reset; ``pulse``: asserts for one cycle; ``roll``:
  pulses and restarts).  A reset input clears the count (reset wins over a
  simultaneous count, per the D480 design notes).
* **Boolean gates** (``and``/``or``/``nor``/``not``): combinational logic
  over activation signals.

An :class:`ElementNetwork` wraps a plain :class:`~repro.nfa.automaton.Network`
with a DAG of such elements: element inputs are STE activations or other
element outputs; element outputs can report and can enable STEs for the next
cycle (exactly like an STE's activate-on-match fan-out).  The hybrid
simulator lives in :mod:`repro.sim.hybrid`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .automaton import Network

__all__ = ["CounterMode", "GateKind", "Counter", "Gate", "ElementNetwork"]


class CounterMode(enum.Enum):
    """What a counter does upon reaching its target (ANML at-target modes)."""

    LATCH = "latch"
    PULSE = "pulse"
    ROLL = "roll"


class GateKind(enum.Enum):
    """Boolean element families available on the AP fabric."""

    AND = "and"
    OR = "or"
    NOR = "nor"
    NOT = "not"


#: An element input source: ("ste", global_state_id) or ("element", element_id).
Signal = Tuple[str, int]


def _check_signal(signal: Signal) -> None:
    kind, index = signal
    if kind not in ("ste", "element") or index < 0:
        raise ValueError(f"bad signal: {signal!r}")


def _check_element(element_id: int, element: object) -> None:
    """Structural validation of one element at network-construction time.

    Duplicates the element dataclasses' own ``__post_init__`` checks on
    purpose: input lists are mutable and elements can be handed straight to
    the :class:`ElementNetwork` constructor, so this is the last gate
    before the simulator (which would otherwise, e.g., silently ignore the
    extra inputs of an over-wired NOT gate).
    """
    if isinstance(element, Gate):
        if not element.inputs:
            raise ValueError(f"element {element_id}: gate needs at least one input")
        if element.kind is GateKind.NOT and len(element.inputs) != 1:
            raise ValueError(
                f"element {element_id}: NOT gate takes exactly one input, "
                f"got fan-in {len(element.inputs)}"
            )
        for signal in element.inputs:
            _check_signal(signal)
    elif isinstance(element, Counter):
        if element.target < 1:
            raise ValueError(
                f"element {element_id}: counter target must be >= 1, "
                f"got {element.target}"
            )
        for signal in element.count_inputs + element.reset_inputs:
            _check_signal(signal)
    else:
        raise TypeError(
            f"element {element_id}: expected Gate or Counter, "
            f"got {type(element).__name__}"
        )


@dataclass
class Counter:
    """A threshold counter element."""

    target: int
    mode: CounterMode = CounterMode.LATCH
    count_inputs: List[Signal] = field(default_factory=list)
    reset_inputs: List[Signal] = field(default_factory=list)
    reporting: bool = False
    report_code: Optional[str] = None

    def __post_init__(self):
        if self.target < 1:
            raise ValueError(f"counter target must be >= 1, got {self.target}")
        for signal in self.count_inputs + self.reset_inputs:
            _check_signal(signal)


@dataclass
class Gate:
    """A combinational boolean element."""

    kind: GateKind
    inputs: List[Signal] = field(default_factory=list)
    reporting: bool = False
    report_code: Optional[str] = None

    def __post_init__(self):
        if not self.inputs:
            raise ValueError("gate needs at least one input")
        if self.kind is GateKind.NOT and len(self.inputs) != 1:
            raise ValueError("NOT gate takes exactly one input")
        for signal in self.inputs:
            _check_signal(signal)


@dataclass
class ElementNetwork:
    """A plain STE network plus a DAG of counters/gates.

    ``enables[element_id]`` lists STE global ids enabled (for the next
    cycle) when that element's output is asserted.  Element ids index into
    ``elements``; an element's inputs may reference only lower element ids
    (a topological order the constructor enforces), so evaluation is a
    single forward pass per cycle.
    """

    network: Network
    elements: List[object] = field(default_factory=list)
    enables: Dict[int, List[int]] = field(default_factory=dict)

    def __post_init__(self):
        # Elements handed to the constructor directly bypass add_gate /
        # add_counter, and a Gate's ``inputs`` list can be mutated after
        # Gate.__post_init__ ran — re-validate here so a malformed element
        # can never reach the simulator (which would silently ignore the
        # extra NOT inputs, see repro.sim.hybrid._gate_value).
        for element_id, element in enumerate(self.elements):
            _check_element(element_id, element)

    def add_counter(self, counter: Counter) -> int:
        return self._add(counter, counter.count_inputs + counter.reset_inputs)

    def add_gate(self, gate: Gate) -> int:
        return self._add(gate, gate.inputs)

    def _add(self, element, signals: List[Signal]) -> int:
        element_id = len(self.elements)
        _check_element(element_id, element)
        n_states = self.network.n_states
        for kind, index in signals:
            if kind == "ste" and index >= n_states:
                raise ValueError(f"signal references missing STE {index}")
            if kind == "element" and index >= element_id:
                raise ValueError(
                    f"element inputs must reference earlier elements, got {index}"
                )
        self.elements.append(element)
        return element_id

    def connect_enable(self, element_id: int, ste_global_id: int) -> None:
        """Assertion of ``element_id`` enables the given STE next cycle."""
        if not 0 <= element_id < len(self.elements):
            raise IndexError(f"no element {element_id}")
        if not 0 <= ste_global_id < self.network.n_states:
            raise IndexError(f"no STE {ste_global_id}")
        self.enables.setdefault(element_id, []).append(ste_global_id)

    @property
    def n_elements(self) -> int:
        return len(self.elements)
