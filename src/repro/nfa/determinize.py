"""Subset-construction determinization of homogeneous NFA networks.

CPU regex engines of the paper's era (its DFA-acceleration related work,
§VIII) execute DFAs: one table lookup per symbol, at the cost of potential
state blowup.  This module builds that substrate: a DFA equivalent to a
whole network, with alphabet compression (symbols that no state
distinguishes share a column) and a state cap that surfaces blowup instead
of hanging.

Semantics match the network exactly: a DFA state is the set of enabled NFA
states; all-input start states are re-enabled on every transition, and a
transition that activates reporting NFA states emits those reports at the
consumed position.

The flattening (:func:`flatten_network`), alphabet-class computation
(:func:`alphabet_classes`), and per-class representative selection
(:func:`class_representatives`) are public because the budgeted
subset-construction *explorer* in :mod:`repro.cost.explore` must walk
exactly the same transition function this module materializes: sharing the
tables is what makes its DFA-safety verdicts proofs about *this*
``determinize`` rather than about a reimplementation that could drift
(DESIGN.md §12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple, Union

import numpy as np

from ..sim.result import reports_to_array
from .automaton import Network, StartKind
from .symbolset import ALPHABET_SIZE, SymbolSet

__all__ = [
    "DFA",
    "DeterminizeError",
    "NetworkTables",
    "alphabet_classes",
    "class_representatives",
    "determinize",
    "flatten_network",
]


class DeterminizeError(RuntimeError):
    """Raised when subset construction exceeds the state cap."""


@dataclass(frozen=True)
class NetworkTables:
    """A network flattened to per-global-state tables (determinization view).

    ``successors[g]`` lists global successor ids; ``always`` is the set of
    all-input start states (re-enabled on every transition); ``initial`` is
    the subset-construction start set (both start kinds).
    """

    symbol_sets: Tuple[SymbolSet, ...]
    successors: Tuple[Tuple[int, ...], ...]
    reporting: Tuple[bool, ...]
    eod: Tuple[bool, ...]
    always: FrozenSet[int]
    initial: FrozenSet[int]

    @property
    def n_states(self) -> int:
        return len(self.symbol_sets)


def flatten_network(network: Network) -> NetworkTables:
    """Flatten a network into the tables subset construction walks."""
    symbol_sets: List[SymbolSet] = []
    successors: List[Tuple[int, ...]] = []
    reporting: List[bool] = []
    eod: List[bool] = []
    always: List[int] = []
    initial: List[int] = []
    offsets = network.offsets()
    for a_index, automaton in enumerate(network.automata):
        base = offsets[a_index]
        for state in automaton.states():
            symbol_sets.append(state.symbol_set)
            successors.append(tuple(base + d for d in automaton.successors(state.sid)))
            reporting.append(state.reporting)
            eod.append(state.eod)
            if state.start is StartKind.ALL_INPUT:
                always.append(base + state.sid)
                initial.append(base + state.sid)
            elif state.start is StartKind.START_OF_DATA:
                initial.append(base + state.sid)
    return NetworkTables(
        symbol_sets=tuple(symbol_sets),
        successors=tuple(successors),
        reporting=tuple(reporting),
        eod=tuple(eod),
        always=frozenset(always),
        initial=frozenset(initial),
    )


def alphabet_classes(network: Network) -> Tuple[np.ndarray, int]:
    """Group symbols that every state in the network treats identically.

    Returns ``(class_of, n_classes)`` where ``class_of[b]`` maps byte ``b``
    to its equivalence-class index.  Two bytes share a class exactly when
    no symbol-set in the network distinguishes them, so a transition table
    needs one column per class rather than one per byte (CAMA's
    observation: real rulesets use a few dozen classes, not 256).
    """
    classes: Dict[Tuple[bool, ...], int] = {}
    class_of = np.zeros(ALPHABET_SIZE, dtype=np.int64)
    distinct_sets = {state.symbol_set for _g, _a, state in network.global_states()}
    ordered = sorted(distinct_sets, key=lambda symbol_set: symbol_set.mask)
    for symbol in range(ALPHABET_SIZE):
        signature = tuple(symbol_set.matches(symbol) for symbol_set in ordered)
        if signature not in classes:
            classes[signature] = len(classes)
        class_of[symbol] = classes[signature]
    return class_of, len(classes)


def class_representatives(class_of: np.ndarray, n_classes: int) -> np.ndarray:
    """One representative symbol per class (the smallest member)."""
    representative = np.zeros(n_classes, dtype=np.int64)
    for symbol in range(ALPHABET_SIZE - 1, -1, -1):
        representative[int(class_of[symbol])] = symbol
    return representative


@dataclass
class DFA:
    """A table-driven DFA over compressed symbol classes.

    ``transitions[s, c]`` is the next DFA state for symbol class ``c``;
    ``reports[s][c]`` lists the network's reporting state ids activated by
    that transition (empty tuple if silent); ``reports_mid`` is the same
    with end-of-data reporters removed (used at every position except the
    last).  ``subsets[s]`` is the set of global NFA states DFA state ``s``
    encodes — the subset-construction witness, kept so downstream
    consumers (:mod:`repro.sim.dfa`) can recover NFA-level facts such as
    the ever-enabled set without re-running subset construction.
    """

    n_states: int
    initial: int
    class_of_symbol: np.ndarray  # (256,) symbol -> class index
    transitions: np.ndarray  # (n_states, n_classes)
    reports: List[List[Tuple[int, ...]]]
    reports_mid: List[List[Tuple[int, ...]]]
    subsets: Tuple[FrozenSet[int], ...] = ()

    @property
    def n_classes(self) -> int:
        return int(self.transitions.shape[1])

    def run(self, input_data: Union[bytes, bytearray, str]) -> np.ndarray:
        """Consume the input; return ``(position, nfa_state)`` reports."""
        if isinstance(input_data, str):
            input_data = input_data.encode("latin-1")
        symbols = np.frombuffer(bytes(input_data), dtype=np.uint8)
        classes = self.class_of_symbol[symbols]
        out: List[Tuple[int, int]] = []
        state = self.initial
        transitions = self.transitions
        last = int(classes.size) - 1
        for position in range(classes.size):
            cls = int(classes[position])
            table = self.reports if position == last else self.reports_mid
            for gid in table[state][cls]:
                out.append((position, gid))
            state = int(transitions[state, cls])
        return reports_to_array(out)


def determinize(network: Network, *, max_states: int = 65536) -> DFA:
    """Subset construction over the whole network.

    Raises :class:`DeterminizeError` when more than ``max_states`` subset
    states are generated (the classic DFA blowup the AP avoids natively).
    A network whose reachable-subset count is *exactly* ``max_states``
    succeeds — the same boundary semantics as the budgeted explorer in
    :mod:`repro.cost.explore`, pinned by the boundary regression tests in
    ``tests/test_dfa_backend.py``.
    """
    if max_states < 1:
        # Mirror the explorer's budget validation: the initial subset always
        # exists, so max_states=0 could never honor its own contract.
        raise ValueError(f"max_states must be >= 1, got {max_states}")
    class_of, n_classes = alphabet_classes(network)
    representative = class_representatives(class_of, n_classes)
    tables = flatten_network(network)
    symbol_sets = tables.symbol_sets
    successors = tables.successors
    reporting = tables.reporting
    eod = tables.eod
    always_frozen = tables.always
    initial = tables.initial

    index_of: Dict[FrozenSet[int], int] = {initial: 0}
    worklist: List[FrozenSet[int]] = [initial]
    transition_rows: List[List[int]] = []
    report_rows: List[List[Tuple[int, ...]]] = []
    report_mid_rows: List[List[Tuple[int, ...]]] = []

    while worklist:
        current = worklist.pop()
        row = [0] * n_classes
        reps_row: List[Tuple[int, ...]] = [()] * n_classes
        reps_mid_row: List[Tuple[int, ...]] = [()] * n_classes
        for cls in range(n_classes):
            symbol = int(representative[cls])
            activated = [gid for gid in current if symbol_sets[gid].matches(symbol)]
            fired = tuple(sorted(gid for gid in activated if reporting[gid]))
            nxt = set(always_frozen)
            for gid in activated:
                nxt.update(successors[gid])
            target = frozenset(nxt)
            if target not in index_of:
                if len(index_of) >= max_states:
                    raise DeterminizeError(
                        f"subset construction exceeded {max_states} states"
                    )
                index_of[target] = len(index_of)
                worklist.append(target)
            row[cls] = index_of[target]
            reps_row[cls] = fired
            reps_mid_row[cls] = tuple(gid for gid in fired if not eod[gid])
        while len(transition_rows) <= index_of[current]:
            transition_rows.append([])
            report_rows.append([])
            report_mid_rows.append([])
        transition_rows[index_of[current]] = row
        report_rows[index_of[current]] = reps_row
        report_mid_rows[index_of[current]] = reps_mid_row

    n_states = len(index_of)
    transitions = np.zeros((n_states, n_classes), dtype=np.int64)
    for state_index, row in enumerate(transition_rows):
        transitions[state_index, :] = row
    subsets: List[FrozenSet[int]] = [frozenset()] * n_states
    for subset, state_index in index_of.items():
        subsets[state_index] = subset
    return DFA(
        n_states=n_states,
        initial=0,
        class_of_symbol=class_of,
        transitions=transitions,
        reports=report_rows,
        reports_mid=report_mid_rows,
        subsets=tuple(subsets),
    )
