"""Regex front end: a recursive-descent parser and Glushkov construction.

The Glushkov construction produces exactly the homogeneous (position) automata
the AP runs: one state per character position, symbol-set on the state, no
epsilon transitions.  This is the same compilation route Micron's ANML tools
and VASim use for regex rules.

Supported syntax (the subset exercised by Snort/ClamAV/Becchi-style rule
sets): literals, escapes (``\\n \\t \\r \\0 \\xHH`` and escaped
metacharacters), classes ``[...]`` with ranges and negation, ``\\d \\w \\s``
and their negations, ``.``, alternation ``|``, groups ``(...)``, and the
quantifiers ``* + ? {m} {m,} {m,n}``.

Patterns are unanchored by default: every Glushkov first-position becomes an
all-input start state, which matches the pattern at any offset, mirroring how
pattern-matching rules are deployed on the AP.  ``anchored=True`` uses
start-of-data starts instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from .automaton import Automaton, StartKind
from .symbolset import SymbolSet

__all__ = ["RegexError", "parse", "compile_regex"]

_MAX_COUNT = 4096

_DIGIT = SymbolSet.from_ranges(("0", "9"))
_WORD = SymbolSet.from_ranges(("a", "z"), ("A", "Z"), ("0", "9")) | SymbolSet.single("_")
_SPACE = SymbolSet.from_symbols(" \t\n\r\x0b\x0c")

_ESCAPES = {
    "n": SymbolSet.single("\n"),
    "t": SymbolSet.single("\t"),
    "r": SymbolSet.single("\r"),
    "f": SymbolSet.single("\x0c"),
    "v": SymbolSet.single("\x0b"),
    "0": SymbolSet.single(0),
    "d": _DIGIT,
    "D": _DIGIT.complement(),
    "w": _WORD,
    "W": _WORD.complement(),
    "s": _SPACE,
    "S": _SPACE.complement(),
}


class RegexError(ValueError):
    """Raised for syntax errors and unsupported constructs."""


# -- AST ----------------------------------------------------------------------


@dataclass(frozen=True)
class Lit:
    symbol_set: SymbolSet


@dataclass(frozen=True)
class Concat:
    parts: Tuple


@dataclass(frozen=True)
class Alt:
    parts: Tuple


@dataclass(frozen=True)
class Star:
    child: object


@dataclass(frozen=True)
class Opt:
    child: object


@dataclass(frozen=True)
class Repeat:
    child: object
    low: int
    high: Optional[int]  # None means unbounded


# -- Parser ---------------------------------------------------------------------


class _Parser:
    def __init__(self, pattern: str):
        self.pattern = pattern
        self.pos = 0

    def error(self, message: str) -> RegexError:
        return RegexError(f"{message} at offset {self.pos} in {self.pattern!r}")

    def peek(self) -> Optional[str]:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def take(self) -> str:
        char = self.peek()
        if char is None:
            raise self.error("unexpected end of pattern")
        self.pos += 1
        return char

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}")
        self.pos += 1

    # alternation := concat ('|' concat)*
    def parse_alternation(self):
        parts = [self.parse_concat()]
        while self.peek() == "|":
            self.take()
            parts.append(self.parse_concat())
        if len(parts) == 1:
            return parts[0]
        return Alt(tuple(parts))

    def parse_concat(self):
        parts = []
        while self.peek() is not None and self.peek() not in "|)":
            parts.append(self.parse_quantified())
        if not parts:
            raise self.error("empty branch is not supported")
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def parse_quantified(self):
        atom = self.parse_atom()
        while True:
            char = self.peek()
            if char == "*":
                self.take()
                atom = Star(atom)
            elif char == "+":
                self.take()
                atom = Concat((atom, Star(atom)))
            elif char == "?":
                self.take()
                atom = Opt(atom)
            elif char == "{":
                atom = self.parse_counted(atom)
            else:
                return atom

    def parse_counted(self, atom):
        self.expect("{")
        low = self.parse_int()
        high: Optional[int] = low
        if self.peek() == ",":
            self.take()
            if self.peek() == "}":
                high = None
            else:
                high = self.parse_int()
        self.expect("}")
        if high is not None and high < low:
            raise self.error(f"bad repeat bounds {{{low},{high}}}")
        if low > _MAX_COUNT or (high is not None and high > _MAX_COUNT):
            raise self.error(f"repeat bound exceeds {_MAX_COUNT}")
        return Repeat(atom, low, high)

    def parse_int(self) -> int:
        digits = ""
        while self.peek() is not None and self.peek().isdigit():
            digits += self.take()
        if not digits:
            raise self.error("expected a number")
        return int(digits)

    def parse_atom(self):
        char = self.peek()
        if char is None:
            raise self.error("unexpected end of pattern")
        if char == "(":
            self.take()
            if self.peek() == "?":  # (?:...) non-capturing group
                self.take()
                self.expect(":")
            inner = self.parse_alternation()
            self.expect(")")
            return inner
        if char == "[":
            return Lit(self.parse_class())
        if char == ".":
            self.take()
            return Lit(SymbolSet.universal())
        if char == "\\":
            self.take()
            return Lit(self.parse_escape())
        if char in "*+?{":
            raise self.error(f"quantifier {char!r} with nothing to repeat")
        if char in ")|":
            raise self.error(f"unexpected {char!r}")
        self.take()
        return Lit(SymbolSet.single(char))

    def parse_escape(self) -> SymbolSet:
        char = self.take()
        if char == "x":
            hex_digits = self.take() + self.take()
            try:
                return SymbolSet.single(int(hex_digits, 16))
            except ValueError:
                raise self.error(f"bad hex escape \\x{hex_digits}") from None
        if char in _ESCAPES:
            return _ESCAPES[char]
        return SymbolSet.single(char)

    def parse_class(self) -> SymbolSet:
        self.expect("[")
        negate = False
        if self.peek() == "^":
            self.take()
            negate = True
        result = SymbolSet.empty()
        first = True
        while True:
            char = self.peek()
            if char is None:
                raise self.error("unterminated character class")
            if char == "]" and not first:
                self.take()
                break
            first = False
            item = self._class_item()
            dashed = self.peek() == "-" and self.pos + 1 < len(self.pattern)
            if dashed and self.pattern[self.pos + 1] != "]":
                if len(item) != 1:
                    raise self.error("range endpoint must be a single symbol")
                self.take()  # '-'
                end = self._class_item()
                if len(end) != 1:
                    raise self.error("range endpoint must be a single symbol")
                result |= SymbolSet.from_ranges((item.symbols()[0], end.symbols()[0]))
            else:
                result |= item
        if negate:
            result = result.complement()
        if not result:
            raise self.error("empty character class")
        return result

    def _class_item(self) -> SymbolSet:
        char = self.take()
        if char == "\\":
            return self.parse_escape()
        return SymbolSet.single(char)


def parse(pattern: str):
    """Parse a pattern into an AST; raises :class:`RegexError` on bad syntax."""
    parser = _Parser(pattern)
    ast = parser.parse_alternation()
    if parser.pos != len(pattern):
        raise parser.error("trailing characters")
    return ast


# -- Glushkov construction ----------------------------------------------------------


def _desugar(node):
    """Rewrite Repeat into Concat/Opt/Star so Glushkov only sees 5 node kinds."""
    if isinstance(node, Lit):
        return node
    if isinstance(node, Concat):
        return Concat(tuple(_desugar(p) for p in node.parts))
    if isinstance(node, Alt):
        return Alt(tuple(_desugar(p) for p in node.parts))
    if isinstance(node, Star):
        return Star(_desugar(node.child))
    if isinstance(node, Opt):
        return Opt(_desugar(node.child))
    if isinstance(node, Repeat):
        child = _desugar(node.child)
        parts: List[object] = [child] * node.low
        if node.high is None:
            parts.append(Star(child))
        else:
            parts.extend(Opt(child) for _ in range(node.high - node.low))
        if not parts:
            # {0,0}: matches only the empty string.
            return Opt(Lit(SymbolSet.empty()))
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))
    raise TypeError(f"unknown AST node: {node!r}")


class _Glushkov:
    """Computes nullable/first/last/follow over linearized positions."""

    def __init__(self):
        self.symbol_sets: List[SymbolSet] = []
        self.follow: List[Set[int]] = []

    def new_position(self, symbol_set: SymbolSet) -> int:
        self.symbol_sets.append(symbol_set)
        self.follow.append(set())
        return len(self.symbol_sets) - 1

    def analyze(self, node) -> Tuple[bool, Set[int], Set[int]]:
        """Return (nullable, first, last) and fill in follow sets."""
        if isinstance(node, Lit):
            pos = self.new_position(node.symbol_set)
            return False, {pos}, {pos}
        if isinstance(node, Concat):
            nullable, first, last = self.analyze(node.parts[0])
            for part in node.parts[1:]:
                p_nullable, p_first, p_last = self.analyze(part)
                for position in last:
                    self.follow[position] |= p_first
                first = first | p_first if nullable else first
                last = last | p_last if p_nullable else p_last
                nullable = nullable and p_nullable
            return nullable, first, last
        if isinstance(node, Alt):
            nullable, first, last = False, set(), set()
            for part in node.parts:
                p_nullable, p_first, p_last = self.analyze(part)
                nullable = nullable or p_nullable
                first |= p_first
                last |= p_last
            return nullable, first, last
        if isinstance(node, Star):
            _, first, last = self.analyze(node.child)
            for position in last:
                self.follow[position] |= first
            return True, first, last
        if isinstance(node, Opt):
            _, first, last = self.analyze(node.child)
            return True, first, last
        raise TypeError(f"unknown AST node after desugaring: {node!r}")


def compile_regex(
    pattern: str,
    *,
    name: str = "",
    anchored: bool = False,
    report_code: Optional[str] = None,
) -> Automaton:
    """Compile a regex into a homogeneous NFA via the Glushkov construction.

    A leading ``^`` anchors the pattern at the start of data and a trailing
    (unescaped) ``$`` restricts reporting to the end of data, matching the
    AP's start-of-data and end-of-data facilities.  Raises
    :class:`RegexError` for patterns that match the empty string (a
    homogeneous NFA reports by activating a state on a symbol, so an
    empty-string match is inexpressible, as in ANML).
    """
    body = pattern
    eod = False
    if body.startswith("^"):
        anchored = True
        body = body[1:]
    if body.endswith("$") and not body.endswith("\\$"):
        eod = True
        body = body[:-1]
    if not body:
        raise RegexError(f"pattern matches the empty string: {pattern!r}")
    ast = _desugar(parse(body))
    glushkov = _Glushkov()
    nullable, first, last = glushkov.analyze(ast)
    if nullable:
        raise RegexError(f"pattern matches the empty string: {pattern!r}")

    start = StartKind.START_OF_DATA if anchored else StartKind.ALL_INPUT
    automaton = Automaton(name or pattern)
    code = report_code if report_code is not None else (name or pattern)
    for position, symbol_set in enumerate(glushkov.symbol_sets):
        automaton.add_state(
            symbol_set,
            start=start if position in first else StartKind.NONE,
            reporting=position in last,
            report_code=code if position in last else None,
            eod=eod and position in last,
        )
    for src, follows in enumerate(glushkov.follow):
        for dst in sorted(follows):
            automaton.add_edge(src, dst)

    # Positions with empty symbol-sets (e.g. from {0,0}) can never activate;
    # they are legal but dead weight.  Keep them: the AP would configure them
    # too, and the hot/cold machinery is precisely about such states.
    return automaton
