"""Graph analysis for NFAs: SCC condensation and topological ordering.

Implements the paper's §III-A preprocessing: identify strongly connected
components (iterative Tarjan, safe for the very deep chain automata in
ClamAV/Snort workloads), condense them to a DAG, and assign every state a
1-based *topological order* — the longest-path layer from the starting
states — with all members of an SCC sharing one order.  Normalized depth is
the order divided by the maximum order in that automaton.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Set, Tuple

import numpy as np

from .automaton import Automaton, Network

__all__ = [
    "Topology",
    "strongly_connected_components",
    "analyze_automaton",
    "analyze_network",
    "NetworkTopology",
    "depth_buckets",
    "DEPTH_BUCKET_NAMES",
]

DEPTH_BUCKET_NAMES = ("shallow", "medium", "deep")


def strongly_connected_components(
    n_states: int, successors: Callable[[int], Sequence[int]]
) -> List[int]:
    """Tarjan's algorithm, iteratively.

    ``successors`` maps a state id to a sequence of successor ids.  Returns a
    per-state SCC id; SCC ids are assigned in pop order, so a higher id never
    reaches a lower id except within the same SCC (i.e. descending id order is
    a topological order of the condensation from sinks to sources).
    """
    index = [-1] * n_states
    lowlink = [0] * n_states
    on_stack = [False] * n_states
    scc_id = [-1] * n_states
    stack: List[int] = []
    next_index = 0
    next_scc = 0

    for root in range(n_states):
        if index[root] != -1:
            continue
        # Each work item is (state, iterator position into its successors).
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            v, child_pos = work.pop()
            if child_pos == 0:
                index[v] = lowlink[v] = next_index
                next_index += 1
                stack.append(v)
                on_stack[v] = True
            recursed = False
            succ = successors(v)
            for position in range(child_pos, len(succ)):
                w = succ[position]
                if index[w] == -1:
                    work.append((v, position + 1))
                    work.append((w, 0))
                    recursed = True
                    break
                if on_stack[w]:
                    lowlink[v] = min(lowlink[v], index[w])
            if recursed:
                continue
            if lowlink[v] == index[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    scc_id[w] = next_scc
                    if w == v:
                        break
                next_scc += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
    return scc_id


@dataclass
class Topology:
    """Topological analysis of one automaton."""

    scc_id: np.ndarray  # per-state component id
    n_sccs: int
    scc_size: np.ndarray  # per-SCC member count
    topo_order: np.ndarray  # per-state, 1-based longest-path layer
    max_order: int

    @property
    def normalized_depth(self) -> np.ndarray:
        """Per-state depth in (0, 1]; 1 is the deepest layer (paper §III-A).

        An empty automaton has ``max_order == 0``; rather than leaning on
        numpy's 0/0 semantics, the depth array is returned explicitly empty
        (every state of a non-empty automaton has order >= 1, so a zero
        ``max_order`` implies zero states).
        """
        if self.max_order == 0:
            return np.zeros(self.topo_order.shape, dtype=float)
        return self.topo_order / float(self.max_order)

    def layer_states(self, order: int) -> np.ndarray:
        """State ids whose topological order equals ``order``."""
        return np.flatnonzero(self.topo_order == order)


def analyze_automaton(automaton: Automaton) -> Topology:
    """Compute SCCs and topological order for one automaton."""
    n = automaton.n_states
    scc = strongly_connected_components(n, automaton.successors)
    scc_arr = np.asarray(scc, dtype=np.int64)
    n_sccs = int(scc_arr.max()) + 1 if n else 0
    scc_size = np.bincount(scc_arr, minlength=n_sccs)

    # Condensation predecessor lists.  Tarjan assigns SCC ids in pop order,
    # so iterating ids from high to low visits the condensation in topological
    # order (sources first).
    preds: List[Set[int]] = [set() for _ in range(n_sccs)]
    for src, dst in automaton.edges():
        cs, cd = scc[src], scc[dst]
        if cs != cd:
            preds[cd].add(cs)

    order = np.zeros(n_sccs, dtype=np.int64)
    for component in range(n_sccs - 1, -1, -1):
        if preds[component]:
            order[component] = 1 + max(order[p] for p in preds[component])
        else:
            order[component] = 1

    topo = order[scc_arr]
    return Topology(
        scc_id=scc_arr,
        n_sccs=n_sccs,
        scc_size=scc_size,
        topo_order=topo,
        max_order=int(topo.max()) if n else 0,
    )


@dataclass
class NetworkTopology:
    """Per-state topology arrays flattened over a whole network."""

    per_automaton: List[Topology]
    topo_order: np.ndarray  # global-state topological order
    normalized_depth: np.ndarray  # global-state normalized depth
    max_topo: int  # max order across automata (Table II "MaxTopo")

    def automaton_topology(self, index: int) -> Topology:
        return self.per_automaton[index]


def analyze_network(network: Network) -> NetworkTopology:
    """Analyze every automaton; concatenate per-state arrays in global order."""
    per = [analyze_automaton(a) for a in network.automata]
    if per:
        topo = np.concatenate([t.topo_order for t in per])
        depth = np.concatenate([t.normalized_depth for t in per])
        max_topo = max(t.max_order for t in per)
    else:
        topo = np.empty(0, dtype=np.int64)
        depth = np.empty(0, dtype=float)
        max_topo = 0
    return NetworkTopology(
        per_automaton=per, topo_order=topo, normalized_depth=depth, max_topo=max_topo
    )


def depth_buckets(normalized_depth: Sequence[float]) -> Dict[str, float]:
    """Fraction of states per Fig 5 bucket: [0, .3), [.3, .6), [.6, 1]."""
    depths = np.asarray(normalized_depth, dtype=float)
    if depths.size == 0:
        return {name: 0.0 for name in DEPTH_BUCKET_NAMES}
    shallow = float(np.mean(depths < 0.3))
    medium = float(np.mean((depths >= 0.3) & (depths < 0.6)))
    deep = float(np.mean(depths >= 0.6))
    return {"shallow": shallow, "medium": medium, "deep": deep}
