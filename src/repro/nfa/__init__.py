"""Homogeneous NFA model, regex/ANML front ends, and graph analysis."""

from .automaton import Automaton, Network, StartKind, State
from .symbolset import ALPHABET_SIZE, SymbolSet
from .regex import RegexError, compile_regex
from .analysis import analyze_automaton, analyze_network, depth_buckets
from .anml import network_from_anml, network_to_anml
from .transforms import duplicate_network, merge_common_prefixes
from .mnrl import network_from_mnrl, network_to_mnrl
from .determinize import DFA, DeterminizeError, determinize
from .elements import Counter, CounterMode, ElementNetwork, Gate, GateKind

__all__ = [
    "ALPHABET_SIZE",
    "Automaton",
    "Network",
    "StartKind",
    "State",
    "SymbolSet",
    "RegexError",
    "compile_regex",
    "analyze_automaton",
    "analyze_network",
    "depth_buckets",
    "network_from_anml",
    "network_to_anml",
    "duplicate_network",
    "merge_common_prefixes",
    "network_from_mnrl",
    "network_to_mnrl",
    "DFA",
    "DeterminizeError",
    "determinize",
    "Counter",
    "CounterMode",
    "ElementNetwork",
    "Gate",
    "GateKind",
]
