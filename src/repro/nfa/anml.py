"""ANML interchange: read/write the subset of Micron's Automata Network
Markup Language needed for AP workloads.

Supported elements: ``automata-network``, ``state-transition-element`` (with
``symbol-set``, ``start`` attributes), ``activate-on-match``,
``report-on-match``.  On read, elements are grouped into automata by weakly
connected components, so a file produced by another tool loads into the same
``Network`` shape our pipeline expects.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List

from .automaton import Automaton, Network, StartKind
from .regex import _Parser, RegexError
from .symbolset import SymbolSet

__all__ = ["network_to_anml", "network_from_anml", "parse_symbol_set", "format_symbol_set"]

_START_ATTR = {
    StartKind.ALL_INPUT: "all-input",
    StartKind.START_OF_DATA: "start-of-data",
}
_START_FROM_ATTR = {v: k for k, v in _START_ATTR.items()}


def format_symbol_set(symbol_set: SymbolSet) -> str:
    """Render a symbol-set in ANML's character-class syntax."""
    return symbol_set.describe()


def parse_symbol_set(text: str) -> SymbolSet:
    """Parse ANML character-class syntax (``*``, ``[a-z]``, single chars)."""
    if text == "*":
        return SymbolSet.universal()
    parser = _Parser(text)
    if text.startswith("["):
        result = parser.parse_class()
    elif text.startswith("\\"):
        parser.take()
        result = parser.parse_escape()
    elif len(text) == 1:
        result = SymbolSet.single(parser.take())
    else:
        raise RegexError(f"cannot parse symbol-set: {text!r}")
    if parser.pos != len(text):
        raise RegexError(f"trailing characters in symbol-set: {text!r}")
    return result


def network_to_anml(network: Network) -> str:
    """Serialize a network to an ANML XML string."""
    root = ET.Element("anml", version="1.0")
    net_el = ET.SubElement(root, "automata-network", id=network.name or "network")
    for a_index, automaton in enumerate(network.automata):
        for state in automaton.states():
            attrs = {
                "id": f"a{a_index}s{state.sid}",
                "symbol-set": format_symbol_set(state.symbol_set),
            }
            if state.start is not StartKind.NONE:
                attrs["start"] = _START_ATTR[state.start]
            ste = ET.SubElement(net_el, "state-transition-element", attrs)
            for dst in automaton.successors(state.sid):
                ET.SubElement(ste, "activate-on-match", element=f"a{a_index}s{dst}")
            if state.reporting:
                report_attrs = {}
                if state.report_code:
                    report_attrs["reportcode"] = str(state.report_code)
                if state.eod:
                    report_attrs["eod"] = "true"
                ET.SubElement(ste, "report-on-match", report_attrs)
    return ET.tostring(root, encoding="unicode")


def network_from_anml(text: str, name: str = "") -> Network:
    """Parse an ANML XML string into a :class:`Network`.

    Elements are grouped into automata by weak connectivity, preserving the
    AP rule that a machine's transitions stay within one placement unit.
    """
    root = ET.fromstring(text)
    net_el = root.find("automata-network")
    if net_el is None:
        if root.tag == "automata-network":
            net_el = root
        else:
            raise ValueError("no <automata-network> element found")

    ids: List[str] = []
    attrs: Dict[str, dict] = {}
    edges: List[tuple] = []
    for ste in net_el.findall("state-transition-element"):
        element_id = ste.get("id")
        if element_id is None:
            raise ValueError("state-transition-element without id")
        if element_id in attrs:
            raise ValueError(f"duplicate element id: {element_id}")
        report = ste.find("report-on-match")
        attrs[element_id] = {
            "symbol_set": parse_symbol_set(ste.get("symbol-set", "*")),
            "start": _START_FROM_ATTR.get(ste.get("start", ""), StartKind.NONE),
            "reporting": report is not None,
            "report_code": report.get("reportcode") if report is not None else None,
            "eod": report is not None and report.get("eod") == "true",
        }
        ids.append(element_id)
        for act in ste.findall("activate-on-match"):
            target = act.get("element")
            if target is None:
                raise ValueError(f"activate-on-match without element in {element_id}")
            edges.append((element_id, target))

    for src, dst in edges:
        if dst not in attrs:
            raise ValueError(f"edge to unknown element: {src} -> {dst}")

    # Union-find over weak connectivity to recover per-pattern automata.
    parent = {element_id: element_id for element_id in ids}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for src, dst in edges:
        root_src, root_dst = find(src), find(dst)
        if root_src != root_dst:
            parent[root_src] = root_dst

    groups: Dict[str, List[str]] = {}
    for element_id in ids:
        groups.setdefault(find(element_id), []).append(element_id)

    network = Network(name=name or (net_el.get("id") or ""))
    local_of: Dict[str, tuple] = {}
    for group_index, members in enumerate(groups.values()):
        automaton = Automaton(f"{network.name}#{group_index}")
        for element_id in members:
            info = attrs[element_id]
            sid = automaton.add_state(
                info["symbol_set"],
                start=info["start"],
                reporting=info["reporting"],
                report_code=info["report_code"],
                eod=info["eod"],
                label=element_id,
            )
            local_of[element_id] = (len(network.automata), sid)
        network.add(automaton)
    for src, dst in edges:
        a_src, sid_src = local_of[src]
        a_dst, sid_dst = local_of[dst]
        if a_src != a_dst:
            raise ValueError("edge crosses automata after grouping (internal error)")
        network.automata[a_src].add_edge(sid_src, sid_dst)
    return network
