"""SparseAP reproduction: large-scale automata processing on an AP model.

Reproduces "Architectural Support for Efficient Large-Scale Automata
Processing" (MICRO 2018): profiling-based hot/cold NFA state prediction,
topological-order partitioning with intermediate reporting states, and the
SparseAP execution mode, evaluated on a faithful Automata Processor model.

Quickstart::

    from repro import compile_regex, Network, HALF_CORE
    from repro import run_baseline_ap, prepare_partition, run_base_spap

    network = Network("demo")
    network.add(compile_regex("a((bc)|(cd)+)f", name="demo-pattern"))
    baseline = run_baseline_ap(network, b"xxabcf", HALF_CORE)
"""

from .ap import FULL_CHIP, HALF_CORE, QUARTER_CORE, APConfig
from .core import (
    CPUCostModel,
    geometric_mean,
    partition_network,
    prepare_partition,
    profile_network,
    run_ap_cpu,
    run_base_spap,
    run_baseline_ap,
    verify_equivalence,
)
from .nfa import Automaton, Network, StartKind, SymbolSet, compile_regex
from .sim import compile_network, reference_run, run

__version__ = "1.0.0"

__all__ = [
    "APConfig",
    "HALF_CORE",
    "FULL_CHIP",
    "QUARTER_CORE",
    "CPUCostModel",
    "geometric_mean",
    "partition_network",
    "prepare_partition",
    "profile_network",
    "run_ap_cpu",
    "run_base_spap",
    "run_baseline_ap",
    "verify_equivalence",
    "Automaton",
    "Network",
    "StartKind",
    "SymbolSet",
    "compile_regex",
    "compile_network",
    "reference_run",
    "run",
    "__version__",
]
