"""Intermediate-report queue model (paper §V-B).

The list of intermediate reports lives in off-chip device memory; a
128-entry on-chip queue holds the window being consumed during SpAP mode.
Each entry is 6 bytes (4-byte input position + 2-byte state id).  The paper
charges no cycles for refills (they stream ahead of consumption); this
model provides the structural accounting — how many refills a run needs
and how much device-memory traffic the report list causes — used by the
chip-model tests and the runtime statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .config import APConfig

__all__ = ["ReportQueueUsage", "queue_usage"]


@dataclass(frozen=True)
class ReportQueueUsage:
    """Queue traffic for one SpAP-mode execution."""

    n_reports: int
    queue_entries: int
    entry_bytes: int

    @property
    def refills(self) -> int:
        """Times the on-chip queue is (re)loaded from device memory."""
        if self.n_reports == 0:
            return 0
        return math.ceil(self.n_reports / self.queue_entries)

    @property
    def device_bytes(self) -> int:
        """Total device-memory traffic for the report list."""
        return self.n_reports * self.entry_bytes

    @property
    def on_chip_bytes(self) -> int:
        return self.queue_entries * self.entry_bytes

    def to_json(self) -> dict:
        """Counter view consumed by the runtime statistics (``repro.stats``)."""
        return {
            "n_reports": self.n_reports,
            "refills": self.refills,
            "device_bytes": self.device_bytes,
            "on_chip_bytes": self.on_chip_bytes,
        }


def queue_usage(n_reports: int, config: APConfig) -> ReportQueueUsage:
    """Queue accounting for ``n_reports`` intermediate reports."""
    if n_reports < 0:
        raise ValueError(f"negative report count: {n_reports}")
    return ReportQueueUsage(
        n_reports=n_reports,
        queue_entries=config.report_queue_entries,
        entry_bytes=config.report_entry_bytes,
    )
