"""Automata Processor architecture model: configuration, batching, placement."""

from .batching import NetworkSlice, batch_network, min_batches, pack_batches, slice_network
from .chip import Placement, STEAddress, decode_state_id, encode_address, place_network
from .config import FULL_CHIP, HALF_CORE, QUARTER_CORE, APConfig
from .parallel import ParallelOutcome, run_parallel_ap
from .queue import ReportQueueUsage, queue_usage

__all__ = [
    "APConfig",
    "HALF_CORE",
    "FULL_CHIP",
    "QUARTER_CORE",
    "NetworkSlice",
    "batch_network",
    "min_batches",
    "pack_batches",
    "slice_network",
    "Placement",
    "STEAddress",
    "decode_state_id",
    "encode_address",
    "place_network",
    "ParallelOutcome",
    "run_parallel_ap",
    "ReportQueueUsage",
    "queue_usage",
]
