"""Automata Processor configuration constants.

Models the D480-style half-core the paper evaluates: 96 routing-matrix
blocks of 16 rows of 16 STEs (24,576 STEs), 1 input symbol per 7.5 ns cycle,
and a 128-entry on-chip intermediate-report queue for SpAP mode.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["APConfig", "HALF_CORE", "FULL_CHIP", "QUARTER_CORE"]


@dataclass(frozen=True)
class APConfig:
    """Parameters of one AP placement unit (a half-core, per the paper).

    ``capacity`` is the number of STEs available to a configuration batch;
    transitions cannot cross placement units, so batches are packed against
    this limit.  The routing hierarchy fields drive the enable-operation
    decoder model and the placement validator.
    """

    capacity: int = 24576
    cycle_ns: float = 7.5
    blocks: int = 96
    rows_per_block: int = 16
    stes_per_row: int = 16
    report_queue_entries: int = 128
    report_entry_bytes: int = 6  # 4-byte input position + 2-byte state id

    def __post_init__(self):
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        if self.cycle_ns <= 0:
            raise ValueError(f"cycle_ns must be positive, got {self.cycle_ns}")
        for field_name in ("blocks", "rows_per_block", "stes_per_row",
                           "report_queue_entries", "report_entry_bytes"):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")
        if self.capacity > self.routing_stes:
            raise ValueError(
                f"capacity {self.capacity} exceeds routing matrix size {self.routing_stes}"
            )

    @property
    def routing_stes(self) -> int:
        """STEs addressable by the routing hierarchy."""
        return self.blocks * self.rows_per_block * self.stes_per_row

    @property
    def report_queue_bytes(self) -> int:
        """On-chip storage for the intermediate report queue (§V-B)."""
        return self.report_queue_entries * self.report_entry_bytes

    def with_capacity(self, capacity: int) -> "APConfig":
        """A copy with a different STE capacity (routing scaled to fit).

        Validated to ``__post_init__`` grade before any arithmetic: the
        capacity must be positive and the per-block geometry non-zero
        (a zero geometry would otherwise divide by zero here and every
        derived config would silently mis-size its routing matrix).
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        per_block = self.rows_per_block * self.stes_per_row
        if per_block <= 0:
            raise ValueError(
                f"rows_per_block ({self.rows_per_block}) * stes_per_row "
                f"({self.stes_per_row}) must be non-zero to size the routing matrix"
            )
        blocks = self.blocks
        needed = (capacity + per_block - 1) // per_block
        if needed > blocks:
            blocks = needed
        return replace(self, capacity=capacity, blocks=blocks)

    def cycles_to_seconds(self, cycles: int) -> float:
        return cycles * self.cycle_ns * 1e-9


#: The paper's baseline: one AP half-core, 24K STEs.
HALF_CORE = APConfig()

#: A full AP chip (two half-cores' worth of STEs; paper's "49K" grouping cut).
FULL_CHIP = APConfig(capacity=49152, blocks=192)

#: Half of a half-core, used by the Fig 13(a) sensitivity study (12K).
QUARTER_CORE = APConfig(capacity=12288, blocks=48)
