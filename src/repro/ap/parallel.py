"""Parallel Automata Processor model (paper ref [31], §I/§VIII).

The Parallel AP trades STEs for throughput: the input is split into ``k``
segments processed concurrently by ``k`` copies of the automaton, so the
application's footprint grows ``k``-fold — exactly the state-growth pressure
the paper's SparseAP addresses.  The paper argues the two are complementary
(§VIII): eliminating cold states frees the resources parallel execution
wants.  The ablation benchmark quantifies that synergy.

Model: each segment ``i`` re-processes an *overlap* window before its start
so matches ending inside the segment are complete (enough for acyclic
machines whose longest match is bounded by their topological depth; for
cyclic machines callers must supply a safe overlap).  A report belongs to
the segment its position falls in, which dedupes the overlap region.
Cycles per configuration pass = the longest segment including overlap;
batches follow from the ``k``-duplicated footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..nfa.analysis import analyze_network
from ..nfa.automaton import Network, StartKind
from ..nfa.transforms import duplicate_network
from ..sim.compiled import compile_network
from ..sim.engine import as_input_array
from ..sim.multistream import run_multi
from ..sim.result import reports_to_array
from .batching import batch_network
from .config import APConfig

__all__ = ["ParallelOutcome", "run_parallel_ap"]


@dataclass
class ParallelOutcome:
    """Parallel-AP execution of one application."""

    n_segments: int
    n_batches: int
    segment_cycles: int  # longest per-segment pass (overlap included)
    n_symbols: int
    reports: np.ndarray

    @property
    def cycles(self) -> int:
        """Total cycles: every batch runs all segments concurrently, so one
        pass costs the longest segment."""
        return self.n_batches * self.segment_cycles


def run_parallel_ap(
    network: Network,
    input_data,
    config: APConfig,
    segments: int,
    *,
    overlap: Optional[int] = None,
) -> ParallelOutcome:
    """Execute ``network`` over ``segments`` parallel input slices.

    ``overlap`` defaults to the network's maximum topological order minus
    one — sufficient for acyclic machines.  Raises ``ValueError`` for
    cyclic machines without an explicit overlap (their matches can span
    arbitrarily far back).
    """
    if segments < 1:
        raise ValueError(f"segments must be >= 1, got {segments}")
    symbols = as_input_array(input_data)
    n = int(symbols.size)

    topology = analyze_network(network)
    if overlap is None:
        has_cycle = any((t.scc_size > 1).any() for t in topology.per_automaton)
        has_self_loop = any(
            src == dst for a in network.automata for src, dst in a.edges()
        )
        if has_cycle or has_self_loop:
            raise ValueError(
                "cyclic machines need an explicit overlap (matches are unbounded)"
            )
        overlap = max(0, topology.max_topo - 1)

    if any(
        state.start is StartKind.START_OF_DATA
        for _g, _a, state in network.global_states()
    ):
        raise ValueError("start-of-data machines cannot be input-partitioned")

    # Footprint: k copies of the application, batched as usual.
    duplicated = duplicate_network(network, segments)
    n_batches = len(batch_network(duplicated, config.capacity))

    # All segments step through one compiled network in lock-step: a single
    # multi-stream call replaces the per-segment scalar runs (the segments
    # *are* the K concurrent lanes of the Parallel AP).
    segment_len = (n + segments - 1) // segments
    compiled = compile_network(network)
    windows: List[np.ndarray] = []
    bounds: List[tuple] = []
    longest = 0
    for index in range(segments):
        begin = index * segment_len
        end = min(n, begin + segment_len)
        if begin >= end:
            continue
        window_start = max(0, begin - overlap)
        windows.append(symbols[window_start:end])
        bounds.append((window_start, begin, end))
        longest = max(longest, end - window_start)
    merged: List[np.ndarray] = []
    for result, (window_start, begin, end) in zip(
        run_multi(compiled, windows, track_enabled=False), bounds
    ):
        if result.reports.size:
            reports = result.reports.copy()
            reports[:, 0] += window_start
            # Keep only reports owned by this segment (dedupes the overlap).
            owned = (reports[:, 0] >= begin) & (reports[:, 0] < end)
            merged.append(reports[owned])
    reports = (
        reports_to_array(np.concatenate(merged)) if merged else reports_to_array([])
    )
    return ParallelOutcome(
        n_segments=segments,
        n_batches=n_batches,
        segment_cycles=longest,
        n_symbols=n,
        reports=reports,
    )
