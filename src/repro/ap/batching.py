"""Batch compilation: packing whole NFAs into AP configurations.

The AP reconfigures between batches and re-streams the entire input per
batch, so the number of batches is the baseline's slowdown factor.  As in
the current AP toolchain (paper §III-C), batches contain whole NFAs; we pack
first-fit-decreasing, which is deterministic and near-optimal for the NFA
size distributions in these workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..nfa.automaton import Network

__all__ = ["NetworkSlice", "pack_batches", "slice_network", "batch_network", "min_batches"]


@dataclass
class NetworkSlice:
    """A sub-network plus the mapping from its local global-ids back to the
    parent network's global ids (needed to merge per-batch reports)."""

    network: Network
    global_ids: np.ndarray  # local global-id -> parent global-id

    @property
    def n_states(self) -> int:
        return self.network.n_states

    def to_parent_reports(self, reports: np.ndarray) -> np.ndarray:
        """Rewrite batch-local report state ids into parent ids."""
        if reports.size == 0:
            return reports
        out = reports.copy()
        out[:, 1] = self.global_ids[reports[:, 1]]
        return out


def pack_batches(sizes: Sequence[int], capacity: int) -> List[List[int]]:
    """Pack items (NFAs) of the given sizes into bins of ``capacity``.

    First-fit-decreasing with stable tie-breaking on the original index.
    Raises ``ValueError`` if any single item exceeds the capacity (a single
    NFA larger than the AP cannot be configured at all; the paper assumes
    individual NFAs fit, §III-C).
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    for index, size in enumerate(sizes):
        if size > capacity:
            raise ValueError(
                f"NFA {index} has {size} states, exceeding AP capacity {capacity}"
            )
    order = sorted(range(len(sizes)), key=lambda i: (-sizes[i], i))
    bins: List[List[int]] = []
    room: List[int] = []
    for index in order:
        size = sizes[index]
        placed = False
        for b, free in enumerate(room):
            if size <= free:
                bins[b].append(index)
                room[b] -= size
                placed = True
                break
        if not placed:
            bins.append([index])
            room.append(capacity - size)
    for members in bins:
        members.sort()
    return bins


def slice_network(parent: Network, automaton_indices: Sequence[int]) -> NetworkSlice:
    """Build the sub-network containing the given automata of ``parent``."""
    offsets = parent.offsets()
    network = Network(name=parent.name)
    ids: List[int] = []
    for a_index in automaton_indices:
        automaton = parent.automata[a_index]
        network.add(automaton)
        base = offsets[a_index]
        ids.extend(range(base, base + automaton.n_states))
    return NetworkSlice(network=network, global_ids=np.asarray(ids, dtype=np.int64))


def batch_network(parent: Network, capacity: int, *, strict: bool = False) -> List[NetworkSlice]:
    """Pack a network's NFAs into AP-sized batches.

    ``strict=True`` additionally runs the static batch-plan checker
    (:func:`repro.verify.verify_batch_plan`) on the result and raises
    :class:`repro.verify.VerificationError` on any rule violation.
    """
    sizes = [a.n_states for a in parent.automata]
    slices = [slice_network(parent, members) for members in pack_batches(sizes, capacity)]
    if strict:
        # Imported here: repro.verify.batching imports this module.
        from ..verify.batching import verify_batch_plan

        verify_batch_plan(parent, slices, capacity).raise_for_errors()
    return slices


def min_batches(total_states: int, capacity: int) -> int:
    """The paper's idealized batch count ceil(S / C_AP) (state granularity)."""
    return max(1, math.ceil(total_states / capacity))
