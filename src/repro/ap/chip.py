"""Structural chip model: STE placement and the enable-decoder hierarchy.

The routing matrix is hierarchical — blocks of rows of STEs — and SpAP's
enable operation selects an STE through three decoders over the 16-bit state
id (paper §V-B).  This module provides that address arithmetic, a placement
validator (a batch must fit the routing matrix and transitions must stay
within the placement unit), and occupancy/utilization accounting used by the
performance-per-STE metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..nfa.automaton import Network
from .config import APConfig

__all__ = ["STEAddress", "decode_state_id", "encode_address", "Placement", "place_network"]


@dataclass(frozen=True)
class STEAddress:
    """Hierarchical STE coordinates inside one half-core."""

    block: int
    row: int
    ste: int

    def flat(self, config: APConfig) -> int:
        per_block = config.rows_per_block * config.stes_per_row
        return self.block * per_block + self.row * config.stes_per_row + self.ste


def _exact_log2(value: int, field: str) -> int:
    """Bit width of a power-of-two geometry field.

    The enable decoders split the state id on bit boundaries, so a geometry
    whose row/STE counts are not powers of two cannot be addressed by
    shifting and masking at all — reject it rather than mis-address STEs.
    """
    if value <= 0 or value & (value - 1):
        raise ValueError(
            f"{field}={value} is not a power of two; the enable decoders "
            "split the state id on bit boundaries (paper §V-B), so row/STE "
            "geometry must be a power of two"
        )
    return value.bit_length() - 1


def _field_bits(config: APConfig) -> Tuple[int, int]:
    """(STE bits, row bits) of the state-id layout for this geometry."""
    return (
        _exact_log2(config.stes_per_row, "stes_per_row"),
        _exact_log2(config.rows_per_block, "rows_per_block"),
    )


def decode_state_id(state_id: int, config: APConfig) -> STEAddress:
    """Split a state id the way the SpAP enable decoders do.

    The low ``log2(stes_per_row)`` bits select the STE within a row, the
    next ``log2(rows_per_block)`` bits the row within a block, and the high
    bits the block (for the default 16x16 geometry: 4 + 4 + block bits).
    """
    if state_id < 0:
        raise ValueError(f"negative state id: {state_id}")
    ste_bits, row_bits = _field_bits(config)
    ste = state_id & (config.stes_per_row - 1)
    row = (state_id >> ste_bits) & (config.rows_per_block - 1)
    block = state_id >> (ste_bits + row_bits)
    if block >= config.blocks:
        raise ValueError(
            f"state id {state_id} selects block {block}, beyond {config.blocks} blocks"
        )
    return STEAddress(block=block, row=row, ste=ste)


def encode_address(address: STEAddress, config: APConfig) -> int:
    """Inverse of :func:`decode_state_id`."""
    if not (0 <= address.ste < config.stes_per_row and 0 <= address.row < config.rows_per_block):
        raise ValueError(f"address out of range: {address}")
    if not 0 <= address.block < config.blocks:
        raise ValueError(f"address out of range: {address}")
    ste_bits, row_bits = _field_bits(config)
    return (address.block << (ste_bits + row_bits)) | (address.row << ste_bits) | address.ste


@dataclass
class Placement:
    """A batch mapped onto STEs of one placement unit."""

    config: APConfig
    assignments: Dict[int, STEAddress]  # network global id -> STE address
    n_states: int

    @property
    def utilization(self) -> float:
        """Fraction of the unit's STE capacity this batch occupies."""
        return self.n_states / float(self.config.capacity)

    def address_of(self, global_id: int) -> STEAddress:
        return self.assignments[global_id]


def place_network(network: Network, config: APConfig) -> Placement:
    """Assign every state of a batch network to an STE, row-major.

    Automata are placed contiguously so all their transitions stay inside the
    placement unit (the AP forbids cross-half-core transitions).  Raises
    ``ValueError`` if the batch exceeds capacity.
    """
    n = network.n_states
    if n > config.capacity:
        raise ValueError(f"batch of {n} states exceeds capacity {config.capacity}")
    assignments: Dict[int, STEAddress] = {}
    per_block = config.rows_per_block * config.stes_per_row
    for gid, _a_index, _state in network.global_states():
        block, rem = divmod(gid, per_block)
        row, ste = divmod(rem, config.stes_per_row)
        assignments[gid] = STEAddress(block=block, row=row, ste=ste)
    return Placement(config=config, assignments=assignments, n_states=n)


def enable_decoder_widths(config: APConfig) -> List[int]:
    """Decoder input widths used by the enable operation (block, row, STE)."""
    def width(n: int) -> int:
        bits = 0
        while (1 << bits) < n:
            bits += 1
        return bits

    return [width(config.blocks), width(config.rows_per_block), width(config.stes_per_row)]
