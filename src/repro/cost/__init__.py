"""Static compilability & cost analysis (``repro.cost``).

The third static-analysis subsystem, beside the structural verifier
(:mod:`repro.verify`) and the semantic analyzer (:mod:`repro.semant`):
given a partitioned application it *proves* which partitions can be
compiled to a table-driven DFA within a state budget (budgeted subset
construction, no table materialized), accounts the effective symbol-class
alphabet and its table-compression headroom, and prices every engine
backend with a cost model calibrated against the committed engine
benchmarks — fused into per-partition :class:`BackendAdvisory` records and
SPAP-C0xx diagnostics.  The hybrid DFA/NFA engine consumes these
advisories unchanged (ROADMAP: raw engine speed).

CLI: ``python -m repro cost [ABBR ...|--all] [--json] [--budget N]
[--check]``; see DESIGN.md §12 for the soundness argument and the
cost-model calibration.
"""

from .advisory import (
    BackendAdvisory,
    advise_network,
    check_advisory_soundness,
    emit_advisory_diagnostics,
    partition_advisories,
)
from .app import CostOutcome, CostReport, analyze_run_cost, cost_app
from .classes import ClassAnalysis, analyze_symbol_classes
from .explore import DEFAULT_DFA_BUDGET, SubsetExploration, explore_subset_construction
from .model import (
    BACKENDS,
    DEFAULT_COST_MODEL,
    DFA_TABLE_BUDGET,
    CostFeatures,
    CostModel,
    rank_backends,
)

__all__ = [
    "BACKENDS",
    "BackendAdvisory",
    "ClassAnalysis",
    "CostFeatures",
    "CostModel",
    "CostOutcome",
    "CostReport",
    "DEFAULT_COST_MODEL",
    "DEFAULT_DFA_BUDGET",
    "DFA_TABLE_BUDGET",
    "SubsetExploration",
    "advise_network",
    "analyze_run_cost",
    "analyze_symbol_classes",
    "check_advisory_soundness",
    "cost_app",
    "emit_advisory_diagnostics",
    "explore_subset_construction",
    "partition_advisories",
    "rank_backends",
]
