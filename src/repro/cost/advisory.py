"""Per-partition backend advisories: the fusion layer of ``repro.cost``.

One :class:`BackendAdvisory` per partition fuses the three static analyses:

* the budgeted subset-construction explorer's DFA-safety verdict
  (:mod:`repro.cost.explore`),
* the symbol-class compression accounting (:mod:`repro.cost.classes`),
* the calibrated per-backend cost model (:mod:`repro.cost.model`), fed the
  profile-free hot fraction from :mod:`repro.semant.predict`.

Findings are emitted through the SPAP-C0xx rule family of
:mod:`repro.verify.diagnostics` — the same diagnostics substrate every
other static pass reports through — and
:func:`check_advisory_soundness` replays a DFA-safety proof against the
real :func:`~repro.nfa.determinize.determinize` plus the reference
simulator, turning "the explorer walks the same transition function" from
an argument into a CI-gated differential check (SPAP-C001).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nfa.automaton import Network
from ..nfa.determinize import DeterminizeError, determinize
from ..semant.predict import predict_hot_cold
from ..sim.reference import reference_run
from ..sim.result import reports_equal
from ..verify.diagnostics import VerificationReport
from .classes import ClassAnalysis, analyze_symbol_classes
from .explore import DEFAULT_DFA_BUDGET, SubsetExploration, explore_subset_construction
from .model import (
    DFA_TABLE_BUDGET,
    CostFeatures,
    CostModel,
    DEFAULT_COST_MODEL,
    dfa_entry_bytes,
    rank_backends,
)

__all__ = [
    "BackendAdvisory",
    "THIN_MARGIN",
    "advise_network",
    "check_advisory_soundness",
    "emit_advisory_diagnostics",
    "partition_advisories",
]

#: Below this winner/runner-up cost ratio the advisory is a coin toss
#: (SPAP-C005): measurement noise can flip the measured order.
THIN_MARGIN = 1.10

#: Classes beyond this leave no real compression headroom (SPAP-C003).
_INEFFECTIVE_CLASSES = 128


@dataclass(frozen=True)
class BackendAdvisory:
    """Everything ``repro.cost`` can say statically about one partition."""

    partition: str  # "network", "hot", or "cold"
    n_states: int
    n_automata: int
    classes: ClassAnalysis
    exploration: SubsetExploration
    hot_fraction: float  # profile-free predicted-active fraction
    mean_fanout: float
    costs: Dict[str, Optional[float]]  # backend -> predicted us/symbol
    recommended: str  # cheapest feasible backend
    recommended_single: str  # cheapest among single-stream backends
    margin: float  # runner-up cost / winner cost (1.0 when unopposed)

    @property
    def dfa_safe(self) -> bool:
        return self.exploration.dfa_safe

    @property
    def dfa_states(self) -> Optional[int]:
        return self.exploration.n_subset_states if self.exploration.dfa_safe else None

    def to_json(self) -> Dict[str, object]:
        return {
            "partition": self.partition,
            "n_states": self.n_states,
            "n_automata": self.n_automata,
            "n_classes": self.classes.n_classes,
            "n_distinct_symbol_sets": self.classes.n_distinct_symbol_sets,
            "table_bytes_dense": self.classes.table_bytes_dense,
            "table_bytes_classed": self.classes.table_bytes_classed,
            "compression_ratio": self.classes.compression_ratio,
            "dfa_budget": self.exploration.budget,
            "dfa_safe": self.dfa_safe,
            "dfa_states": self.dfa_states,
            "dfa_frontier_depth": self.exploration.frontier_depth,
            "hot_fraction": self.hot_fraction,
            "mean_fanout": self.mean_fanout,
            "costs_us_per_symbol": dict(self.costs),
            "recommended": self.recommended,
            "recommended_single": self.recommended_single,
            "margin": self.margin,
        }

    def render(self) -> str:
        ranked = rank_backends(self.costs)
        pricing = ", ".join(f"{name} {cost:.2f}us" for name, cost in ranked)
        return (
            f"{self.partition}: {self.n_states} states, "
            f"{self.classes.n_classes} classes "
            f"({self.classes.compression_ratio:.1f}x table compression); "
            f"{self.exploration.describe()}; "
            f"advise {self.recommended} "
            f"(margin {self.margin:.2f}x; {pricing})"
        )


def _mean_fanout(network: Network) -> float:
    n = network.n_states
    return (network.n_edges / n) if n else 0.0


def _static_hot_fraction(network: Network, horizon: int) -> float:
    """Profile-free predicted-active fraction (raw mask, not layer-closed).

    A partition with no start states (a cold partition: enabled only by
    SpAP events) predicts nothing hot, which is exactly the sparse-activity
    regime the reference backend's cost formula rewards.
    """
    n = network.n_states
    if n == 0 or network.n_automata == 0:
        return 0.0
    prediction = predict_hot_cold(network, horizon=horizon)
    return float(prediction.hot_mask.sum()) / n


def advise_network(
    network: Network,
    *,
    partition: str = "network",
    budget: int = DEFAULT_DFA_BUDGET,
    event_driven: bool = False,
    horizon: int = 4096,
    model: CostModel = DEFAULT_COST_MODEL,
    n_streams: int = 8,
) -> BackendAdvisory:
    """Fuse the three static analyses into one advisory for ``network``."""
    class_analysis = analyze_symbol_classes(network)
    exploration = explore_subset_construction(network, budget=budget)
    hot_fraction = _static_hot_fraction(network, horizon)
    features = CostFeatures(
        n_states=network.n_states,
        n_words=class_analysis.n_words,
        n_classes=class_analysis.n_classes,
        mean_fanout=_mean_fanout(network),
        hot_fraction=hot_fraction,
        event_driven=event_driven,
        dfa_safe=exploration.dfa_safe,
        dfa_states=exploration.n_subset_states if exploration.dfa_safe else None,
        n_streams=n_streams,
    )
    costs = model.predict(features)
    ranked = rank_backends(costs)
    if not ranked:  # unreachable: reference/bitpacked are always feasible
        raise ValueError("cost model declared every backend infeasible")
    recommended = ranked[0][0]
    margin = (ranked[1][1] / ranked[0][1]) if len(ranked) > 1 and ranked[0][1] > 0 else 1.0
    single = [pair for pair in ranked if pair[0] != "multistream"]
    recommended_single = single[0][0] if single else recommended
    return BackendAdvisory(
        partition=partition,
        n_states=network.n_states,
        n_automata=network.n_automata,
        classes=class_analysis,
        exploration=exploration,
        hot_fraction=hot_fraction,
        mean_fanout=features.mean_fanout,
        costs=costs,
        recommended=recommended,
        recommended_single=recommended_single,
        margin=margin,
    )


def emit_advisory_diagnostics(
    advisory: BackendAdvisory, report: VerificationReport
) -> None:
    """Record the advisory's SPAP-C findings on ``report``."""
    where = advisory.partition
    exploration = advisory.exploration
    if not exploration.dfa_safe:
        report.emit(
            "SPAP-C002",
            f"subset construction burst the budget: {exploration.describe()}",
            location=where,
        )
    if advisory.classes.n_classes > _INEFFECTIVE_CLASSES:
        report.emit(
            "SPAP-C003",
            f"{advisory.classes.n_classes} symbol classes of "
            f"{256} — class compression saves only "
            f"{advisory.classes.compression_ratio:.2f}x",
            location=where,
        )
    table_bytes = (
        advisory.dfa_states
        * advisory.classes.n_classes
        * dfa_entry_bytes(advisory.dfa_states)
        if advisory.dfa_states is not None
        else None
    )
    if table_bytes is not None and table_bytes > DFA_TABLE_BUDGET:
        report.emit(
            "SPAP-C004",
            f"DFA proven safe ({advisory.dfa_states} states) but its table "
            f"needs {table_bytes} B "
            f"({dfa_entry_bytes(advisory.dfa_states)}-byte entries) "
            f"> budget {DFA_TABLE_BUDGET} B",
            location=where,
        )
    if advisory.margin < THIN_MARGIN and advisory.margin > 0:
        ranked = rank_backends(advisory.costs)
        runner_up = ranked[1][0] if len(ranked) > 1 else "none"
        report.emit(
            "SPAP-C005",
            f"advisory margin {advisory.margin:.3f}x between "
            f"{advisory.recommended} and {runner_up} is below "
            f"{THIN_MARGIN}x — treat the recommendation as a tie",
            location=where,
        )
    for name, cost in advisory.costs.items():
        if cost is not None and (not np.isfinite(cost) or cost < 0):
            report.emit(
                "SPAP-C006",
                f"cost model produced {cost!r} for backend {name}",
                location=where,
            )


def check_advisory_soundness(
    network: Network,
    advisory: BackendAdvisory,
    report: VerificationReport,
    *,
    replay_input: Optional[bytes] = None,
) -> None:
    """Differentially validate a DFA-safety proof (SPAP-C001).

    For a partition the explorer proved safe, real determinization at the
    same budget must succeed with exactly the proven state count, and —
    when ``replay_input`` is given — the materialized DFA must replay
    bit-identical reports against the reference simulator.  Emits
    SPAP-C001 on any divergence; silent otherwise.
    """
    if not advisory.dfa_safe:
        return
    where = advisory.partition
    try:
        dfa = determinize(network, max_states=advisory.exploration.budget)
    except DeterminizeError as exc:
        report.emit(
            "SPAP-C001",
            f"explorer proved {advisory.dfa_states} subset states but "
            f"determinize burst the same budget: {exc}",
            location=where,
        )
        return
    if dfa.n_states != advisory.dfa_states:
        report.emit(
            "SPAP-C001",
            f"explorer proved {advisory.dfa_states} subset states but "
            f"determinize produced {dfa.n_states}",
            location=where,
        )
        return
    if replay_input is not None and network.n_states:
        expected = reference_run(network, replay_input)
        if not reports_equal(dfa.run(replay_input), expected.reports):
            report.emit(
                "SPAP-C001",
                "DFA replay diverged from the reference simulation "
                f"on a {len(replay_input)}-byte input",
                location=where,
            )


def partition_advisories(
    partitions: List[Tuple[str, Network, bool]],
    *,
    budget: int = DEFAULT_DFA_BUDGET,
    horizon: int = 4096,
    model: CostModel = DEFAULT_COST_MODEL,
) -> List[BackendAdvisory]:
    """Advise each named ``(name, network, event_driven)`` partition."""
    return [
        advise_network(
            network,
            partition=name,
            budget=budget,
            event_driven=event_driven,
            horizon=horizon,
            model=model,
        )
        for name, network, event_driven in partitions
        if network.n_states > 0
    ]
