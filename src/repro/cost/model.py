"""Analytic per-backend cost model over static features.

Predicts, per partition and per engine backend, the expected wall time per
input symbol — from quantities available *without running any input*:
state count, packed bit-matrix width, effective alphabet-class count, the
profile-free hot fraction from :mod:`repro.semant.predict`, and the
DFA-safety verdict of :mod:`repro.cost.explore`.

Backends modeled (the pluggable-engine set the ROADMAP's hybrid-DFA item
will make selectable per partition):

* ``reference`` — the set-based engine: cost tracks the number of *active*
  states per cycle, so it wins when activity is sparse (event-driven cold
  partitions).
* ``bitpacked`` — the word-parallel engine: cost tracks the packed vector
  width ``n_words`` plus a fixed per-cycle overhead, independent of
  activity.
* ``multistream`` — K-wide lock-step bitpacked execution: the per-cycle
  overhead amortizes over K streams; a *throughput* backend, feasible only
  for streaming (not event-driven) partitions.
* ``dfa`` — table-driven DFA dispatch: one lookup per symbol, independent
  of both width and activity, feasible only when subset construction was
  proven bounded and the table fits the memory budget.
* ``lazydfa`` — the bounded-subset lazy-DFA hybrid: cached-subset lookups
  at close-to-``dfa`` speed, an LRU cap instead of a safety proof, so it
  is feasible for every streaming partition.  Cost is ``lz_base`` when the
  partition is DFA-safe (the cache converges to the full table) and
  ``lz_base * lz_unsafe_factor`` otherwise — the factor is a measured
  average of the cache-churn slowdown on the proven-unsafe bench apps.

Calibration (DESIGN.md §12): the default coefficients are solved from the
committed ``BENCH_engine.json`` operating point — Snort at scale 64,
1081 states (17 words), K=8 — whose measured throughputs are
0.061 / 0.204 / 0.371 / 12.76 MB/s for reference / bitpacked /
multistream / dfa (16.4 / 4.90 / 2.70 / 0.078 us per symbol).
:meth:`CostModel.from_engine_bench` re-derives them from any such
document, so re-benching recalibrates the model without touching code —
including ``dfa_base``, measured from the table-driven backend itself
since it landed.  Units are microseconds per input symbol; only *ratios*
matter for the advisory, which is what the cost-smoke CI check validates
(predicted-fastest vs measured-fastest agreement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..nfa.symbolset import ALPHABET_SIZE

__all__ = [
    "BACKENDS",
    "STREAMING_BACKENDS",
    "DFA_TABLE_BUDGET",
    "CostFeatures",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "dfa_entry_bytes",
    "rank_backends",
]

#: Every backend the model prices, in canonical order.
BACKENDS: Tuple[str, ...] = (
    "reference",
    "bitpacked",
    "multistream",
    "dfa",
    "lazydfa",
)

#: Backends that consume one contiguous symbol stream (no enable events).
STREAMING_BACKENDS: Tuple[str, ...] = ("multistream", "dfa", "lazydfa")

#: Memory budget for a materialized DFA transition table (bytes).  A safe
#: subset count whose table would still exceed this is advised against
#: (SPAP-C004): the dtype-priced table (:func:`dfa_entry_bytes`) must fit
#: cache-adjacent memory.
DFA_TABLE_BUDGET = 32 << 20


def dfa_entry_bytes(n_dfa_states: int) -> int:
    """Bytes per transition-table entry for a DFA of ``n_dfa_states``.

    The executor (:func:`repro.sim.dfa.dfa_table_dtype`) packs successor
    ids as uint16 when they fit, uint32 otherwise; this is the same ladder
    expressed as a byte count so feasibility can be priced *before* any
    table is built.  The two must stay in lock-step — pinned by a
    cross-check in ``tests/test_dfa_backend.py``.
    """
    return 2 if n_dfa_states <= 0xFFFF else 4

# Word-work share of bitpacked cost at the calibration point: the fraction
# of a cycle spent on width-proportional NumPy word ops (vs fixed Python
# dispatch overhead).  An assumption, not a measurement — see DESIGN.md §12.
_WORD_WORK_SHARE = 0.35

# Active fraction assumed for the reference engine's calibration point and
# the share of its cost that is per-active-state set manipulation.
_CAL_ACTIVE_FRACTION = 0.10
_REF_BASE_SHARE = 0.10


@dataclass(frozen=True)
class CostFeatures:
    """Static features of one partition, as the cost model consumes them."""

    n_states: int
    n_words: int  # ceil(n_states / 64), the packed vector width
    n_classes: int  # effective alphabet size (repro.cost.classes)
    mean_fanout: float  # edges per state
    hot_fraction: float  # profile-free predicted-active fraction (semant)
    event_driven: bool  # cold partition: enabled by SpAP events, not a stream
    dfa_safe: bool  # subset construction proven bounded (repro.cost.explore)
    dfa_states: Optional[int]  # subset-state count when safe
    n_streams: int = 8  # lock-step width the multistream backend would run

    @property
    def dfa_table_bytes(self) -> Optional[int]:
        """Conservative pre-build estimate: 8-byte entries.

        Deliberately pessimistic (the widest plausible entry) so it can be
        quoted before any dtype decision exists; the feasibility gate uses
        :attr:`dfa_table_bytes_actual` instead, so a DFA is never rejected
        on the basis of this over-estimate.
        """
        if self.dfa_states is None:
            return None
        return self.dfa_states * self.n_classes * 8

    @property
    def dfa_table_bytes_actual(self) -> Optional[int]:
        """Footprint with the dtype the executor would really pick.

        ``states * classes * dfa_entry_bytes(states)`` plus the symbol→
        class translation vector — the exact bytes
        ``repro.sim.dfa.CompiledDFA.table_bytes`` reports after the build.
        """
        if self.dfa_states is None:
            return None
        return (
            self.dfa_states * self.n_classes * dfa_entry_bytes(self.dfa_states)
            + ALPHABET_SIZE
        )


@dataclass(frozen=True)
class CostModel:
    """Per-backend cost coefficients (microseconds per input symbol)."""

    ref_base: float  # reference: fixed per-cycle dispatch
    ref_per_active: float  # reference: per active state per cycle
    bp_base: float  # bitpacked: fixed per-cycle dispatch
    bp_per_word: float  # bitpacked: per packed word per cycle
    ms_per_word: float  # multistream: per packed word per aggregate symbol
    dfa_base: float  # dfa: one table lookup + report probe per symbol
    lz_base: float = 0.3  # lazydfa: one cached-cell chase per symbol
    lz_unsafe_factor: float = 4.0  # lazydfa: churn multiplier when unsafe

    def predict(self, features: CostFeatures) -> Dict[str, Optional[float]]:
        """Predicted us/symbol per backend; ``None`` marks infeasible."""
        active = features.hot_fraction * features.n_states
        costs: Dict[str, Optional[float]] = {
            "reference": self.ref_base + self.ref_per_active * active,
            "bitpacked": self.bp_base + self.bp_per_word * features.n_words,
            "multistream": None,
            "dfa": None,
            "lazydfa": None,
        }
        if not features.event_driven:
            k = max(1, features.n_streams)
            costs["multistream"] = (
                self.bp_base / k + self.ms_per_word * features.n_words
            )
            table_bytes = features.dfa_table_bytes_actual
            if (
                features.dfa_safe
                and table_bytes is not None
                and table_bytes <= DFA_TABLE_BUDGET
            ):
                costs["dfa"] = self.dfa_base
            # The hybrid needs no proof: feasible for every streaming
            # partition, with a measured churn penalty where the explorer
            # could not prove a bounded subset space (or where a proven
            # table would burst the memory budget, which the LRU absorbs).
            costs["lazydfa"] = (
                self.lz_base
                if costs["dfa"] is not None
                else self.lz_base * self.lz_unsafe_factor
            )
        return costs

    @classmethod
    def from_engine_bench(
        cls,
        document: Mapping[str, object],
        *,
        active_fraction: float = _CAL_ACTIVE_FRACTION,
        dfa_base: Optional[float] = None,
    ) -> "CostModel":
        """Solve coefficients from a ``BENCH_engine.json``-shaped document.

        Uses the document's workload shape (states, k_streams) and measured
        MB/s, under the documented word-work-share assumption.  ``dfa_base``
        is taken from the document's measured ``throughput_mb_s["dfa"]``
        when present (the harness times the real table-driven backend on
        the same workload); an explicit argument overrides, and documents
        predating the backend fall back to the historical 0.7 us/symbol
        placeholder.
        """
        workload = document["workload"]
        throughput = document["throughput_mb_s"]
        if not isinstance(workload, Mapping) or not isinstance(throughput, Mapping):
            raise ValueError("engine bench document missing workload/throughput_mb_s")
        n_states = int(workload["n_states"])  # type: ignore[call-overload]
        k_streams = int(workload["k_streams"])  # type: ignore[call-overload]
        n_words = (n_states + 63) // 64

        def us_per_symbol(mb_s: object) -> float:
            return 1.0 / float(mb_s)  # type: ignore[arg-type]  # 1/(MB/s) = us/B

        ref_us = us_per_symbol(throughput["reference"])
        bp_us = us_per_symbol(throughput["bitpacked"])
        ms_us = us_per_symbol(throughput["multistream_aggregate"])
        if dfa_base is None:
            measured_dfa = throughput.get("dfa")
            dfa_base = us_per_symbol(measured_dfa) if measured_dfa else 0.7

        # Lazy hybrid: hit-path cost from the calibration workload (the
        # cache converges there, so this measures the cached-cell chase);
        # churn factor from the harness's proven-unsafe app section.
        # Documents predating the backend fall back to "4x the dfa lookup"
        # and a 4x churn multiplier.
        measured_lz = throughput.get("lazydfa")
        lz_base = us_per_symbol(measured_lz) if measured_lz else dfa_base * 4.0
        lz_unsafe_factor = 4.0
        unsafe_section = document.get("lazydfa_unsafe")
        if isinstance(unsafe_section, Mapping):
            apps = unsafe_section.get("apps")
            if isinstance(apps, Sequence) and apps:
                ratios = [
                    us_per_symbol(entry["lazydfa_mb_s"]) / lz_base
                    for entry in apps
                    if isinstance(entry, Mapping) and entry.get("lazydfa_mb_s")
                ]
                if ratios:
                    lz_unsafe_factor = max(1.0, sum(ratios) / len(ratios))

        bp_per_word = bp_us * _WORD_WORK_SHARE / n_words
        bp_base = bp_us - bp_per_word * n_words
        ms_per_word = max(0.0, (ms_us - bp_base / k_streams) / n_words)
        ref_base = ref_us * _REF_BASE_SHARE
        active = max(1.0, active_fraction * n_states)
        ref_per_active = (ref_us - ref_base) / active
        return cls(
            ref_base=ref_base,
            ref_per_active=ref_per_active,
            bp_base=bp_base,
            bp_per_word=bp_per_word,
            ms_per_word=ms_per_word,
            dfa_base=dfa_base,
            lz_base=lz_base,
            lz_unsafe_factor=lz_unsafe_factor,
        )


#: Coefficients solved by :meth:`CostModel.from_engine_bench` from the
#: committed BENCH_engine.json (Snort, scale 64, 1081 states, K=8); baked
#: as literals so importing the model never reads the filesystem.
#: ``dfa_base`` is now a *measurement* (1 / the dfa engine's MB/s on the
#: same workload), not the pre-backend placeholder.
DEFAULT_COST_MODEL = CostModel(
    ref_base=2.2222,
    ref_per_active=0.185,
    bp_base=3.869,
    bp_per_word=0.1225,
    ms_per_word=0.1116,
    dfa_base=0.0691,
    lz_base=0.099,
    lz_unsafe_factor=4.2399,
)


def rank_backends(
    costs: Mapping[str, Optional[float]]
) -> Tuple[Tuple[str, float], ...]:
    """Feasible backends cheapest-first, ties broken by canonical order."""
    feasible = [
        (name, cost)
        for name, cost in ((name, costs.get(name)) for name in BACKENDS)
        if cost is not None
    ]
    return tuple(sorted(feasible, key=lambda pair: (pair[1], BACKENDS.index(pair[0]))))
