"""Budgeted subset-construction exploration: DFA-safety proofs.

"Deterministic vs. Non-Deterministic Finite Automata in Automata
Processing" (PAPERS.md) shows a DFA backend only pays off when subset
construction stays bounded; this module decides that *statically*, per
partition, without ever materializing a transition table.

The explorer walks exactly the transition function
:func:`repro.nfa.determinize.determinize` materializes — same flattened
tables (:func:`~repro.nfa.determinize.flatten_network`), same alphabet
classes, same per-class representative symbols — so its verdict is a proof
about that function, not about a reimplementation that could drift:

* ``dfa_safe=True`` means the set of reachable subset states was exhausted
  and its size is ``n_subset_states <= budget``.  Reachability of subsets
  is independent of worklist order, so ``determinize(network,
  max_states=budget)`` is guaranteed to succeed with exactly
  ``n_subset_states`` DFA states (the soundness gate in
  ``tests/test_cost.py`` replays this claim across the corpus).
* ``dfa_safe=False`` reports the growth frontier instead: how many subsets
  had been discovered when the budget burst, at which BFS depth, and the
  largest subset seen (the blowup witness).

Subsets are Python big-int bitmasks (bit ``g`` = global state ``g``), and
each class's activation is one AND against a precomputed accept mask, so
exploration is far cheaper than full determinization: no report rows, no
transition rows, one integer hash per discovered subset.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..nfa.automaton import Network
from ..nfa.determinize import (
    NetworkTables,
    alphabet_classes,
    class_representatives,
    flatten_network,
)

__all__ = ["DEFAULT_DFA_BUDGET", "SubsetExploration", "explore_subset_construction"]

#: Default subset-state budget: small enough that a safe partition's table
#: (budget x classes x 8 B) stays cache-resident, large enough to admit the
#: trie-shaped hot partitions whose subset space is near-linear.
DEFAULT_DFA_BUDGET = 4096


@dataclass(frozen=True)
class SubsetExploration:
    """Outcome of one budgeted subset-construction walk.

    When ``dfa_safe``, ``n_subset_states`` is exactly the DFA state count
    ``determinize`` would produce.  Otherwise it is the number of distinct
    subsets discovered when the budget burst (``budget + 1``), and
    ``frontier_depth`` is the BFS depth (symbols consumed from the initial
    subset) at which that happened.
    """

    dfa_safe: bool
    budget: int
    n_subset_states: int
    n_classes: int
    n_nfa_states: int
    max_subset_size: int  # largest |subset| seen: the blowup witness
    frontier_depth: Optional[int]  # None when the walk completed

    def describe(self) -> str:
        if self.dfa_safe:
            return (
                f"DFA-safe: {self.n_subset_states} subset states "
                f"<= budget {self.budget} ({self.n_classes} classes)"
            )
        return (
            f"budget {self.budget} exceeded: >{self.budget} subsets at "
            f"BFS depth {self.frontier_depth} "
            f"(largest subset {self.max_subset_size}/{self.n_nfa_states} states)"
        )


def _accept_masks(tables: NetworkTables, network: Network) -> Tuple[List[int], int]:
    """Per-class accept bitmask (states matching the class representative)."""
    class_of, n_classes = alphabet_classes(network)
    representative = class_representatives(class_of, n_classes)
    masks = [0] * n_classes
    for cls in range(n_classes):
        symbol = int(representative[cls])
        mask = 0
        for gid, symbol_set in enumerate(tables.symbol_sets):
            if symbol_set.matches(symbol):
                mask |= 1 << gid
        masks[cls] = mask
    return masks, n_classes


def _successor_masks(tables: NetworkTables) -> List[int]:
    masks = [0] * tables.n_states
    for gid, successors in enumerate(tables.successors):
        mask = 0
        for dst in successors:
            mask |= 1 << dst
        masks[gid] = mask
    return masks


def _bits(mask: int) -> List[int]:
    """Indices of set bits, ascending."""
    out: List[int] = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def explore_subset_construction(
    network: Network, *, budget: int = DEFAULT_DFA_BUDGET
) -> SubsetExploration:
    """Walk the reachable subset states, counting, up to ``budget``.

    Breadth-first from the initial subset, so a burst budget reports the
    shallowest growth frontier.  Returns a :class:`SubsetExploration`;
    never raises on blowup (that is the result, not an error).
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    tables = flatten_network(network)
    accept_masks, n_classes = _accept_masks(tables, network)
    succ_masks = _successor_masks(tables)
    always_mask = 0
    for gid in tables.always:
        always_mask |= 1 << gid
    initial_mask = 0
    for gid in tables.initial:
        initial_mask |= 1 << gid

    seen: Dict[int, None] = {initial_mask: None}
    frontier: Deque[Tuple[int, int]] = deque([(initial_mask, 0)])
    max_subset_size = bin(initial_mask).count("1")

    while frontier:
        current, depth = frontier.popleft()
        # Memoize successor-union per activated set?  Not needed: each
        # subset is expanded once, and the AND below prunes to the states
        # that actually fire for this class.
        for cls in range(n_classes):
            activated = current & accept_masks[cls]
            nxt = always_mask
            for gid in _bits(activated):
                nxt |= succ_masks[gid]
            if nxt not in seen:
                if len(seen) >= budget:
                    return SubsetExploration(
                        dfa_safe=False,
                        budget=budget,
                        n_subset_states=len(seen) + 1,
                        n_classes=n_classes,
                        n_nfa_states=tables.n_states,
                        max_subset_size=max_subset_size,
                        frontier_depth=depth + 1,
                    )
                seen[nxt] = None
                frontier.append((nxt, depth + 1))
                size = bin(nxt).count("1")
                if size > max_subset_size:
                    max_subset_size = size
    return SubsetExploration(
        dfa_safe=True,
        budget=budget,
        n_subset_states=len(seen),
        n_classes=n_classes,
        n_nfa_states=tables.n_states,
        max_subset_size=max_subset_size,
        frontier_depth=None,
    )
