"""Symbol-class compression accounting (CAMA's observation, statically).

CAMA (PAPERS.md) shrinks 8-bit transition tables to the few dozen symbol
*classes* an application actually distinguishes.  This module computes that
effective class count per partition — reusing the same alphabet-class
machinery determinization compresses columns with — and the resulting
transition-table sizes under the two encodings the engines use:

* **dense**: one row per byte value (the 256-row accept matrix of
  ``sim/compiled.py``, the AP's DRAM-row layout) — ``256 * n_words * 8``
  bytes;
* **class-compressed**: one row per equivalence class plus a 256-entry
  byte->class map — ``n_classes * n_words * 8 + 256`` bytes.

The ratio between the two is the static headroom a class-indexed backend
(table-driven DFA, or a class-compressed accept matrix) has over the 8-bit
layout, before any dynamic effect is considered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .. import bitops
from ..nfa.automaton import Network
from ..nfa.determinize import alphabet_classes
from ..nfa.symbolset import ALPHABET_SIZE

__all__ = ["ClassAnalysis", "analyze_symbol_classes"]


@dataclass(frozen=True)
class ClassAnalysis:
    """Alphabet-class accounting for one network (or partition)."""

    n_states: int
    n_words: int  # packed 64-bit words per state vector
    n_classes: int  # effective alphabet size
    n_distinct_symbol_sets: int
    table_bytes_dense: int  # 256-row accept matrix
    table_bytes_classed: int  # class rows + byte->class map

    @property
    def compression_ratio(self) -> float:
        """Dense-over-classed size: >1 means class compression pays."""
        if self.table_bytes_classed == 0:
            return 1.0
        return self.table_bytes_dense / self.table_bytes_classed

    def to_json(self) -> Dict[str, object]:
        return {
            "n_states": self.n_states,
            "n_classes": self.n_classes,
            "n_distinct_symbol_sets": self.n_distinct_symbol_sets,
            "table_bytes_dense": self.table_bytes_dense,
            "table_bytes_classed": self.table_bytes_classed,
            "compression_ratio": self.compression_ratio,
        }


def analyze_symbol_classes(network: Network) -> ClassAnalysis:
    """Compute the effective alphabet-class count and table sizes."""
    n = network.n_states
    n_words = bitops.num_words(max(n, 1))
    if n == 0:
        return ClassAnalysis(
            n_states=0,
            n_words=n_words,
            n_classes=1,
            n_distinct_symbol_sets=0,
            table_bytes_dense=ALPHABET_SIZE * n_words * 8,
            table_bytes_classed=1 * n_words * 8 + ALPHABET_SIZE,
        )
    _class_of, n_classes = alphabet_classes(network)
    distinct = {state.symbol_set for _g, _a, state in network.global_states()}
    return ClassAnalysis(
        n_states=n,
        n_words=n_words,
        n_classes=n_classes,
        n_distinct_symbol_sets=len(distinct),
        table_bytes_dense=ALPHABET_SIZE * n_words * 8,
        table_bytes_classed=n_classes * n_words * 8 + ALPHABET_SIZE,
    )
