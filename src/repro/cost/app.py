"""End-to-end cost analysis of one registry application.

Drives the cached experiment pipeline exactly as ``verify_app`` and
``semant_app`` do, but through the compilability/cost stack: partition the
application at the standard operating point, then emit one
:class:`~repro.cost.advisory.BackendAdvisory` each for the parent network,
the hot partition (streaming), and the cold partition (event-driven), with
all SPAP-C findings collected on one report.  Used by the
``python -m repro cost`` CLI, the stats collector, the sweep columns, and
the CI cost-smoke gate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..experiments.config import ExperimentConfig, default_config
from ..experiments.pipeline import AppRun
from ..verify.diagnostics import VerificationReport
from ..workloads.registry import get_app
from .advisory import (
    BackendAdvisory,
    check_advisory_soundness,
    emit_advisory_diagnostics,
    partition_advisories,
)
from .explore import DEFAULT_DFA_BUDGET
from .model import CostModel, DEFAULT_COST_MODEL

__all__ = ["CostReport", "CostOutcome", "analyze_run_cost", "cost_app"]


@dataclass(frozen=True)
class CostReport:
    """Per-partition advisories plus aggregates for one application."""

    app: str
    budget: int
    advisories: List[BackendAdvisory]

    def advisory(self, partition: str) -> Optional[BackendAdvisory]:
        for advisory in self.advisories:
            if advisory.partition == partition:
                return advisory
        return None

    @property
    def network(self) -> BackendAdvisory:
        found = self.advisory("network")
        assert found is not None  # the parent network is never empty
        return found

    @property
    def n_dfa_safe(self) -> int:
        return sum(1 for advisory in self.advisories if advisory.dfa_safe)

    @property
    def dfa_safe_fraction(self) -> float:
        if not self.advisories:
            return 0.0
        return self.n_dfa_safe / len(self.advisories)

    def to_json(self) -> Dict[str, object]:
        return {
            "app": self.app,
            "budget": self.budget,
            "n_partitions": len(self.advisories),
            "n_dfa_safe": self.n_dfa_safe,
            "dfa_safe_fraction": self.dfa_safe_fraction,
            "advisories": [advisory.to_json() for advisory in self.advisories],
        }


@dataclass
class CostOutcome:
    """Cost report plus the SPAP-C diagnostics for one application."""

    cost: CostReport
    report: VerificationReport

    @property
    def ok(self) -> bool:
        """True when no soundness rule (ERROR severity) fired."""
        return self.report.ok

    def to_json(self) -> Dict[str, object]:
        return {"cost": self.cost.to_json(), "report": self.report.to_json()}

    def render(self) -> str:
        lines = [f"{self.cost.app}: budget {self.cost.budget}"]
        for advisory in self.cost.advisories:
            lines.append(f"  {advisory.render()}")
        return "\n".join(lines)


def analyze_run_cost(
    run: AppRun,
    *,
    fraction: float,
    budget: int = DEFAULT_DFA_BUDGET,
    model: CostModel = DEFAULT_COST_MODEL,
    check: bool = False,
) -> CostOutcome:
    """Cost-analyze an already-built pipeline run at one operating point.

    ``check=True`` additionally replays every DFA-safety proof through real
    determinization plus a reference-simulation comparison on the run's
    test input (the SPAP-C001 differential) — the expensive half, on by
    default only in the CI gate and the CLI's ``--check``.
    """
    ap = run.config.half_core
    partitioned, _bins = run.partition(fraction, ap)
    horizon = run.config.input_len
    subjects = [
        ("network", run.network, False),
        ("hot", partitioned.hot, False),
        ("cold", partitioned.cold, True),
    ]
    with run.stats.stage("cost"):
        advisories = partition_advisories(
            subjects, budget=budget, horizon=horizon, model=model
        )
        report = VerificationReport(subject=f"{run.spec.abbr} [cost]")
        for advisory in advisories:
            emit_advisory_diagnostics(advisory, report)
        if check:
            networks = {name: network for name, network, _e in subjects}
            for advisory in advisories:
                check_advisory_soundness(
                    networks[advisory.partition],
                    advisory,
                    report,
                    replay_input=run.test_input,
                )
    cost = CostReport(app=run.spec.abbr, budget=budget, advisories=advisories)
    return CostOutcome(cost=cost, report=report)


def cost_app(
    abbr: str,
    config: Optional[ExperimentConfig] = None,
    *,
    fraction: Optional[float] = None,
    budget: int = DEFAULT_DFA_BUDGET,
    model: CostModel = DEFAULT_COST_MODEL,
    check: bool = False,
) -> CostOutcome:
    """Cost-analyze one application end-to-end.

    Builds the scaled network, partitions it at ``fraction`` (default: the
    configuration's standard 1%), and fuses the DFA-safety proof, the
    symbol-class accounting, and the backend cost model into per-partition
    advisories.  Never raises on findings.
    """
    cfg = config or default_config()
    if cfg.verify:
        # Like verify_app/semant_app: the analysis must not fail fast mid-build.
        cfg = replace(cfg, verify=False)
    spec = get_app(abbr)  # raises KeyError for unknown apps (CLI maps to exit 2)
    run = AppRun(spec, cfg)
    use_fraction = cfg.profile_fractions[-1] if fraction is None else fraction
    return analyze_run_cost(
        run, fraction=use_fraction, budget=budget, model=model, check=check
    )
