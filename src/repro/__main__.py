"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list-apps`` — the 26-application registry with Table II statistics.
* ``run-app ABBR`` — run one application through all three scenarios.
* ``figure NAME`` — regenerate one paper figure/table (e.g. ``fig10``).
* ``report [OUT.md]`` — regenerate the full EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys

from .experiments import default_config
from .experiments import figures as _figures
from .experiments.pipeline import get_run
from .experiments.report import generate_report
from .experiments.tables import render_table
from .workloads.registry import APPS, app_names

_FIGURES = {
    "fig01": _figures.fig01_hot_states,
    "fig05": _figures.fig05_depth_distribution,
    "fig06": _figures.fig06_ideal_model,
    "fig08": _figures.fig08_constrained_states,
    "fig10": _figures.fig10_speedup_and_savings,
    "fig11": _figures.fig11_performance_per_ste,
    "fig12": _figures.fig12_reporting_states,
    "fig13": _figures.fig13_capacity_sensitivity,
    "table1": _figures.table1_profiling_effectiveness,
    "table2": _figures.table2_applications,
    "table4": _figures.table4_runtime_statistics,
}


def _cmd_list_apps(_args) -> int:
    rows = []
    for abbr in app_names():
        spec = APPS[abbr]
        rows.append([
            abbr, spec.full_name, spec.group,
            spec.paper.states, spec.paper.nfas, spec.paper.max_topo,
        ])
    print(render_table(
        ["Abbr", "Application", "Group", "States(paper)", "NFAs", "MaxTopo"], rows
    ))
    return 0


def _cmd_run_app(args) -> int:
    if args.app not in APPS:
        print(f"unknown application {args.app!r}; try `list-apps`", file=sys.stderr)
        return 2
    config = default_config()
    run = get_run(args.app, config)
    ap = config.half_core
    baseline = run.baseline(ap)
    spap = run.base_spap(args.profile, ap)
    cpu = run.ap_cpu(args.profile, ap)
    print(f"{args.app}: {run.network.n_states} states, "
          f"{run.network.n_automata} NFAs, AP capacity {ap.capacity}")
    print(f"  baseline AP : {baseline.n_batches} batches, {baseline.cycles} cycles")
    print(f"  BaseAP/SpAP : {spap.n_hot_batches} hot batches + "
          f"{spap.spap_cycles} SpAP cycles "
          f"({spap.n_intermediate_reports} reports, {spap.spap_stall_cycles} stalls) "
          f"-> {baseline.cycles / spap.cycles:.2f}x")
    print(f"  AP-CPU      : {1e6 * cpu.cpu_seconds:.1f} us handler "
          f"-> {baseline.seconds(ap) / cpu.seconds(ap):.2f}x")
    return 0


def _cmd_figure(args) -> int:
    fn = _FIGURES.get(args.name)
    if fn is None:
        print(f"unknown figure {args.name!r}; one of {', '.join(_FIGURES)}",
              file=sys.stderr)
        return 2
    print(fn(default_config()).render())
    return 0


def _cmd_report(args) -> int:
    text = generate_report(default_config())
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list-apps", help="list the 26-application registry")
    run_parser = sub.add_parser("run-app", help="run one application end-to-end")
    run_parser.add_argument("app")
    run_parser.add_argument("--profile", type=float, default=0.01,
                            help="profiling fraction (default 0.01)")
    figure_parser = sub.add_parser("figure", help="regenerate one table/figure")
    figure_parser.add_argument("name", help=f"one of: {', '.join(_FIGURES)}")
    report_parser = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report_parser.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    args = parser.parse_args(argv)
    handlers = {
        "list-apps": _cmd_list_apps,
        "run-app": _cmd_run_app,
        "figure": _cmd_figure,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
