"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list-apps`` — the 26-application registry with Table II statistics.
* ``run-app ABBR`` — run one application through all three scenarios.
* ``figure NAME`` — regenerate one paper figure/table (e.g. ``fig10``).
* ``report [OUT.md]`` — regenerate the full EXPERIMENTS.md.
* ``sweep [ABBR ...]`` — run the whole workload (or a subset) through the
  pipeline, fanned across cores with a process pool.
* ``stats [ABBR ...|--all]`` — unified runtime statistics: every §VI
  counter (cycles, stalls, queue refills, device traffic, hot fractions,
  prediction quality) plus per-stage wall times, as text or versioned
  JSON (``repro.stats``).
* ``verify [ABBR ...|--all]`` — static verification (the automata
  sanitizer): lint networks and prove the partition/batch-plan invariants
  without running any simulation.
* ``semant [ABBR ...|--all]`` — semantic static analysis
  (``repro.semant``): the abstract-interpretation dead-state prover, the
  profile-free hot/cold predictor, and the differential SPAP-S checks
  against the profiler and the simulation ground truth.
* ``cost [ABBR ...|--all]`` — compilability and cost analysis
  (``repro.cost``): budgeted subset-construction DFA-safety proofs,
  symbol-class table compression, and the calibrated per-backend cost
  model, fused into per-partition advisories (SPAP-C diagnostics);
  ``--check`` replays every safety proof through real determinization.
* ``reduce [ABBR ...|--all]`` — equivalence-preserving reduction
  (``repro.reduce``): forward/backward bisimulation partition refinement
  fused with semant's dead/never-reporting proofs, re-priced through the
  cost model (SPAP-R diagnostics); ``--check`` replays the reduced
  network through the reference engine and compares lifted reports and
  witness masks against the unreduced ground truth (SPAP-R001).
* ``serve --apps A,B [--port N|--unix PATH]`` — the long-running match
  service (``repro.serve``): framed requests in, micro-batched
  multi-stream dispatches out.
* ``loadgen --apps A,B [--port N|--unix PATH]`` — drive a running server
  in open or closed loop, optionally sweeping concurrency, and report
  throughput plus p50/p95/p99 latency; ``--duration`` with ``--rate``
  runs a fixed-arrival-rate overload round, and ``--classes`` splits
  traffic into weighted deadline classes with per-class percentiles.
* ``grid --apps A,B --workers N [--port P|--unix PATH]`` — the sharded
  multi-process serving grid (``repro.grid``): compiles the apps into a
  network store, spawns N worker processes each serving its shard, and
  routes the framed protocol by app with replication, load-spill, and
  write-behind stats merging (DESIGN.md §16).

Application names accept the registry abbreviations plus paper-table
aliases (``SNT`` for ``Snort``), case-insensitively.  Unknown application
or figure names exit with status 2 and a "did you mean" suggestion;
``verify``, ``semant``, and ``cost`` exit 1 when any rule of ERROR
severity fires.
``--no-verify`` on the experiment commands disables the pipeline's
fail-fast invariant checks (see ``repro.verify``).
``--backend NAME|auto`` on ``run-app``, ``sweep``, and ``serve`` selects
the execution engine per DESIGN.md §13-§14.  ``auto`` follows the cost
advisory with silent multistream fallback when the choice is infeasible;
an explicit name fails loudly when infeasible unless ``--backend-fallback``
opts into the substitution.
``--reduce`` on ``run-app``, ``sweep``, and ``serve`` routes execution
through the SPAP-R-reduced network (DESIGN.md §15); reports are lifted
back to original state ids, so outputs stay bit-identical.
"""

from __future__ import annotations

import argparse
import difflib
import sys
from dataclasses import replace
from typing import Iterable, List, Optional

from .cost.model import BACKENDS as _BACKEND_CHOICES
from .experiments import default_config
from .experiments import figures as _figures
from .experiments.config import ExperimentConfig
from .experiments.pipeline import get_run
from .experiments.report import generate_report
from .experiments.tables import render_table
from .workloads.registry import APPS, app_names, resolve_abbr

_FIGURES = {
    "fig01": _figures.fig01_hot_states,
    "fig05": _figures.fig05_depth_distribution,
    "fig06": _figures.fig06_ideal_model,
    "fig08": _figures.fig08_constrained_states,
    "fig10": _figures.fig10_speedup_and_savings,
    "fig11": _figures.fig11_performance_per_ste,
    "fig12": _figures.fig12_reporting_states,
    "fig13": _figures.fig13_capacity_sensitivity,
    "table1": _figures.table1_profiling_effectiveness,
    "table2": _figures.table2_applications,
    "table4": _figures.table4_runtime_statistics,
}


def _unknown_name(kind: str, name: str, candidates: Iterable[str]) -> int:
    """Report an unknown app/figure name with a close-match suggestion."""
    pool = list(candidates)
    message = f"unknown {kind} {name!r}"
    close = difflib.get_close_matches(name, pool, n=3, cutoff=0.5)
    if close:
        message += "; did you mean " + " or ".join(repr(c) for c in close) + "?"
    else:
        message += f"; known: {', '.join(pool)}"
    print(message, file=sys.stderr)
    return 2


def _config_for(args) -> ExperimentConfig:
    config = default_config()
    if getattr(args, "no_verify", False):
        config = replace(config, verify=False)
    return config


def _resolve_apps(names: Iterable[str]) -> Optional[List[str]]:
    """Canonical abbreviations for ``names``, or ``None`` after reporting
    the first unknown one (callers exit 2)."""
    resolved: List[str] = []
    for name in names:
        canonical = resolve_abbr(name)
        if canonical is None:
            _unknown_name("application", name, app_names())
            return None
        resolved.append(canonical)
    return resolved


def _cmd_list_apps(_args) -> int:
    rows = []
    for abbr in app_names():
        spec = APPS[abbr]
        rows.append([
            abbr, spec.full_name, spec.group,
            spec.paper.states, spec.paper.nfas, spec.paper.max_topo,
        ])
    print(render_table(
        ["Abbr", "Application", "Group", "States(paper)", "NFAs", "MaxTopo"], rows
    ))
    return 0


def _cmd_run_app(args) -> int:
    resolved = _resolve_apps([args.app])
    if resolved is None:
        return 2
    (args.app,) = resolved
    config = _config_for(args)
    run = get_run(args.app, config)
    ap = config.half_core
    baseline = run.baseline(ap)
    spap = run.base_spap(args.profile, ap)
    cpu = run.ap_cpu(args.profile, ap)
    print(f"{args.app}: {run.network.n_states} states, "
          f"{run.network.n_automata} NFAs, AP capacity {ap.capacity}")
    print(f"  baseline AP : {baseline.n_batches} batches, {baseline.cycles} cycles")
    print(f"  BaseAP/SpAP : {spap.n_hot_batches} hot batches + "
          f"{spap.spap_cycles} SpAP cycles "
          f"({spap.n_intermediate_reports} reports, {spap.spap_stall_cycles} stalls) "
          f"-> {baseline.cycles / spap.cycles:.2f}x")
    print(f"  AP-CPU      : {1e6 * cpu.cpu_seconds:.1f} us handler "
          f"-> {baseline.seconds(ap) / cpu.seconds(ap):.2f}x")
    if args.reduce:
        reduction = run.reduced
        print(f"  reduce      : {reduction.parent_n_states} -> "
              f"{reduction.n_states} states "
              f"({100 * reduction.saving_fraction:.1f}% saved; "
              f"{reduction.n_dead_stripped} dead, "
              f"{reduction.n_backward_merged} backward-merged)")
    if args.backend is not None:
        import time as _time

        from .sim import BackendInfeasibleError

        try:
            name, engine = run.select_backend(
                args.backend, args.profile,
                allow_fallback=True if args.backend_fallback else None,
                reduce=args.reduce,
            )
        except BackendInfeasibleError as err:
            print(f"run-app: {err}", file=sys.stderr)
            return 2
        prepared = (run.reduced_prepared_for(name) if args.reduce
                    else run.prepared_for(name))
        data = run.test_input
        engine.run(prepared, data)  # warm lazy tables/dispatch paths
        began = _time.perf_counter()
        result = engine.run(prepared, data)
        elapsed = _time.perf_counter() - began
        if args.reduce:
            result = run.reduced.lift_result(result)
        mb_s = len(data) / elapsed / 1e6 if elapsed > 0 else 0.0
        note = "" if name == args.backend or args.backend == "auto" \
            else f" (requested {args.backend}, infeasible)"
        print(f"  backend     : {name}{note} -> {mb_s:.2f} MB/s, "
              f"{result.reports.shape[0]} reports")
    return 0


def _cmd_figure(args) -> int:
    fn = _FIGURES.get(args.name)
    if fn is None:
        return _unknown_name("figure", args.name, _FIGURES)
    print(fn(_config_for(args)).render())
    return 0


def _cmd_report(args) -> int:
    text = generate_report(_config_for(args))
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output}")
    return 0


def _cmd_sweep(args) -> int:
    import json as _json
    import time as _time

    from .experiments.sweep import SweepError, render_sweep, run_sweep, sweep_summary

    targets = None
    if args.apps:
        targets = _resolve_apps(args.apps)
        if targets is None:
            return 2
    began = _time.perf_counter()
    try:
        rows = run_sweep(targets, _config_for(args),
                         fraction=args.profile, jobs=args.jobs,
                         backend=args.backend,
                         backend_fallback=args.backend_fallback,
                         reduce=args.reduce)
    except SweepError as err:
        print(f"sweep failed at {err} (other applications were not run to "
              "completion; --no-verify skips the fail-fast checks)",
              file=sys.stderr)
        return 1
    elapsed = _time.perf_counter() - began
    if args.json:
        print(_json.dumps([row.to_json() for row in rows], indent=2))
    else:
        print(render_sweep(rows))
        summary = sweep_summary(rows)
        busy = sum(row.seconds for row in rows)
        print(f"{len(rows)} applications in {elapsed:.1f}s wall "
              f"({busy:.1f}s of per-app work)")
        print(f"geomean speedups: SpAP {summary['geomean_spap_speedup']:.2f}x, "
              f"AP-CPU {summary['geomean_ap_cpu_speedup']:.2f}x; "
              f"mean prediction accuracy "
              f"{summary['mean_prediction_accuracy']:.3f} profiled / "
              f"{summary['mean_static_accuracy']:.3f} static; "
              f"{summary['total_intermediate_reports']} intermediate reports, "
              f"{summary['total_queue_refills']} queue refills, "
              f"{summary['total_device_bytes']} device bytes")
        print(f"reduce: mean saving "
              f"{100 * summary['mean_reduce_saving']:.1f}%, "
              f"geomean state ratio "
              f"{summary['geomean_reduce_state_ratio']:.3f}")
    return 0


def _cmd_stats(args) -> int:
    import json as _json

    from .stats import collect_run_stats, render_stats, validate_stats

    if args.all:
        targets: Optional[List[str]] = app_names()
    elif args.apps:
        targets = _resolve_apps(args.apps)
        if targets is None:
            return 2
    else:
        print("stats: name at least one application or pass --all",
              file=sys.stderr)
        return 2

    config = _config_for(args)
    documents = []
    for abbr in targets:
        stats = collect_run_stats(abbr, config, fraction=args.profile)
        if args.json:
            document = stats.to_json()
            validate_stats(document)  # never emit a schema-invalid export
            documents.append(document)
        else:
            print(render_stats(stats))
    if args.json:
        payload = documents[0] if len(documents) == 1 else documents
        print(_json.dumps(payload, indent=2))
    return 0


def _cmd_verify(args) -> int:
    from .verify.app import verify_app

    if args.all:
        targets: Optional[List[str]] = app_names()
    elif args.apps:
        targets = _resolve_apps(args.apps)
        if targets is None:
            return 2
    else:
        print("verify: name at least one application or pass --all",
              file=sys.stderr)
        return 2

    config = default_config()
    failed = 0
    payload = []
    for abbr in targets:
        report = verify_app(abbr, config, fraction=args.profile)
        if args.json:
            payload.append(report.to_json())
        else:
            if report.errors or (report.warnings and args.verbose):
                print(report.render_text(verbose=args.verbose))
            else:
                print(report.summary())
        failed += 0 if report.ok else 1
    if args.json:
        import json as _json

        print(_json.dumps(payload, indent=2))
    elif len(targets) > 1:
        print(f"{len(targets) - failed}/{len(targets)} applications verified clean")
    return 1 if failed else 0


def _cmd_semant(args) -> int:
    from .semant.app import semant_app

    if args.all:
        targets: Optional[List[str]] = app_names()
    elif args.apps:
        targets = _resolve_apps(args.apps)
        if targets is None:
            return 2
    else:
        print("semant: name at least one application or pass --all",
              file=sys.stderr)
        return 2

    config = default_config()
    failed = 0
    payload = []
    for abbr in targets:
        outcome = semant_app(abbr, config,
                             fraction=args.profile, horizon=args.horizon)
        if args.json:
            payload.append(outcome.to_json())
        else:
            print(outcome.summary.render())
            report = outcome.report
            if report.errors or (report.warnings and args.verbose):
                print(report.render_text(verbose=args.verbose))
        failed += 0 if outcome.ok else 1
    if args.json:
        import json as _json

        print(_json.dumps(payload, indent=2))
    elif len(targets) > 1:
        print(f"{len(targets) - failed}/{len(targets)} applications "
              "semantically sound")
    return 1 if failed else 0


def _cmd_cost(args) -> int:
    from .cost.app import cost_app
    from .cost.explore import DEFAULT_DFA_BUDGET

    budget = args.budget if args.budget is not None else DEFAULT_DFA_BUDGET

    if args.all:
        targets: Optional[List[str]] = app_names()
    elif args.apps:
        targets = _resolve_apps(args.apps)
        if targets is None:
            return 2
    else:
        print("cost: name at least one application or pass --all",
              file=sys.stderr)
        return 2

    config = default_config()
    failed = 0
    payload = []
    for abbr in targets:
        outcome = cost_app(abbr, config, fraction=args.profile,
                           budget=budget, check=args.check)
        if args.json:
            payload.append(outcome.to_json())
        else:
            print(outcome.render())
            report = outcome.report
            if report.errors or (report.warnings and args.verbose):
                print(report.render_text(verbose=args.verbose))
        failed += 0 if outcome.ok else 1
    if args.json:
        import json as _json

        print(_json.dumps(payload, indent=2))
    elif len(targets) > 1:
        print(f"{len(targets) - failed}/{len(targets)} applications "
              "cost-analyzed clean")
    return 1 if failed else 0


def _cmd_reduce(args) -> int:
    from .cost.explore import DEFAULT_DFA_BUDGET
    from .reduce.app import reduce_app

    budget = args.budget if args.budget is not None else DEFAULT_DFA_BUDGET
    mode = "aggressive" if args.aggressive else "exact"

    if args.all:
        targets: Optional[List[str]] = app_names()
    elif args.apps:
        targets = _resolve_apps(args.apps)
        if targets is None:
            return 2
    else:
        print("reduce: name at least one application or pass --all",
              file=sys.stderr)
        return 2

    config = default_config()
    failed = 0
    payload = []
    for abbr in targets:
        outcome = reduce_app(abbr, config, mode=mode,
                             budget=budget, check=args.check)
        if args.json:
            payload.append(outcome.to_json())
        else:
            print(outcome.render())
            report = outcome.report
            if report.errors or (report.warnings and args.verbose):
                print(report.render_text(verbose=args.verbose))
        failed += 0 if outcome.ok else 1
    if args.json:
        import json as _json

        print(_json.dumps(payload, indent=2))
    elif len(targets) > 1:
        print(f"{len(targets) - failed}/{len(targets)} applications "
              "reduced sound")
    return 1 if failed else 0


def _cmd_serve(args) -> int:
    import asyncio

    from .serve.server import MatchServer, ServerOptions

    apps: Optional[List[str]] = None
    if args.apps:
        apps = _resolve_apps(args.apps.split(","))
        if apps is None:
            return 2
    options = ServerOptions(
        host=args.host, port=args.port, unix_path=args.unix,
        window_ms=args.window_ms, max_batch=args.max_batch,
        max_queue_depth=args.max_queue_depth, workers=args.workers,
        max_apps=args.max_apps, warmup=not args.no_warmup,
        allow_shutdown=not args.no_remote_shutdown,
        backend=args.backend, reduce=args.reduce,
    )

    async def _serve() -> None:
        server = MatchServer(_config_for(args), options, apps=apps)
        address = await server.start()
        print(f"repro serve: listening on {address}", flush=True)
        await server.serve_until_stopped()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down", file=sys.stderr)
    return 0


def _parse_classes(spec: str):
    """Parse ``name[:weight[:deadline_ms]]`` comma specs into
    :class:`repro.serve.loadgen.RequestClass` tuples, e.g.
    ``interactive:8:50,batch:2``.  Raises ``ValueError`` on bad syntax."""
    from .serve.loadgen import RequestClass

    classes = []
    for part in spec.split(","):
        fields = part.split(":")
        if not fields[0] or len(fields) > 3:
            raise ValueError(f"bad class spec {part!r} "
                             "(want name[:weight[:deadline_ms]])")
        weight = float(fields[1]) if len(fields) > 1 and fields[1] else 1.0
        deadline = (float(fields[2])
                    if len(fields) > 2 and fields[2] else None)
        classes.append(RequestClass(name=fields[0], weight=weight,
                                    deadline_ms=deadline))
    return tuple(classes)


def _cmd_loadgen(args) -> int:
    import asyncio
    import json as _json

    from .serve.client import AsyncServeClient
    from .serve.loadgen import LoadgenConfig, render_results, run_loadgen
    from .stats import validate_serve_stats

    apps = _resolve_apps(args.apps.split(","))
    if apps is None:
        return 2
    if args.port is None and args.unix is None:
        print("loadgen: need a target (--port or --unix)", file=sys.stderr)
        return 2
    try:
        concurrencies = [int(part) for part in str(args.concurrency).split(",")]
    except ValueError:
        print(f"loadgen: bad --concurrency {args.concurrency!r} "
              "(want N or N,M,...)", file=sys.stderr)
        return 2
    try:
        classes = _parse_classes(args.classes) if args.classes else None
    except ValueError as exc:
        print(f"loadgen: {exc}", file=sys.stderr)
        return 2

    async def _drive():
        rounds = []
        for concurrency in concurrencies:
            config = LoadgenConfig(
                apps=apps, requests=args.requests, concurrency=concurrency,
                mode=args.mode, rate=args.rate, input_len=args.input_len,
                deadline_ms=args.deadline_ms, max_reports=args.max_reports,
                seed=args.seed, host=args.host, port=args.port,
                unix_path=args.unix, connect_timeout=args.connect_timeout,
                duration_s=args.duration, classes=classes,
            )
            rounds.append(await run_loadgen(config))
        document = None
        if args.stats_out or args.shutdown:
            client = await AsyncServeClient.open(
                host=args.host, port=args.port, unix_path=args.unix,
                retry_for=args.connect_timeout,
            )
            try:
                if args.stats_out:
                    document = await client.stats()
                if args.shutdown:
                    await client.shutdown()
            finally:
                await client.close()
        return rounds, document

    try:
        results, document = asyncio.run(_drive())
    except ValueError as exc:  # LoadgenConfig validation
        print(f"loadgen: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps([result.to_json() for result in results], indent=2))
    else:
        print(render_results(results))
    if args.stats_out:
        validate_serve_stats(document)  # refuse to write an invalid export
        with open(args.stats_out, "w") as handle:
            _json.dump(document, handle, indent=2)
        if not args.json:
            print(f"wrote {args.stats_out}")
    errors = sum(result.errors for result in results)
    if errors and args.fail_on_error:
        print(f"loadgen: {errors} request(s) failed", file=sys.stderr)
        return 1
    return 0


def _cmd_grid(args) -> int:
    import asyncio

    from .grid import Grid, GridOptions

    apps = _resolve_apps(args.apps.split(","))
    if apps is None:
        return 2
    options = GridOptions(
        workers=args.workers, host=args.host, port=args.port,
        unix_path=args.unix, window_ms=args.window_ms,
        max_batch=args.max_batch, max_queue_depth=args.max_queue_depth,
        threads=args.threads, backend=args.backend,
        spill_threshold=args.spill_threshold,
        max_inflight=args.max_inflight,
        merge_interval_s=args.merge_interval,
        warm=not args.no_warmup,
        allow_shutdown=not args.no_remote_shutdown,
    )

    async def _run() -> None:
        grid = Grid(apps, _config_for(args), options)
        try:
            address = await grid.start()
            shards = grid.shard_map
            assert shards is not None
            for worker_id in range(options.workers):
                primaries = ",".join(shards.primaries_for(worker_id)) or "-"
                print(f"repro grid: worker {worker_id} primaries: {primaries}",
                      flush=True)
            print(f"repro grid: router listening on {address} "
                  f"({options.workers} workers)", flush=True)
            await grid.serve_until_stopped()
        finally:
            await grid.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("repro grid: interrupted, shutting down", file=sys.stderr)
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list-apps", help="list the 26-application registry")

    run_parser = sub.add_parser("run-app", help="run one application end-to-end")
    run_parser.add_argument("app")
    run_parser.add_argument("--profile", type=float, default=0.01,
                            help="profiling fraction (default 0.01)")
    run_parser.add_argument("--no-verify", action="store_true",
                            help="skip fail-fast partition/batch verification")
    run_parser.add_argument("--backend", default=None, metavar="NAME",
                            choices=["auto"] + list(_BACKEND_CHOICES),
                            help="also execute the test input on an engine: "
                                 "'auto' follows the cost advisory; an "
                                 "explicit name forces it and fails if "
                                 "infeasible (see --backend-fallback)")
    run_parser.add_argument("--backend-fallback", action="store_true",
                            help="accept multistream substitution when an "
                                 "explicitly requested backend is infeasible "
                                 "instead of failing")
    run_parser.add_argument("--reduce", action="store_true",
                            help="run the backend on the SPAP-R-reduced "
                                 "network (reports lifted to original ids) "
                                 "and print the reduction summary")

    figure_parser = sub.add_parser("figure", help="regenerate one table/figure")
    figure_parser.add_argument("name", help=f"one of: {', '.join(_FIGURES)}")
    figure_parser.add_argument("--no-verify", action="store_true",
                               help="skip fail-fast partition/batch verification")

    report_parser = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report_parser.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    report_parser.add_argument("--no-verify", action="store_true",
                               help="skip fail-fast partition/batch verification")

    sweep_parser = sub.add_parser(
        "sweep", help="run the whole workload in parallel across cores"
    )
    sweep_parser.add_argument("apps", nargs="*",
                              help="application abbreviations (default: all)")
    sweep_parser.add_argument("--jobs", type=int, default=None,
                              help="worker processes (default: all cores; "
                                   "1 = serial in-process)")
    sweep_parser.add_argument("--profile", type=float, default=0.01,
                              help="profiling fraction (default 0.01)")
    sweep_parser.add_argument("--json", action="store_true",
                              help="emit JSON rows instead of a table")
    sweep_parser.add_argument("--no-verify", action="store_true",
                              help="skip fail-fast partition/batch verification")
    sweep_parser.add_argument("--backend", default=None, metavar="NAME",
                              choices=["auto"] + list(_BACKEND_CHOICES),
                              help="execute each app's test input on an "
                                   "engine: 'auto' selects per-app from the "
                                   "cost advisory; the Backend/MB/s columns "
                                   "then show the engine actually used; an "
                                   "explicit name fails loudly on apps where "
                                   "it is infeasible (see --backend-fallback)")
    sweep_parser.add_argument("--backend-fallback", action="store_true",
                              help="accept multistream substitution on apps "
                                   "where an explicitly requested backend is "
                                   "infeasible instead of failing their rows")
    sweep_parser.add_argument("--reduce", action="store_true",
                              help="route --backend executions through the "
                                   "SPAP-R-reduced network ('+' in the "
                                   "Reduce column marks reduced runs)")

    stats_parser = sub.add_parser(
        "stats",
        help="unified runtime statistics and stage timings (repro.stats)",
    )
    stats_parser.add_argument("apps", nargs="*",
                              help="application abbreviations (see list-apps)")
    stats_parser.add_argument("--all", action="store_true",
                              help="collect stats for every registry application")
    stats_parser.add_argument("--json", action="store_true",
                              help="emit the versioned JSON document(s) "
                                   "instead of text")
    stats_parser.add_argument("--profile", type=float, default=0.01,
                              help="profiling fraction (default 0.01)")
    stats_parser.add_argument("--no-verify", action="store_true",
                              help="skip fail-fast partition/batch verification")

    verify_parser = sub.add_parser(
        "verify",
        help="statically verify applications (networks, partitions, batch plans)",
    )
    verify_parser.add_argument("apps", nargs="*",
                               help="application abbreviations (see list-apps)")
    verify_parser.add_argument("--all", action="store_true",
                               help="verify every registry application")
    verify_parser.add_argument("--json", action="store_true",
                               help="emit a JSON report instead of text")
    verify_parser.add_argument("--verbose", action="store_true",
                               help="print warnings and fix hints, not just errors")
    verify_parser.add_argument("--profile", type=float, default=None,
                               help="profiling fraction for the partition pass")

    semant_parser = sub.add_parser(
        "semant",
        help="semantic static analysis: dead-state proofs, profile-free "
             "prediction, differential SPAP-S checks (repro.semant)",
    )
    semant_parser.add_argument("apps", nargs="*",
                               help="application abbreviations (see list-apps)")
    semant_parser.add_argument("--all", action="store_true",
                               help="analyze every registry application")
    semant_parser.add_argument("--json", action="store_true",
                               help="emit a JSON report instead of text")
    semant_parser.add_argument("--verbose", action="store_true",
                               help="print warnings and fix hints, not just errors")
    semant_parser.add_argument("--profile", type=float, default=None,
                               help="profiling fraction for the differential "
                                    "comparison (default 0.01)")
    semant_parser.add_argument("--horizon", type=int, default=None,
                               help="enabling-opportunity horizon for the "
                                    "static predictor (default: input length)")

    cost_parser = sub.add_parser(
        "cost",
        help="compilability/cost analysis: DFA-safety proofs, symbol-class "
             "compression, backend advisories (repro.cost)",
    )
    cost_parser.add_argument("apps", nargs="*",
                             help="application abbreviations (see list-apps)")
    cost_parser.add_argument("--all", action="store_true",
                             help="analyze every registry application")
    cost_parser.add_argument("--json", action="store_true",
                             help="emit a JSON report instead of text")
    cost_parser.add_argument("--verbose", action="store_true",
                             help="print warnings and fix hints, not just errors")
    cost_parser.add_argument("--profile", type=float, default=None,
                             help="partitioning fraction (default: the "
                                  "standard 1%% operating point)")
    cost_parser.add_argument("--budget", type=int, default=None,
                             help="subset-construction state budget "
                                  "(default 4096)")
    cost_parser.add_argument("--check", action="store_true",
                             help="replay every DFA-safety proof through real "
                                  "determinization + reference simulation "
                                  "(the SPAP-C001 differential)")

    reduce_parser = sub.add_parser(
        "reduce",
        help="equivalence-preserving reduction: bisimulation merges, "
             "dead-state strips, cost re-pricing (repro.reduce)",
    )
    reduce_parser.add_argument("apps", nargs="*",
                               help="application abbreviations (see list-apps)")
    reduce_parser.add_argument("--all", action="store_true",
                               help="reduce every registry application")
    reduce_parser.add_argument("--json", action="store_true",
                               help="emit a JSON report instead of text")
    reduce_parser.add_argument("--verbose", action="store_true",
                               help="print warnings and fix hints, not just errors")
    reduce_parser.add_argument("--aggressive", action="store_true",
                               help="also apply the report-exact (witness-"
                                    "lossy) rules: never-reporting strips "
                                    "and forward bisimulation")
    reduce_parser.add_argument("--budget", type=int, default=None,
                               help="subset-construction budget for the "
                                    "cost re-pricing (default 4096)")
    reduce_parser.add_argument("--check", action="store_true",
                               help="replay the reduced network through the "
                                    "reference engine and compare lifted "
                                    "reports/witness masks against the "
                                    "unreduced ground truth (SPAP-R001)")

    serve_parser = sub.add_parser(
        "serve",
        help="long-running match service with micro-batching (repro.serve)",
    )
    serve_parser.add_argument("--apps", default=None,
                              help="comma-separated applications to serve "
                                   "(default: any registry app, on demand)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=None,
                              help="TCP port (0 or omitted: ephemeral)")
    serve_parser.add_argument("--unix", default=None, metavar="PATH",
                              help="listen on a unix socket instead of TCP")
    serve_parser.add_argument("--window-ms", type=float, default=2.0,
                              help="micro-batch coalescing window (default 2ms)")
    serve_parser.add_argument("--max-batch", type=int, default=64,
                              help="largest batch per dispatch (default 64)")
    serve_parser.add_argument("--max-queue-depth", type=int, default=1024,
                              help="admission-control queue bound (default 1024)")
    serve_parser.add_argument("--workers", type=int, default=2,
                              help="engine executor threads (default 2)")
    serve_parser.add_argument("--max-apps", type=int, default=8,
                              help="compiled networks kept resident (LRU)")
    serve_parser.add_argument("--backend", default="multistream",
                              choices=["multistream", "dfa", "lazydfa", "auto"],
                              help="batch engine: multistream (default), "
                                   "dfa (where feasible), lazydfa (the "
                                   "bounded-subset hybrid), or auto "
                                   "(per-app cost advisory)")
    serve_parser.add_argument("--reduce", action="store_true",
                              help="serve the SPAP-R-reduced networks "
                                   "(reports lifted to original state ids)")
    serve_parser.add_argument("--no-warmup", action="store_true",
                              help="skip compiling --apps before binding")
    serve_parser.add_argument("--no-remote-shutdown", action="store_true",
                              help="reject shutdown frames from clients")
    serve_parser.add_argument("--no-verify", action="store_true",
                              help="skip fail-fast partition/batch verification")

    loadgen_parser = sub.add_parser(
        "loadgen",
        help="drive a running match server and report latency percentiles",
    )
    loadgen_parser.add_argument("--apps", required=True,
                                help="comma-separated applications to request")
    loadgen_parser.add_argument("--host", default="127.0.0.1")
    loadgen_parser.add_argument("--port", type=int, default=None)
    loadgen_parser.add_argument("--unix", default=None, metavar="PATH")
    loadgen_parser.add_argument("--requests", type=int, default=64,
                                help="requests per round (default 64)")
    loadgen_parser.add_argument("--concurrency", default="8",
                                help="workers, or a comma list to sweep "
                                     "(e.g. 1,8,32; default 8)")
    loadgen_parser.add_argument("--mode", choices=("closed", "open"),
                                default="closed")
    loadgen_parser.add_argument("--rate", type=float, default=None,
                                help="open-loop arrivals per second")
    loadgen_parser.add_argument("--duration", type=float, default=None,
                                help="open-loop round length in seconds "
                                     "(overrides --requests: the round "
                                     "issues rate*duration arrivals)")
    loadgen_parser.add_argument("--classes", default=None, metavar="SPEC",
                                help="weighted request classes as "
                                     "name[:weight[:deadline_ms]] comma "
                                     "specs, e.g. interactive:8:50,batch:2; "
                                     "results gain per-class percentiles")
    loadgen_parser.add_argument("--input-len", type=int, default=1024,
                                help="payload bytes per request (default 1024)")
    loadgen_parser.add_argument("--deadline-ms", type=float, default=None,
                                help="per-request deadline sent to the server")
    loadgen_parser.add_argument("--max-reports", type=int, default=256,
                                help="report cap per reply (default 256)")
    loadgen_parser.add_argument("--seed", type=int, default=0)
    loadgen_parser.add_argument("--connect-timeout", type=float, default=30.0,
                                help="seconds to retry the first connect")
    loadgen_parser.add_argument("--json", action="store_true",
                                help="emit JSON rounds instead of the table")
    loadgen_parser.add_argument("--stats-out", default=None, metavar="PATH",
                                help="fetch the server stats document after "
                                     "the run and write it here (validated)")
    loadgen_parser.add_argument("--shutdown", action="store_true",
                                help="send a shutdown frame after the run")
    loadgen_parser.add_argument("--fail-on-error", action="store_true",
                                help="exit 1 if any request failed")

    grid_parser = sub.add_parser(
        "grid",
        help="sharded multi-process serving grid: router + worker pool "
             "(repro.grid)",
    )
    grid_parser.add_argument("--apps", required=True,
                             help="comma-separated applications to serve "
                                  "(sharded across the worker pool)")
    grid_parser.add_argument("--workers", type=int, default=2,
                             help="worker processes in the pool (default 2)")
    grid_parser.add_argument("--host", default="127.0.0.1")
    grid_parser.add_argument("--port", type=int, default=None,
                             help="router TCP port (0 or omitted: ephemeral)")
    grid_parser.add_argument("--unix", default=None, metavar="PATH",
                             help="router listens on a unix socket instead")
    grid_parser.add_argument("--window-ms", type=float, default=2.0,
                             help="per-worker micro-batch window (default 2ms)")
    grid_parser.add_argument("--max-batch", type=int, default=64,
                             help="largest batch per worker dispatch")
    grid_parser.add_argument("--max-queue-depth", type=int, default=1024,
                             help="per-worker admission bound (default 1024)")
    grid_parser.add_argument("--threads", type=int, default=2,
                             help="engine executor threads per worker")
    grid_parser.add_argument("--backend", default="auto",
                             choices=["multistream", "dfa", "lazydfa", "auto"],
                             help="store compilation engine: auto (default) "
                                  "follows each app's cost advisory")
    grid_parser.add_argument("--spill-threshold", type=int, default=32,
                             help="primary in-flight depth past which "
                                  "requests spill to the replica")
    grid_parser.add_argument("--max-inflight", type=int, default=1024,
                             help="router admission bound; past it requests "
                                  "are rejected with OVERLOADED")
    grid_parser.add_argument("--merge-interval", type=float, default=0.25,
                             help="write-behind stats merge period in "
                                  "seconds (default 0.25)")
    grid_parser.add_argument("--no-warmup", action="store_true",
                             help="skip the per-worker warm batch on start")
    grid_parser.add_argument("--no-remote-shutdown", action="store_true",
                             help="reject shutdown frames from clients")
    grid_parser.add_argument("--no-verify", action="store_true",
                             help="skip fail-fast partition/batch verification")

    args = parser.parse_args(argv)
    handlers = {
        "list-apps": _cmd_list_apps,
        "run-app": _cmd_run_app,
        "figure": _cmd_figure,
        "report": _cmd_report,
        "sweep": _cmd_sweep,
        "stats": _cmd_stats,
        "verify": _cmd_verify,
        "semant": _cmd_semant,
        "cost": _cmd_cost,
        "reduce": _cmd_reduce,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "grid": _cmd_grid,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
