"""Packed 64-bit bitset kernels used by the fast simulation engine.

A bitset over ``n`` items is stored as a ``numpy`` array of ``uint64`` words,
``ceil(n / 64)`` long.  Item ``i`` lives in word ``i >> 6`` at bit ``i & 63``
(little-endian bit order within each word, matching
``numpy.packbits(..., bitorder="little")``).

These helpers are deliberately free of any NFA-specific logic so they can be
property-tested in isolation.
"""

from __future__ import annotations

import numpy as np

WORD_BITS = 64

__all__ = [
    "WORD_BITS",
    "num_words",
    "empty",
    "from_indices",
    "to_indices",
    "from_bool",
    "to_bool",
    "set_indices",
    "clear_indices",
    "test_index",
    "any_set",
    "popcount",
]


def num_words(n_bits: int) -> int:
    """Number of 64-bit words needed to hold ``n_bits`` bits."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    return (n_bits + WORD_BITS - 1) // WORD_BITS


def empty(n_bits: int) -> np.ndarray:
    """An all-zero bitset over ``n_bits`` items."""
    return np.zeros(num_words(n_bits), dtype=np.uint64)


def from_indices(indices, n_bits: int) -> np.ndarray:
    """Build a bitset with the given item indices set."""
    words = empty(n_bits)
    set_indices(words, np.asarray(indices, dtype=np.int64))
    return words


def set_indices(words: np.ndarray, indices) -> None:
    """Set the given item indices in-place (duplicates allowed)."""
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        return
    np.bitwise_or.at(words, idx >> 6, np.uint64(1) << (idx & 63).astype(np.uint64))


def clear_indices(words: np.ndarray, indices) -> None:
    """Clear the given item indices in-place."""
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        return
    masks = ~(np.uint64(1) << (idx & 63).astype(np.uint64))
    np.bitwise_and.at(words, idx >> 6, masks)


def test_index(words: np.ndarray, index: int) -> bool:
    """Whether item ``index`` is set."""
    return bool((words[index >> 6] >> np.uint64(index & 63)) & np.uint64(1))


def to_indices(words: np.ndarray) -> np.ndarray:
    """Indices of all set items, ascending.

    Optimized for sparse bitsets: only nonzero words are expanded.
    """
    nz = np.flatnonzero(words)
    if nz.size == 0:
        return np.empty(0, dtype=np.int64)
    # Expand only the nonzero words into bits.
    sub = words[nz]
    bits = np.unpackbits(sub.view(np.uint8), bitorder="little")
    local = np.flatnonzero(bits)
    # ``local`` indexes into the concatenated nonzero words; map back.
    return (nz[local >> 6] << 6) + (local & 63)


def from_bool(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean array into a bitset."""
    packed = np.packbits(np.ascontiguousarray(mask, dtype=np.uint8), bitorder="little")
    n_w = num_words(mask.size)
    out = np.zeros(n_w * 8, dtype=np.uint8)
    out[: packed.size] = packed
    return out.view(np.uint64)


def to_bool(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack a bitset into a boolean array of length ``n_bits``."""
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return bits[:n_bits].astype(bool)


def any_set(words: np.ndarray) -> bool:
    """Whether any bit is set."""
    return bool(words.any())


def popcount(words: np.ndarray) -> int:
    """Total number of set bits."""
    return int(np.unpackbits(words.view(np.uint8), bitorder="little").sum())
