"""Input stream generators for the workload suite.

Applications consume byte streams.  Three families cover the suite:

* :func:`uniform_bytes` — uniform random bytes over a (possibly restricted)
  alphabet: benign binary traffic (ClamAV), random DNA (Hamming), etc.
* :func:`token_stream` — concatenated tokens drawn from a dictionary, so
  rule sets sharing those tokens see realistic partial-match activity
  (Snort traffic, text corpora for Brill).
* :func:`plant` — splice full pattern occurrences into a stream so the
  workload produces genuine end-to-end reports.

All generators are deterministic in their seed.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["uniform_bytes", "token_stream", "plant", "dna_bytes"]

DNA = b"ACGT"


def uniform_bytes(length: int, seed: int, alphabet: bytes = None) -> bytes:
    """Uniform random bytes; restricted to ``alphabet`` when given."""
    rng = np.random.default_rng(seed)
    if alphabet is None:
        return rng.integers(0, 256, size=length, dtype=np.uint8).tobytes()
    table = np.frombuffer(bytes(alphabet), dtype=np.uint8)
    return table[rng.integers(0, table.size, size=length)].tobytes()


def dna_bytes(length: int, seed: int) -> bytes:
    """Random DNA sequence (Hamming / motif workloads)."""
    return uniform_bytes(length, seed, DNA)


def token_stream(length: int, seed: int, tokens: Sequence[bytes], *, noise: float = 0.0,
                 noise_alphabet: bytes = None) -> bytes:
    """Concatenate randomly drawn tokens up to ``length`` bytes.

    With probability ``noise`` a random byte is emitted instead of a token,
    which breaks up matches the way real traffic does.
    """
    if not tokens:
        raise ValueError("token_stream needs at least one token")
    rng = np.random.default_rng(seed)
    out = bytearray()
    while len(out) < length:
        if noise > 0.0 and rng.random() < noise:
            if noise_alphabet:
                out.append(noise_alphabet[rng.integers(0, len(noise_alphabet))])
            else:
                out.append(int(rng.integers(0, 256)))
        else:
            out.extend(tokens[rng.integers(0, len(tokens))])
    return bytes(out[:length])


def plant(data: bytes, occurrences: Sequence[bytes], seed: int) -> bytes:
    """Overwrite random non-overlapping slices of ``data`` with the given
    byte strings, producing genuine full matches."""
    rng = np.random.default_rng(seed)
    out = bytearray(data)
    used: List[range] = []
    for occurrence in occurrences:
        if len(occurrence) > len(out):
            continue
        for _attempt in range(64):
            start = int(rng.integers(0, len(out) - len(occurrence) + 1))
            span = range(start, start + len(occurrence))
            if any(span.start < u.stop and u.start < span.stop for u in used):
                continue
            out[span.start : span.stop] = occurrence
            used.append(span)
            break
    return bytes(out)
