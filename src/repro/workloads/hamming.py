"""Bounded Mismatch Identification Automata (BMIA) — the Hamming workloads.

Implements the construction of Roy & Aluru used by ANMLZoo's Hamming
benchmark and by the paper's HM500/HM1000/HM1500 workloads: for a pattern
``P`` of length ``l`` and mismatch budget ``d``, the automaton accepts every
string within Hamming distance ``d`` of ``P``.

States form a (position, mismatches) grid.  Homogeneity requires splitting
each grid cell by the *incoming* symbol kind: ``M(i, j)`` is entered by
matching ``P[i]`` and ``X(i, j)`` by mismatching it, so a BMIA has
``l*(d+1)`` match states plus ``l*d`` mismatch states.  All states at the
final position report.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ..nfa.automaton import Automaton, Network, StartKind
from ..nfa.symbolset import SymbolSet

__all__ = ["bmia_automaton", "hamming_network", "bmia_size"]


def bmia_size(length: int, distance: int) -> int:
    """Number of states of a BMIA for the given pattern length and budget."""
    return length * (distance + 1) + length * distance


def bmia_automaton(
    pattern: bytes,
    distance: int,
    *,
    name: str = "",
    alphabet: bytes = None,
    start: StartKind = StartKind.ALL_INPUT,
) -> Automaton:
    """Build the BMIA for ``pattern`` with up to ``distance`` mismatches.

    Mismatch states accept the complement of the expected symbol within the
    given ``alphabet`` (the full 256-byte alphabet when None).
    """
    if not pattern:
        raise ValueError("pattern must be non-empty")
    if distance < 0:
        raise ValueError(f"distance must be non-negative, got {distance}")
    if distance >= len(pattern):
        raise ValueError("distance must be smaller than the pattern length")

    universe = SymbolSet.from_symbols(alphabet) if alphabet else SymbolSet.universal()
    length = len(pattern)
    automaton = Automaton(name or f"bmia-{pattern[:8].hex()}")
    ids: Dict[Tuple[str, int, int], int] = {}

    def mismatch_set(position: int) -> SymbolSet:
        return universe - SymbolSet.single(pattern[position])

    for position in range(length):
        expected = SymbolSet.single(pattern[position])
        reporting = position == length - 1
        for mismatches in range(distance + 1):
            ids[("m", position, mismatches)] = automaton.add_state(
                expected,
                start=start if position == 0 and mismatches == 0 else StartKind.NONE,
                reporting=reporting,
                report_code=f"{automaton.name}/d{mismatches}" if reporting else None,
                label=f"M({position},{mismatches})",
            )
        for mismatches in range(1, distance + 1):
            ids[("x", position, mismatches)] = automaton.add_state(
                mismatch_set(position),
                start=start if position == 0 and mismatches == 1 else StartKind.NONE,
                reporting=reporting,
                report_code=f"{automaton.name}/d{mismatches}" if reporting else None,
                label=f"X({position},{mismatches})",
            )

    for position in range(length - 1):
        for mismatches in range(distance + 1):
            for kind in ("m", "x"):
                if (kind, position, mismatches) not in ids:
                    continue
                src = ids[(kind, position, mismatches)]
                automaton.add_edge(src, ids[("m", position + 1, mismatches)])
                if mismatches + 1 <= distance:
                    automaton.add_edge(src, ids[("x", position + 1, mismatches + 1)])
    return automaton


def hamming_network(
    n_nfas: int = None,
    seed: int = 0,
    *,
    target_states: int = None,
    lengths: Sequence[int] = (16, 24, 36, 48),
    distance_fraction: float = 0.08,
    alphabet: bytes = b"ACGT",
    name: str = "hamming",
) -> Network:
    """A Hamming workload: BMIAs over random patterns.

    Mirrors the paper's generation recipe: a mix of pattern lengths, each
    with a distance of 2 to 20% of the pattern length.  Give either a
    machine count (``n_nfas``) or a total state budget (``target_states``).
    """
    if (n_nfas is None) == (target_states is None):
        raise ValueError("give exactly one of n_nfas or target_states")
    rng = np.random.default_rng(seed)
    table = np.frombuffer(bytes(alphabet), dtype=np.uint8)
    network = Network(name)
    index = 0
    while True:
        if n_nfas is not None and index >= n_nfas:
            break
        length = int(lengths[index % len(lengths)])
        distance = max(1, int(distance_fraction * length))
        if target_states is not None:
            # Never overshoot the state budget: the S/C ratio (and with it
            # the baseline batch count) must match the paper exactly.
            if network.n_states + bmia_size(length, distance) > target_states:
                if network.n_states >= 0.9 * target_states and index >= 2:
                    break
                # Fall back to the smallest machine that still fits.
                length = int(min(lengths))
                distance = max(1, int(distance_fraction * length))
                if network.n_states + bmia_size(length, distance) > target_states:
                    break
        pattern = table[rng.integers(0, table.size, size=length)].tobytes()
        network.add(
            bmia_automaton(
                pattern, distance, name=f"{name}#{index}", alphabet=alphabet
            )
        )
        index += 1
    return network
