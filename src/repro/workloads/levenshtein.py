"""Levenshtein (edit-distance) automata — the LV workload.

A traversal automaton over the (position, edits) grid: match edges advance
the position, substitution edges advance position and edits, and insertion
edges consume a symbol without advancing the position.  As in ANMLZoo's
Levenshtein machines, the wildcard insertion states are re-entrant — each
position's insertion column forms a cycle so the machine can absorb runs of
noise symbols at a fixed position.  That re-entrant core is what gives LV
its *large SCCs*, the property the paper highlights (Fig 8): topological
partitioning cannot cut inside an SCC, so LV yields almost no resource
savings.
"""

from __future__ import annotations

import numpy as np

from ..nfa.automaton import Automaton, Network, StartKind
from ..nfa.symbolset import SymbolSet

__all__ = ["levenshtein_automaton", "levenshtein_network"]


def levenshtein_automaton(
    pattern: bytes,
    distance: int,
    *,
    name: str = "",
    alphabet: bytes = None,
) -> Automaton:
    """Edit-distance traversal automaton with a re-entrant insertion core."""
    if not pattern:
        raise ValueError("pattern must be non-empty")
    if distance < 1:
        raise ValueError("distance must be at least 1 for an insertion core")
    universe = SymbolSet.from_symbols(alphabet) if alphabet else SymbolSet.universal()
    length = len(pattern)
    automaton = Automaton(name or f"lev-{pattern[:8].hex()}")

    match_ids = {}
    insert_ids = {}
    for position in range(length):
        expected = SymbolSet.single(pattern[position])
        reporting = position == length - 1
        for edits in range(distance + 1):
            match_ids[(position, edits)] = automaton.add_state(
                expected,
                start=StartKind.ALL_INPUT if position == 0 and edits == 0 else StartKind.NONE,
                reporting=reporting,
                report_code=f"{automaton.name}/e{edits}" if reporting else None,
                label=f"M({position},{edits})",
            )
        for edits in range(1, distance + 1):
            # Wildcard states: entered by consuming a non-matching symbol,
            # either in place (insertion) or advancing (substitution).  A
            # wildcard in the final column completes a match within budget,
            # so it reports.
            insert_ids[(position, edits)] = automaton.add_state(
                universe,
                reporting=position == length - 1,
                report_code=f"{automaton.name}/e{edits}" if position == length - 1 else None,
                label=f"I({position},{edits})",
            )

    for position in range(length):
        for edits in range(distance + 1):
            src = match_ids[(position, edits)]
            if position + 1 < length:
                # Match: consume the next expected symbol.
                automaton.add_edge(src, match_ids[(position + 1, edits)])
            if edits + 1 <= distance:
                # Insertion: consume any symbol without advancing.
                automaton.add_edge(src, insert_ids[(position, edits + 1)])
                # Substitution: consume any symbol in place of P[position+1].
                if position + 1 < length:
                    automaton.add_edge(src, insert_ids[(position + 1, edits + 1)])
        # Insertion column: wildcard states that can hold position through
        # runs of noise, re-entrant as in the ANMLZoo machines.
        for edits in range(1, distance + 1):
            src = insert_ids[(position, edits)]
            if position + 1 < length:
                automaton.add_edge(src, match_ids[(position + 1, edits)])
            if edits + 1 <= distance:
                automaton.add_edge(src, insert_ids[(position, edits + 1)])

    # Close the wildcard core into a single directed ring spanning every
    # insertion column.  Together with the match<->insert edges this merges
    # most of the machine into one SCC — the "large SCC" signature the paper
    # attributes to LV (Fig 8), which blocks topological partitioning.
    ring = [insert_ids[(p, e)] for p in range(length) for e in range(1, distance + 1)]
    for src, dst in zip(ring, ring[1:] + ring[:1]):
        automaton.add_edge(src, dst)
    return automaton


def levenshtein_network(
    n_nfas: int,
    seed: int,
    *,
    pattern_length: int = 24,
    distance: int = 3,
    alphabet: bytes = b"ACGT",
    name: str = "levenshtein",
) -> Network:
    """The LV workload: a few edit-distance machines over random patterns."""
    rng = np.random.default_rng(seed)
    table = np.frombuffer(bytes(alphabet), dtype=np.uint8)
    network = Network(name)
    for index in range(n_nfas):
        pattern = table[rng.integers(0, table.size, size=pattern_length)].tobytes()
        network.add(
            levenshtein_automaton(
                pattern, distance, name=f"{name}#{index}", alphabet=alphabet
            )
        )
    return network
