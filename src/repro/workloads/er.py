"""Entity Resolution (ER) workload: name-matching NFAs with large SCCs.

The ANMLZoo ER application (Bo et al.) matches permutations of name tokens
with separators and wildcard gaps; the compiled machines contain large
cyclic cores (token loops), which the paper calls out twice: ER is the one
application whose hot states do *not* correlate with depth (§III-B) and,
with LV, one of the two whose large SCCs prevent effective partitioning
(Fig 8, §VII).

We reproduce that structure directly: each NFA has a small entry chain, a
large strongly connected token-loop core (a ring of token chains with
shortcut chords, modelling "any order, any number of tokens"), and an exit
chain to a reporting state.
"""

from __future__ import annotations

import numpy as np

from ..nfa.automaton import Automaton, Network, StartKind
from .generators import class_of_width

__all__ = ["er_automaton", "er_network"]


def er_automaton(
    rng: np.random.Generator,
    *,
    core_states: int = 60,
    entry_states: int = 4,
    exit_chains: int = 4,
    exit_chain_len: int = 1,
    entry_width: int = 230,
    token_width: int = 60,
    name: str = "er",
) -> Automaton:
    """One ER machine: entry chain -> SCC token core -> exit chain.

    The entry chain is permissive enough that activation reaches the core,
    while the core's token classes keep propagation sub-critical: only part
    of each core is *truly* hot, but since the core is one SCC the
    partitioner must keep all of it — ER's Fig 8 signature.
    """
    if core_states < 2:
        raise ValueError("core needs at least 2 states to form a cycle")
    automaton = Automaton(name)

    previous = None
    for index in range(entry_states):
        sid = automaton.add_state(
            class_of_width(rng, entry_width),
            start=StartKind.ALL_INPUT if index == 0 else StartKind.NONE,
            label=f"entry{index}",
        )
        if previous is not None:
            automaton.add_edge(previous, sid)
        previous = sid

    # Token-loop core: a ring with random chords -> one big SCC.
    core = [
        automaton.add_state(class_of_width(rng, token_width), label=f"core{index}")
        for index in range(core_states)
    ]
    automaton.add_edge(previous, core[0])
    for index, sid in enumerate(core):
        automaton.add_edge(sid, core[(index + 1) % core_states])
    n_chords = core_states // 2
    for _ in range(n_chords):
        src = core[int(rng.integers(0, core_states))]
        dst = core[int(rng.integers(0, core_states))]
        automaton.add_edge(src, dst)

    # Several exit chains leave the core from distinct token states (one per
    # resolved entity form); only the canonical one reports.  Every exit
    # head is a separate hot->cold crossing target, which is what inflates
    # ER's intermediate reporting states to several times its original
    # count in the paper's Fig 12.
    for chain in range(exit_chains):
        previous = core[int(rng.integers(0, core_states))]
        for index in range(exit_chain_len):
            reporting = chain == 0 and index == exit_chain_len - 1
            sid = automaton.add_state(
                class_of_width(rng, 2),
                reporting=reporting,
                report_code=f"{name}/match" if reporting else None,
                label=f"exit{chain}.{index}",
            )
            automaton.add_edge(previous, sid)
            previous = sid
    return automaton


def er_network(n_nfas: int, seed: int, *, states_per_nfa: int = 95, name: str = "er") -> Network:
    """The ER workload: ``n_nfas`` machines of roughly ``states_per_nfa``."""
    rng = np.random.default_rng(seed)
    entry, exit_ = 4, 4
    core = max(2, states_per_nfa - entry - exit_)
    network = Network(name)
    for index in range(n_nfas):
        network.add(
            er_automaton(
                rng,
                core_states=core,
                entry_states=entry,
                name=f"{name}#{index}",
            )
        )
    return network
