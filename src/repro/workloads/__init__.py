"""The 26-application workload suite and its generators."""

from .er import er_automaton, er_network
from .generators import (
    ClassChainSpec,
    class_chain_network,
    class_of_width,
    dotstar_network,
    patterns_network,
    representative_match,
    tree_network,
)
from .hamming import bmia_automaton, bmia_size, hamming_network
from .inputs import dna_bytes, plant, token_stream, uniform_bytes
from .levenshtein import levenshtein_automaton, levenshtein_network
from .registry import APPS, DEFAULT_SCALE, AppSpec, PaperStats, app_names, get_app

__all__ = [
    "APPS",
    "DEFAULT_SCALE",
    "AppSpec",
    "PaperStats",
    "app_names",
    "get_app",
    "er_automaton",
    "er_network",
    "ClassChainSpec",
    "class_chain_network",
    "class_of_width",
    "dotstar_network",
    "patterns_network",
    "representative_match",
    "tree_network",
    "bmia_automaton",
    "bmia_size",
    "hamming_network",
    "levenshtein_automaton",
    "levenshtein_network",
    "dna_bytes",
    "plant",
    "token_stream",
    "uniform_bytes",
]
