"""Structural building blocks shared by the application generators.

The mechanisms under study depend on an application's *structural signature*:
per-NFA depth, symbol-set selectivity (which controls how deep activation
penetrates on a given input), SCC structure, sharing across NFAs (which
controls simultaneous intermediate reports), and start-state kind.  These
builders expose exactly those knobs; see `repro.workloads.registry` for how
each of the paper's 26 applications instantiates them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..nfa.automaton import Automaton, Network, StartKind
from ..nfa.symbolset import SymbolSet

__all__ = [
    "class_of_width",
    "representative_bytes",
    "ClassChainSpec",
    "class_chain_network",
    "dotstar_network",
    "tree_network",
    "patterns_network",
    "representative_match",
]


def class_of_width(rng: np.random.Generator, width: int, alphabet: bytes = None) -> SymbolSet:
    """A random symbol class of ``width`` symbols (contiguous run + jitter).

    Contiguous runs model character ranges (``[a-z]``, protocol byte bands);
    a sprinkle of extra symbols models composite classes.
    """
    if alphabet is not None:
        table = list(alphabet)
        width = min(width, len(table))
        chosen = rng.choice(len(table), size=width, replace=False)
        return SymbolSet.from_symbols([table[i] for i in chosen])
    width = max(1, min(256, width))
    start = int(rng.integers(0, 256 - width + 1))
    return SymbolSet.from_ranges((start, start + width - 1))


def representative_bytes(symbol_sets: Sequence[SymbolSet], rng: np.random.Generator) -> bytes:
    """One concrete byte string accepted along a chain of symbol-sets."""
    out = bytearray()
    for symbol_set in symbol_sets:
        symbols = symbol_set.symbols()
        if not symbols:
            raise ValueError("cannot pick a representative from an empty symbol set")
        out.append(symbols[int(rng.integers(0, len(symbols)))])
    return bytes(out)


@dataclass
class ClassChainSpec:
    """Shape parameters for a family of class-chain NFAs.

    ``length`` and ``width`` are callables drawing per-NFA chain length and
    per-state class width from the family's distributions.  A shared prefix
    of ``shared_prefix`` states reuses identical symbol-sets across every NFA
    in the family, which synchronizes partial matches (and therefore
    intermediate reports) across NFAs — the PowerEN/Brill signature.
    """

    n_nfas: int
    length: Callable[[np.random.Generator], int]
    width: Callable[[np.random.Generator], int]
    alphabet: Optional[bytes] = None
    shared_prefix: int = 0
    start: StartKind = StartKind.ALL_INPUT
    wildcard_prob: float = 0.0  # chance a state is universal (signature gaps)
    name: str = "chains"


def class_chain_network(spec: ClassChainSpec, seed: int) -> Network:
    """A network of independent chain NFAs with class-valued states."""
    rng = np.random.default_rng(seed)
    network = Network(spec.name)
    shared: List[SymbolSet] = [
        class_of_width(rng, spec.width(rng), spec.alphabet) for _ in range(spec.shared_prefix)
    ]
    for index in range(spec.n_nfas):
        length = max(1, spec.length(rng))
        automaton = Automaton(f"{spec.name}#{index}")
        previous = None
        for depth in range(length):
            if depth < len(shared):
                symbol_set = shared[depth]
            elif spec.wildcard_prob and rng.random() < spec.wildcard_prob:
                symbol_set = SymbolSet.universal()
            else:
                symbol_set = class_of_width(rng, spec.width(rng), spec.alphabet)
            sid = automaton.add_state(
                symbol_set,
                start=spec.start if depth == 0 else StartKind.NONE,
                reporting=depth == length - 1,
                report_code=f"{spec.name}#{index}" if depth == length - 1 else None,
            )
            if previous is not None:
                automaton.add_edge(previous, sid)
            previous = sid
        network.add(automaton)
    return network


def dotstar_network(
    n_nfas: int,
    prefix_len: Callable[[np.random.Generator], int],
    suffix_len: Callable[[np.random.Generator], int],
    dotstar_fraction: float,
    seed: int,
    *,
    width: Callable[[np.random.Generator], int] = lambda rng: 1,
    alphabet: Optional[bytes] = None,
    name: str = "dotstar",
) -> Network:
    """Becchi-style ``prefix.*suffix`` rule sets.

    A ``dotstar_fraction`` of the NFAs contain a universal self-loop state
    between prefix and suffix (once the prefix matches, the self-loop stays
    active and the suffix heads are enabled forever after); the rest are
    plain chains.
    """
    rng = np.random.default_rng(seed)
    network = Network(name)
    for index in range(n_nfas):
        automaton = Automaton(f"{name}#{index}")
        previous = None
        for _ in range(max(1, prefix_len(rng))):
            sid = automaton.add_state(
                class_of_width(rng, width(rng), alphabet),
                start=StartKind.ALL_INPUT if previous is None else StartKind.NONE,
            )
            if previous is not None:
                automaton.add_edge(previous, sid)
            previous = sid
        if rng.random() < dotstar_fraction:
            star = automaton.add_state(SymbolSet.universal())
            automaton.add_edge(previous, star)
            automaton.add_edge(star, star)
            previous = star
        suffix = max(1, suffix_len(rng))
        for offset in range(suffix):
            sid = automaton.add_state(
                class_of_width(rng, width(rng), alphabet),
                reporting=offset == suffix - 1,
                report_code=f"{name}#{index}" if offset == suffix - 1 else None,
            )
            automaton.add_edge(previous, sid)
            previous = sid
        network.add(automaton)
    return network


def patterns_network(
    patterns: Sequence[bytes],
    *,
    name: str = "patterns",
    class_prob: float = 0.0,
    class_width: int = 8,
    alphabet: Optional[bytes] = None,
    start: StartKind = StartKind.ALL_INPUT,
    wildcard_prob: float = 0.0,
    mid_report_prob: float = 0.0,
    seed: int = 0,
) -> Network:
    """One chain NFA per concrete byte pattern (signature/rule sets).

    With probability ``class_prob`` a state is widened from the exact byte to
    a class of ``class_width`` symbols *containing* that byte (so the pattern
    itself still matches — the representative string is the pattern); with
    probability ``wildcard_prob`` it becomes universal (signature gap bytes).
    With probability ``mid_report_prob`` a rule gains an extra reporting
    state mid-chain (Snort rules report per content match, so the paper's
    rule sets carry more reporting states than NFAs, Table II).
    """
    rng = np.random.default_rng(seed)
    network = Network(name)
    for index, pattern in enumerate(patterns):
        if not pattern:
            raise ValueError(f"pattern {index} is empty")
        automaton = Automaton(f"{name}#{index}")
        mid_report = -1
        if mid_report_prob and len(pattern) >= 4 and rng.random() < mid_report_prob:
            mid_report = int(rng.integers(1, len(pattern) - 1))
        previous = None
        for depth, byte in enumerate(pattern):
            roll = rng.random()
            if wildcard_prob and roll < wildcard_prob and depth > 0:
                symbol_set = SymbolSet.universal()
            elif class_prob and roll < wildcard_prob + class_prob:
                symbol_set = class_of_width(rng, class_width, alphabet) | SymbolSet.single(byte)
            else:
                symbol_set = SymbolSet.single(byte)
            reporting = depth == len(pattern) - 1 or depth == mid_report
            sid = automaton.add_state(
                symbol_set,
                start=start if depth == 0 else StartKind.NONE,
                reporting=reporting,
                report_code=f"{name}#{index}" if reporting else None,
            )
            if previous is not None:
                automaton.add_edge(previous, sid)
            previous = sid
        network.add(automaton)
    return network


def representative_match(automaton: Automaton, rng: np.random.Generator) -> Optional[bytes]:
    """A concrete byte string that drives ``automaton`` from a start state to
    a reporting state (BFS shortest path), or None if unreachable."""
    parents = {}
    queue = list(automaton.start_states())
    seen = set(queue)
    goal = None
    for sid in queue:
        if automaton.state(sid).reporting:
            goal = sid
    while queue and goal is None:
        nxt = []
        for src in queue:
            for dst in automaton.successors(src):
                if dst in seen:
                    continue
                seen.add(dst)
                parents[dst] = src
                if automaton.state(dst).reporting:
                    goal = dst
                    break
                nxt.append(dst)
            if goal is not None:
                break
        queue = nxt
    if goal is None:
        return None
    path = [goal]
    while path[-1] in parents:
        path.append(parents[path[-1]])
    path.reverse()
    return representative_bytes([automaton.state(s).symbol_set for s in path], rng)


def tree_network(
    n_nfas: int,
    depth: int,
    leaves: int,
    width: Callable[[np.random.Generator], int],
    seed: int,
    *,
    leaf_width: Callable[[np.random.Generator], int] = lambda rng: 1,
    alphabet: Optional[bytes] = None,
    name: str = "trees",
) -> Network:
    """Random-Forest-style NFAs: per tree, ``leaves`` root-to-leaf feature
    chains of fixed ``depth`` (MaxTopo = depth, as in RF1/RF2).

    Internal levels use wide feature intervals (so nearly all states run
    hot); the reporting leaf level is a narrow label byte, keeping the
    report rate realistic.
    """
    rng = np.random.default_rng(seed)
    network = Network(name)
    for index in range(n_nfas):
        automaton = Automaton(f"{name}#{index}")
        for leaf in range(leaves):
            previous = None
            for level in range(depth):
                is_leaf = level == depth - 1
                draw = leaf_width(rng) if is_leaf else width(rng)
                sid = automaton.add_state(
                    class_of_width(rng, draw, alphabet),
                    start=StartKind.ALL_INPUT if level == 0 else StartKind.NONE,
                    reporting=is_leaf,
                    report_code=f"{name}#{index}.{leaf}" if is_leaf else None,
                )
                if previous is not None:
                    automaton.add_edge(previous, sid)
                previous = sid
        network.add(automaton)
    return network
