"""The 26-application workload suite (ANMLZoo + Becchi Regex + the paper's
three additions), as parameterized synthetic equivalents.

Each :class:`AppSpec` records the paper's Table II statistics and builds a
*scaled* network preserving the structural signature the paper's mechanisms
depend on: the ratio of application size to AP capacity (so baseline batch
counts match Table IV), per-NFA depth and shape, SCC structure, symbol-set
selectivity (which sets the hot fraction, Fig 1, and its depth profile,
Fig 5), cross-NFA sharing (simultaneous intermediate reports, Table IV),
and start-state kind (Fermi and SPM are start-of-data, paper footnote 2).

The default ``scale=16`` divides state counts and capacities by 16: a 24K
half-core becomes 1,536 STEs and, e.g., ClamAV4k's 1.12M states become 70K,
keeping ``ceil(S/C)`` — and therefore every speedup ratio — intact.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..nfa.automaton import Network, StartKind
from ..nfa.symbolset import SymbolSet
from .er import er_network
from .generators import (
    ClassChainSpec,
    class_chain_network,
    class_of_width,
    patterns_network,
    representative_match,
    tree_network,
)
from .hamming import hamming_network
from .inputs import plant, token_stream, uniform_bytes
from .levenshtein import levenshtein_network

__all__ = [
    "PaperStats",
    "AppSpec",
    "APPS",
    "ALIASES",
    "app_names",
    "get_app",
    "resolve_abbr",
    "DEFAULT_SCALE",
]

DEFAULT_SCALE = 16

#: Printable-ASCII alphabet used by text/traffic workloads.
ASCII = bytes(range(32, 127))
DNA = b"ACGT"
#: 20-letter amino-acid alphabet (Protomata).
PROTEIN = b"ACDEFGHIKLMNPQRSTVWY"

#: Nominal test-input length used when converting a hot-depth target into a
#: class width; actual inputs within ~4x of this keep the shape.
NOMINAL_INPUT = 4096


@dataclass(frozen=True)
class PaperStats:
    """Table II row (plus Table IV baseline executions where reported)."""

    states: int
    nfas: int
    max_topo: int
    rstates: int
    baseline_execs: Optional[int] = None


@dataclass
class AppSpec:
    """One evaluated application: how to build it and feed it."""

    abbr: str
    full_name: str
    group: str  # "high" | "medium" | "low"
    paper: PaperStats
    description: str
    builder: Callable[["AppSpec", int], Network]  # (spec, scale) -> Network
    input_builder: Callable[["AppSpec", Network, int, int], bytes]
    start_of_data: bool = False  # excluded from Table I, full input used (§IV-A)

    def seed(self, salt: str = "") -> int:
        digest = hashlib.sha256(f"{self.abbr}:{salt}".encode()).digest()
        return int.from_bytes(digest[:4], "little")

    def build(self, scale: int = DEFAULT_SCALE) -> Network:
        network = self.builder(self, scale)
        network.name = self.abbr
        return network

    def make_input(self, network: Network, length: int, seed: Optional[int] = None) -> bytes:
        actual_seed = self.seed("input") if seed is None else seed
        return self.input_builder(self, network, length, actual_seed)

    def scaled_states(self, scale: int) -> int:
        return max(1, round(self.paper.states / scale))

    def scaled_nfas(self, scale: int, per_nfa: float) -> int:
        return max(2, round(self.paper.states / scale / per_nfa))


# -- shared helpers --------------------------------------------------------------


def _width_for_depth(depth_target: float, alphabet_size: int = 256,
                     input_len: int = NOMINAL_INPUT) -> int:
    """Class width making activation penetrate ~``depth_target`` layers.

    A chain state at depth ``d`` is ever-enabled with probability about
    ``min(1, n * q^(d-1))`` for per-state match probability ``q``; solving
    ``n * q^(d-1) = 1`` gives the width below.
    """
    if depth_target <= 1.0:
        return 1
    q = math.exp(-math.log(input_len) / (depth_target - 1.0))
    return max(1, min(alphabet_size, round(q * alphabet_size)))


def _anchored_width(hot_fraction: float, length: int, alphabet_size: int = 256) -> int:
    """Class width for start-of-data chains hitting a target hot fraction.

    Anchored chains get exactly one activation trial, so the expected hot
    fraction is ``(1 - q^L) / (L * (1 - q))``; solved by bisection.
    """
    def hot(q: float) -> float:
        if q >= 1.0:
            return 1.0
        return (1.0 - q ** length) / (length * (1.0 - q))

    lo, hi = 0.0, 1.0
    for _ in range(60):
        mid = (lo + hi) / 2
        if hot(mid) < hot_fraction:
            lo = mid
        else:
            hi = mid
    return max(1, min(alphabet_size, round(hi * alphabet_size)))


def _tokens(rng: np.random.Generator, count: int, length: int, alphabet: bytes) -> List[bytes]:
    table = np.frombuffer(bytes(alphabet), dtype=np.uint8)
    return [
        table[rng.integers(0, table.size, size=length)].tobytes() for _ in range(count)
    ]


def _plant_representatives(network: Network, data: bytes, n_plants: int, seed: int) -> bytes:
    """Plant full matches of a few NFAs into both halves of the input.

    One occurrence goes near the very start so that even short profiling
    prefixes see a positive sample, as a deployed rule set's calibration
    corpus would contain known positives.
    """
    rng = np.random.default_rng(seed)
    reps = []
    indices = rng.permutation(network.n_automata)[: max(1, n_plants)]
    for index in indices:
        rep = representative_match(network.automata[int(index)], rng)
        if rep:
            reps.append(rep)
    if not reps:
        return data
    half = len(data) // 2
    first = bytearray(plant(data[:half], reps, seed + 1))
    lead = reps[0]
    if len(lead) + 8 <= len(first):
        first[8 : 8 + len(lead)] = lead
    second = plant(data[half:], reps, seed + 2)
    return bytes(first) + second


def _uniform_input(spec: AppSpec, network: Network, length: int, seed: int,
                   alphabet: Optional[bytes] = None, n_plants: int = 4) -> bytes:
    data = uniform_bytes(length, seed, alphabet)
    return _plant_representatives(network, data, n_plants, seed)


def _token_input(spec: AppSpec, network: Network, length: int, seed: int,
                 token_count: int, token_len: int = 4, noise: float = 0.3,
                 alphabet: bytes = ASCII, n_plants: int = 4) -> bytes:
    rng = np.random.default_rng(spec.seed("tokens"))
    tokens = _tokens(rng, token_count, token_len, alphabet)
    data = token_stream(length, seed, tokens, noise=noise, noise_alphabet=alphabet)
    return _plant_representatives(network, data, n_plants, seed)


def _pattern_lengths(rng: np.random.Generator, n: int, mean: float, sigma: float,
                     low: int, high: int) -> List[int]:
    """Log-normal-ish rule lengths clipped to [low, high]."""
    mu = math.log(mean) - 0.5 * sigma ** 2
    raw = np.exp(rng.normal(mu, sigma, size=n))
    return [int(min(high, max(low, round(v)))) for v in raw]


def _random_patterns(rng: np.random.Generator, lengths: List[int], alphabet: bytes) -> List[bytes]:
    table = np.frombuffer(bytes(alphabet), dtype=np.uint8)
    return [table[rng.integers(0, table.size, size=l)].tobytes() for l in lengths]


def _token_patterns(
    rng: np.random.Generator, lengths: List[int], tokens: List[bytes]
) -> List[bytes]:
    """Rule contents assembled from the shared token dictionary."""
    out = []
    for length in lengths:
        buf = bytearray()
        while len(buf) < length:
            buf.extend(tokens[rng.integers(0, len(tokens))])
        out.append(bytes(buf[:length]))
    return out


# -- builders, one per application family ------------------------------------------


def _lengths_to_budget(rng: np.random.Generator, target: int, mean: float,
                       sigma: float, low: int, high: int) -> List[int]:
    """Draw rule lengths until they sum to the scaled state budget, so the
    build hits the paper's S/C ratio exactly (DESIGN.md §6)."""
    lengths: List[int] = []
    total = 0
    while total < target:
        (length,) = _pattern_lengths(rng, 1, mean, sigma, low, high)
        length = min(length, max(low, target - total)) if total + length > target else length
        lengths.append(length)
        total += length
    return lengths


def _build_clamav(spec: AppSpec, scale: int, mean_len: float, sigma: float,
                  high: int, wildcard_prob: float) -> Network:
    rng = np.random.default_rng(spec.seed("build"))
    lengths = _lengths_to_budget(rng, spec.scaled_states(scale), mean_len, sigma, 24, high)
    patterns = _random_patterns(rng, lengths, bytes(range(256)))
    return patterns_network(
        patterns, name=spec.abbr, wildcard_prob=wildcard_prob, seed=spec.seed("net")
    )


def _build_snort(spec: AppSpec, scale: int, mean_len: float, deep_len: int,
                 deep_fraction: float, token_count: int) -> Network:
    rng = np.random.default_rng(spec.seed("build"))
    tokens = _tokens(np.random.default_rng(spec.seed("tokens")), token_count, 4, ASCII)
    target = spec.scaled_states(scale)
    # Set aside the deep counting rules first (they define MaxTopo), then
    # fill the remaining state budget with ordinary rules.  At very small
    # scales the deep rules shrink so they never eat the whole budget.
    deep_len = min(deep_len, max(int(mean_len), target // 4))
    n_deep = max(1, int(deep_fraction * target / mean_len))
    while n_deep > 1 and n_deep * deep_len > target // 2:
        n_deep -= 1
    lengths = [deep_len] * n_deep + _lengths_to_budget(
        rng, max(2 * int(mean_len), target - n_deep * deep_len), mean_len, 0.5, 6, deep_len
    )
    patterns = _token_patterns(rng, lengths, tokens)
    return patterns_network(
        patterns, name=spec.abbr, class_prob=0.2, class_width=12, alphabet=ASCII,
        mid_report_prob=0.55, seed=spec.seed("net"),
    )


def _build_gapped_chains(spec: AppSpec, scale: int, *, items: int, item_width: int,
                         anchored: bool, final_width: int = 3) -> Network:
    """Alternating item-class / universal-gap chains (SPM, PowerEN style).

    Each gap state has a self-loop: once a prefix of items is seen, the gap
    holds the match open, so downstream states stay enabled from then on —
    this yields SPM/PEN's flood of spread-out intermediate reports and their
    near-zero SpAP JumpRatio (Table IV).
    """
    rng = np.random.default_rng(spec.seed("build"))
    target = spec.scaled_states(scale)
    network = Network(spec.abbr)
    from ..nfa.automaton import Automaton

    start = StartKind.START_OF_DATA if anchored else StartKind.ALL_INPUT
    per_nfa = 2 * items - 1
    index = 0
    while network.n_states + per_nfa <= target or index < 2:
        automaton = Automaton(f"{spec.abbr}#{index}")
        index += 1
        previous = None
        for item in range(items):
            is_final = item == items - 1
            sid = automaton.add_state(
                class_of_width(rng, final_width if is_final else item_width),
                start=start if item == 0 else StartKind.NONE,
                reporting=is_final,
                report_code=f"{spec.abbr}#{index}" if is_final else None,
            )
            if previous is not None:
                automaton.add_edge(previous, sid)
            if item < items - 1:
                gap = automaton.add_state(SymbolSet.universal())
                automaton.add_edge(sid, gap)
                automaton.add_edge(gap, gap)
                previous = gap
            else:
                previous = sid
        network.add(automaton)
    return network


def _build_shared_prefix_chains(spec: AppSpec, scale: int, *, length: int,
                                depth_target: float, group_size: int,
                                shared_prefix: int, alphabet: Optional[bytes]) -> Network:
    """Chain families in groups sharing identical prefixes (Brill).

    Shared prefixes synchronize partial matches across a whole group, so
    boundary crossings arrive as simultaneous intermediate reports — the
    enable-stall signature of Brill (Table IV).
    """
    alphabet_size = len(alphabet) if alphabet else 256
    width = _width_for_depth(depth_target, alphabet_size)
    target = spec.scaled_states(scale)
    rng = np.random.default_rng(spec.seed("build"))
    network = Network(spec.abbr)
    from ..nfa.automaton import Automaton

    built = 0
    while network.n_states + length <= target or built < 2:
        members = group_size
        shared = [class_of_width(rng, width, alphabet) for _ in range(shared_prefix)]
        for _member in range(members):
            if network.n_states + length > target and built >= 2:
                break
            automaton = Automaton(f"{spec.abbr}#{built}")
            previous = None
            for depth in range(length):
                if depth < shared_prefix:
                    symbol_set = shared[depth]
                else:
                    symbol_set = class_of_width(rng, width, alphabet)
                sid = automaton.add_state(
                    symbol_set,
                    start=StartKind.ALL_INPUT if depth == 0 else StartKind.NONE,
                    reporting=depth == length - 1,
                    report_code=f"{spec.abbr}#{built}" if depth == length - 1 else None,
                )
                if previous is not None:
                    automaton.add_edge(previous, sid)
                previous = sid
            network.add(automaton)
            built += 1
    return network


def _build_pen(spec: AppSpec, scale: int, *, prefix_len: int = 3,
               prefix_width: int = 78, body_len: int = 16,
               body_width: int = 128, group_size: int = 40) -> Network:
    """PowerEN: the paper's SpAP slowdown case (Table IV, Fig 10a).

    Every NFA in a group shares a wide prefix (which opens quickly), a
    universal self-looping gap state (which holds the match open forever
    after), and a *body* of half-wide states.  Because the gap is
    permanently active once opened, the body state just past the partition
    boundary activates at a per-cycle rate of ``(body_width/256)^j``
    regardless of where the boundary lands — and its intermediate copy fires
    at every such cycle, simultaneously across the whole group (identical
    shared symbol-sets).  The resulting flood of intermediate reports and
    enable stalls is what makes BaseAP/SpAP *slower* than the baseline for
    this application, exactly the paper's PEN anomaly.
    """
    rng = np.random.default_rng(spec.seed("build"))
    target = spec.scaled_states(scale)
    network = Network(spec.abbr)
    from ..nfa.automaton import Automaton

    per_nfa = prefix_len + 1 + body_len
    built = 0
    while network.n_states + per_nfa <= target or built < 2:
        members = group_size
        shared_prefix = [class_of_width(rng, prefix_width) for _ in range(prefix_len)]
        shared_body = [class_of_width(rng, body_width) for _ in range(body_len)]
        for _member in range(members):
            if network.n_states + per_nfa > target and built >= 2:
                break
            automaton = Automaton(f"{spec.abbr}#{built}")
            previous = None
            for depth, symbol_set in enumerate(shared_prefix):
                sid = automaton.add_state(
                    symbol_set,
                    start=StartKind.ALL_INPUT if depth == 0 else StartKind.NONE,
                )
                if previous is not None:
                    automaton.add_edge(previous, sid)
                previous = sid
            gap = automaton.add_state(SymbolSet.universal(), label="gap")
            automaton.add_edge(previous, gap)
            automaton.add_edge(gap, gap)
            previous = gap
            for offset, symbol_set in enumerate(shared_body):
                reporting = offset == body_len - 1
                sid = automaton.add_state(
                    symbol_set,
                    reporting=reporting,
                    report_code=f"{spec.abbr}#{built}" if reporting else None,
                )
                automaton.add_edge(previous, sid)
                previous = sid
            network.add(automaton)
            built += 1
    return network


def _build_class_chains(spec: AppSpec, scale: int, *, length_mean: float,
                        length_sigma: float, depth_target: float,
                        alphabet: Optional[bytes], range_fraction: float = 1.0,
                        anchored: bool = False,
                        anchored_hot: Optional[float] = None) -> Network:
    alphabet_size = len(alphabet) if alphabet else 256
    if anchored and anchored_hot is not None:
        width = _anchored_width(anchored_hot, int(length_mean), alphabet_size)
    else:
        width = _width_for_depth(depth_target, alphabet_size)

    def length_draw(rng: np.random.Generator) -> int:
        return max(2, int(round(rng.normal(length_mean, length_sigma))))

    def width_draw(rng: np.random.Generator) -> int:
        if range_fraction < 1.0 and rng.random() > range_fraction:
            return 1
        return max(1, int(round(rng.normal(width, max(1.0, width * 0.2)))))

    spec_chains = ClassChainSpec(
        n_nfas=spec.scaled_nfas(scale, length_mean),
        length=length_draw,
        width=width_draw,
        alphabet=alphabet,
        start=StartKind.START_OF_DATA if anchored else StartKind.ALL_INPUT,
        name=spec.abbr,
    )
    return class_chain_network(spec_chains, spec.seed("net"))


def _build_dotstar(spec: AppSpec, scale: int, *, per_nfa: float, prefix_mean: int,
                   dotstar_fraction: float) -> Network:
    from .generators import dotstar_network

    rng_lengths = per_nfa - prefix_mean - 1

    return dotstar_network(
        spec.scaled_nfas(scale, per_nfa),
        prefix_len=lambda rng: max(2, int(rng.normal(prefix_mean, 2))),
        suffix_len=lambda rng: max(2, int(rng.normal(rng_lengths, 4))),
        dotstar_fraction=dotstar_fraction,
        seed=spec.seed("net"),
        alphabet=ASCII,
        name=spec.abbr,
    )


def _build_hamming(spec: AppSpec, scale: int) -> Network:
    return hamming_network(
        seed=spec.seed("net"), target_states=spec.scaled_states(scale), name=spec.abbr
    )


def _build_trees(spec: AppSpec, scale: int) -> Network:
    # RF trees: 7 leaf chains of depth 3 = 21 states per NFA (MaxTopo 3).
    return tree_network(
        spec.scaled_nfas(scale, 21),
        depth=3,
        leaves=7,
        width=lambda rng: int(rng.integers(200, 246)),
        seed=spec.seed("net"),
        name=spec.abbr,
    )


def _build_er(spec: AppSpec, scale: int) -> Network:
    return er_network(spec.scaled_nfas(scale, 95), spec.seed("net"), states_per_nfa=95,
                      name=spec.abbr)


def _build_levenshtein(spec: AppSpec, scale: int) -> Network:
    # lev(24, 3) has 24*4 + 24*3 = 168 states; paper LV: 2784/24 = 116 per NFA.
    target = spec.scaled_states(scale)
    pattern_length, distance = 24, 3
    if 2 * 168 > target:
        # Tiny scales: shrink the machines instead of dropping below 2 NFAs.
        distance = 2
        pattern_length = max(4, target // (2 * (2 * distance + 1)))
    per_nfa = pattern_length * (2 * distance + 1)
    n_nfas = max(2, round(target / per_nfa))
    return levenshtein_network(n_nfas, spec.seed("net"), pattern_length=pattern_length,
                               distance=distance, name=spec.abbr)


# -- input builders -----------------------------------------------------------------


def _in_uniform(alphabet: Optional[bytes] = None, n_plants: int = 4):
    def build(spec: AppSpec, network: Network, length: int, seed: int) -> bytes:
        return _uniform_input(spec, network, length, seed, alphabet, n_plants)

    return build


def _in_tokens(token_count: int, noise: float = 0.3, n_plants: int = 4):
    def build(spec: AppSpec, network: Network, length: int, seed: int) -> bytes:
        return _token_input(
            spec, network, length, seed, token_count, noise=noise, n_plants=n_plants
        )

    return build


# -- the registry ----------------------------------------------------------------------


def _make_apps() -> Dict[str, AppSpec]:
    apps: List[AppSpec] = [
        AppSpec(
            abbr="CAV4k",
            full_name="ClamAV4000",
            group="high",
            paper=PaperStats(1124947, 4000, 2080, 4015, baseline_execs=47),
            description="4,000 ClamAV-style virus signatures: very long literal "
                        "byte chains; benign traffic leaves ~99% of states cold.",
            builder=lambda spec, scale: _build_clamav(spec, scale, 281.0, 0.55, 700, 0.02),
            input_builder=_in_uniform(n_plants=3),
        ),
        AppSpec(
            abbr="HM1500",
            full_name="Hamming1500",
            group="high",
            paper=PaperStats(366000, 3000, 32, 6000, baseline_execs=15),
            description="Bounded-mismatch (BMIA) automata, lengths 8/12/20/30 with "
                        "20% distance, random DNA input.",
            builder=_build_hamming,
            input_builder=_in_uniform(DNA, n_plants=4),
        ),
        AppSpec(
            abbr="HM1000",
            full_name="Hamming1000",
            group="high",
            paper=PaperStats(244000, 2000, 32, 4000, baseline_execs=10),
            description="As HM1500 with 2/3 of the machines.",
            builder=_build_hamming,
            input_builder=_in_uniform(DNA, n_plants=4),
        ),
        AppSpec(
            abbr="Snort_L",
            full_name="Snort_big",
            group="high",
            paper=PaperStats(132171, 3126, 4509, 4043, baseline_execs=6),
            description="3,126 Snort community+registered rules: token-built "
                        "contents plus a tail of very deep counting rules.",
            builder=lambda spec, scale: _build_snort(spec, scale, 30.0, 280, 0.02, 48),
            input_builder=_in_tokens(48),
        ),
        AppSpec(
            abbr="HM500",
            full_name="Hamming500",
            group="high",
            paper=PaperStats(122000, 1000, 32, 2000, baseline_execs=5),
            description="As HM1500 with 1/3 of the machines.",
            builder=_build_hamming,
            input_builder=_in_uniform(DNA, n_plants=4),
        ),
        AppSpec(
            abbr="SPM",
            full_name="SequentialPatternMining",
            group="high",
            paper=PaperStats(100500, 5025, 16, 5025, baseline_execs=5),
            description="Frequent-sequence queries: anchored item classes with "
                        "self-looping gap states ('A then eventually B').",
            builder=lambda spec, scale: _build_gapped_chains(
                spec, scale, items=10, item_width=214, anchored=True
            ),
            input_builder=_in_uniform(n_plants=0),
            start_of_data=True,
        ),
        AppSpec(
            abbr="DS",
            full_name="Dotstar",
            group="high",
            paper=PaperStats(96438, 2837, 95, 2838, baseline_execs=4),
            description="prefix.*suffix rules over ASCII; random prefixes rarely "
                        "complete, so deep states stay cold and predictable.",
            builder=lambda spec, scale: _build_dotstar(
                spec, scale, per_nfa=34, prefix_mean=8, dotstar_fraction=0.5
            ),
            input_builder=_in_uniform(ASCII, n_plants=3),
        ),
        AppSpec(
            abbr="ER",
            full_name="EntityResolution",
            group="high",
            paper=PaperStats(95136, 1000, 64, 1000, baseline_execs=4),
            description="Name-matching machines with large cyclic token cores: "
                        "hot states do not correlate with depth, and the SCCs "
                        "block partitioning (paper Fig 8).",
            builder=_build_er,
            input_builder=_in_uniform(n_plants=2),
        ),
        AppSpec(
            abbr="RF1",
            full_name="RandomForest1",
            group="high",
            paper=PaperStats(75340, 3767, 3, 3767, baseline_execs=4),
            description="Decision-tree leaf chains of depth 3 over wide feature "
                        "intervals: nearly every state runs hot.",
            builder=_build_trees,
            input_builder=_in_uniform(n_plants=0),
        ),
        AppSpec(
            abbr="Snort",
            full_name="Snort",
            group="high",
            paper=PaperStats(69029, 2687, 133, 4166, baseline_execs=3),
            description="ANMLZoo Snort subset: shallower rules than Snort_big.",
            builder=lambda spec, scale: _build_snort(spec, scale, 24.0, 120, 0.02, 40),
            input_builder=_in_tokens(40),
        ),
        AppSpec(
            abbr="CAV",
            full_name="ClamAV",
            group="high",
            paper=PaperStats(49538, 515, 542, 515, baseline_execs=3),
            description="ANMLZoo ClamAV subset: 515 long signatures.",
            builder=lambda spec, scale: _build_clamav(spec, scale, 96.0, 0.5, 560, 0.02),
            input_builder=_in_uniform(n_plants=2),
        ),
        AppSpec(
            abbr="Brill",
            full_name="Brill",
            group="medium",
            paper=PaperStats(42658, 1962, 38, 1962, baseline_execs=2),
            description="Brill tagger rules over a text alphabet; groups share "
                        "rule prefixes, so boundary crossings arrive together "
                        "(enable stalls, Table IV).",
            builder=lambda spec, scale: _build_shared_prefix_chains(
                spec, scale, length=22, depth_target=10.0, group_size=8,
                shared_prefix=14, alphabet=ASCII,
            ),
            input_builder=_in_tokens(24, noise=0.2),
        ),
        AppSpec(
            abbr="Pro",
            full_name="Protomata",
            group="medium",
            paper=PaperStats(42009, 2340, 123, 2365, baseline_execs=2),
            description="Protein motif chains over the 20-letter amino-acid "
                        "alphabet.",
            builder=lambda spec, scale: _build_class_chains(
                spec, scale, length_mean=18.0, length_sigma=6.0, depth_target=7.0,
                alphabet=PROTEIN,
            ),
            input_builder=_in_uniform(PROTEIN, n_plants=4),
        ),
        AppSpec(
            abbr="Fermi",
            full_name="Fermi",
            group="medium",
            paper=PaperStats(40783, 2399, 13, 2399, baseline_execs=2),
            description="Particle-track matching: start-of-data anchored chains "
                        "of wide hit windows.",
            builder=lambda spec, scale: _build_class_chains(
                spec, scale, length_mean=17.0, length_sigma=2.0, depth_target=0.0,
                alphabet=None, anchored=True, anchored_hot=0.93,
            ),
            input_builder=_in_uniform(n_plants=0),
            start_of_data=True,
        ),
        AppSpec(
            abbr="PEN",
            full_name="PowerEN",
            group="medium",
            paper=PaperStats(40513, 2857, 44, 3456, baseline_execs=2),
            description="PowerEN rule groups share prefixes AND hold matches open "
                        "through gap states: floods of simultaneous intermediate "
                        "reports make SpAP stall (the paper's slowdown case).",
            builder=lambda spec, scale: _build_pen(spec, scale),
            input_builder=_in_uniform(n_plants=2),
        ),
        AppSpec(
            abbr="RF2",
            full_name="RandomForest2",
            group="medium",
            paper=PaperStats(33220, 1661, 3, 1661, baseline_execs=2),
            description="A smaller random forest.",
            builder=_build_trees,
            input_builder=_in_uniform(n_plants=0),
        ),
        AppSpec(
            abbr="TCP",
            full_name="TCP",
            group="low",
            paper=PaperStats(19704, 738, 100, 767),
            description="Becchi TCP-flow rules over token traffic.",
            builder=lambda spec, scale: _build_snort(spec, scale, 27.0, 95, 0.02, 36),
            input_builder=_in_tokens(36),
        ),
        AppSpec(
            abbr="DS06",
            full_name="Dotstar06",
            group="low",
            paper=PaperStats(12640, 298, 104, 300),
            description="Becchi synthetic: 60% of rules contain .*.",
            builder=lambda spec, scale: _build_dotstar(
                spec, scale, per_nfa=42, prefix_mean=9, dotstar_fraction=0.6
            ),
            input_builder=_in_uniform(ASCII, n_plants=2),
        ),
        AppSpec(
            abbr="Rg05",
            full_name="Ranges05",
            group="low",
            paper=PaperStats(12621, 299, 94, 299),
            description="Becchi synthetic: half the states are character ranges.",
            builder=lambda spec, scale: _build_class_chains(
                spec, scale, length_mean=42.0, length_sigma=8.0, depth_target=9.0,
                alphabet=ASCII, range_fraction=0.5,
            ),
            input_builder=_in_uniform(ASCII, n_plants=2),
        ),
        AppSpec(
            abbr="Rg1",
            full_name="Ranges1",
            group="low",
            paper=PaperStats(12464, 297, 96, 297),
            description="Becchi synthetic: every state is a character range.",
            builder=lambda spec, scale: _build_class_chains(
                spec, scale, length_mean=42.0, length_sigma=8.0, depth_target=11.0,
                alphabet=ASCII, range_fraction=1.0,
            ),
            input_builder=_in_uniform(ASCII, n_plants=2),
        ),
        AppSpec(
            abbr="EM",
            full_name="ExactMatch",
            group="low",
            paper=PaperStats(12439, 297, 87, 297),
            description="Becchi synthetic: exact-match strings over token traffic.",
            builder=lambda spec, scale: _build_snort(spec, scale, 42.0, 85, 0.01, 44),
            input_builder=_in_tokens(44),
        ),
        AppSpec(
            abbr="DS09",
            full_name="Dotstar09",
            group="low",
            paper=PaperStats(12431, 297, 104, 300),
            description="Becchi synthetic: 90% of rules contain .*.",
            builder=lambda spec, scale: _build_dotstar(
                spec, scale, per_nfa=42, prefix_mean=9, dotstar_fraction=0.9
            ),
            input_builder=_in_uniform(ASCII, n_plants=2),
        ),
        AppSpec(
            abbr="DS03",
            full_name="Dotstar03",
            group="low",
            paper=PaperStats(12144, 299, 92, 300),
            description="Becchi synthetic: 30% of rules contain .*.",
            builder=lambda spec, scale: _build_dotstar(
                spec, scale, per_nfa=41, prefix_mean=9, dotstar_fraction=0.3
            ),
            input_builder=_in_uniform(ASCII, n_plants=2),
        ),
        AppSpec(
            abbr="HM",
            full_name="Hamming",
            group="low",
            paper=PaperStats(11346, 93, 20, 186),
            description="ANMLZoo Hamming: a small BMIA set.",
            builder=lambda spec, scale: hamming_network(
                seed=spec.seed("net"), target_states=spec.scaled_states(scale),
                lengths=(12, 20, 30), name=spec.abbr,
            ),
            input_builder=_in_uniform(DNA, n_plants=2),
        ),
        AppSpec(
            abbr="LV",
            full_name="Levenshtein",
            group="low",
            paper=PaperStats(2784, 24, 23, 96),
            description="Edit-distance machines whose re-entrant wildcard core "
                        "forms one large SCC (no useful partition, Fig 8).",
            builder=_build_levenshtein,
            input_builder=_in_uniform(DNA, n_plants=2),
        ),
        AppSpec(
            abbr="Bro217",
            full_name="Bro217",
            group="low",
            paper=PaperStats(2312, 187, 84, 187),
            description="Bro IDS rules: short token contents.",
            builder=lambda spec, scale: _build_snort(spec, scale, 12.0, 80, 0.01, 64),
            input_builder=_in_tokens(64),
        ),
    ]
    return {app.abbr: app for app in apps}


APPS: Dict[str, AppSpec] = _make_apps()

#: Alternate spellings accepted anywhere an abbreviation is: the paper's
#: shorter table abbreviations and common long-form names.
ALIASES: Dict[str, str] = {
    "SNT": "Snort",
    "SNT_L": "Snort_L",
    "SNORT_BIG": "Snort_L",
    "CLAMAV": "CAV",
    "CLAMAV4K": "CAV4k",
    "PROTOMATA": "Pro",
    "POWEREN": "PEN",
    "LEVENSHTEIN": "LV",
    "HAMMING": "HM",
    "BRO": "Bro217",
}


def app_names() -> List[str]:
    """All 26 application abbreviations in Table II order."""
    return list(APPS)


def resolve_abbr(name: str) -> Optional[str]:
    """The canonical abbreviation for ``name``, or ``None`` if unknown.

    Tries the exact abbreviation, then the alias table, then a
    case-insensitive match against both.
    """
    if name in APPS:
        return name
    alias = ALIASES.get(name) or ALIASES.get(name.upper())
    if alias is not None:
        return alias
    lowered = name.lower()
    for abbr in APPS:
        if abbr.lower() == lowered:
            return abbr
    return None


def get_app(abbr: str) -> AppSpec:
    canonical = resolve_abbr(abbr)
    if canonical is None:
        raise KeyError(f"unknown application {abbr!r}; known: {', '.join(APPS)}")
    return APPS[canonical]
