"""Profile-free static hot/cold prediction.

The dynamic predictor (paper §IV-A, ``core.profiling``) marks hot every
state enabled while simulating a profiling prefix.  This module predicts
the same thing without running any input, from two static quantities:

* the normalized topological depth of each state (the paper's §III-A
  observation: coldness tracks depth), and
* the symbol-set selectivity along the best enabling path, taken from the
  abstract interpreter's reachability facts (:mod:`repro.semant.absint`).

For a state ``v`` we compute ``log2_weight(v)``: the best-case (maximum
over paths) log2-probability that a uniformly random symbol stream walks
some start-to-``v`` path, i.e. ``max over paths of sum(log2(|S(u)|/256))``
over the proper ancestors ``u`` of ``v``.  A path launches wherever its
start state is enabled — every position for ``ALL_INPUT`` starts, only
position 0 for ``START_OF_DATA`` — so over a ``horizon``-symbol input the
expected number of enabling opportunities is about
``horizon * 2**log2_weight`` (``1 * 2**log2_weight`` when anchored), the
same model the workload registry inverts to size its symbol classes.  A
state is predicted hot when that expectation reaches 1.

The raw prediction is then *layer-closed* exactly like the profiled one:
per-NFA partition layers ``k_U`` via
:func:`~repro.core.profiling.choose_partition_layers` and the closed mask
via :func:`~repro.core.profiling.layer_closure_mask`, so the result has the
same shape as a :class:`~repro.core.profiling.ProfileResult` mask and
``core.partition.partition_network`` consumes it unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.profiling import choose_partition_layers, layer_closure_mask
from ..nfa.analysis import NetworkTopology, Topology, analyze_network
from ..nfa.automaton import Automaton, Network, StartKind
from .absint import SemanticFacts, analyze_network_semantics

__all__ = ["DEFAULT_HORIZON", "StaticPrediction", "log2_path_weights", "predict_hot_cold"]

#: Nominal input length assumed when the caller supplies none: the
#: registry's NOMINAL_INPUT, i.e. the scale the synthetic workloads target.
DEFAULT_HORIZON = 4096

_LOG2_ALPHABET = 8.0  # log2(256)
_GAIN_EPSILON = 1e-12  # minimum strict improvement worth re-propagating


@dataclass
class StaticPrediction:
    """Outcome of the profile-free predictor (mirrors ``ProfileResult``).

    ``hot_mask`` is the raw per-state verdict; ``layers[u]`` the derived
    partition layer ``k_U`` for automaton ``u``; ``predicted_hot_mask`` the
    layer-closed mask actually comparable to (and consumable by) everything
    that takes a profiled prediction.
    """

    hot_mask: np.ndarray  # bool per global state: raw static prediction
    layers: np.ndarray  # int per automaton: k_U
    predicted_hot_mask: np.ndarray  # bool: topo_order <= k_U (layer closure)
    log2_weight: np.ndarray  # float per global state: best-path log2 probability
    horizon: int

    @property
    def n_predicted_hot(self) -> int:
        return int(self.predicted_hot_mask.sum())


def log2_path_weights(automaton: Automaton, topology: Topology) -> np.ndarray:
    """Best-path log2 enabling probability per state (``-inf`` if dead).

    Maximum over start-to-state paths of the sum of ``log2(|S(u)|/256)``
    over proper ancestors, propagated along the SCC condensation sources
    first with an intra-component fixpoint (a cycle only ever lowers a
    path's weight, so the maximum is reached without looping and the
    fixpoint terminates).
    """
    n = automaton.n_states
    weight = np.full(n, -np.inf)
    for state in automaton.states():
        if state.is_start:
            weight[state.sid] = 0.0

    scc = topology.scc_id
    members: List[List[int]] = [[] for _ in range(topology.n_sccs)]
    for sid in range(n):
        members[int(scc[sid])].append(sid)

    for component in range(topology.n_sccs - 1, -1, -1):
        work = [sid for sid in members[component] if weight[sid] > -np.inf]
        while work:
            u = work.pop()
            size = len(automaton.state(u).symbol_set)
            if size == 0:
                continue  # u never activates; hands no probability onward
            candidate = weight[u] + (math.log2(size) - _LOG2_ALPHABET)
            for v in automaton.successors(u):
                if candidate > weight[v] + _GAIN_EPSILON:
                    weight[v] = candidate
                    if int(scc[v]) == component:
                        work.append(v)
    return weight


def _automaton_horizon(automaton: Automaton, horizon: int) -> int:
    """Enabling opportunities for this NFA's paths over a ``horizon`` input.

    An anchored NFA (every start ``START_OF_DATA``) launches exactly once,
    at position 0; any ``ALL_INPUT`` start launches at every position.
    """
    starts = [automaton.state(sid).start for sid in automaton.start_states()]
    if starts and all(kind is StartKind.START_OF_DATA for kind in starts):
        return 1
    return max(1, horizon)


def predict_hot_cold(
    network: Network,
    facts: Optional[SemanticFacts] = None,
    topology: Optional[NetworkTopology] = None,
    *,
    horizon: int = DEFAULT_HORIZON,
) -> StaticPrediction:
    """Predict the hot/cold split of a network with no profiling input."""
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    if topology is None:
        topology = analyze_network(network)
    if facts is None:
        facts = analyze_network_semantics(network, topology)

    n = network.n_states
    weights = np.full(n, -np.inf)
    raw_hot = np.zeros(n, dtype=bool)
    offsets = network.offsets()
    for index, automaton in enumerate(network.automata):
        base = offsets[index]
        local = log2_path_weights(automaton, topology.per_automaton[index])
        weights[base : base + automaton.n_states] = local
        budget = math.log2(_automaton_horizon(automaton, horizon))
        raw_hot[base : base + automaton.n_states] = local + budget >= 0.0

    # A proven-dead state is never predicted hot, whatever its depth.
    raw_hot &= facts.enableable

    layers = choose_partition_layers(network, topology, raw_hot)
    predicted = layer_closure_mask(network, topology, layers)
    return StaticPrediction(
        hot_mask=raw_hot,
        layers=layers,
        predicted_hot_mask=predicted,
        log2_weight=weights,
        horizon=horizon,
    )
