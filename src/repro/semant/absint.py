"""Symbol-set abstract interpretation of homogeneous NFA semantics.

The dynamic pipeline (``core.profiling``) learns which states are cold by
*running* a profiling input; this module learns which states are dead *by
construction* — under every possible input — by abstractly interpreting the
network once, with no input at all.

The abstract domain is the lattice of :class:`~repro.nfa.symbolset.SymbolSet`
under union.  For every state ``v`` we compute ``inflow(v)``: an
over-approximation of the set of symbols whose consumption can immediately
precede ``v`` becoming enabled.  The transfer function follows the paper's
§II-A execution semantics exactly:

* a start state is enabled unconditionally (at position 0 for
  ``START_OF_DATA``, at every position for ``ALL_INPUT``), so its inflow is
  ``⊤`` (the universal set);
* an edge ``u -> v`` hands off ``symbol_set(u)`` — but only if ``u`` itself
  can be enabled (``inflow(u) ≠ ∅``), because ``v`` is enabled exactly when
  ``u`` *activates*, which requires ``u`` enabled and a symbol in ``u``'s
  set; a state whose own symbol-set is empty therefore hands off nothing;
* ``inflow(v)`` is the join (union) over all such hand-offs, plus ``⊤``
  for starts.

Facts are propagated along the SCC condensation from
:mod:`repro.nfa.analysis` — components in topological order (sources first),
with a worklist fixpoint inside each component, since members of a cycle can
enable one another.

Because the domain over-approximates reachability, the verdicts are
one-sided (DESIGN.md §10): ``inflow(v) = ∅`` is a *proof* that no input
string ever enables ``v`` (statically dead); a non-empty inflow only means
"possibly live".  A backward pass computes the dual observability fact:
``can_report(v)`` over-approximates "if ``v`` is enabled, some input yields
an observable report downstream"; its negation proves a state's activity can
never be observed (never-reporting).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..nfa.analysis import NetworkTopology, Topology, analyze_automaton, analyze_network
from ..nfa.automaton import Automaton, Network
from ..nfa.symbolset import SymbolSet

__all__ = [
    "AutomatonFacts",
    "SemanticFacts",
    "analyze_automaton_semantics",
    "analyze_network_semantics",
]


@dataclass
class AutomatonFacts:
    """Semantic facts proven for one automaton.

    ``inflow`` is the per-state abstract value described in the module
    docstring; the boolean arrays are the verdicts derived from it.  All
    "dead" verdicts are proofs (sound over-approximation); all "live"
    verdicts are maybes.
    """

    inflow: List[SymbolSet]  # per-state join of predecessor hand-offs
    enableable: np.ndarray  # bool: some input may enable the state
    activatable: np.ndarray  # bool: enableable and own symbol-set non-empty
    can_report: np.ndarray  # bool: enabling it may lead to an observable report
    graph_reachable: np.ndarray  # bool: reachable ignoring symbol-set emptiness

    @property
    def statically_dead(self) -> np.ndarray:
        """States no input string can ever enable (a proof, not a heuristic)."""
        return ~self.enableable

    @property
    def never_reporting(self) -> np.ndarray:
        """Live states whose activity can never reach a reporting state."""
        return self.enableable & ~self.can_report

    @property
    def semantically_blocked(self) -> np.ndarray:
        """Dead states the pure graph reachability of ``verify_network``
        (SPAP-N004) would call live: every enabling path crosses an
        empty-symbol-set hand-off."""
        return self.statically_dead & self.graph_reachable


def _forward_inflow(automaton: Automaton, topology: Topology) -> List[SymbolSet]:
    """Propagate inflow sets along the condensation, sources first."""
    n = automaton.n_states
    empty = SymbolSet.empty()
    top = SymbolSet.universal()
    inflow: List[SymbolSet] = [empty] * n
    for state in automaton.states():
        if state.is_start:
            inflow[state.sid] = top

    scc = topology.scc_id
    members: List[List[int]] = [[] for _ in range(topology.n_sccs)]
    for sid in range(n):
        members[int(scc[sid])].append(sid)

    # Tarjan assigns SCC ids in pop order: descending id is a topological
    # order of the condensation from sources to sinks (see nfa.analysis).
    for component in range(topology.n_sccs - 1, -1, -1):
        work = [sid for sid in members[component] if inflow[sid]]
        while work:
            u = work.pop()
            handoff = automaton.state(u).symbol_set
            if not handoff:
                continue  # u can never activate: the edge transfers nothing
            for v in automaton.successors(u):
                joined = inflow[v].union(handoff)
                if joined != inflow[v]:
                    inflow[v] = joined
                    # Cross-component successors are finished when their own
                    # (later) component runs; only same-component updates can
                    # feed back into this fixpoint.
                    if int(scc[v]) == component:
                        work.append(v)
    return inflow


def _backward_can_report(automaton: Automaton) -> np.ndarray:
    """States from which an *activation* path reaches a firing reporter."""
    n = automaton.n_states
    can_report = np.zeros(n, dtype=bool)
    queue = deque(
        state.sid
        for state in automaton.states()
        if state.reporting and state.symbol_set
    )
    for sid in queue:
        can_report[sid] = True
    preds = automaton.predecessors_map()
    while queue:
        v = queue.popleft()
        for u in preds[v]:
            # u passes activity on only if it can itself activate.
            if not can_report[u] and automaton.state(u).symbol_set:
                can_report[u] = True
                queue.append(u)
    return can_report


def _graph_reachable(automaton: Automaton) -> np.ndarray:
    """Plain forward reachability from the start set (no symbol facts)."""
    n = automaton.n_states
    seen = np.zeros(n, dtype=bool)
    queue = deque(automaton.start_states())
    for sid in queue:
        seen[sid] = True
    while queue:
        u = queue.popleft()
        for v in automaton.successors(u):
            if not seen[v]:
                seen[v] = True
                queue.append(v)
    return seen


def analyze_automaton_semantics(
    automaton: Automaton, topology: Optional[Topology] = None
) -> AutomatonFacts:
    """Run the forward and backward abstract passes over one automaton."""
    if topology is None:
        topology = analyze_automaton(automaton)
    inflow = _forward_inflow(automaton, topology)
    enableable = np.fromiter(
        (bool(f) for f in inflow), dtype=bool, count=automaton.n_states
    )
    own_nonempty = np.fromiter(
        (bool(s.symbol_set) for s in automaton.states()),
        dtype=bool,
        count=automaton.n_states,
    )
    return AutomatonFacts(
        inflow=inflow,
        enableable=enableable,
        activatable=enableable & own_nonempty,
        can_report=_backward_can_report(automaton),
        graph_reachable=_graph_reachable(automaton),
    )


@dataclass
class SemanticFacts:
    """Per-state facts flattened over a whole network (global id order)."""

    per_automaton: List[AutomatonFacts]
    enableable: np.ndarray
    activatable: np.ndarray
    can_report: np.ndarray
    graph_reachable: np.ndarray

    @property
    def statically_dead(self) -> np.ndarray:
        return ~self.enableable

    @property
    def never_reporting(self) -> np.ndarray:
        return self.enableable & ~self.can_report

    @property
    def semantically_blocked(self) -> np.ndarray:
        return self.statically_dead & self.graph_reachable

    @property
    def n_statically_dead(self) -> int:
        return int(self.statically_dead.sum())

    @property
    def n_never_reporting(self) -> int:
        return int(self.never_reporting.sum())


def analyze_network_semantics(
    network: Network, topology: Optional[NetworkTopology] = None
) -> SemanticFacts:
    """Analyze every automaton; concatenate per-state arrays in global order."""
    if topology is None:
        topology = analyze_network(network)
    per = [
        analyze_automaton_semantics(automaton, topology.per_automaton[index])
        for index, automaton in enumerate(network.automata)
    ]

    def _concat(arrays: List[np.ndarray]) -> np.ndarray:
        if not arrays:
            return np.zeros(0, dtype=bool)
        return np.concatenate(arrays)

    return SemanticFacts(
        per_automaton=per,
        enableable=_concat([f.enableable for f in per]),
        activatable=_concat([f.activatable for f in per]),
        can_report=_concat([f.can_report for f in per]),
        graph_reachable=_concat([f.graph_reachable for f in per]),
    )
