"""Static semantic analysis of compiled networks (`repro.semant`).

Where :mod:`repro.verify` proves *structural* invariants (shapes, ids,
cuts, capacities), this package proves *semantic* facts about what a
network can ever do, with no input at all:

* :func:`analyze_network_semantics` — a symbol-set abstract interpreter
  over the SCC condensation, proving states statically dead (no input
  string can ever enable them) and never-reporting (their activity can
  never be observed);
* :func:`predict_hot_cold` — a profile-free hot/cold predictor from
  normalized depth and symbol-set selectivity, producing the same
  layer-closed mask shape as ``core.profiling`` so the partitioner can
  consume it unchanged;
* :func:`differential_report` — the SPAP-Sxxx rule family: static
  prediction, dynamic profiling, and the simulation ground truth checked
  side by side (soundness violations are hard errors);

plus :func:`semant_app`, which runs the whole stack over one registry
application.  Exposed on the command line as ``python -m repro semant``;
rule catalogue in DESIGN.md appendix B, soundness argument in DESIGN.md
§10.
"""

from typing import TYPE_CHECKING

from .absint import (
    AutomatonFacts,
    SemanticFacts,
    analyze_automaton_semantics,
    analyze_network_semantics,
)
from .differential import agreement_fraction, differential_report
from .predict import DEFAULT_HORIZON, StaticPrediction, log2_path_weights, predict_hot_cold

if TYPE_CHECKING:  # the app driver is imported lazily (see semant_app below)
    from .app import SemantOutcome

__all__ = [
    "DEFAULT_HORIZON",
    "AutomatonFacts",
    "SemanticFacts",
    "StaticPrediction",
    "agreement_fraction",
    "analyze_automaton_semantics",
    "analyze_network_semantics",
    "differential_report",
    "log2_path_weights",
    "predict_hot_cold",
    "semant_app",
]


def semant_app(*args: object, **kwargs: object) -> "SemantOutcome":
    """Lazy proxy for :func:`repro.semant.app.semant_app`.

    Imported on first call: the app driver pulls in the experiments
    pipeline, which itself imports this package for its ``semant`` stage.
    """
    from .app import semant_app as _semant_app

    return _semant_app(*args, **kwargs)  # type: ignore[arg-type]
