"""Differential checking of static analysis vs profiling vs ground truth.

Runs three views of the same network side by side —

* the abstract interpreter's proofs (:mod:`repro.semant.absint`),
* the dynamic, layer-closed profiled prediction (``core.profiling``), and
* the simulation ground truth on the test input —

and reports their disagreements through :mod:`repro.verify.diagnostics` as
the ``SPAP-Sxxx`` rule family:

* **soundness** (hard errors, fail tier-1): a truth-enabled state proven
  statically dead (S001) or an observed report from a state proven
  never-reporting (S002).  The static verdicts are one-sided proofs; a
  counterexample from the simulator means the analyzer (or the engine)
  is wrong.
* **waste** (warnings): a provably-dead state kept hot by the profiler
  (S003), a dead-but-graph-reachable state SPAP-N004 cannot see (S004),
  and a never-reporting state predicted hot (S005).
* **drift** (info): an aggregate count of static/profiled prediction
  disagreement (S006).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..nfa.automaton import Network
from ..verify.diagnostics import VerificationReport
from .absint import SemanticFacts

__all__ = ["agreement_fraction", "differential_report"]


def _locations(network: Network) -> List[str]:
    """Human-readable per-global-state locations, computed once."""
    out: List[str] = []
    name = network.name or "network"
    for index, automaton in enumerate(network.automata):
        tag = f" ({automaton.name})" if automaton.name else ""
        for sid in range(automaton.n_states):
            out.append(f"{name}/automaton {index}{tag}/state {sid}")
    return out


def differential_report(
    network: Network,
    facts: SemanticFacts,
    *,
    profiled_hot: np.ndarray,
    static_hot: np.ndarray,
    truth_hot: np.ndarray,
    truth_report_states: Optional[Iterable[int]] = None,
    subject: str = "",
) -> VerificationReport:
    """Compare the three per-state views; emit SPAP-Sxxx findings.

    ``profiled_hot`` and ``static_hot`` are the *layer-closed* predicted
    masks (the shapes the partitioner consumes); ``truth_hot`` is the
    ground-truth enabled mask from the test-input simulation.
    ``truth_report_states`` optionally lists global state ids that actually
    reported, enabling the S002 observability check.
    """
    n = network.n_states
    report = VerificationReport(subject=subject or f"{network.name or 'network'} [semant]")
    for label, mask in (
        ("profiled", profiled_hot),
        ("static", static_hot),
        ("truth", truth_hot),
    ):
        if np.asarray(mask).shape != (n,):
            raise ValueError(
                f"{label} mask has shape {np.asarray(mask).shape}, expected ({n},)"
            )
    profiled = np.asarray(profiled_hot, dtype=bool)
    static = np.asarray(static_hot, dtype=bool)
    truth = np.asarray(truth_hot, dtype=bool)
    where = _locations(network)

    dead = facts.statically_dead
    never = facts.never_reporting

    # -- soundness: a proof contradicted by the simulator is a hard error ----
    for gid in np.flatnonzero(truth & dead):
        report.emit(
            "SPAP-S001",
            "state was enabled by the truth simulation but the abstract "
            "interpreter proved it dead",
            location=where[gid],
        )
    if truth_report_states is not None:
        reported = sorted({int(gid) for gid in truth_report_states})
        for gid in reported:
            if not 0 <= gid < n:
                continue
            if dead[gid] or never[gid]:
                verdict = "statically dead" if dead[gid] else "never-reporting"
                report.emit(
                    "SPAP-S002",
                    f"truth simulation reported from a state proven {verdict}",
                    location=where[gid],
                )

    # -- waste: sound but pays for STEs that can do no observable work -------
    for gid in np.flatnonzero(profiled & dead):
        report.emit(
            "SPAP-S003",
            "profiled layer closure keeps a provably-dead state hot",
            location=where[gid],
        )
    for gid in np.flatnonzero(facts.semantically_blocked):
        report.emit(
            "SPAP-S004",
            "state is graph-reachable but every enabling path crosses an "
            "empty-symbol-set hand-off",
            location=where[gid],
        )
    for gid in np.flatnonzero(profiled & never):
        report.emit(
            "SPAP-S005",
            "never-reporting state occupies a hot STE",
            location=where[gid],
        )

    # -- drift: one aggregate line, not one per state ------------------------
    disagree = int(np.sum(profiled != static))
    if disagree:
        static_only = int(np.sum(static & ~profiled))
        profiled_only = int(np.sum(profiled & ~static))
        report.emit(
            "SPAP-S006",
            f"static and profiled predictions disagree on {disagree}/{n} "
            f"states ({static_only} static-only hot, {profiled_only} "
            "profiled-only hot)",
            location=network.name or "network",
        )
    return report


def agreement_fraction(left: np.ndarray, right: np.ndarray) -> float:
    """Fraction of states on which two boolean masks agree (1.0 if empty)."""
    a = np.asarray(left, dtype=bool)
    b = np.asarray(right, dtype=bool)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 1.0
    return float(np.mean(a == b))
