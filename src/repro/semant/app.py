"""End-to-end semantic analysis of one registry application.

Drives the cached experiment pipeline exactly as ``verify_app`` does, but
through the *semantic* stack: abstract interpretation of the built network,
profile-free hot/cold prediction, and the differential SPAP-Sxxx check
against the profiling run and the simulation ground truth.  Used by the
``python -m repro semant`` CLI and the CI soundness gate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Union

from ..core.metrics import prediction_quality
from ..experiments.config import ExperimentConfig, default_config
from ..experiments.pipeline import AppRun
from ..verify.diagnostics import VerificationReport
from ..workloads.registry import get_app
from .differential import agreement_fraction, differential_report

__all__ = ["SemantSummary", "SemantOutcome", "semant_app"]


@dataclass(frozen=True)
class SemantSummary:
    """The aggregate numbers of one semantic-analysis run."""

    app: str
    n_states: int
    n_statically_dead: int
    n_never_reporting: int
    n_semantically_blocked: int
    truth_hot_fraction: float
    static_hot_fraction: float
    profiled_hot_fraction: float
    static_accuracy: float
    static_precision: float
    static_recall: float
    profiled_accuracy: float
    prediction_agreement: float  # static vs profiled, fraction of states
    horizon: int

    def to_json(self) -> Dict[str, Union[str, int, float]]:
        return {
            "app": self.app,
            "n_states": self.n_states,
            "n_statically_dead": self.n_statically_dead,
            "n_never_reporting": self.n_never_reporting,
            "n_semantically_blocked": self.n_semantically_blocked,
            "truth_hot_fraction": self.truth_hot_fraction,
            "static_hot_fraction": self.static_hot_fraction,
            "profiled_hot_fraction": self.profiled_hot_fraction,
            "static_accuracy": self.static_accuracy,
            "static_precision": self.static_precision,
            "static_recall": self.static_recall,
            "profiled_accuracy": self.profiled_accuracy,
            "prediction_agreement": self.prediction_agreement,
            "horizon": self.horizon,
        }

    def render(self) -> str:
        return (
            f"{self.app}: {self.n_states} states; "
            f"{self.n_statically_dead} proven dead, "
            f"{self.n_never_reporting} never-reporting; "
            f"hot {100 * self.truth_hot_fraction:.1f}% truth / "
            f"{100 * self.static_hot_fraction:.1f}% static / "
            f"{100 * self.profiled_hot_fraction:.1f}% profiled; "
            f"static acc {self.static_accuracy:.3f} "
            f"(profiled {self.profiled_accuracy:.3f}), "
            f"agreement {self.prediction_agreement:.3f}"
        )


@dataclass
class SemantOutcome:
    """Summary plus the full differential report for one application."""

    summary: SemantSummary
    report: VerificationReport

    @property
    def ok(self) -> bool:
        """True when the soundness rules (ERROR severity) are all clean."""
        return self.report.ok

    def to_json(self) -> Dict[str, object]:
        return {"summary": self.summary.to_json(), "report": self.report.to_json()}


def semant_app(
    abbr: str,
    config: Optional[ExperimentConfig] = None,
    *,
    fraction: Optional[float] = None,
    horizon: Optional[int] = None,
) -> SemantOutcome:
    """Semantically analyze one application end-to-end.

    Builds the scaled network, abstractly interprets it, predicts hot/cold
    statically (over ``horizon`` symbols, default the configured input
    length), profiles it at ``fraction`` (default: the configuration's
    standard 1%), simulates the ground truth, and returns the differential
    report plus a summary.  Never raises on findings.
    """
    cfg = config or default_config()
    if cfg.verify:
        # Like verify_app: the analysis itself must not fail fast mid-build.
        cfg = replace(cfg, verify=False)
    spec = get_app(abbr)  # raises KeyError for unknown apps (CLI maps to exit 2)
    run = AppRun(spec, cfg)
    use_fraction = cfg.profile_fractions[-1] if fraction is None else fraction

    facts = run.semantics
    static = run.static_prediction(horizon)
    profiled = run.predicted_hot_mask(use_fraction)
    truth = run.truth
    truth_mask = truth.hot_mask()

    report = differential_report(
        run.network,
        facts,
        profiled_hot=profiled,
        static_hot=static.predicted_hot_mask,
        truth_hot=truth_mask,
        truth_report_states=truth.reports[:, 1] if truth.reports.size else (),
        subject=f"{abbr} [semant]",
    )

    n = run.network.n_states
    static_quality = prediction_quality(static.predicted_hot_mask, truth_mask)
    profiled_quality = prediction_quality(profiled, truth_mask)
    summary = SemantSummary(
        app=abbr,
        n_states=n,
        n_statically_dead=facts.n_statically_dead,
        n_never_reporting=facts.n_never_reporting,
        n_semantically_blocked=int(facts.semantically_blocked.sum()),
        truth_hot_fraction=truth.hot_fraction(),
        static_hot_fraction=(static.n_predicted_hot / n) if n else 0.0,
        profiled_hot_fraction=(float(profiled.sum()) / n) if n else 0.0,
        static_accuracy=static_quality.accuracy,
        static_precision=static_quality.precision,
        static_recall=static_quality.recall,
        profiled_accuracy=profiled_quality.accuracy,
        prediction_agreement=agreement_fraction(static.predicted_hot_mask, profiled),
        horizon=static.horizon,
    )
    return SemantOutcome(summary=summary, report=report)
