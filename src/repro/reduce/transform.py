"""Equivalence-preserving network reduction (the SPAP-R transform).

``reduce_network`` fuses three rule families into one pass over a
:class:`~repro.nfa.automaton.Network`, emitting a smaller network together
with a per-merge :class:`MergeProof` artifact and a state-mapping table so
every downstream consumer (witness masks, Table I truth comparisons,
report streams) can be lifted back to original global state ids:

* **dead-strip** — drop states semant's forward abstract interpretation
  proves unenableable (``SemanticFacts.statically_dead``).  Exact for
  reports and witnesses: a state that is never enabled contributes no
  report and its witness bit is identically zero.
* **never-reporting-strip** (``aggressive`` mode only) — drop live states
  whose activity provably never reaches a reporter
  (``SemanticFacts.never_reporting``).  Report-exact but witness-lossy
  (stripped states may genuinely be enabled), hence gated behind the
  lossy mode.
* **backward-bisim merge** — quotient each automaton by
  :func:`~repro.reduce.partition.refine_backward`.  Exact for both
  reports and witnesses: all members of a class are enabled at identical
  positions, so the expansion lift reconstructs the parent run bit for
  bit.
* **forward-bisim merge** (``aggressive`` mode only) — quotient by
  :func:`~repro.reduce.partition.refine_forward` with every reporting
  state pinned, merging only non-reporting states with identical
  observable futures.  Report-exact; the lifted witness over-approximates
  (a merged bit ORs its members).

Strip soundness depends on a closure property of semant's backward pass:
``can_report`` propagates only through states whose own symbol-set is
non-empty, so every in-edge into the kept set from a stripped state
originates at a state that can never *activate* — dropping the edge (via
``Automaton.induced``) changes nothing.

Automata left empty by stripping are removed from the reduced network
(``dropped_automata``); their states map to ``-1`` like any stripped
state.  ``reduce_element_network`` extends the transform to
:class:`~repro.nfa.elements.ElementNetwork`: STEs referenced by counter or
gate signals, and STEs enabled by element outputs, are *pinned* — kept
and never merged — because their individual activations cross the gate
boundary (DESIGN.md §15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import bitops
from ..nfa.automaton import Automaton, Network, StartKind
from ..nfa.elements import Counter, ElementNetwork, Gate, Signal
from ..semant.absint import SemanticFacts, analyze_network_semantics
from ..sim.result import SimResult, reports_to_array
from .partition import Partition, refine_backward, refine_forward

__all__ = [
    "MODES",
    "RULE_DEAD",
    "RULE_NEVER",
    "RULE_BACKWARD",
    "RULE_FORWARD",
    "MergeProof",
    "ReductionResult",
    "reduce_network",
    "element_pinned_gids",
    "reduce_element_network",
]

#: Reduction modes: ``exact`` preserves reports AND witness masks bit for
#: bit; ``aggressive`` preserves reports only (never-reporting strips and
#: forward merges lose per-state enabledness).
MODES: Tuple[str, ...] = ("exact", "aggressive")

RULE_DEAD = "dead-strip"
RULE_NEVER = "never-reporting-strip"
RULE_BACKWARD = "backward-bisim"
RULE_FORWARD = "forward-bisim"


@dataclass(frozen=True)
class MergeProof:
    """Why one group of parent states collapsed (or vanished).

    ``survivor`` is the reduced global id the group maps to, or ``-1`` for
    strip rules.  ``parent_states`` are parent global ids.
    """

    rule: str
    automaton: int
    parent_states: Tuple[int, ...]
    survivor: int
    reason: str

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "automaton": self.automaton,
            "parent_states": list(self.parent_states),
            "survivor": self.survivor,
            "reason": self.reason,
        }


@dataclass
class ReductionResult:
    """A reduced network plus everything needed to lift results back.

    ``state_map`` maps parent global ids to reduced global ids (``-1`` for
    stripped states); ``members`` is the inverse cover (reduced global id
    -> parent global ids, ascending).
    """

    mode: str
    parent: Network
    network: Network
    state_map: np.ndarray
    members: Tuple[Tuple[int, ...], ...]
    proofs: Tuple[MergeProof, ...]
    n_dead_stripped: int
    n_never_stripped: int
    n_backward_merged: int
    n_forward_merged: int
    dropped_automata: Tuple[int, ...]

    # -- accounting ----------------------------------------------------------

    @property
    def parent_n_states(self) -> int:
        return int(self.state_map.size)

    @property
    def n_states(self) -> int:
        return self.network.n_states

    @property
    def saved_states(self) -> int:
        return self.parent_n_states - self.n_states

    @property
    def saving_fraction(self) -> float:
        if self.parent_n_states == 0:
            return 0.0
        return self.saved_states / float(self.parent_n_states)

    @property
    def witness_exact(self) -> bool:
        """Whether lifted witness masks are bit-identical to the parent's."""
        return self.mode == "exact"

    def merges_by_rule(self) -> Dict[str, int]:
        """States eliminated per rule (the schema-v5 ``merges`` section)."""
        return {
            RULE_DEAD: self.n_dead_stripped,
            RULE_NEVER: self.n_never_stripped,
            RULE_BACKWARD: self.n_backward_merged,
            RULE_FORWARD: self.n_forward_merged,
        }

    def to_json(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "states_before": self.parent_n_states,
            "states_after": self.n_states,
            "saved_states": self.saved_states,
            "saving": self.saving_fraction,
            "witness_exact": self.witness_exact,
            "merges": self.merges_by_rule(),
            "dropped_automata": list(self.dropped_automata),
            "proofs": [proof.to_json() for proof in self.proofs],
        }

    # -- lifting -------------------------------------------------------------

    def lift_reports(self, reports: np.ndarray) -> np.ndarray:
        """Expand reduced-id reports to parent-id reports.

        Exact in both modes: reporting states are only ever merged by the
        backward rule, whose members fire at identical positions with
        identical report attributes, so one reduced report expands to one
        report per member.
        """
        arr = reports_to_array(reports)
        if arr.size == 0:
            return arr
        lifted: List[Tuple[int, int]] = []
        for position, reduced_gid in arr.tolist():
            for parent_gid in self.members[reduced_gid]:
                lifted.append((position, parent_gid))
        return reports_to_array(lifted)

    def lift_witness(self, ever_enabled: np.ndarray) -> np.ndarray:
        """Lift a packed reduced witness bitset to parent global ids.

        Bit-exact in ``exact`` mode (each member shares its class's
        enabledness; stripped states were provably never enabled).  In
        ``aggressive`` mode the result over-approximates forward-merged
        members and zeroes never-reporting strips.
        """
        parent_n = self.parent_n_states
        reduced_bits = bitops.to_bool(ever_enabled, self.n_states)
        parent_bits = np.zeros(parent_n, dtype=bool)
        kept = self.state_map >= 0
        parent_bits[kept] = reduced_bits[self.state_map[kept]]
        return bitops.from_bool(parent_bits)

    def lift_result(self, result: SimResult) -> SimResult:
        """Lift a reduced-network :class:`SimResult` into parent id space."""
        return SimResult(
            n_states=self.parent_n_states,
            n_symbols=result.n_symbols,
            cycles=result.cycles,
            reports=self.lift_reports(result.reports),
            ever_enabled=self.lift_witness(result.ever_enabled),
        )


def _observable_cone(automaton: Automaton, seeds: Iterable[int]) -> np.ndarray:
    """Backward closure of ``seeds`` through activatable states.

    Mirrors semant's ``_backward_can_report``: activity propagates to a
    predecessor only if that predecessor's own symbol-set is non-empty
    (otherwise it can never activate and so never hands activity on).
    Seeds themselves are observable unconditionally.
    """
    observable = np.zeros(automaton.n_states, dtype=bool)
    queue: List[int] = []
    for sid in seeds:
        if not observable[sid]:
            observable[sid] = True
            queue.append(sid)
    preds = automaton.predecessors_map()
    while queue:
        v = queue.pop()
        for u in preds[v]:
            if not observable[u] and automaton.state(u).symbol_set:
                observable[u] = True
                queue.append(u)
    return observable


def _quotient(automaton: Automaton, partition: Partition) -> Automaton:
    """Collapse each class to its minimum-id representative.

    The representative donates every attribute; this is sound because a
    class's members share the full attribute key by construction (see
    ``partition._attribute_key``).  Class ids are canonical (numbered by
    first member), so state ``c`` of the quotient IS class ``c``.
    """
    representatives = partition.representatives()
    out = Automaton(automaton.name)
    for rep in representatives:
        s = automaton.state(rep)
        out.add_state(
            s.symbol_set,
            start=s.start,
            reporting=s.reporting,
            report_code=s.report_code,
            eod=s.eod,
            label=s.label,
        )
    for src, dst in automaton.edges():
        out.add_edge(partition.class_of[src], partition.class_of[dst])
    return out


def reduce_network(
    network: Network,
    facts: Optional[SemanticFacts] = None,
    *,
    mode: str = "exact",
    pinned: Optional[Iterable[int]] = None,
) -> ReductionResult:
    """Reduce a network; see the module docstring for the rule families.

    ``facts`` defaults to a fresh :func:`analyze_network_semantics` pass.
    ``pinned`` global ids are kept verbatim and never merged (used for
    gate-boundary STEs; empty on the plain pipeline path).
    """
    if mode not in MODES:
        raise ValueError(f"unknown reduction mode {mode!r} (choose from {MODES})")
    if facts is None:
        facts = analyze_network_semantics(network)
    offsets = network.offsets()
    pinned_gids: Set[int] = set(pinned or ())
    for gid in pinned_gids:
        if not 0 <= gid < network.n_states:
            raise IndexError(f"pinned global id {gid} outside network")

    state_map = np.full(network.n_states, -1, dtype=np.int64)
    reduced_automata: List[Automaton] = []
    members: List[Tuple[int, ...]] = []
    proofs: List[MergeProof] = []
    dropped: List[int] = []
    n_dead = n_never = n_backward = n_forward = 0
    reduced_base = 0

    for a_idx, automaton in enumerate(network.automata):
        n = automaton.n_states
        base = offsets[a_idx]
        auto_facts = facts.per_automaton[a_idx]
        pinned_local = sorted(
            gid - base for gid in pinned_gids if base <= gid < base + n
        )

        # -- strip passes ---------------------------------------------------
        keep = auto_facts.enableable.copy()
        for sid in pinned_local:
            keep[sid] = True
        dead = [sid for sid in range(n) if not keep[sid]]
        never: List[int] = []
        if mode == "aggressive":
            observable = auto_facts.can_report.copy()
            if pinned_local:
                observable |= _observable_cone(automaton, pinned_local)
            never = [sid for sid in range(n) if keep[sid] and not observable[sid]]
            for sid in never:
                keep[sid] = False
        keep_ids = [sid for sid in range(n) if keep[sid]]
        # Corner: a pinned-but-dead STE can survive alone; re-add the start
        # states so the reduced automaton stays structurally valid (starts
        # are always enableable, so this only fires in that pinned corner).
        if keep_ids and not any(automaton.state(sid).is_start for sid in keep_ids):
            for sid in automaton.start_states():
                keep[sid] = True
                if sid in dead:
                    dead.remove(sid)
                if sid in never:
                    never.remove(sid)
            keep_ids = [sid for sid in range(n) if keep[sid]]
        n_dead += len(dead)
        n_never += len(never)
        if dead:
            proofs.append(
                MergeProof(
                    rule=RULE_DEAD,
                    automaton=a_idx,
                    parent_states=tuple(base + sid for sid in dead),
                    survivor=-1,
                    reason="inflow = ∅: no input string ever enables these states",
                )
            )
        if never:
            proofs.append(
                MergeProof(
                    rule=RULE_NEVER,
                    automaton=a_idx,
                    parent_states=tuple(base + sid for sid in never),
                    survivor=-1,
                    reason="no activation path reaches a reporter or pinned STE",
                )
            )
        if not keep_ids:
            dropped.append(a_idx)
            continue

        induced, old_to_new = automaton.induced(keep_ids)

        # -- backward-bisimulation quotient (both modes) --------------------
        pinned_induced = {old_to_new[sid] for sid in pinned_local if keep[sid]}
        bpart = refine_backward(induced, pinned_induced)
        n_backward += bpart.n_merged
        merged = _quotient(induced, bpart)

        # -- forward-bisimulation quotient (aggressive only) ----------------
        if mode == "aggressive":
            forced = {
                cid
                for cid in range(merged.n_states)
                if merged.state(cid).reporting
            }
            forced |= {bpart.class_of[sid] for sid in pinned_induced}
            fpart = refine_forward(merged, forced)
            n_forward += fpart.n_merged
            final_automaton = _quotient(merged, fpart)
            f_class_of: Sequence[int] = fpart.class_of
        else:
            final_automaton = merged
            f_class_of = range(merged.n_states)

        final_automaton.validate()

        # -- mapping + merge proofs -----------------------------------------
        local_members: List[List[int]] = [[] for _ in range(final_automaton.n_states)]
        for sid in keep_ids:
            final_local = f_class_of[bpart.class_of[old_to_new[sid]]]
            state_map[base + sid] = reduced_base + final_local
            local_members[final_local].append(base + sid)
        for group in bpart.members():
            if len(group) > 1:
                parent_ids = tuple(base + keep_ids[new_sid] for new_sid in group)
                proofs.append(
                    MergeProof(
                        rule=RULE_BACKWARD,
                        automaton=a_idx,
                        parent_states=parent_ids,
                        survivor=int(state_map[parent_ids[0]]),
                        reason="enabled at identical positions on every input "
                        "(backward bisimulation fixpoint)",
                    )
                )
        if mode == "aggressive":
            for fgroup in fpart.members():
                if len(fgroup) > 1:
                    survivor = reduced_base + f_class_of[fgroup[0]]
                    parent_ids = tuple(
                        gid
                        for cid in fgroup
                        for gid in local_members[f_class_of[cid]]
                    )
                    proofs.append(
                        MergeProof(
                            rule=RULE_FORWARD,
                            automaton=a_idx,
                            parent_states=tuple(sorted(set(parent_ids))),
                            survivor=survivor,
                            reason="identical observable futures, none reporting "
                            "(forward bisimulation fixpoint)",
                        )
                    )
        members.extend(tuple(group) for group in local_members)
        reduced_automata.append(final_automaton)
        reduced_base += final_automaton.n_states

    reduced = Network(
        name=f"{network.name}:reduced[{mode}]" if network.name else f"reduced[{mode}]",
        automata=reduced_automata,
    )
    return ReductionResult(
        mode=mode,
        parent=network,
        network=reduced,
        state_map=state_map,
        members=tuple(members),
        proofs=tuple(proofs),
        n_dead_stripped=n_dead,
        n_never_stripped=n_never,
        n_backward_merged=n_backward,
        n_forward_merged=n_forward,
        dropped_automata=tuple(dropped),
    )


def element_pinned_gids(element_network: ElementNetwork) -> FrozenSet[int]:
    """STE global ids that cross a counter/gate boundary.

    Covers both directions: STEs whose *activation* feeds an element input
    signal, and STEs an element output *enables* for the next cycle.  Both
    kinds have externally-visible or externally-driven behavior the pure
    NFA analysis cannot see, so the reducer must keep them verbatim.
    """
    pins: Set[int] = set()
    for element in element_network.elements:
        signals: List[Signal]
        if isinstance(element, Gate):
            signals = list(element.inputs)
        elif isinstance(element, Counter):
            signals = list(element.count_inputs) + list(element.reset_inputs)
        else:  # pragma: no cover - ElementNetwork validates construction
            raise TypeError(f"unknown element type {type(element).__name__}")
        for kind, index in signals:
            if kind == "ste":
                pins.add(index)
    for targets in element_network.enables.values():
        pins.update(targets)
    return frozenset(pins)


def reduce_element_network(
    element_network: ElementNetwork, *, mode: str = "exact"
) -> Tuple[ElementNetwork, ReductionResult]:
    """Reduce the STE substrate of an :class:`ElementNetwork`.

    Gate-boundary STEs (see :func:`element_pinned_gids`) are pinned.
    Element-*enabled* STEs additionally gain an enable source the NFA-only
    abstract interpretation cannot model, so the semantic facts are
    computed on a shadow network where those targets are promoted to
    ``ALL_INPUT`` starts — a sound over-approximation of "may be enabled
    at any position by an element".  Elements and enable lists are
    rewritten through the state map (pinned STEs are always kept, so every
    referenced id survives).
    """
    network = element_network.network
    pins = element_pinned_gids(element_network)

    enable_targets: Set[int] = set()
    for targets in element_network.enables.values():
        enable_targets.update(targets)
    shadow = Network(name=network.name, automata=[a.copy() for a in network.automata])
    for gid in enable_targets:
        a_idx, sid = shadow.locate(gid)
        state = shadow.automata[a_idx].state(sid)
        if state.start is StartKind.NONE:
            state.start = StartKind.ALL_INPUT
    facts = analyze_network_semantics(shadow)

    reduction = reduce_network(network, facts, mode=mode, pinned=pins)
    mapping = reduction.state_map

    def _remap_signal(signal: Signal) -> Signal:
        kind, index = signal
        if kind != "ste":
            return signal
        new_index = int(mapping[index])
        assert new_index >= 0, f"pinned STE {index} was stripped"
        return (kind, new_index)

    elements: List[object] = []
    for element in element_network.elements:
        if isinstance(element, Gate):
            elements.append(
                Gate(
                    kind=element.kind,
                    inputs=[_remap_signal(s) for s in element.inputs],
                    reporting=element.reporting,
                    report_code=element.report_code,
                )
            )
        else:
            assert isinstance(element, Counter)
            elements.append(
                Counter(
                    target=element.target,
                    mode=element.mode,
                    count_inputs=[_remap_signal(s) for s in element.count_inputs],
                    reset_inputs=[_remap_signal(s) for s in element.reset_inputs],
                    reporting=element.reporting,
                    report_code=element.report_code,
                )
            )
    enables = {
        element_id: [int(mapping[gid]) for gid in targets]
        for element_id, targets in element_network.enables.items()
    }
    reduced = ElementNetwork(
        network=reduction.network, elements=elements, enables=enables
    )
    return reduced, reduction
