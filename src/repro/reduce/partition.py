"""Bisimulation partition refinement over homogeneous NFAs.

The reducer's merge rules are the two classical bisimulation quotients,
specialized to the AP's homogeneous execution semantics (symbol-set on the
state, edge ``u -> v`` meaning "``u`` activated => ``v`` enabled next
cycle"):

* **Backward bisimulation** (:func:`refine_backward`): two states are
  equivalent iff they are *enabled at exactly the same input positions* on
  every input.  Enabledness at position ``t+1`` is determined by the start
  kind plus the set of predecessors activated at ``t``; activation of a
  predecessor depends only on its enabledness and its symbol-set — both
  class functions once the initial partition keys on the full attribute
  tuple.  The per-round signature therefore reduces to the *set of
  predecessor classes*, with ``ALL_INPUT`` starts held constant (they are
  enabled at every position regardless of predecessors).  Merging a
  backward class changes neither reports nor witness (ever-enabled) masks:
  the quotient state is enabled exactly when every member would have been.

* **Forward bisimulation** (:func:`refine_forward`): the time-reversed
  dual — equivalent states have the same *observable future*, signature =
  set of successor classes.  Merging a forward class preserves the report
  stream but NOT per-member enabledness (the quotient state is enabled
  when *any* member would have been), so the transform layer only applies
  it to non-reporting states in the lossy ``aggressive`` mode.

Both directions iterate :func:`refinement_round` to a fixpoint.  Classes
only ever split, so the loop terminates in at most ``n_states`` rounds;
the output partition is the *coarsest* stable refinement of the initial
attribute partition, which makes the quotient idempotent (reducing a
reduced automaton finds only singleton classes).

``pinned`` states (e.g. STEs referenced by :class:`~repro.nfa.elements`
counter/gate signals, whose individual activations are externally
observable) are forced into singleton classes and thus never merged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..nfa.automaton import Automaton, StartKind, State

__all__ = [
    "Partition",
    "initial_partition",
    "refinement_round",
    "refine_backward",
    "refine_forward",
]

#: One refinement signature: (current class, frozen set of neighbor classes).
#: ``None`` neighbors mark states whose enabledness ignores the neighborhood
#: (``ALL_INPUT`` starts in the backward direction).
_Signature = Tuple[int, Optional[FrozenSet[int]]]


@dataclass(frozen=True)
class Partition:
    """A partition of one automaton's states into equivalence classes.

    Class ids are dense and canonical: classes are numbered by their first
    member in state-id order, so the representative of class ``c`` is its
    minimum state id and ``class_of`` is identical for equal partitions.
    """

    class_of: Tuple[int, ...]
    n_classes: int

    @property
    def n_states(self) -> int:
        return len(self.class_of)

    @property
    def n_merged(self) -> int:
        """States eliminated if every class collapses to one survivor."""
        return self.n_states - self.n_classes

    def members(self) -> List[List[int]]:
        """Class id -> sorted member state ids."""
        out: List[List[int]] = [[] for _ in range(self.n_classes)]
        for sid, cid in enumerate(self.class_of):
            out[cid].append(sid)
        return out

    def representatives(self) -> List[int]:
        """Class id -> minimum member state id (the canonical survivor)."""
        reps: List[int] = [-1] * self.n_classes
        for sid, cid in enumerate(self.class_of):
            if reps[cid] < 0:
                reps[cid] = sid
        return reps


def _canonical(class_of: Sequence[int]) -> Partition:
    """Renumber class ids by first occurrence in state-id order."""
    remap: Dict[int, int] = {}
    out: List[int] = []
    for cid in class_of:
        out.append(remap.setdefault(cid, len(remap)))
    return Partition(class_of=tuple(out), n_classes=len(remap))


def _attribute_key(state: State) -> Tuple[object, ...]:
    """The full behavioral attribute tuple of one STE.

    Everything the execution semantics reads off a state is here: symbol
    mask (activation condition), start kind (base enabledness), reporting /
    report code / eod (observable output).  Two states may only ever share a
    class if they agree on all of it, in both refinement directions.
    """
    return (
        state.symbol_set.mask,
        state.start.value,
        state.reporting,
        state.report_code,
        state.eod,
    )


def initial_partition(
    automaton: Automaton, pinned: Optional[Iterable[int]] = None
) -> Partition:
    """Partition states by their attribute tuple; pinned states are singletons."""
    pinned_set: Set[int] = set(pinned or ())
    keys: Dict[Tuple[object, ...], int] = {}
    class_of: List[int] = []
    for state in automaton.states():
        key = _attribute_key(state)
        if state.sid in pinned_set:
            key = key + ("pinned", state.sid)
        class_of.append(keys.setdefault(key, len(keys)))
    return _canonical(class_of)


def refinement_round(
    automaton: Automaton,
    class_of: Sequence[int],
    *,
    backward: bool = True,
) -> Partition:
    """One signature-splitting round from an arbitrary starting partition.

    Exposed separately so property tests can check the fixpoint law: a
    round applied to :func:`refine_backward`'s (or forward's) output must
    leave the number of classes unchanged.
    """
    if len(class_of) != automaton.n_states:
        raise ValueError(
            f"partition covers {len(class_of)} states, "
            f"automaton has {automaton.n_states}"
        )
    if backward:
        neighbors: List[Sequence[int]] = [
            tuple(p) for p in automaton.predecessors_map()
        ]
        # An ALL_INPUT start is enabled at every position no matter what its
        # predecessors do, so its signature must not split on them.
        ignore = [s.start is StartKind.ALL_INPUT for s in automaton.states()]
    else:
        neighbors = [automaton.successors(sid) for sid in range(automaton.n_states)]
        ignore = [False] * automaton.n_states
    signatures: Dict[_Signature, int] = {}
    refined: List[int] = []
    for sid in range(automaton.n_states):
        if ignore[sid]:
            signature: _Signature = (class_of[sid], None)
        else:
            signature = (
                class_of[sid],
                frozenset(class_of[u] for u in neighbors[sid]),
            )
        refined.append(signatures.setdefault(signature, len(signatures)))
    return _canonical(refined)


def _refine(
    automaton: Automaton,
    pinned: Optional[Iterable[int]],
    *,
    backward: bool,
) -> Partition:
    partition = initial_partition(automaton, pinned)
    while True:
        refined = refinement_round(automaton, partition.class_of, backward=backward)
        if refined.n_classes == partition.n_classes:
            return partition
        partition = refined


def refine_backward(
    automaton: Automaton, pinned: Optional[Iterable[int]] = None
) -> Partition:
    """Coarsest backward-bisimulation partition (enabled-at-same-positions).

    Merging each class is exact for reports *and* witness masks: by
    induction on the input position, every member of a class is enabled at
    exactly the same positions (base case: identical start kinds; step:
    enabledness at ``t+1`` is a function of the predecessor *class* set,
    because activation of a predecessor at ``t`` depends only on its class's
    shared enabledness and shared symbol mask).
    """
    return _refine(automaton, pinned, backward=True)


def refine_forward(
    automaton: Automaton, pinned: Optional[Iterable[int]] = None
) -> Partition:
    """Coarsest forward-bisimulation partition (same observable future).

    Only sound for the *report stream* when merged states are non-reporting
    (the transform enforces this by pinning reporters); per-state
    enabledness is not preserved, so exact-mode reductions never use it.
    """
    return _refine(automaton, pinned, backward=False)
