"""Equivalence-preserving automata reduction (the SPAP-R analyzer).

The fourth static analyzer beside ``repro.verify`` / ``repro.semant`` /
``repro.cost``: a partition-refinement engine (forward and backward
bisimulation over the homogeneous NFA semantics) fused with semant's
dead / never-reporting proofs into a :func:`reduce_network` transform
that emits a provably report-equivalent smaller network, per-merge proof
artifacts, and a state-mapping table for lifting reports and witness
masks back to original global state ids.  DESIGN.md §15 documents the
algorithm and the soundness argument; findings surface through
``verify.diagnostics`` as the SPAP-R rule family.
"""

from .app import ReduceOutcome, ReduceSummary, analyze_run_reduce, reduce_app
from .partition import (
    Partition,
    initial_partition,
    refine_backward,
    refine_forward,
    refinement_round,
)
from .transform import (
    MODES,
    RULE_BACKWARD,
    RULE_DEAD,
    RULE_FORWARD,
    RULE_NEVER,
    MergeProof,
    ReductionResult,
    element_pinned_gids,
    reduce_element_network,
    reduce_network,
)

__all__ = [
    "MODES",
    "RULE_BACKWARD",
    "RULE_DEAD",
    "RULE_FORWARD",
    "RULE_NEVER",
    "Partition",
    "MergeProof",
    "ReductionResult",
    "ReduceOutcome",
    "ReduceSummary",
    "analyze_run_reduce",
    "element_pinned_gids",
    "initial_partition",
    "reduce_app",
    "reduce_element_network",
    "reduce_network",
    "refine_backward",
    "refine_forward",
    "refinement_round",
]
