"""End-to-end reduction analysis of one registry application.

Drives the cached experiment pipeline exactly as ``verify_app`` /
``semant_app`` / ``cost_app`` do, but through the SPAP-R reducer: build
the scaled network, reduce it, structurally verify the mapping and merge
classes (SPAP-R002/R003 — always on), re-price the parent and reduced
networks through the cost model's :func:`advise_network` (the
"reduction flips an app DFA-unsafe -> safe" interplay), and optionally
replay the reduced network through ``sim/reference.py`` against the
pipeline's truth run (SPAP-R001 — the soundness gate).  Used by the
``python -m repro reduce`` CLI, the stats collector, the sweep column,
and the CI reduce-smoke gate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from .. import bitops
from ..ap.batching import pack_batches
from ..cost.advisory import BackendAdvisory, advise_network
from ..cost.explore import DEFAULT_DFA_BUDGET
from ..cost.model import CostModel, DEFAULT_COST_MODEL
from ..experiments.config import ExperimentConfig, default_config
from ..experiments.pipeline import AppRun
from ..nfa.automaton import Network, State
from ..sim.reference import reference_run
from ..sim.result import reports_equal
from ..verify.diagnostics import VerificationReport
from ..workloads.registry import get_app
from .transform import ReductionResult

__all__ = ["ReduceSummary", "ReduceOutcome", "analyze_run_reduce", "reduce_app"]


@dataclass(frozen=True)
class ReduceSummary:
    """Reduction accounting plus the cost-model interplay for one app."""

    app: str
    mode: str
    budget: int
    states_before: int
    states_after: int
    n_automata_before: int
    n_automata_after: int
    n_dead_stripped: int
    n_never_stripped: int
    n_backward_merged: int
    n_forward_merged: int
    aggressive_extra_saved: int
    baseline_batches_before: int
    baseline_batches_after: int
    dfa_safe_before: bool
    dfa_safe_after: bool
    dfa_states_before: Optional[int]
    dfa_states_after: Optional[int]
    table_bytes_before: int
    table_bytes_after: int
    recommended_before: str
    recommended_after: str

    @property
    def saved_states(self) -> int:
        return self.states_before - self.states_after

    @property
    def saving(self) -> float:
        if self.states_before == 0:
            return 0.0
        return self.saved_states / float(self.states_before)

    @property
    def cost_improved(self) -> bool:
        """Whether the reduced network is strictly cheaper to compile.

        True on a DFA-safety flip (unsafe -> safe), a smaller materialized
        DFA, or a smaller class-compressed table.  Table bytes have 64-state
        word granularity (``ceil(n/64)`` words per row), so small strips may
        legitimately leave them unchanged.
        """
        if self.dfa_safe_after and not self.dfa_safe_before:
            return True
        if (
            self.dfa_states_before is not None
            and self.dfa_states_after is not None
            and self.dfa_states_after < self.dfa_states_before
        ):
            return True
        return self.table_bytes_after < self.table_bytes_before

    def to_json(self) -> Dict[str, object]:
        return {
            "app": self.app,
            "mode": self.mode,
            "budget": self.budget,
            "states_before": self.states_before,
            "states_after": self.states_after,
            "saved_states": self.saved_states,
            "saving": self.saving,
            "n_automata_before": self.n_automata_before,
            "n_automata_after": self.n_automata_after,
            "merges": {
                "dead_stripped": self.n_dead_stripped,
                "never_reporting_stripped": self.n_never_stripped,
                "backward_merged": self.n_backward_merged,
                "forward_merged": self.n_forward_merged,
            },
            "aggressive_extra_saved": self.aggressive_extra_saved,
            "baseline_batches_before": self.baseline_batches_before,
            "baseline_batches_after": self.baseline_batches_after,
            "cost": {
                "dfa_safe_before": self.dfa_safe_before,
                "dfa_safe_after": self.dfa_safe_after,
                "dfa_states_before": self.dfa_states_before,
                "dfa_states_after": self.dfa_states_after,
                "table_bytes_before": self.table_bytes_before,
                "table_bytes_after": self.table_bytes_after,
                "recommended_before": self.recommended_before,
                "recommended_after": self.recommended_after,
                "improved": self.cost_improved,
            },
        }

    def render(self) -> str:
        lines = [
            f"{self.app}: {self.states_before} -> {self.states_after} states "
            f"({100.0 * self.saving:.1f}% saved, mode={self.mode}; "
            f"{self.n_dead_stripped} dead, {self.n_never_stripped} never-reporting, "
            f"{self.n_backward_merged} backward, {self.n_forward_merged} forward)"
        ]
        safe = f"dfa_safe {self.dfa_safe_before} -> {self.dfa_safe_after}"
        table = f"table {self.table_bytes_before} -> {self.table_bytes_after} B"
        backend = f"backend {self.recommended_before} -> {self.recommended_after}"
        marker = " [improved]" if self.cost_improved else ""
        lines.append(f"  cost: {safe}, {table}, {backend}{marker}")
        lines.append(
            f"  batches: {self.baseline_batches_before} -> "
            f"{self.baseline_batches_after}"
        )
        return "\n".join(lines)


@dataclass
class ReduceOutcome:
    """Reduction summary plus the SPAP-R diagnostics for one application."""

    summary: ReduceSummary
    reduction: ReductionResult
    report: VerificationReport

    @property
    def ok(self) -> bool:
        """True when no soundness rule (ERROR severity) fired."""
        return self.report.ok

    def to_json(self) -> Dict[str, object]:
        return {"summary": self.summary.to_json(), "report": self.report.to_json()}

    def render(self) -> str:
        return self.summary.render()


def _attribute_tuple(state: State) -> object:
    return (
        state.symbol_set.mask,
        state.start,
        state.reporting,
        state.report_code,
        state.eod,
    )


def _check_mapping(
    parent: Network, reduction: ReductionResult, report: VerificationReport
) -> None:
    """SPAP-R002: state_map and members must be a sound, consistent cover."""
    state_map = reduction.state_map
    n_parent = parent.n_states
    n_reduced = reduction.network.n_states
    where = f"{reduction.network.name}"
    if state_map.size != n_parent:
        report.emit(
            "SPAP-R002",
            f"state_map covers {state_map.size} states, parent has {n_parent}",
            location=where,
        )
        return
    kept = state_map >= 0
    if kept.any() and int(state_map[kept].max()) >= n_reduced:
        report.emit(
            "SPAP-R002",
            f"state_map points past the reduced network "
            f"(max {int(state_map[kept].max())} >= {n_reduced})",
            location=where,
        )
    if len(reduction.members) != n_reduced:
        report.emit(
            "SPAP-R002",
            f"members table has {len(reduction.members)} entries, "
            f"reduced network has {n_reduced} states",
            location=where,
        )
        return
    seen = np.zeros(n_parent, dtype=bool)
    for reduced_gid, group in enumerate(reduction.members):
        if not group:
            report.emit(
                "SPAP-R002",
                f"reduced state {reduced_gid} has no parent members",
                location=where,
            )
            continue
        for parent_gid in group:
            if not 0 <= parent_gid < n_parent:
                report.emit(
                    "SPAP-R002",
                    f"member {parent_gid} of reduced state {reduced_gid} "
                    "is not a parent state",
                    location=where,
                )
                continue
            if seen[parent_gid]:
                report.emit(
                    "SPAP-R002",
                    f"parent state {parent_gid} appears in two classes",
                    location=where,
                )
            seen[parent_gid] = True
            if int(state_map[parent_gid]) != reduced_gid:
                report.emit(
                    "SPAP-R002",
                    f"member/state_map disagree on parent state {parent_gid}: "
                    f"{int(state_map[parent_gid])} vs {reduced_gid}",
                    location=where,
                )
    if not np.array_equal(seen, kept):
        report.emit(
            "SPAP-R002",
            "members do not cover exactly the kept parent states",
            location=where,
        )
    n_stripped = int((~kept).sum())
    n_claimed = reduction.n_dead_stripped + reduction.n_never_stripped
    if n_stripped != n_claimed:
        report.emit(
            "SPAP-R002",
            f"{n_stripped} parent states map to -1 but the strip proofs "
            f"account for {n_claimed}",
            location=where,
        )


def _check_classes(
    parent: Network, reduction: ReductionResult, report: VerificationReport
) -> None:
    """SPAP-R003: every merge class must be attribute-homogeneous."""
    parent_states = [state for _gid, _a, state in parent.global_states()]
    reduced_states = [state for _gid, _a, state in reduction.network.global_states()]
    if len(reduced_states) != len(reduction.members):
        return  # R002 already fired on the shape mismatch
    for reduced_gid, group in enumerate(reduction.members):
        want = _attribute_tuple(reduced_states[reduced_gid])
        for parent_gid in group:
            if not 0 <= parent_gid < len(parent_states):
                continue  # R002 already fired
            got = _attribute_tuple(parent_states[parent_gid])
            if got != want:
                report.emit(
                    "SPAP-R003",
                    f"parent state {parent_gid} disagrees with its class "
                    f"survivor {reduced_gid} on {got} vs {want}",
                    location=reduction.network.name,
                )


def _check_replay(
    run: AppRun, reduction: ReductionResult, report: VerificationReport
) -> None:
    """SPAP-R001: reduced-network reference replay must lift to the truth."""
    truth = run.truth
    reduced_result = reference_run(reduction.network, run.test_input)
    lifted = reduction.lift_result(reduced_result)
    where = f"{run.spec.abbr} [{reduction.mode}]"
    if not reports_equal(lifted.reports, truth.reports):
        report.emit(
            "SPAP-R001",
            f"lifted reports diverge from the unreduced truth "
            f"({lifted.reports.shape[0]} vs {truth.reports.shape[0]} reports)",
            location=where,
        )
    if reduction.witness_exact:
        n = run.network.n_states
        lifted_mask = bitops.to_bool(lifted.ever_enabled, n)
        truth_mask = bitops.to_bool(truth.ever_enabled, n)
        if not np.array_equal(lifted_mask, truth_mask):
            diff = int(np.count_nonzero(lifted_mask != truth_mask))
            report.emit(
                "SPAP-R001",
                f"lifted witness mask differs from the truth on {diff} states",
                location=where,
            )


def _baseline_batches(network: Network, capacity: int) -> int:
    """Baseline batch count, or 0 when the network is empty or has an NFA
    too large for the AP at this capacity (the batch columns are
    informational; unpackable networks must not fail the analyzer)."""
    if not network.automata:
        return 0
    try:
        return len(
            pack_batches([a.n_states for a in network.automata], capacity)
        )
    except ValueError:
        return 0


def analyze_run_reduce(
    run: AppRun,
    *,
    mode: str = "exact",
    budget: int = DEFAULT_DFA_BUDGET,
    model: CostModel = DEFAULT_COST_MODEL,
    check: bool = False,
) -> ReduceOutcome:
    """Reduce an already-built pipeline run and verify the result.

    The structural rules (SPAP-R002/R003) always run; ``check=True``
    additionally replays the reduced network through the reference
    simulator on the run's test input and compares lifted reports and
    witness masks against the unreduced truth (SPAP-R001) — the expensive
    half, on by default only in the CI gate and the CLI's ``--check``.
    """
    reduction = run.reduction(mode)
    parent = run.network
    report = VerificationReport(subject=f"{run.spec.abbr} [reduce]")
    with run.stats.stage("reduce"):
        _check_mapping(parent, reduction, report)
        _check_classes(parent, reduction, report)
        if reduction.saved_states == 0:
            report.emit(
                "SPAP-R004",
                "network is already minimal under the "
                f"{reduction.mode!r} rule families",
                location=run.spec.abbr,
            )
        aggressive_extra = 0
        if mode == "exact":
            aggressive = run.reduction("aggressive")
            aggressive_extra = aggressive.saved_states - reduction.saved_states
            if aggressive_extra > 0:
                report.emit(
                    "SPAP-R005",
                    f"aggressive mode would save {aggressive_extra} more "
                    "states (reports-only; witness masks become lossy)",
                    location=run.spec.abbr,
                )
        horizon = run.config.input_len
        before = advise_network(parent, budget=budget, horizon=horizon, model=model)
        after: Optional[BackendAdvisory] = None
        if reduction.network.n_states > 0:
            after = advise_network(
                reduction.network,
                partition="reduced",
                budget=budget,
                horizon=horizon,
                model=model,
            )
    if check:
        _check_replay(run, reduction, report)
    capacity = run.config.half_core.capacity
    summary = ReduceSummary(
        app=run.spec.abbr,
        mode=reduction.mode,
        budget=budget,
        states_before=reduction.parent_n_states,
        states_after=reduction.n_states,
        n_automata_before=parent.n_automata,
        n_automata_after=reduction.network.n_automata,
        n_dead_stripped=reduction.n_dead_stripped,
        n_never_stripped=reduction.n_never_stripped,
        n_backward_merged=reduction.n_backward_merged,
        n_forward_merged=reduction.n_forward_merged,
        aggressive_extra_saved=aggressive_extra,
        baseline_batches_before=_baseline_batches(parent, capacity),
        baseline_batches_after=_baseline_batches(reduction.network, capacity),
        dfa_safe_before=before.dfa_safe,
        dfa_safe_after=bool(after is not None and after.dfa_safe),
        dfa_states_before=before.dfa_states,
        dfa_states_after=None if after is None else after.dfa_states,
        table_bytes_before=before.classes.table_bytes_classed,
        table_bytes_after=0 if after is None else after.classes.table_bytes_classed,
        recommended_before=before.recommended,
        recommended_after="-" if after is None else after.recommended,
    )
    return ReduceOutcome(summary=summary, reduction=reduction, report=report)


def reduce_app(
    abbr: str,
    config: Optional[ExperimentConfig] = None,
    *,
    mode: str = "exact",
    budget: int = DEFAULT_DFA_BUDGET,
    model: CostModel = DEFAULT_COST_MODEL,
    check: bool = False,
) -> ReduceOutcome:
    """Reduce one application end-to-end.

    Builds the scaled network, reduces it (exact mode by default: strips
    proven-dead states and merges backward-bisimilar ones, preserving
    reports *and* witness masks bit for bit), and re-prices both networks
    through the cost model.  Never raises on findings.
    """
    cfg = config or default_config()
    if cfg.verify:
        # Like verify_app/semant_app: the analysis must not fail fast mid-build.
        cfg = replace(cfg, verify=False)
    spec = get_app(abbr)  # raises KeyError for unknown apps (CLI maps to exit 2)
    run = AppRun(spec, cfg)
    return analyze_run_reduce(run, mode=mode, budget=budget, model=model, check=check)
