"""Functional NFA simulation: compiled arrays, fast engines, reference engine.

Besides the individual engine entry points, this package defines the
pluggable :class:`Engine` interface (DESIGN.md §13): every execution
backend — the set-based reference engine, the bit-packed scalar engine,
the multi-stream lock-step engine, the table-driven DFA engine, and the
bounded-subset lazy-DFA hybrid — registered in :data:`ENGINES` under the
same canonical names the cost
model's advisories use (``repro.cost.model.BACKENDS``; the registries are
pinned to each other by a test rather than an import, keeping this package
import-cycle-free).  Callers that hold a per-partition
``BackendAdvisory`` can turn "the model predicts ``dfa`` wins here" into
an actual ``dfa`` execution via :func:`get_engine` /
:func:`resolve_backend`, with automatic fallback to ``multistream`` for
``auto`` requests when the choice is infeasible for the concrete network —
explicit requests fail loudly instead (:class:`BackendInfeasibleError`).
"""

from typing import Callable, Dict, Optional, Tuple

from ..nfa.automaton import Network
from .compiled import CompiledNetwork, compile_network
from .dfa import (
    CompiledDFA,
    DfaInfeasibleError,
    compile_dfa,
    dfa_feasible,
    dfa_run,
    dfa_table_dtype,
)
from .engine import EventRunResult, as_input_array, run, run_events
from .hybrid import HybridResult, hybrid_run
from .lazydfa import (
    DEFAULT_CHURN_FACTOR,
    DEFAULT_LAZY_CAPACITY,
    CompiledLazyDfa,
    compile_lazydfa,
    lazydfa_run,
)
from .matrix import MatrixNetwork, matrix_compile, matrix_run
from .multistream import run_multi
from .reference import reference_run
from .reports import DecodedReport, decode_reports, reports_by_code
from .result import Report, SimResult, reports_equal, reports_to_array

__all__ = [
    "CompiledNetwork",
    "compile_network",
    "EventRunResult",
    "as_input_array",
    "run",
    "run_events",
    "run_multi",
    "HybridResult",
    "hybrid_run",
    "reference_run",
    "MatrixNetwork",
    "matrix_compile",
    "matrix_run",
    "CompiledDFA",
    "DfaInfeasibleError",
    "compile_dfa",
    "dfa_feasible",
    "dfa_run",
    "dfa_table_dtype",
    "CompiledLazyDfa",
    "DEFAULT_CHURN_FACTOR",
    "DEFAULT_LAZY_CAPACITY",
    "compile_lazydfa",
    "lazydfa_run",
    "DecodedReport",
    "decode_reports",
    "reports_by_code",
    "Report",
    "SimResult",
    "reports_equal",
    "reports_to_array",
    "BackendInfeasibleError",
    "Engine",
    "ENGINES",
    "FALLBACK_BACKEND",
    "get_engine",
    "resolve_backend",
]


class BackendInfeasibleError(RuntimeError):
    """An explicitly-requested backend cannot run the concrete network.

    Raised by :func:`resolve_backend` instead of silently substituting
    :data:`FALLBACK_BACKEND`: an operator who typed ``--backend dfa``
    deserves an error, not a quiet multistream run.  ``auto`` requests
    (and callers that opt in via ``allow_fallback=True``) keep the
    fallback behavior.
    """


class Engine:
    """One selectable execution backend (DESIGN.md §13).

    An engine names itself, answers whether it can run a concrete network
    (``feasible``), turns a network into its executable artifact once
    (``prepare`` — a compiled bit matrix, a DFA table, or the network
    itself), and executes a prepared artifact over one input stream
    (``run``), returning a :class:`SimResult` whose reports are
    bit-identical to every other engine's.  ``streaming_only`` engines
    consume a contiguous symbol stream and cannot host event-driven
    (cold-partition) execution — mirroring
    ``repro.cost.model.STREAMING_BACKENDS``.
    """

    def __init__(
        self,
        name: str,
        *,
        prepare: Callable[[Network], object],
        execute: Callable[..., SimResult],
        feasible: Optional[Callable[[Network], bool]] = None,
        streaming_only: bool = False,
    ) -> None:
        self.name = name
        self.streaming_only = streaming_only
        self._prepare = prepare
        self._execute = execute
        self._feasible = feasible

    def feasible(self, network: Network) -> bool:
        """Whether :meth:`prepare` would succeed for ``network``."""
        if self._feasible is None:
            return True
        return self._feasible(network)

    def prepare(self, network: Network) -> object:
        """Build the executable artifact (compile once, run many)."""
        return self._prepare(network)

    def run(self, prepared: object, input_data, *,
            track_enabled: bool = False) -> SimResult:
        """Execute one input stream over a :meth:`prepare` artifact."""
        return self._execute(prepared, input_data, track_enabled=track_enabled)

    def run_network(self, network: Network, input_data, *,
                    track_enabled: bool = False) -> SimResult:
        """Convenience: prepare and run in one call (tests, one-shots)."""
        return self.run(self.prepare(network), input_data,
                        track_enabled=track_enabled)


def _reference_execute(prepared, input_data, *, track_enabled: bool = False):
    # The reference engine always tracks the enabled set; the flag is
    # accepted for interface parity.
    return reference_run(prepared, input_data)


def _bitpacked_execute(prepared, input_data, *, track_enabled: bool = False):
    return run(prepared, input_data, track_enabled=track_enabled)


def _multistream_execute(prepared, input_data, *, track_enabled: bool = False):
    (result,) = run_multi(prepared, [input_data], track_enabled=track_enabled)
    return result


#: Canonical backend registry.  Keys must match
#: ``repro.cost.model.BACKENDS`` exactly (test-pinned).
ENGINES: Dict[str, Engine] = {
    "reference": Engine(
        "reference",
        prepare=lambda network: network,
        execute=_reference_execute,
    ),
    "bitpacked": Engine(
        "bitpacked",
        prepare=compile_network,
        execute=_bitpacked_execute,
    ),
    "multistream": Engine(
        "multistream",
        prepare=compile_network,
        execute=_multistream_execute,
        streaming_only=True,
    ),
    "dfa": Engine(
        "dfa",
        prepare=compile_dfa,
        execute=dfa_run,
        feasible=dfa_feasible,
        streaming_only=True,
    ),
    # The lazy hybrid needs no feasibility proof: its subset cache is
    # LRU-bounded no matter how large the reachable subset space is.
    "lazydfa": Engine(
        "lazydfa",
        prepare=compile_lazydfa,
        execute=lazydfa_run,
        streaming_only=True,
    ),
}

#: Where infeasible selections land: the throughput backend that is always
#: available for streaming partitions.
FALLBACK_BACKEND = "multistream"


def get_engine(name: str) -> Engine:
    """The registered engine for a canonical backend name.

    Raises ``KeyError`` (listing the registry) for unknown names.
    """
    try:
        return ENGINES[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; registered: {', '.join(ENGINES)}"
        ) from None


def resolve_backend(
    requested: Optional[str],
    network: Network,
    *,
    advised: str = FALLBACK_BACKEND,
    allow_fallback: Optional[bool] = None,
) -> Tuple[str, Engine]:
    """Resolve a backend request against a concrete network.

    ``requested`` is an explicit backend name, or ``None``/``"auto"`` to
    take ``advised`` (typically ``BackendAdvisory.recommended``).  If the
    chosen engine is infeasible for ``network`` — e.g. ``dfa`` on a
    partition whose subset construction bursts the budget — the outcome
    depends on how the choice was made:

    * ``auto``/``None`` requests fall back to :data:`FALLBACK_BACKEND`
      silently (a stale advisory must never wedge execution);
    * explicit requests raise :class:`BackendInfeasibleError` so the
      operator learns their choice did not run, unless they opted into
      substitution with ``allow_fallback=True`` (the CLI's
      ``--backend-fallback`` flag).

    ``allow_fallback=None`` means "decide by request kind" as above; a
    boolean forces the policy either way.  Returns the ``(name, engine)``
    actually selected.
    """
    explicit = requested not in (None, "auto")
    name = requested if explicit and requested is not None else advised
    engine = get_engine(name)
    if not engine.feasible(network):
        fallback_ok = (not explicit) if allow_fallback is None else allow_fallback
        if not fallback_ok:
            raise BackendInfeasibleError(
                f"backend {name!r} was explicitly requested but is infeasible "
                f"for this network; use --backend auto, pick a feasible "
                f"backend, or pass --backend-fallback to accept "
                f"{FALLBACK_BACKEND!r} substitution"
            )
        name = FALLBACK_BACKEND
        engine = get_engine(name)
    return name, engine
