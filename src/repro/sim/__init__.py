"""Functional NFA simulation: compiled arrays, fast engine, reference engine."""

from .compiled import CompiledNetwork, compile_network
from .engine import EventRunResult, as_input_array, run, run_events
from .hybrid import HybridResult, hybrid_run
from .matrix import MatrixNetwork, matrix_compile, matrix_run
from .multistream import run_multi
from .reference import reference_run
from .reports import DecodedReport, decode_reports, reports_by_code
from .result import Report, SimResult, reports_equal, reports_to_array

__all__ = [
    "CompiledNetwork",
    "compile_network",
    "EventRunResult",
    "as_input_array",
    "run",
    "run_events",
    "run_multi",
    "HybridResult",
    "hybrid_run",
    "reference_run",
    "MatrixNetwork",
    "matrix_compile",
    "matrix_run",
    "DecodedReport",
    "decode_reports",
    "reports_by_code",
    "Report",
    "SimResult",
    "reports_equal",
    "reports_to_array",
]
