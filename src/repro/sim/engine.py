"""Fast bit-parallel NFA simulation engine.

The engine mirrors the AP datapath cycle by cycle (paper §II-B): the input
byte selects a row of the accept matrix, an AND with the enabled state vector
yields the activated states, and the routing matrix (CSR successor table)
produces the enabled vector for the next cycle.  State vectors are 64-bit
packed so a cycle costs a handful of word-wide NumPy ops plus work
proportional to the number of *activated* states, which is small for the
sparse activity patterns this paper exploits.

Two entry points:

* :func:`run` — plain streaming execution (BaseAP mode / baseline AP).
* :func:`run_events` — Algorithm 1: execution driven by the input stream
  *and* a list of (position, state) enable events, with jump-over-idle-input
  and enable-stall accounting (SpAP mode, also reused by the AP–CPU handler).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .. import bitops
from .compiled import CompiledNetwork
from .result import SimResult, reports_to_array

__all__ = ["run", "run_events", "EventRunResult", "as_input_array"]


def as_input_array(data) -> np.ndarray:
    """Normalize an input stream (bytes/str/array) to a uint8 array."""
    if isinstance(data, np.ndarray):
        return data.astype(np.uint8, copy=False)
    if isinstance(data, str):
        data = data.encode("latin-1")
    return np.frombuffer(bytes(data), dtype=np.uint8)


def _collect_reports(out: List, active: np.ndarray, report_mask: np.ndarray, position: int) -> None:
    hits = active & report_mask
    if hits.any():
        for gid in bitops.to_indices(hits):
            out.append((position, int(gid)))


def run(
    compiled: CompiledNetwork,
    input_data,
    *,
    track_enabled: bool = True,
) -> SimResult:
    """Stream the whole input through the network (BaseAP semantics).

    ``ever_enabled`` accumulates the enabled vector at each cycle in which a
    symbol is consumed — the paper's hot set.
    """
    symbols = as_input_array(input_data)
    n_words = compiled.n_words
    enabled = compiled.initial_enabled().copy()
    ever = np.zeros(n_words, dtype=np.uint64) if track_enabled else None
    reports: List = []
    accept = compiled.accept
    start_all = compiled.start_all
    report_mask = compiled.report_mask
    # End-of-data reporters fire only at the final position.
    mid_report_mask = report_mask & ~compiled.eod_mask
    last = int(symbols.size) - 1

    for position in range(symbols.size):
        if track_enabled:
            ever |= enabled
        active = enabled & accept[symbols[position]]
        _collect_reports(
            reports, active, report_mask if position == last else mid_report_mask,
            position,
        )
        enabled = start_all.copy()
        if active.any():
            succ = compiled.successors_of(bitops.to_indices(active))
            bitops.set_indices(enabled, succ)

    return SimResult(
        n_states=compiled.n_states,
        n_symbols=int(symbols.size),
        cycles=int(symbols.size),
        reports=reports_to_array(reports),
        ever_enabled=ever if track_enabled else np.zeros(n_words, dtype=np.uint64),
    )


@dataclass
class EventRunResult:
    """Outcome of an event-driven (SpAP-style) run.

    ``consumed_cycles`` counts cycles that processed an input symbol;
    ``stall_cycles`` counts enable stalls from simultaneous events (k
    simultaneous enables cost k-1 extra cycles, §V-B); ``total_cycles`` is
    their sum — the SpAP-mode execution time in cycles.
    """

    n_states: int
    n_symbols: int
    consumed_cycles: int
    stall_cycles: int
    jumps: int
    reports: np.ndarray
    ever_enabled: np.ndarray

    @property
    def total_cycles(self) -> int:
        return self.consumed_cycles + self.stall_cycles

    def jump_ratio(self) -> float:
        """Proportion of input cycles skipped: 1 - total/len(input)."""
        if self.n_symbols == 0:
            return 0.0
        return 1.0 - self.total_cycles / float(self.n_symbols)


def run_events(
    compiled: CompiledNetwork,
    input_data,
    events: Optional[Sequence] = None,
    *,
    count_stalls: bool = True,
    track_enabled: bool = False,
) -> EventRunResult:
    """Algorithm 1: event-driven execution with jump and enable operations.

    ``events`` is a sequence of ``(position, global_state)`` pairs sorted by
    position; each enables ``global_state`` just before ``input[position]``
    is matched.  Events at ``position == len(input)`` have nothing left to
    match and are ignored.  Start states of the compiled network participate
    normally (a cold partition usually has none).
    """
    symbols = as_input_array(input_data)
    n = int(symbols.size)
    event_array = reports_to_array(events if events is not None else [])
    positions = event_array[:, 0]
    targets = event_array[:, 1]
    n_events = int(positions.size)
    if n_events:
        if positions.min() < 0:
            raise ValueError(f"negative event position: {int(positions.min())}")
        if targets.min() < 0 or targets.max() >= compiled.n_states:
            raise ValueError(
                f"event targets must be in [0, {compiled.n_states}); "
                f"got {int(targets.min())}..{int(targets.max())}"
            )

    n_words = compiled.n_words
    enabled = compiled.initial_enabled().copy()
    ever = np.zeros(n_words, dtype=np.uint64)
    reports: List = []
    accept = compiled.accept
    start_all = compiled.start_all
    report_mask = compiled.report_mask
    mid_report_mask = report_mask & ~compiled.eod_mask
    last = n - 1

    i = 0
    j = 0
    consumed = 0
    stalls = 0
    jumps = 0
    while i < n:
        if not enabled.any():
            # Jump operation: skip to where the next event enables a state.
            while j < n_events and positions[j] < i:
                j += 1  # events in already-passed positions cannot fire
            if j >= n_events:
                break
            if positions[j] >= n:
                break
            if positions[j] > i:
                i = int(positions[j])
                jumps += 1
        # Enable operation: inject all events at this position.
        simultaneous = 0
        while j < n_events and positions[j] == i:
            bitops.set_indices(enabled, [int(targets[j])])
            j += 1
            simultaneous += 1
        if count_stalls and simultaneous > 1:
            stalls += simultaneous - 1
        if track_enabled:
            ever |= enabled
        active = enabled & accept[symbols[i]]
        _collect_reports(
            reports, active, report_mask if i == last else mid_report_mask, i
        )
        enabled = start_all.copy()
        if active.any():
            succ = compiled.successors_of(bitops.to_indices(active))
            bitops.set_indices(enabled, succ)
        consumed += 1
        i += 1

    return EventRunResult(
        n_states=compiled.n_states,
        n_symbols=n,
        consumed_cycles=consumed,
        stall_cycles=stalls,
        jumps=jumps,
        reports=reports_to_array(reports),
        ever_enabled=ever,
    )
