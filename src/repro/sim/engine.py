"""Fast bit-parallel NFA simulation engine.

The engine mirrors the AP datapath cycle by cycle (paper §II-B): the input
byte selects a row of the accept matrix, an AND with the enabled state vector
yields the activated states, and the routing matrix (CSR successor table)
produces the enabled vector for the next cycle.  State vectors are 64-bit
packed so a cycle costs a handful of word-wide NumPy ops plus work
proportional to the number of *activated* states, which is small for the
sparse activity patterns this paper exploits.

Hot-loop layout (see DESIGN.md §"Engine performance"): all per-cycle
buffers are allocated once and reused (``out=`` everywhere, no
``start_all.copy()`` per cycle); activated-state and report bit extraction
happens on Python big-ints built straight from the packed words (a single
``tobytes`` instead of several NumPy calls per cycle); and successor
propagation uses the dense packed successor-mask matrix
(:meth:`CompiledNetwork.successor_masks`) — one fancy-index gather plus one
``bitwise_or.reduce`` — falling back to the CSR expansion for networks too
large to materialize the matrix.  Report collection is skipped entirely for
networks with no reporting states (cold partitions).

Two entry points:

* :func:`run` — plain streaming execution (BaseAP mode / baseline AP).
* :func:`run_events` — Algorithm 1: execution driven by the input stream
  *and* a list of (position, state) enable events, with jump-over-idle-input
  and enable-stall accounting (SpAP mode, also reused by the AP–CPU handler).

Multi-stream lock-step execution lives in :mod:`repro.sim.multistream`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .. import bitops
from .compiled import CompiledNetwork
from .result import SimResult, reports_to_array

__all__ = ["run", "run_events", "EventRunResult", "as_input_array"]


def as_input_array(data) -> np.ndarray:
    """Normalize an input stream (bytes/str/array) to a uint8 array.

    Arrays must be one-dimensional with integer values in ``[0, 255]``;
    anything else raises ``ValueError`` instead of being silently wrapped
    mod 256 or truncated (``np.array([300, 65])`` used to become
    ``[44, 65]``, corrupting every downstream result).
    """
    if isinstance(data, np.ndarray):
        if data.ndim != 1:
            raise ValueError(f"input array must be 1-D, got shape {data.shape}")
        if data.dtype == np.uint8:
            return data
        if not np.issubdtype(data.dtype, np.integer):
            raise ValueError(
                f"input array must have an integer dtype, got {data.dtype} "
                "(floats would be silently truncated)"
            )
        if data.size and (int(data.min()) < 0 or int(data.max()) > 255):
            raise ValueError(
                f"input symbols must be in [0, 255]; got values in "
                f"[{int(data.min())}, {int(data.max())}] "
                "(uint8 conversion would wrap mod 256)"
            )
        return data.astype(np.uint8)
    if isinstance(data, str):
        data = data.encode("latin-1")
    return np.frombuffer(bytes(data), dtype=np.uint8)


def _extract_bits(value: int) -> List[int]:
    """Indices of the set bits of a non-negative Python int, ascending."""
    out: List[int] = []
    while value:
        low = value & -value
        out.append(low.bit_length() - 1)
        value ^= low
    return out


def run(
    compiled: CompiledNetwork,
    input_data,
    *,
    track_enabled: bool = True,
) -> SimResult:
    """Stream the whole input through the network (BaseAP semantics).

    ``ever_enabled`` accumulates the enabled vector at each cycle in which a
    symbol is consumed — the paper's hot set.
    """
    symbols = as_input_array(input_data)
    n_words = compiled.n_words
    enabled = compiled.initial_enabled()
    active = np.empty(n_words, dtype=np.uint64)
    scratch = np.empty(n_words, dtype=np.uint64)
    ever = np.zeros(n_words, dtype=np.uint64) if track_enabled else None
    accept = compiled.accept
    start_all = compiled.start_all
    report_int, mid_report_int = compiled.report_ints()
    has_reports = report_int != 0
    succ_masks = compiled.successor_masks()
    reports: List = []
    last = int(symbols.size) - 1

    for position, sym in enumerate(symbols.tolist()):
        if track_enabled:
            np.bitwise_or(ever, enabled, out=ever)
        np.bitwise_and(enabled, accept[sym], out=active)
        active_int = int.from_bytes(active.tobytes(), "little")
        if active_int:
            if has_reports:
                hits = active_int & (report_int if position == last else mid_report_int)
                while hits:
                    low = hits & -hits
                    reports.append((position, low.bit_length() - 1))
                    hits ^= low
            if succ_masks is not None:
                np.bitwise_or.reduce(
                    succ_masks[_extract_bits(active_int)], axis=0, out=scratch
                )
                np.bitwise_or(scratch, start_all, out=enabled)
            else:
                succ = compiled.successors_of(bitops.to_indices(active))
                np.copyto(enabled, start_all)
                bitops.set_indices(enabled, succ)
        else:
            np.copyto(enabled, start_all)

    return SimResult(
        n_states=compiled.n_states,
        n_symbols=int(symbols.size),
        cycles=int(symbols.size),
        reports=reports_to_array(reports),
        ever_enabled=ever if track_enabled else np.zeros(n_words, dtype=np.uint64),
    )


@dataclass
class EventRunResult:
    """Outcome of an event-driven (SpAP-style) run.

    ``consumed_cycles`` counts cycles that processed an input symbol;
    ``stall_cycles`` counts enable stalls from simultaneous events (k
    simultaneous enables cost k-1 extra cycles, §V-B); ``total_cycles`` is
    their sum — the SpAP-mode execution time in cycles.  ``jumps`` counts
    jump operations, including the final jump over an idle tail when the
    machine goes quiet before the end of the input.
    """

    n_states: int
    n_symbols: int
    consumed_cycles: int
    stall_cycles: int
    jumps: int
    reports: np.ndarray
    ever_enabled: np.ndarray

    @property
    def total_cycles(self) -> int:
        return self.consumed_cycles + self.stall_cycles

    def jump_ratio(self) -> float:
        """Proportion of input cycles skipped, in ``[0, 1]``.

        Defined as ``1 - total_cycles / n_symbols`` clamped below at zero:
        in stall-dominated runs (enable stalls exceeding skipped cycles,
        e.g. many simultaneous enables on a short input) ``total_cycles``
        can exceed the input length, and the unclamped value would be a
        meaningless negative "proportion".  A clamped 0.0 reads as "nothing
        was saved by jumping", which is the honest summary of such runs;
        use ``total_cycles`` directly when the overshoot itself matters.
        """
        if self.n_symbols == 0:
            return 0.0
        return max(0.0, 1.0 - self.total_cycles / float(self.n_symbols))


def run_events(
    compiled: CompiledNetwork,
    input_data,
    events: Optional[Sequence] = None,
    *,
    count_stalls: bool = True,
    track_enabled: bool = False,
) -> EventRunResult:
    """Algorithm 1: event-driven execution with jump and enable operations.

    ``events`` is a sequence of ``(position, global_state)`` pairs sorted by
    position; each enables ``global_state`` just before ``input[position]``
    is matched.  Events at ``position == len(input)`` have nothing left to
    match and are ignored.  Start states of the compiled network participate
    normally (a cold partition usually has none).
    """
    symbols = as_input_array(input_data)
    n = int(symbols.size)
    event_array = reports_to_array(events if events is not None else [])
    positions = event_array[:, 0]
    targets = event_array[:, 1]
    n_events = int(positions.size)
    if n_events:
        if positions.min() < 0:
            raise ValueError(f"negative event position: {int(positions.min())}")
        if targets.min() < 0 or targets.max() >= compiled.n_states:
            raise ValueError(
                f"event targets must be in [0, {compiled.n_states}); "
                f"got {int(targets.min())}..{int(targets.max())}"
            )

    n_words = compiled.n_words
    enabled = compiled.initial_enabled()
    active = np.empty(n_words, dtype=np.uint64)
    scratch = np.empty(n_words, dtype=np.uint64)
    ever = np.zeros(n_words, dtype=np.uint64)
    accept = compiled.accept
    start_all = compiled.start_all
    report_int, mid_report_int = compiled.report_ints()
    has_reports = report_int != 0
    succ_masks = compiled.successor_masks()
    reports: List = []
    syms = symbols.tolist()
    positions_list = positions.tolist()
    targets_list = targets.tolist()
    last = n - 1

    i = 0
    j = 0
    consumed = 0
    stalls = 0
    jumps = 0
    while i < n:
        if not enabled.any():
            # Jump operation: skip to where the next event enables a state.
            while j < n_events and positions_list[j] < i:
                j += 1  # events in already-passed positions cannot fire
            if j >= n_events or positions_list[j] >= n:
                jumps += 1  # final jump over the idle tail [i, n)
                break
            if positions_list[j] > i:
                i = positions_list[j]
                jumps += 1
        # Enable operation: inject all events at this position.
        simultaneous = 0
        while j < n_events and positions_list[j] == i:
            bitops.set_indices(enabled, [targets_list[j]])
            j += 1
            simultaneous += 1
        if count_stalls and simultaneous > 1:
            stalls += simultaneous - 1
        if track_enabled:
            np.bitwise_or(ever, enabled, out=ever)
        np.bitwise_and(enabled, accept[syms[i]], out=active)
        active_int = int.from_bytes(active.tobytes(), "little")
        if active_int:
            if has_reports:
                hits = active_int & (report_int if i == last else mid_report_int)
                while hits:
                    low = hits & -hits
                    reports.append((i, low.bit_length() - 1))
                    hits ^= low
            if succ_masks is not None:
                np.bitwise_or.reduce(
                    succ_masks[_extract_bits(active_int)], axis=0, out=scratch
                )
                np.bitwise_or(scratch, start_all, out=enabled)
            else:
                succ = compiled.successors_of(bitops.to_indices(active))
                np.copyto(enabled, start_all)
                bitops.set_indices(enabled, succ)
        else:
            np.copyto(enabled, start_all)
        consumed += 1
        i += 1

    return EventRunResult(
        n_states=compiled.n_states,
        n_symbols=n,
        consumed_cycles=consumed,
        stall_cycles=stalls,
        jumps=jumps,
        reports=reports_to_array(reports),
        ever_enabled=ever,
    )
