"""Compiled (array-form) network representation for the fast engine.

Compilation flattens a :class:`~repro.nfa.automaton.Network` into:

* a 256-row bit-packed *accept matrix* — row ``b`` is the packed set of
  states whose symbol-set accepts byte ``b`` (this is exactly the DRAM row /
  STE column layout of the AP described in the paper's Fig 3);
* packed start masks (all-input and start-of-data);
* a packed reporting mask;
* a CSR successor table (the routing matrix's enable fan-out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import bitops
from ..nfa.automaton import Network, StartKind
from ..nfa.symbolset import ALPHABET_SIZE, SymbolSet

__all__ = ["CompiledNetwork", "compile_network", "gather_csr", "SUCC_MASK_BUDGET"]

#: Memory budget (bytes) for the dense packed successor-mask matrix.  Above
#: this the engines fall back to the CSR gather path; the matrix grows as
#: ``n_states * n_words * 8`` and is only worth materializing when it fits
#: comfortably in cache-adjacent memory.
SUCC_MASK_BUDGET = 64 << 20

_UNSET = object()


@dataclass
class CompiledNetwork:
    """Array-form network ready for bit-parallel simulation."""

    n_states: int
    n_words: int
    accept: np.ndarray  # (256, n_words) uint64: accept[b] = states accepting byte b
    start_all: np.ndarray  # packed: all-input start states
    start_sod: np.ndarray  # packed: start-of-data start states
    report_mask: np.ndarray  # packed: reporting states
    eod_mask: np.ndarray  # packed: states whose reports fire only at end-of-data
    indptr: np.ndarray  # CSR successor table (int64, len n_states + 1)
    indices: np.ndarray  # CSR successor targets (int64)
    report_codes: List[Optional[str]]  # per-state report code (None if silent)

    def successors_of(self, states: np.ndarray) -> np.ndarray:
        """All successors of the given activated states (with duplicates)."""
        return gather_csr(self.indptr, self.indices, states)

    def initial_enabled(self) -> np.ndarray:
        """Enabled set before the first symbol: all starts, both kinds."""
        return self.start_all | self.start_sod

    def successor_masks(self) -> Optional[np.ndarray]:
        """Dense packed successor matrix: row ``s`` is the bitset of ``s``'s
        successors.  Lets the hot loop compute the next enabled vector as one
        gather + ``bitwise_or.reduce`` instead of a CSR expansion and an
        ``or.at`` scatter.  Returns ``None`` (and the engines fall back to
        CSR) when the matrix would exceed :data:`SUCC_MASK_BUDGET`.

        Computed lazily and cached on the instance.
        """
        cached = getattr(self, "_succ_masks", _UNSET)
        if cached is _UNSET:
            if self.n_states * self.n_words * 8 > SUCC_MASK_BUDGET:
                cached = None
            else:
                masks = np.zeros((self.n_states, self.n_words), dtype=np.uint64)
                counts = np.diff(self.indptr)
                rows = np.repeat(np.arange(self.n_states, dtype=np.int64), counts)
                np.bitwise_or.at(
                    masks,
                    (rows, self.indices >> 6),
                    np.uint64(1) << (self.indices & 63).astype(np.uint64),
                )
                cached = masks
            self._succ_masks = cached
        return cached

    def report_ints(self) -> Tuple[int, int]:
        """``(report, mid_report)`` masks as Python ints (little-endian bit
        order, bit ``g`` = global state ``g``) for cheap per-cycle report
        checks; cached on the instance."""
        cached = getattr(self, "_report_ints", None)
        if cached is None:
            full = int.from_bytes(self.report_mask.tobytes(), "little")
            eod = int.from_bytes(self.eod_mask.tobytes(), "little")
            cached = (full, full & ~eod)
            self._report_ints = cached
        return cached


def gather_csr(indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Concatenate ``indices[indptr[r]:indptr[r+1]]`` for every row, vectorized."""
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return np.empty(0, dtype=np.int64)
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cum = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
    return indices[np.repeat(starts, counts) + within]


def compile_network(network: Network) -> CompiledNetwork:
    """Flatten a network into packed arrays (global state id order)."""
    n = network.n_states
    n_words = bitops.num_words(max(n, 1))

    # Accept matrix: build a bool (256, n) staging matrix column by column,
    # caching the per-symbol-set column since workloads reuse few distinct
    # symbol-sets across thousands of states.
    accept_bool = np.zeros((ALPHABET_SIZE, n), dtype=bool)
    column_cache: Dict[SymbolSet, np.ndarray] = {}
    start_all_ids: List[int] = []
    start_sod_ids: List[int] = []
    report_ids: List[int] = []
    eod_ids: List[int] = []
    report_codes: List[Optional[str]] = [None] * n

    for gid, _a_index, state in network.global_states():
        column = column_cache.get(state.symbol_set)
        if column is None:
            column = state.symbol_set.to_bool_array()
            column_cache[state.symbol_set] = column
        accept_bool[:, gid] = column
        if state.start is StartKind.ALL_INPUT:
            start_all_ids.append(gid)
        elif state.start is StartKind.START_OF_DATA:
            start_sod_ids.append(gid)
        if state.reporting:
            report_ids.append(gid)
            report_codes[gid] = state.report_code
            if state.eod:
                eod_ids.append(gid)

    # Pack each of the 256 rows into uint64 words.
    packed_bytes = np.packbits(accept_bool, axis=1, bitorder="little")
    accept = np.zeros((ALPHABET_SIZE, n_words * 8), dtype=np.uint8)
    accept[:, : packed_bytes.shape[1]] = packed_bytes
    accept = accept.view(np.uint64)

    # CSR successor table in global ids.
    indptr = np.zeros(n + 1, dtype=np.int64)
    offsets = network.offsets()
    for a_index, automaton in enumerate(network.automata):
        base = offsets[a_index]
        for sid in range(automaton.n_states):
            indptr[base + sid + 1] = len(automaton.successors(sid))
    np.cumsum(indptr, out=indptr)
    indices = np.empty(int(indptr[-1]), dtype=np.int64)
    for a_index, automaton in enumerate(network.automata):
        base = offsets[a_index]
        for sid in range(automaton.n_states):
            row = indptr[base + sid]
            for k, dst in enumerate(automaton.successors(sid)):
                indices[row + k] = base + dst

    return CompiledNetwork(
        n_states=n,
        n_words=n_words,
        accept=accept,
        start_all=bitops.from_indices(start_all_ids, max(n, 1)),
        start_sod=bitops.from_indices(start_sod_ids, max(n, 1)),
        report_mask=bitops.from_indices(report_ids, max(n, 1)),
        eod_mask=bitops.from_indices(eod_ids, max(n, 1)),
        indptr=indptr,
        indices=indices,
        report_codes=report_codes,
    )
