"""Reference (set-based, pure-Python) simulation engine.

Slow but transparently correct: a direct transcription of the homogeneous NFA
semantics in paper §II-A.  Exists to validate the bit-parallel engine and the
SpAP event loop through property tests, and as executable documentation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import bitops
from ..nfa.automaton import Network, StartKind
from .engine import as_input_array
from .result import SimResult, reports_to_array

__all__ = ["reference_run"]


def _flatten(network: Network):
    """Per-global-state tables: symbol-set, start kind, reporting, successors."""
    symbol_sets = []
    starts = []
    reporting = []
    eod = []
    successors: List[List[int]] = []
    offsets = network.offsets()
    for a_index, automaton in enumerate(network.automata):
        base = offsets[a_index]
        for state in automaton.states():
            symbol_sets.append(state.symbol_set)
            starts.append(state.start)
            reporting.append(state.reporting)
            eod.append(state.eod)
            successors.append([base + dst for dst in automaton.successors(state.sid)])
    return symbol_sets, starts, reporting, eod, successors


def reference_run(
    network: Network,
    input_data,
    events: Optional[Sequence[Tuple[int, int]]] = None,
) -> SimResult:
    """Simulate ``network`` over the input, optionally with enable events.

    ``events`` are ``(position, global_state)`` pairs: the state is enabled
    just before ``input[position]`` is matched (same convention as
    :func:`repro.sim.engine.run_events`, but without jump/stall modelling —
    every cycle is executed, which yields identical reports).
    """
    symbols = as_input_array(input_data)
    symbol_sets, starts, reporting, eod, successors = _flatten(network)
    n = len(symbol_sets)

    injected: Dict[int, List[int]] = {}
    for position, gid in events or []:
        injected.setdefault(int(position), []).append(int(gid))

    always_enabled = {gid for gid in range(n) if starts[gid] is StartKind.ALL_INPUT}
    enabled: Set[int] = set(always_enabled)
    enabled |= {gid for gid in range(n) if starts[gid] is StartKind.START_OF_DATA}

    reports: List[Tuple[int, int]] = []
    ever: Set[int] = set()
    for position in range(symbols.size):
        enabled |= set(injected.get(position, ()))
        ever |= enabled
        symbol = int(symbols[position])
        activated = [gid for gid in sorted(enabled) if symbol_sets[gid].matches(symbol)]
        for gid in activated:
            if reporting[gid] and (not eod[gid] or position == symbols.size - 1):
                reports.append((position, gid))
        enabled = set(always_enabled)
        for gid in activated:
            enabled.update(successors[gid])

    return SimResult(
        n_states=n,
        n_symbols=int(symbols.size),
        cycles=int(symbols.size),
        reports=reports_to_array(reports),
        ever_enabled=bitops.from_indices(sorted(ever), max(n, 1)),
    )
