"""Simulation result types shared by all engines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .. import bitops

__all__ = ["Report", "SimResult", "reports_to_array", "reports_equal"]

# A report is (input_position, global_state_id).
Report = Tuple[int, int]


def reports_to_array(reports) -> np.ndarray:
    """Normalize reports to a sorted ``(m, 2)`` int64 array."""
    arr = np.asarray(list(reports), dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    arr = arr.reshape(-1, 2)
    order = np.lexsort((arr[:, 1], arr[:, 0]))
    return arr[order]


def reports_equal(left, right) -> bool:
    """Whether two report collections are identical as sets with multiplicity."""
    a, b = reports_to_array(left), reports_to_array(right)
    return a.shape == b.shape and bool(np.array_equal(a, b))


@dataclass
class SimResult:
    """Outcome of running a network over an input stream.

    ``ever_enabled`` is a packed bitset over global state ids marking states
    that were enabled at any cycle in which a symbol was consumed — the
    paper's hot set.  ``cycles`` equals the number of symbols consumed (the
    AP processes one symbol per cycle).
    """

    n_states: int
    n_symbols: int
    cycles: int
    reports: np.ndarray  # (m, 2) [position, global_state]
    ever_enabled: np.ndarray  # packed uint64 bitset

    def report_tuples(self) -> List[Report]:
        return [tuple(row) for row in self.reports]

    def hot_indices(self) -> np.ndarray:
        return bitops.to_indices(self.ever_enabled)

    def hot_count(self) -> int:
        return bitops.popcount(self.ever_enabled)

    def hot_fraction(self) -> float:
        if self.n_states == 0:
            return 0.0
        return self.hot_count() / float(self.n_states)

    def hot_mask(self) -> np.ndarray:
        """Boolean hot mask over global state ids."""
        return bitops.to_bool(self.ever_enabled, self.n_states)
