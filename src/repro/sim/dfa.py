"""Table-driven DFA execution backend: one table lookup per input symbol.

The NFA engines pay per-cycle costs proportional to either the active-state
count (:mod:`repro.sim.reference`) or the packed vector width
(:func:`repro.sim.engine.run`, :func:`repro.sim.multistream.run_multi`).
For partitions the budgeted explorer (:mod:`repro.cost.explore`) proves
DFA-safe, neither cost is necessary: subset construction collapses every
enabled set into a single integer state, and execution becomes one dense
table lookup per symbol — the CPU-DFA regime of the paper's §VIII related
work, with CAMA-style symbol-class column compression riding on
:func:`repro.nfa.determinize.alphabet_classes`.

:func:`compile_dfa` materializes :func:`~repro.nfa.determinize.determinize`
output into a dense ``(n_dfa_states, n_classes)`` transition table (uint16
when the state count fits, uint32 otherwise — the same dtype ladder the
cost model's feasibility gate prices via
:func:`repro.cost.model.dfa_entry_bytes`), a symbol→class translation
vector, and flat per-``(state, class)`` report tuples.  :func:`dfa_run`
then executes a tight index-chase loop whose per-symbol work is three list
indexing operations — no NumPy dispatch, no set manipulation — which is
what buys the 10x+ MB/s over the bit-packed engine recorded in
``BENCH_engine.json``.

Feasibility is gated twice, honoring the same limits the advisory uses
(DESIGN.md §13): the subset-state budget (``DEFAULT_DFA_BUDGET``,
surfaced as :class:`~repro.nfa.determinize.DeterminizeError` blowup) and
the materialized-table memory budget
(:data:`repro.cost.model.DFA_TABLE_BUDGET`).  Both failure modes raise
:class:`DfaInfeasibleError`; :func:`dfa_feasible` answers the same
question non-destructively without building any table.

Results are bit-identical to the reference engine — reports *and*, when
``track_enabled`` is requested, the ever-enabled set, recovered from the
subset-construction witness each DFA state carries
(``DFA.subsets``) — property-gated by ``tests/test_dfa_backend.py`` and
the cross-engine suite.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import bitops
from ..nfa.automaton import Network
from ..nfa.symbolset import ALPHABET_SIZE
from .engine import as_input_array
from .result import SimResult, reports_to_array

# ``repro.nfa.determinize`` itself imports ``repro.sim.result``, which
# executes this package's __init__ (and therefore this module) while
# determinize is still half-built — so the determinize import must stay
# function-local (compile_dfa) / type-only here.
if TYPE_CHECKING:
    from ..nfa.determinize import DFA

__all__ = [
    "CompiledDFA",
    "DfaInfeasibleError",
    "compile_determinized",
    "compile_dfa",
    "dfa_feasible",
    "dfa_run",
    "dfa_table_dtype",
]

InputLike = Union[bytes, bytearray, str, np.ndarray, Sequence[int]]


class DfaInfeasibleError(RuntimeError):
    """The network cannot be executed as a table-driven DFA.

    Raised when subset construction bursts the state budget, or when the
    proven DFA's materialized table would exceed the memory budget.
    """


def dfa_table_dtype(n_dfa_states: int) -> "np.dtype[np.unsignedinteger]":
    """Smallest unsigned dtype that can index ``n_dfa_states`` states.

    Must stay consistent with :func:`repro.cost.model.dfa_entry_bytes`, the
    pre-build estimate the feasibility gate prices tables with — pinned by
    a cross-check in ``tests/test_dfa_backend.py``.
    """
    return np.dtype(np.uint16) if n_dfa_states <= 0xFFFF else np.dtype(np.uint32)


def _default_budgets(
    budget: Optional[int], table_budget: Optional[int]
) -> Tuple[int, int]:
    """Resolve the subset-state and table-byte budgets (deferred imports:
    ``repro.cost`` imports ``repro.sim`` modules, so importing it at module
    scope here would create a package cycle)."""
    from ..cost.explore import DEFAULT_DFA_BUDGET
    from ..cost.model import DFA_TABLE_BUDGET

    return (
        DEFAULT_DFA_BUDGET if budget is None else budget,
        DFA_TABLE_BUDGET if table_budget is None else table_budget,
    )


@dataclass
class CompiledDFA:
    """A materialized table-driven DFA, ready for :func:`dfa_run`.

    ``transitions[s, c]`` is the successor DFA state for symbol class
    ``c``; ``reports[s * n_classes + c]`` / ``reports_mid[...]`` are the
    reporting NFA global ids that transition fires (``reports_mid``
    excludes end-of-data reporters and is used at every position except
    the last); ``subset_masks[s]`` is the packed NFA-state membership of
    DFA state ``s`` (for ever-enabled recovery).
    """

    n_states: int  # DFA subset states
    n_nfa_states: int  # global states of the source network
    n_classes: int  # compressed symbol classes (columns)
    n_words: int  # packed words per NFA state vector
    class_of_symbol: np.ndarray  # (256,) symbol -> class index
    transitions: np.ndarray  # (n_states, n_classes) uint16/uint32
    reports: Tuple[Tuple[int, ...], ...]  # flat (state, class) -> gids
    reports_mid: Tuple[Tuple[int, ...], ...]  # same, eod reporters removed
    subset_masks: np.ndarray  # (n_states, n_words) uint64
    _flat: Optional[List[int]] = field(default=None, repr=False, compare=False)
    _flat_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def table_bytes(self) -> int:
        """Actual footprint: transition table plus the byte->class map."""
        return int(self.transitions.nbytes) + ALPHABET_SIZE

    def __getstate__(self) -> dict:
        """Pickle support for the network store (``repro.grid.store``).

        The lazily-built flat table and its lock are process-local: the
        flat list would bloat the serialized artifact (it is derivable
        from ``transitions``), and a ``threading.Lock`` cannot cross a
        process boundary at all.  Both are rebuilt on first use after
        :meth:`__setstate__`.
        """
        state = dict(self.__dict__)
        state["_flat"] = None
        del state["_flat_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._flat_lock = threading.Lock()

    def run_tables(self) -> Tuple[List[int], Tuple[Tuple[int, ...], ...],
                                  Tuple[Tuple[int, ...], ...]]:
        """Hot-loop tables: a flat Python transition list whose entries are
        pre-multiplied by ``n_classes`` (so ``state`` doubles as the row
        base and one add yields the flat index), plus the report tuples.
        Built lazily, cached on the instance.

        The build is guarded by a lock: serve executes batches
        executor-side, so two workers can race the first call on a shared
        artifact — without the lock they would double-materialize (or, on
        non-CPython memory models, observe a half-assigned attribute).
        The fast path stays lock-free: ``_flat`` is assigned exactly once,
        after the list is fully built.
        """
        flat = self._flat
        if flat is None:
            with self._flat_lock:
                flat = self._flat
                if flat is None:
                    flat = (
                        self.transitions.astype(np.int64).ravel()
                        * self.n_classes
                    ).tolist()
                    self._flat = flat
        return flat, self.reports_mid, self.reports


def _flatten_reports(
    rows: List[List[Tuple[int, ...]]]
) -> Tuple[Tuple[int, ...], ...]:
    return tuple(fired for row in rows for fired in row)


def compile_dfa(
    network: Network,
    *,
    budget: Optional[int] = None,
    table_budget: Optional[int] = None,
) -> CompiledDFA:
    """Determinize ``network`` and materialize the dense execution tables.

    ``budget`` caps subset construction (default
    :data:`repro.cost.explore.DEFAULT_DFA_BUDGET`); ``table_budget`` caps
    the materialized transition-table bytes (default
    :data:`repro.cost.model.DFA_TABLE_BUDGET`).  Raises
    :class:`DfaInfeasibleError` when either gate fails, so callers have a
    single feasibility surface regardless of *why* the DFA is off the
    table.
    """
    from ..nfa.determinize import DeterminizeError, determinize

    state_budget, byte_budget = _default_budgets(budget, table_budget)
    try:
        dfa = determinize(network, max_states=state_budget)
    except DeterminizeError as exc:
        raise DfaInfeasibleError(
            f"subset construction burst the {state_budget}-state budget: {exc}"
        ) from exc
    compiled = compile_determinized(network, dfa)
    if compiled.table_bytes > byte_budget:
        raise DfaInfeasibleError(
            f"DFA table needs {compiled.table_bytes} B "
            f"({compiled.n_states} states x {compiled.n_classes} classes x "
            f"{compiled.transitions.dtype.itemsize} B) "
            f"> budget {byte_budget} B"
        )
    return compiled


def compile_determinized(network: Network, dfa: DFA) -> CompiledDFA:
    """Pack an already-determinized :class:`~repro.nfa.determinize.DFA`.

    Split out of :func:`compile_dfa` so tests and callers holding a DFA
    (e.g. the advisory soundness replay) can build execution tables
    without re-running subset construction.  Applies no budget gates.
    """
    n_nfa = network.n_states
    n_words = bitops.num_words(max(n_nfa, 1))
    dtype = dfa_table_dtype(dfa.n_states)
    transitions = np.ascontiguousarray(dfa.transitions.astype(dtype))
    subset_masks = np.zeros((dfa.n_states, n_words), dtype=np.uint64)
    for index, subset in enumerate(dfa.subsets):
        if subset:
            subset_masks[index] = bitops.from_indices(sorted(subset), max(n_nfa, 1))
    return CompiledDFA(
        n_states=dfa.n_states,
        n_nfa_states=n_nfa,
        n_classes=dfa.n_classes,
        n_words=n_words,
        class_of_symbol=dfa.class_of_symbol,
        transitions=transitions,
        reports=_flatten_reports(dfa.reports),
        reports_mid=_flatten_reports(dfa.reports_mid),
        subset_masks=subset_masks,
    )


def dfa_feasible(
    network: Network,
    *,
    budget: Optional[int] = None,
    table_budget: Optional[int] = None,
) -> bool:
    """Whether :func:`compile_dfa` would succeed, without building tables.

    Runs the budgeted subset-construction explorer (cheap bitmask walk, no
    transition rows) and prices the would-be table with the actual entry
    dtype — the same two gates :func:`compile_dfa` enforces.
    """
    from ..cost.explore import explore_subset_construction
    from ..cost.model import dfa_entry_bytes

    state_budget, byte_budget = _default_budgets(budget, table_budget)
    exploration = explore_subset_construction(network, budget=state_budget)
    if not exploration.dfa_safe:
        return False
    table_bytes = (
        exploration.n_subset_states
        * exploration.n_classes
        * dfa_entry_bytes(exploration.n_subset_states)
        + ALPHABET_SIZE
    )
    return table_bytes <= byte_budget


def dfa_run(
    compiled: CompiledDFA,
    input_data: InputLike,
    *,
    track_enabled: bool = False,
) -> SimResult:
    """Consume ``input_data``; return a :class:`SimResult` bit-identical to
    the reference engine's.

    The hot loop is pure Python over flat lists: per symbol, one add (the
    pre-multiplied state base plus the symbol's class), one report-tuple
    index plus an emptiness branch, and one transition-list index.  With
    ``track_enabled`` the loop additionally records each visited DFA state
    (one set-add per symbol) and recovers the NFA-level ever-enabled
    vector afterwards by OR-ing the visited states' subset masks.
    """
    symbols = as_input_array(input_data)
    n = int(symbols.size)
    classes: List[int] = (
        compiled.class_of_symbol[symbols].tolist() if n else []
    )
    trans, mid, full = compiled.run_tables()
    out: List[Tuple[int, int]] = []
    append = out.append
    state = 0  # pre-multiplied row base of the initial DFA state (index 0)
    ever = np.zeros(compiled.n_words, dtype=np.uint64)
    if n:
        last = n - 1
        if track_enabled:
            visited = {0}
            for position in range(last):
                idx = state + classes[position]
                fired = mid[idx]
                if fired:
                    for gid in fired:
                        append((position, gid))
                state = trans[idx]
                visited.add(state)
            rows = np.fromiter(
                (base // compiled.n_classes for base in visited),
                dtype=np.int64,
                count=len(visited),
            )
            ever = np.bitwise_or.reduce(compiled.subset_masks[rows], axis=0)
        else:
            for position in range(last):
                idx = state + classes[position]
                fired = mid[idx]
                if fired:
                    for gid in fired:
                        append((position, gid))
                state = trans[idx]
        idx = state + classes[last]
        for gid in full[idx]:
            append((last, gid))
    return SimResult(
        n_states=compiled.n_nfa_states,
        n_symbols=n,
        cycles=n,
        reports=reports_to_array(out),
        ever_enabled=ever,
    )
