"""Multi-stream lock-step execution: K input streams through one network.

The scalar engine (:func:`repro.sim.run`) pays a fixed amount of Python and
NumPy-dispatch overhead *per input symbol*.  When many independent streams
must be run through the *same* :class:`CompiledNetwork` — the Parallel-AP
segments of one input, a batch of separate inputs in a serving scenario —
that overhead multiplies by the stream count even though every stream
executes the identical datapath.

This module amortizes it: the K enabled vectors live in one 2-D
``(K, n_words)`` uint64 bit matrix and every cycle advances *all* streams
with a handful of whole-matrix NumPy operations (CAMA-style input-batched
lock-step execution):

* ``accept`` rows for the K current symbols are gathered with one
  ``np.take``;
* activation is a single matrix AND;
* activated states across all streams are extracted from the flattened
  matrix in one pass (flat bit ``b`` encodes stream ``b // (64*n_words)``,
  state ``b % (64*n_words)``) — via a single Python big-int when the matrix
  is small, via packed-word expansion when it is large;
* successor propagation gathers packed successor masks for every activated
  state and combines them per stream with one ``bitwise_or.reduceat`` over
  the stream-sorted rows (CSR-expansion fallback for very large networks).

Streams may have different lengths (ragged): a stream that ends simply goes
dead — its lane is zeroed and contributes no further activity, reports, or
hot-set accumulation.  Zero-length streams never enter the matrix at all
(they get their trivial empty result directly), and zero streams return an
empty list; neither is an error, because a serving batch may legitimately
shrink to nothing after deadline expiry.  Each stream's result is
bit-identical to running it alone through :func:`repro.sim.run`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .. import bitops
from .compiled import CompiledNetwork, gather_csr
from .engine import as_input_array
from .result import SimResult, reports_to_array

__all__ = ["run_multi"]

#: Use per-stream big-int bit extraction while each lane stays at most this
#: many words and the stream count is moderate; beyond that, whole-matrix
#: packed-word NumPy expansion wins.
_BIGINT_WORD_LIMIT = 512
_BIGINT_STREAM_LIMIT = 24


def _pad_streams(streams: Sequence[np.ndarray], length: int) -> np.ndarray:
    """Stack streams into an ``(L, K)`` uint8 matrix (row = one position)."""
    matrix = np.zeros((len(streams), length), dtype=np.uint8)
    for row, stream in enumerate(streams):
        matrix[row, : stream.size] = stream
    # Row-per-position layout makes the per-cycle column access contiguous.
    return np.ascontiguousarray(matrix.T)


def _ragged_maps(lengths: Sequence[int]) -> Tuple[Dict[int, List[int]], Dict[int, List[int]]]:
    """``position -> rows`` maps: rows that die there / consume their last
    symbol there.  Ragged handling costs nothing for equal lengths."""
    dying: Dict[int, List[int]] = {}
    ending: Dict[int, List[int]] = {}
    for row, length in enumerate(lengths):
        dying.setdefault(length, []).append(row)
        ending.setdefault(length - 1, []).append(row)
    return dying, ending


def run_multi(
    compiled: CompiledNetwork,
    streams: Sequence,
    *,
    track_enabled: bool = False,
) -> List[SimResult]:
    """Run ``streams`` through ``compiled`` in lock-step.

    Returns one :class:`SimResult` per stream, in order, each identical to
    ``run(compiled, stream, track_enabled=track_enabled)`` — reports use
    stream-relative positions and ``ever_enabled`` covers only cycles in
    which that stream consumed a symbol.
    """
    inputs = [as_input_array(stream) for stream in streams]
    k = len(inputs)
    n_words = compiled.n_words
    if k == 0:
        # Degenerate: no streams, no results (not an error — a serving
        # batch whose every member expired dispatches as empty).
        return []
    lengths = [int(s.size) for s in inputs]

    reports: List[List] = [[] for _ in range(k)]
    ever = np.zeros((k, n_words), dtype=np.uint64) if track_enabled else None
    # Zero-length streams consume no symbols, report nothing, and enable
    # nothing; give them their trivial result directly instead of carrying
    # a dead lane (or a ragged-map entry at position 0) through every cycle.
    live = [row for row, length in enumerate(lengths) if length]
    if live:
        live_inputs = [inputs[row] for row in live]
        live_lengths = [lengths[row] for row in live]
        # Aliases into `reports`, so the lock-step loops fill the right slots.
        live_reports = [reports[row] for row in live]
        live_ever = ever[live] if ever is not None else None
        sym_rows = _pad_streams(live_inputs, max(live_lengths))
        if n_words <= _BIGINT_WORD_LIMIT and len(live) <= _BIGINT_STREAM_LIMIT:
            _lockstep_bigint(compiled, sym_rows, live_lengths, live_reports, live_ever)
        else:
            _lockstep_packed(compiled, sym_rows, live_lengths, live_reports, live_ever)
        if ever is not None:
            ever[live] = live_ever  # fancy indexing copied; scatter back

    zero = np.zeros(n_words, dtype=np.uint64)
    return [
        SimResult(
            n_states=compiled.n_states,
            n_symbols=lengths[row],
            cycles=lengths[row],
            reports=reports_to_array(reports[row]),
            ever_enabled=ever[row].copy() if track_enabled else zero.copy(),
        )
        for row in range(k)
    ]


def _lockstep_bigint(
    compiled: CompiledNetwork,
    sym_rows: np.ndarray,
    lengths: List[int],
    reports: List[List],
    ever,
) -> None:
    """Lock-step loop for small-to-medium state matrices.

    Activation stays a whole-matrix NumPy AND; activated-bit extraction and
    report masking happen on per-stream Python big-ints sliced out of one
    ``tobytes`` of the activation matrix, so a quiet cycle costs three
    whole-matrix NumPy calls plus one memcmp, and an active cycle adds only
    per-active-stream work.
    """
    k = len(lengths)
    n_words = compiled.n_words
    stride = n_words * 8
    accept = compiled.accept
    start_all = compiled.start_all
    succ_masks = compiled.successor_masks()
    report_int, mid_report_int = compiled.report_ints()
    has_reports = report_int != 0
    has_eod = report_int != mid_report_int
    dying, ending = _ragged_maps(lengths)
    ending_sets = {position: set(rows) for position, rows in ending.items()}
    zero_bytes = b"\x00" * (stride * k)
    zero_chunk = b"\x00" * stride

    start_rows = np.tile(start_all, (k, 1))
    enabled = np.tile(compiled.initial_enabled(), (k, 1))
    active = np.empty((k, n_words), dtype=np.uint64)
    accept_rows = np.empty((k, n_words), dtype=np.uint64)

    for position in range(sym_rows.shape[0]):
        dead = dying.get(position)
        if dead is not None:
            enabled[dead] = 0
            start_rows[dead] = 0
        if ever is not None:
            np.bitwise_or(ever, enabled, out=ever)
        np.take(accept, sym_rows[position], axis=0, out=accept_rows)
        np.bitwise_and(enabled, accept_rows, out=active)
        active_bytes = active.tobytes()
        np.copyto(enabled, start_rows)
        if active_bytes == zero_bytes:
            continue
        at_end = ending_sets.get(position) if has_eod else None
        # Group activated states by stream, slicing each stream's lane out of
        # the packed matrix (keeps big-int ops O(lane), not O(matrix)).
        gids: List[int] = []
        seg_starts: List[int] = []
        rows: List[int] = []
        for row in range(k):
            chunk = active_bytes[row * stride : (row + 1) * stride]
            if chunk == zero_chunk:
                continue
            row_int = int.from_bytes(chunk, "little")
            if has_reports:
                mask = report_int if at_end is not None and row in at_end else mid_report_int
                hits = row_int & mask
                while hits:
                    low = hits & -hits
                    reports[row].append((position, low.bit_length() - 1))
                    hits ^= low
            seg_starts.append(len(gids))
            rows.append(row)
            while row_int:
                low = row_int & -row_int
                gids.append(low.bit_length() - 1)
                row_int ^= low
        if succ_masks is not None:
            gid_arr = np.fromiter(gids, dtype=np.int64, count=len(gids))
            seg_arr = np.fromiter(seg_starts, dtype=np.int64, count=len(seg_starts))
            merged = np.bitwise_or.reduceat(succ_masks[gid_arr], seg_arr, axis=0)
            enabled[rows] = merged | start_all
        else:
            boundaries = seg_starts[1:] + [len(gids)]
            for row, begin, end in zip(rows, seg_starts, boundaries):
                successors = gather_csr(
                    compiled.indptr, compiled.indices,
                    np.fromiter(gids[begin:end], dtype=np.int64, count=end - begin),
                )
                bitops.set_indices(enabled[row], successors)


def _lockstep_packed(
    compiled: CompiledNetwork,
    sym_rows: np.ndarray,
    lengths: List[int],
    reports: List[List],
    ever,
) -> None:
    """Lock-step loop for large state matrices: packed-word NumPy expansion
    of activated bits (the big-int ops would be O(matrix size) per extracted
    bit), with one segmented ``bitwise_or.reduceat`` per cycle."""
    k = len(lengths)
    n_words = compiled.n_words
    full_bits = n_words * 64
    accept = compiled.accept
    start_all = compiled.start_all
    report_mask = compiled.report_mask
    mid_report_mask = report_mask & ~compiled.eod_mask
    has_reports = bool(report_mask.any())
    has_eod = bool(compiled.eod_mask.any())
    succ_masks = compiled.successor_masks()
    indptr = compiled.indptr
    indices = compiled.indices
    dying, ending = _ragged_maps(lengths)

    start_rows = np.tile(start_all, (k, 1))
    enabled = np.tile(compiled.initial_enabled(), (k, 1))
    active = np.empty((k, n_words), dtype=np.uint64)
    accept_rows = np.empty((k, n_words), dtype=np.uint64)
    hits = np.empty((k, n_words), dtype=np.uint64)

    for position in range(sym_rows.shape[0]):
        dead = dying.get(position)
        if dead is not None:
            enabled[dead] = 0
            start_rows[dead] = 0
        if ever is not None:
            np.bitwise_or(ever, enabled, out=ever)
        np.take(accept, sym_rows[position], axis=0, out=accept_rows)
        np.bitwise_and(enabled, accept_rows, out=active)
        bits = bitops.to_indices(active.reshape(-1))
        np.copyto(enabled, start_rows)
        if bits.size == 0:
            continue
        if has_reports:
            np.bitwise_and(active, mid_report_mask, out=hits)
            if has_eod:
                at_end = ending.get(position)
                if at_end is not None:
                    hits[at_end] = active[at_end] & report_mask
            if hits.any():
                for bit in bitops.to_indices(hits.reshape(-1)).tolist():
                    reports[bit // full_bits].append((position, bit % full_bits))
        stream_ids, gids = np.divmod(bits, full_bits)
        if succ_masks is not None:
            # One segmented OR per stream: ``bits`` is ascending, so rows of
            # the gathered mask matrix are already grouped by stream.
            seg_starts = np.concatenate(
                ([0], np.flatnonzero(stream_ids[1:] != stream_ids[:-1]) + 1)
            )
            merged = np.bitwise_or.reduceat(succ_masks[gids], seg_starts, axis=0)
            enabled[stream_ids[seg_starts]] = merged | start_all
        else:
            starts = indptr[gids]
            counts = indptr[gids + 1] - starts
            total = int(counts.sum())
            if total:
                cum = np.cumsum(counts)
                within = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
                successors = indices[np.repeat(starts, counts) + within]
                bitops.set_indices(
                    enabled.reshape(-1),
                    np.repeat(stream_ids, counts) * full_bits + successors,
                )
