"""Hybrid simulation: STE networks extended with counters and boolean gates.

Cycle semantics (matching VASim / the D480 design notes):

1. STE activations for the current symbol are computed exactly as in the
   plain engines (enabled AND accept).
2. Elements evaluate in id order (the :class:`ElementNetwork` constructor
   guarantees that order is topological): gates combinationally; counters
   increment on an asserted count input, reset (with priority) on an
   asserted reset input, and assert their output per their at-target mode.
3. Reports are collected from reporting STEs *and* reporting elements.
4. The next cycle's enabled set is the union of STE fan-out, element
   enables, and all-input start states.

Built on the transparent set-based style of the reference engine: special
elements are rare (a handful per machine on real AP designs), so clarity
wins over bit-packing here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from ..nfa.automaton import StartKind
from ..nfa.elements import Counter, CounterMode, ElementNetwork, Gate, GateKind
from .engine import as_input_array
from .result import reports_to_array

__all__ = ["HybridResult", "hybrid_run"]

#: Element reports use ids above the STE space: gid = n_states + element_id.
def element_report_id(network: ElementNetwork, element_id: int) -> int:
    return network.network.n_states + element_id


@dataclass
class HybridResult:
    """Reports from a hybrid run; element reports use offset ids."""

    n_symbols: int
    reports: "object"  # (m, 2) array: (position, ste gid or offset element id)
    final_counts: List[int]  # per-counter value after the run (0 for gates)


def _gate_value(gate: Gate, ste_active: Set[int], element_out: List[bool]) -> bool:
    values = [
        (index in ste_active) if kind == "ste" else element_out[index]
        for kind, index in gate.inputs
    ]
    if gate.kind is GateKind.AND:
        return all(values)
    if gate.kind is GateKind.OR:
        return any(values)
    if gate.kind is GateKind.NOR:
        return not any(values)
    return not values[0]  # NOT


def hybrid_run(element_network: ElementNetwork, input_data) -> HybridResult:
    """Simulate STEs plus special elements over the input stream."""
    network = element_network.network
    symbols = as_input_array(input_data)

    # Flatten STE tables (reference-engine style).
    symbol_sets, starts, reporting, eod, successors = [], [], [], [], []
    offsets = network.offsets()
    for a_index, automaton in enumerate(network.automata):
        base = offsets[a_index]
        for state in automaton.states():
            symbol_sets.append(state.symbol_set)
            starts.append(state.start)
            reporting.append(state.reporting)
            eod.append(state.eod)
            successors.append([base + d for d in automaton.successors(state.sid)])

    n = len(symbol_sets)
    always = {gid for gid in range(n) if starts[gid] is StartKind.ALL_INPUT}
    enabled: Set[int] = set(always)
    enabled |= {gid for gid in range(n) if starts[gid] is StartKind.START_OF_DATA}

    elements = element_network.elements
    counts = [0] * len(elements)
    latched = [False] * len(elements)
    reports: List[Tuple[int, int]] = []

    for position in range(symbols.size):
        symbol = int(symbols[position])
        ste_active = {
            gid for gid in enabled if symbol_sets[gid].matches(symbol)
        }
        for gid in sorted(ste_active):
            if reporting[gid] and (not eod[gid] or position == symbols.size - 1):
                reports.append((position, gid))

        # Evaluate elements in topological (id) order.
        element_out: List[bool] = [False] * len(elements)
        for element_id, element in enumerate(elements):
            if isinstance(element, Gate):
                out = _gate_value(element, ste_active, element_out)
            else:
                counter: Counter = element
                count = any(
                    ((kind == "ste" and index in ste_active)
                     or (kind == "element" and element_out[index]))
                    for kind, index in counter.count_inputs
                )
                reset = any(
                    ((kind == "ste" and index in ste_active)
                     or (kind == "element" and element_out[index]))
                    for kind, index in counter.reset_inputs
                )
                out = False
                if reset:
                    counts[element_id] = 0
                    latched[element_id] = False
                elif count and counts[element_id] < counter.target:
                    # The count saturates at the target; output asserts on
                    # the reaching transition (and stays on when latched).
                    counts[element_id] += 1
                    if counts[element_id] == counter.target:
                        out = True
                        if counter.mode is CounterMode.LATCH:
                            latched[element_id] = True
                        elif counter.mode is CounterMode.ROLL:
                            counts[element_id] = 0
                if latched[element_id]:
                    out = True
            element_out[element_id] = out
            element_reporting = getattr(element, "reporting", False)
            if out and element_reporting:
                reports.append((position, element_report_id(element_network, element_id)))

        # Next cycle's enabled set: STE fan-out + element enables + starts.
        enabled = set(always)
        for gid in ste_active:
            enabled.update(successors[gid])
        for element_id, asserted in enumerate(element_out):
            if asserted:
                enabled.update(element_network.enables.get(element_id, ()))

    return HybridResult(
        n_symbols=int(symbols.size),
        reports=reports_to_array(reports),
        final_counts=list(counts),
    )
