"""Report decoding: turn raw ``(position, state)`` pairs into user-facing
match records (machine name, report code, mismatch budget, ...).

The engines deliberately return raw id pairs (that is what the AP's output
region holds); this module is the host-side decoder a deployed application
would run over the drained report buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..nfa.automaton import Network

__all__ = ["DecodedReport", "decode_reports", "reports_by_code"]


@dataclass(frozen=True)
class DecodedReport:
    """One match event, resolved against the network that produced it."""

    position: int
    automaton: str
    code: Optional[str]
    state_label: str

    def __str__(self) -> str:
        code = self.code if self.code is not None else self.automaton
        return f"{code} @ {self.position}"


def decode_reports(network: Network, reports: np.ndarray) -> List[DecodedReport]:
    """Resolve raw ``(position, global_state)`` reports against ``network``."""
    arr = np.asarray(reports)
    if arr.size == 0:
        return []
    out: List[DecodedReport] = []
    offsets = network.offsets()
    for position, gid in arr.reshape(-1, 2):
        a_index, sid = network.locate(int(gid))
        state = network.automata[a_index].state(sid)
        out.append(
            DecodedReport(
                position=int(position),
                automaton=network.automata[a_index].name,
                code=state.report_code,
                state_label=state.label,
            )
        )
    return out


def reports_by_code(network: Network, reports: np.ndarray) -> Dict[str, List[int]]:
    """Group match positions by report code (falling back to machine name)."""
    grouped: Dict[str, List[int]] = {}
    for decoded in decode_reports(network, reports):
        key = decoded.code if decoded.code is not None else decoded.automaton
        grouped.setdefault(key, []).append(decoded.position)
    return grouped
