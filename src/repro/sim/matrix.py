"""Matrix-form simulation engine (SciPy sparse linear-algebra formulation).

A third, independently-derived implementation of the NFA step used to
cross-validate the bit-packed engine: the enabled vector is a boolean
array, activation is an elementwise AND with the accept matrix row, and
successor propagation is a sparse boolean matrix-vector product with the
transposed adjacency matrix —

    active  = enabled & accept[symbol]
    enabled' = (A^T @ active) | start_all

This is the textbook "NFA as linear algebra over the boolean semiring"
formulation.  It is slower than :mod:`repro.sim.engine` on sparse activity
(it always touches every state) but algorithmically transparent, and its
results must match the other engines bit for bit.
"""

from __future__ import annotations

from typing import List

import numpy as np
from scipy import sparse

from .. import bitops
from ..nfa.automaton import Network, StartKind
from ..nfa.symbolset import ALPHABET_SIZE
from .engine import as_input_array
from .result import SimResult, reports_to_array

__all__ = ["MatrixNetwork", "matrix_compile", "matrix_run"]


class MatrixNetwork:
    """Boolean-matrix form of a network."""

    def __init__(self, network: Network):
        n = network.n_states
        self.n_states = n
        accept = np.zeros((ALPHABET_SIZE, n), dtype=bool)
        start_all = np.zeros(n, dtype=bool)
        start_sod = np.zeros(n, dtype=bool)
        reporting = np.zeros(n, dtype=bool)
        eod = np.zeros(n, dtype=bool)
        rows: List[int] = []
        cols: List[int] = []
        offsets = network.offsets()
        for gid, a_index, state in network.global_states():
            accept[:, gid] = state.symbol_set.to_bool_array()
            if state.start is StartKind.ALL_INPUT:
                start_all[gid] = True
            elif state.start is StartKind.START_OF_DATA:
                start_sod[gid] = True
            reporting[gid] = state.reporting
            eod[gid] = state.eod
            base = offsets[a_index]
            for dst in network.automata[a_index].successors(state.sid):
                rows.append(base + dst)
                cols.append(gid)
        self.accept = accept
        self.start_all = start_all
        self.start_sod = start_sod
        self.reporting = reporting
        self.eod = eod
        # adjacency_t[dst, src]: dst enabled when src activated.
        self.adjacency_t = sparse.csr_matrix(
            (np.ones(len(rows), dtype=bool), (rows, cols)), shape=(n, n), dtype=bool
        )


def matrix_compile(network: Network) -> MatrixNetwork:
    """Build the boolean-matrix representation."""
    return MatrixNetwork(network)


def matrix_run(compiled: MatrixNetwork, input_data) -> SimResult:
    """Run the matrix engine; result fields match :func:`repro.sim.run`."""
    symbols = as_input_array(input_data)
    n = compiled.n_states
    enabled = compiled.start_all | compiled.start_sod
    ever = np.zeros(n, dtype=bool)
    reports: List = []
    for position in range(symbols.size):
        ever |= enabled
        active = enabled & compiled.accept[symbols[position]]
        mask = compiled.reporting if position == symbols.size - 1 else (
            compiled.reporting & ~compiled.eod
        )
        fired = active & mask
        if fired.any():
            for gid in np.flatnonzero(fired):
                reports.append((position, int(gid)))
        enabled = compiled.adjacency_t.dot(active) | compiled.start_all
    return SimResult(
        n_states=n,
        n_symbols=int(symbols.size),
        cycles=int(symbols.size),
        reports=reports_to_array(reports),
        ever_enabled=bitops.from_bool(ever) if n else bitops.empty(1),
    )
