"""Bounded-subset lazy-DFA hybrid: memoized subset states with NFA fallback.

The table-driven backend (:mod:`repro.sim.dfa`) only serves partitions the
budgeted explorer proves DFA-safe; the blowup cases (LV, ER, SPM, Fermi,
Brill at bench scale) are exactly where the paper's large-scale workloads
live.  But for many such patterns the *visited* subset space per input is
tiny even when the *reachable* space explodes (the DFA-vs-NFA tradeoff
literature in PAPERS.md), so this module executes the subset construction
*lazily*: an LRU-capped cache maps each subset actually reached during
execution to a per-symbol-class row of ``(successor, report tuples)``
cells, materialized on first use from the same
:class:`~repro.nfa.determinize.NetworkTables` substrate ``determinize``
walks — one cache entry per (subset, class) pair ever exercised, never the
full reachable table.

Execution (DESIGN.md §14):

* **Hit** — the current subset's cell for the input's symbol class exists
  and its successor link points at a live cached row: emit the
  pre-computed report tuple and follow the link.  Per-symbol work is a
  list index, a tuple unpack, and an attribute check — DFA speed.
* **Miss** — the cell is empty: perform a single bit-parallel NFA step
  (big-int AND with the class accept mask, OR of successor masks, plus
  the ``always`` re-enable — semantically identical to one
  :func:`repro.sim.engine.run` cycle), memoize the resulting cell, and
  re-enter the cache at the successor subset.
* **Eviction** — rows beyond ``capacity`` are dropped LRU-first; evicted
  rows are tombstoned (``live = False``) so stale successor links repair
  themselves through a cache lookup on next use.
* **Churn burst** — when one input evicts more than
  ``capacity * churn_factor`` rows, the cache is clearly thrashing for
  this input: new-row insertion stops for the remainder of the run and
  uncached subsets execute as pure fallback steps (the cache still serves
  hits, and execution re-enters it whenever a step lands on a cached
  subset).

Subset keys are Python big-ints (bit ``g`` = global state ``g``), the same
encoding the budgeted explorer uses, so ``track_enabled`` recovery is an
OR over the visited subset keys — each cached row *is* its own
subset-construction witness.  Results are bit-identical to the reference
engine (reports and ever-enabled), gated by the cross-engine equivalence
suite including adversarial capacity-1/2 runs that force every fallback
path.

A compiled artifact is safe to share across threads: :func:`lazydfa_run`
holds the artifact's lock for the duration of a run (the cache is shared
mutable state), serializing concurrent executor-side batches the way
``repro.serve`` issues them.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..nfa.automaton import Network
from .engine import as_input_array
from .result import SimResult, reports_to_array

__all__ = [
    "DEFAULT_LAZY_CAPACITY",
    "DEFAULT_CHURN_FACTOR",
    "CompiledLazyDfa",
    "compile_lazydfa",
    "lazydfa_run",
]

InputLike = Union[bytes, bytearray, str, np.ndarray, Sequence[int]]

#: Default LRU capacity (cached subset rows).  Sized so a worst-case row
#: set (a few dozen classes x a few dozen bytes per cell) stays well under
#: the DFA table budget while covering every per-input visited set seen in
#: the 26-app registry with room to spare.
DEFAULT_LAZY_CAPACITY = 2048

#: An input that evicts more than ``capacity * churn_factor`` rows is
#: thrashing: stop inserting new rows for the rest of that input.
DEFAULT_CHURN_FACTOR = 4.0

#: One memoized (subset, class) cell: successor subset key, mid-stream
#: report tuple, end-of-data report tuple, and a direct link to the
#: successor's cached row (``None`` when uncached; may be tombstoned).
_Cell = Tuple[int, Tuple[int, ...], Tuple[int, ...], Optional["_Row"]]


class _Row:
    """One cached subset state: its key and lazily-filled per-class cells.

    ``live`` is the eviction tombstone — stale direct links from other
    rows' cells check it and repair through the cache.  Evicted rows drop
    their ``cells`` list so the only retained state is the subset key a
    repair lookup needs.
    """

    __slots__ = ("mask", "cells", "live")

    def __init__(self, mask: int, n_classes: int) -> None:
        self.mask = mask
        self.cells: Optional[List[Optional[_Cell]]] = [None] * n_classes
        self.live = True


def _bits(mask: int) -> List[int]:
    """Indices of set bits, ascending (global state ids of a subset key)."""
    out: List[int] = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


class CompiledLazyDfa:
    """Lazy-DFA execution artifact: flattened masks plus the subset cache.

    Holds the network flattened to big-int masks (per-class accept masks,
    per-state successor masks, always/initial/report masks — the
    determinization view of :func:`repro.nfa.determinize.flatten_network`)
    and the LRU subset cache that persists across runs, so repeated inputs
    over the same artifact execute mostly at table speed.  Lifetime cache
    counters are exposed via :meth:`cache_stats`; :meth:`clear_cache`
    resets both the cache and those counters.
    """

    def __init__(
        self,
        *,
        n_states: int,
        n_classes: int,
        class_of_symbol: np.ndarray,
        class_accept: List[int],
        succ_masks: List[int],
        always_mask: int,
        initial_mask: int,
        report_mask: int,
        mid_report_mask: int,
        capacity: int = DEFAULT_LAZY_CAPACITY,
        churn_factor: float = DEFAULT_CHURN_FACTOR,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"lazy-DFA capacity must be >= 1, got {capacity}")
        if churn_factor <= 0:
            raise ValueError(
                f"lazy-DFA churn factor must be > 0, got {churn_factor}"
            )
        self.n_states = n_states
        self.n_words = (max(n_states, 1) + 63) // 64
        self.n_classes = n_classes
        self.class_of_symbol = class_of_symbol
        self.class_accept = class_accept
        self.succ_masks = succ_masks
        self.always_mask = always_mask
        self.initial_mask = initial_mask
        self.report_mask = report_mask
        self.mid_report_mask = mid_report_mask
        self.capacity = capacity
        self.churn_factor = churn_factor
        # OrderedDict semantics via plain dict: Python dicts preserve
        # insertion order and re-insertion moves a key to the end, which is
        # all the LRU discipline needs.
        self._cache: Dict[int, _Row] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.cell_builds = 0
        self.inserts = 0
        self.evictions = 0
        self.fallback_steps = 0

    def __getstate__(self) -> dict:
        """Pickle support for the network store (``repro.grid.store``).

        The subset cache is process-local by design: its rows hold direct
        next-row object links (and the lock guarding them cannot cross a
        process boundary), so a deserialized artifact starts from the
        post-compile state — empty cache, zero lifetime counters — and
        refills lazily during execution, exactly like a fresh
        :func:`compile_lazydfa` output.
        """
        state = dict(self.__dict__)
        state["_cache"] = {}
        del state["_lock"]
        for counter in ("hits", "cell_builds", "inserts", "evictions",
                        "fallback_steps"):
            state[counter] = 0
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def cache_stats(self) -> Dict[str, int]:
        """Lifetime cache counters plus current occupancy (for benches,
        serve introspection, and the adversarial-cap tests)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._cache),
                "hits": self.hits,
                "cell_builds": self.cell_builds,
                "inserts": self.inserts,
                "evictions": self.evictions,
                "fallback_steps": self.fallback_steps,
            }

    def clear_cache(self) -> None:
        """Drop every cached row (tombstoning them for link repair) and
        zero the lifetime counters — a full reset to the post-compile
        state, so :meth:`cache_stats` after a clear describes only work
        done since the clear."""
        with self._lock:
            for row in self._cache.values():
                row.live = False
                row.cells = None
            self._cache.clear()
            self.hits = 0
            self.cell_builds = 0
            self.inserts = 0
            self.evictions = 0
            self.fallback_steps = 0

    def _step(self, mask: int, cls: int) -> Tuple[int, Tuple[int, ...], Tuple[int, ...]]:
        """One subset-construction transition from ``mask`` on class ``cls``.

        Semantically one :func:`repro.sim.engine.run` cycle: AND with the
        class accept mask, report from the activated states, OR successor
        masks, re-enable the always-start states.
        """
        activated = mask & self.class_accept[cls]
        fired = tuple(_bits(activated & self.report_mask))
        fired_mid = tuple(_bits(activated & self.mid_report_mask))
        nxt = self.always_mask
        succ_masks = self.succ_masks
        while activated:
            low = activated & -activated
            nxt |= succ_masks[low.bit_length() - 1]
            activated ^= low
        return nxt, fired_mid, fired


def compile_lazydfa(
    network: Network,
    *,
    capacity: int = DEFAULT_LAZY_CAPACITY,
    churn_factor: float = DEFAULT_CHURN_FACTOR,
) -> CompiledLazyDfa:
    """Flatten ``network`` into the lazy-DFA masks; no subset construction
    runs here — the cache fills during execution.

    Unlike :func:`repro.sim.dfa.compile_dfa` there is no feasibility gate:
    the cache is bounded by ``capacity`` regardless of how large the
    reachable subset space is, which is the whole point of the hybrid.
    """
    # repro.nfa.determinize imports repro.sim.result, so the import must
    # stay function-local here (same cycle dance as repro.sim.dfa).
    from ..nfa.determinize import (
        alphabet_classes,
        class_representatives,
        flatten_network,
    )

    tables = flatten_network(network)
    class_of, n_classes = alphabet_classes(network)
    representative = class_representatives(class_of, n_classes)
    n = tables.n_states

    succ_masks: List[int] = []
    for gid in range(n):
        mask = 0
        for successor in tables.successors[gid]:
            mask |= 1 << successor
        succ_masks.append(mask)

    class_accept = [0] * n_classes
    for gid, symbol_set in enumerate(tables.symbol_sets):
        bit = 1 << gid
        for cls in range(n_classes):
            if symbol_set.matches(int(representative[cls])):
                class_accept[cls] |= bit

    report_mask = 0
    mid_report_mask = 0
    for gid in range(n):
        if tables.reporting[gid]:
            report_mask |= 1 << gid
            if not tables.eod[gid]:
                mid_report_mask |= 1 << gid

    always_mask = 0
    for gid in tables.always:
        always_mask |= 1 << gid
    initial_mask = 0
    for gid in tables.initial:
        initial_mask |= 1 << gid

    return CompiledLazyDfa(
        n_states=n,
        n_classes=n_classes,
        class_of_symbol=class_of,
        class_accept=class_accept,
        succ_masks=succ_masks,
        always_mask=always_mask,
        initial_mask=initial_mask,
        report_mask=report_mask,
        mid_report_mask=mid_report_mask,
        capacity=capacity,
        churn_factor=churn_factor,
    )


def lazydfa_run(
    compiled: CompiledLazyDfa,
    input_data: InputLike,
    *,
    track_enabled: bool = False,
) -> SimResult:
    """Consume ``input_data``; return a :class:`SimResult` bit-identical to
    the reference engine's.

    Holds the artifact's lock for the whole run (the subset cache is
    shared mutable state; serve executes batches executor-side).  With
    ``track_enabled`` the loop records each visited subset key and ORs
    them afterwards — the cached rows double as subset witnesses, mirroring
    the eager backend's ``subset_masks`` recovery.
    """
    symbols = as_input_array(input_data)
    n = int(symbols.size)
    classes: List[int] = (
        compiled.class_of_symbol[symbols].tolist() if n else []
    )
    out: List[Tuple[int, int]] = []
    append = out.append
    visited: Set[int] = set()

    with compiled._lock:
        cache = compiled._cache
        n_classes = compiled.n_classes
        capacity = compiled.capacity
        churn_limit = compiled.capacity * compiled.churn_factor
        caching = True
        run_evictions = 0
        hits = builds = inserts = evictions = fallback = 0

        def lookup(mask: int) -> Optional[_Row]:
            """Cache probe; inserts a fresh row unless churn disabled it."""
            nonlocal hits, inserts, evictions, run_evictions, caching
            found = cache.get(mask)
            if found is not None:
                del cache[mask]  # re-insertion refreshes LRU recency
                cache[mask] = found
                hits += 1
                return found
            if not caching:
                return None
            made = _Row(mask, n_classes)
            cache[mask] = made
            inserts += 1
            if len(cache) > capacity:
                old = cache.pop(next(iter(cache)))
                old.live = False
                old.cells = None
                evictions += 1
                run_evictions += 1
                if run_evictions > churn_limit:
                    caching = False
            return made

        cur = compiled.initial_mask
        row = lookup(cur)
        last = n - 1
        for position in range(n):
            if track_enabled:
                visited.add(cur)
            cls = classes[position]
            if row is not None:
                cells = row.cells
                assert cells is not None  # live rows always hold cells
                cell = cells[cls]
                if cell is None:
                    nxt_mask, fired_mid, fired_full = compiled._step(
                        row.mask, cls
                    )
                    builds += 1
                    nxt_row = row if nxt_mask == cur else lookup(nxt_mask)
                    cell = (nxt_mask, fired_mid, fired_full, nxt_row)
                    cells[cls] = cell
                else:
                    nxt_row = cell[3]
                    if nxt_row is not None and not nxt_row.live:
                        nxt_row = lookup(cell[0])
                        cell = (cell[0], cell[1], cell[2], nxt_row)
                        cells[cls] = cell
                    elif nxt_row is None:
                        nxt_row = lookup(cell[0])
                        if nxt_row is not None:
                            cell = (cell[0], cell[1], cell[2], nxt_row)
                            cells[cls] = cell
                fired = cell[2] if position == last else cell[1]
                if fired:
                    for gid in fired:
                        append((position, gid))
                cur = cell[0]
                row = nxt_row
            else:
                # Fallback step: the current subset is uncached (churn
                # burst); execute one bit-parallel NFA step and try to
                # re-enter the cache at the successor.
                nxt_mask, fired_mid, fired_full = compiled._step(cur, cls)
                fallback += 1
                fired = fired_full if position == last else fired_mid
                if fired:
                    for gid in fired:
                        append((position, gid))
                cur = nxt_mask
                row = lookup(cur)

        compiled.hits += hits
        compiled.cell_builds += builds
        compiled.inserts += inserts
        compiled.evictions += evictions
        compiled.fallback_steps += fallback

    ever = np.zeros(compiled.n_words, dtype=np.uint64)
    if visited:
        ever_int = 0
        for mask in visited:
            ever_int |= mask
        ever = np.frombuffer(
            ever_int.to_bytes(compiled.n_words * 8, "little"), dtype=np.uint64
        ).copy()
    return SimResult(
        n_states=compiled.n_states,
        n_symbols=n,
        cycles=n,
        reports=reports_to_array(out),
        ever_enabled=ever,
    )
