"""Unified runtime statistics and tracing (`repro.stats`).

The evaluation layer of the reproduction: stage timing for the experiment
pipeline (:class:`StageTimer`), the typed :class:`RunStats` record unifying
every paper counter, a versioned JSON schema with a dependency-free
validator, and the collector that drives the cached pipeline.  Exposed on
the command line as ``python -m repro stats [ABBR ...|--all] [--json]``.

Recording is opt-out via ``REPRO_NO_STATS=1`` (mirroring
``REPRO_NO_VERIFY``); see DESIGN.md §9 for the schema.
"""

from .collect import DEFAULT_STATS_FRACTION, collect_run_stats
from .record import RunStats, render_stats
from .recorder import Span, StageTimer, stats_enabled
from .schema import (
    GRID_SCHEMA_VERSION,
    SCHEMA_VERSION,
    SERVE_SCHEMA,
    SERVE_SCHEMA_V2,
    SERVE_SCHEMA_VERSION,
    SPAN_SCHEMA,
    STATS_SCHEMA,
    SchemaError,
    validate_serve_stats,
    validate_spans,
    validate_stats,
    validate_stats_json,
)

__all__ = [
    "DEFAULT_STATS_FRACTION",
    "GRID_SCHEMA_VERSION",
    "SCHEMA_VERSION",
    "SERVE_SCHEMA",
    "SERVE_SCHEMA_V2",
    "SERVE_SCHEMA_VERSION",
    "SPAN_SCHEMA",
    "STATS_SCHEMA",
    "RunStats",
    "SchemaError",
    "Span",
    "StageTimer",
    "collect_run_stats",
    "render_stats",
    "stats_enabled",
    "validate_serve_stats",
    "validate_spans",
    "validate_stats",
    "validate_stats_json",
]
