"""Stage timing: a lightweight wall-time/call-count recorder.

Every expensive stage of the experiment pipeline (build, compile, profile,
partition, the three scenarios) runs under a :class:`StageTimer` span, so a
run can report where its wall time went without any external profiler.
Recording is a single ``perf_counter`` pair per *stage* (never per input
symbol), which keeps it invisible next to the stages themselves; setting
``REPRO_NO_STATS=1`` (mirroring ``REPRO_NO_VERIFY``) disables even that.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List

__all__ = ["Span", "StageTimer", "stats_enabled"]


def stats_enabled() -> bool:
    """Whether stage recording is on (the ``REPRO_NO_STATS=1`` escape hatch)."""
    return os.environ.get("REPRO_NO_STATS") != "1"


@dataclass(frozen=True)
class Span:
    """Accumulated timing for one named stage."""

    name: str
    calls: int
    seconds: float

    def to_json(self) -> dict:
        return {"name": self.name, "calls": self.calls, "seconds": self.seconds}


class _SpanHandle:
    """Context manager for one timed entry into a stage."""

    __slots__ = ("_timer", "_name", "_began")

    def __init__(self, timer: "StageTimer", name: str):
        self._timer = timer
        self._name = name
        self._began = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._began = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._timer._record(self._name, time.perf_counter() - self._began)


class _NullHandle:
    """No-op handle returned by a disabled timer (one shared instance)."""

    __slots__ = ()

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_HANDLE = _NullHandle()


class StageTimer:
    """Accumulates wall time and call counts per stage name.

    ``enabled=None`` defers to the ``REPRO_NO_STATS`` environment variable.
    A disabled timer hands out a shared no-op context manager, so wrapping a
    stage costs two attribute lookups and nothing else.

    Accumulation is thread-safe: the match server records spans from the
    event loop and its executor workers into one timer.
    """

    def __init__(self, enabled: bool = None):  # type: ignore[assignment]
        self.enabled = stats_enabled() if enabled is None else bool(enabled)
        self._calls: Dict[str, int] = {}
        self._seconds: Dict[str, float] = {}
        self._mutex = threading.Lock()

    def stage(self, name: str):
        """Context manager timing one entry into ``name``."""
        if not self.enabled:
            return _NULL_HANDLE
        return _SpanHandle(self, name)

    def record(self, name: str, seconds: float) -> None:
        """Accumulate one externally-measured duration into ``name``.

        For durations that do not fit a ``with`` block — e.g. a request's
        queue wait computed from two timestamps taken on different tasks.
        """
        if self.enabled:
            self._record(name, seconds)

    def _record(self, name: str, seconds: float) -> None:
        with self._mutex:
            self._calls[name] = self._calls.get(name, 0) + 1
            self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    def spans(self) -> List[Span]:
        """All recorded spans, in first-recorded order."""
        with self._mutex:
            return [
                Span(name=name, calls=self._calls[name], seconds=self._seconds[name])
                for name in self._calls
            ]

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def calls(self, name: str) -> int:
        return self._calls.get(name, 0)

    def to_json(self) -> List[dict]:
        return [span.to_json() for span in self.spans()]

    def clear(self) -> None:
        with self._mutex:
            self._calls.clear()
            self._seconds.clear()
