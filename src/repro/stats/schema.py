"""Versioned JSON schema for exported run statistics.

The exporter stamps every document with ``schema_version``; the validator
here is dependency-free (no ``jsonschema`` in the container) and checks the
same things a JSON-Schema draft would for this shape: required keys, value
types, nullability, and nested object/array structure.  CI's ``stats-smoke``
job runs it over the 8-app subset on every push.
"""

from __future__ import annotations

from typing import Any, List

__all__ = [
    "GRID_SCHEMA_VERSION",
    "SCHEMA_VERSION",
    "SERVE_SCHEMA",
    "SERVE_SCHEMA_V2",
    "SERVE_SCHEMA_VERSION",
    "SPAN_SCHEMA",
    "STATS_SCHEMA",
    "STATS_SCHEMA_V2",
    "STATS_SCHEMA_V3",
    "STATS_SCHEMA_V4",
    "SUPPORTED_SERVE_VERSIONS",
    "SUPPORTED_STATS_VERSIONS",
    "SchemaError",
    "validate_serve_stats",
    "validate_spans",
    "validate_stats",
    "validate_stats_json",
]

#: Bump on any backwards-incompatible change to the exported document shape.
#: v2: added the ``semant`` section (static prediction + dead-state proofs).
#: v3: added the ``cost`` section (DFA-safety proofs, symbol-class
#: accounting, per-partition backend advisories — ``repro.cost``).
#: v4: the ``cost`` section gained ``requested_backend`` /
#: ``selected_backend`` — the engine actually chosen for execution (null
#: when the collection did not execute a backend), so a stats export can
#: no longer hide a feasibility substitution.
#: v5: added the ``reduce`` section (states before/after the SPAP-R
#: equivalence-preserving reduction, merges by rule, STE saving, and the
#: downstream effect on baseline batches — ``repro.reduce``).
SCHEMA_VERSION = 5

#: Bump on any backwards-incompatible change to the match server's exported
#: statistics document (``repro.serve``).
#: v2: added the ``grid`` section — the router's merged view of a worker
#: pool (per-worker request rates, spill/failover counts, write-behind
#: merge lag — ``repro.grid``).  Single-process servers keep exporting v1.
SERVE_SCHEMA_VERSION = 1

#: The version the grid router stamps on its merged document (the v2 shape).
GRID_SCHEMA_VERSION = 2

#: One StageTimer span as exported (shared by RunStats and the bench harness).
SPAN_SCHEMA = {"name": "str", "calls": "int", "seconds": "number"}

# (field -> type spec).  Type specs: "int", "number" (int or float), "str",
# "bool"; "number?" marks a nullable leaf; dicts nest; ("array", spec)
# matches a homogeneous list.
STATS_SCHEMA = {
    "schema_version": "int",
    "app": "str",
    "full_name": "str",
    "group": "str",
    "workload": {
        "scale": "int",
        "input_len": "int",
        "profile_fraction": "number",
        "capacity": "int",
        "n_states": "int",
        "n_automata": "int",
    },
    "baseline": {
        "n_batches": "int",
        "cycles": "int",
    },
    "spap": {
        "n_hot_batches": "int",
        "n_cold_batches": "int",
        "base_cycles": "int",
        "consumed_cycles": "int",
        "stall_cycles": "int",
        "cycles": "int",
        "n_intermediate_reports": "int",
        "jump_ratio": "number?",
    },
    "queue": {
        "refills": "int",
        "device_bytes": "int",
        "on_chip_bytes": "int",
    },
    "ap_cpu": {
        "cpu_seconds": "number",
        "n_intermediate_reports": "int",
    },
    "prediction": {
        "hot_fraction": "number",
        "predicted_hot_fraction": "number",
        "accuracy": "number",
        "precision": "number",
        "recall": "number",
    },
    "semant": {
        "n_statically_dead": "int",
        "n_never_reporting": "int",
        "static_hot_fraction": "number",
        "accuracy": "number",
        "precision": "number",
        "recall": "number",
    },
    "speedups": {
        "spap": "number",
        "ap_cpu": "number",
        "resource_saving": "number",
    },
    "cost": {
        "budget": "int",
        "requested_backend": "str?",
        "selected_backend": "str?",
        "n_classes": "int",
        "table_bytes_dense": "int",
        "table_bytes_classed": "int",
        "class_compression_ratio": "number",
        "dfa_safe_fraction": "number",
        "partitions": (
            "array",
            {
                "name": "str",
                "n_states": "int",
                "n_classes": "int",
                "dfa_safe": "bool",
                "dfa_states": "int?",
                "recommended": "str",
                "margin": "number",
            },
        ),
    },
    "reduce": {
        "mode": "str",
        "states_before": "int",
        "states_after": "int",
        "saving": "number",
        "merges": {
            "dead_stripped": "int",
            "never_reporting_stripped": "int",
            "backward_merged": "int",
            "forward_merged": "int",
        },
        "baseline_batches_before": "int",
        "baseline_batches_after": "int",
    },
    "stages": ("array", SPAN_SCHEMA),
}

#: The v4 document shape (everything above minus the v5 ``reduce``
#: section); archived v4 exports still validate strictly under their own
#: version instead of failing with a missing-section error.
STATS_SCHEMA_V4 = {key: spec for key, spec in STATS_SCHEMA.items() if key != "reduce"}

#: The v3 document shape (the ``cost`` section without the v4 backend
#: fields); archived v3 exports still validate strictly under their own
#: version instead of failing with missing-field errors.
STATS_SCHEMA_V3 = dict(STATS_SCHEMA_V4)
STATS_SCHEMA_V3["cost"] = {
    key: spec
    for key, spec in STATS_SCHEMA["cost"].items()
    if key not in ("requested_backend", "selected_backend")
}

#: The v2 document shape (everything above minus the ``cost`` section);
#: kept so archived v2 exports still validate strictly under their own
#: version instead of failing with a missing-section error.
STATS_SCHEMA_V2 = {key: spec for key, spec in STATS_SCHEMA_V3.items() if key != "cost"}

#: Versions :func:`validate_stats` accepts, newest first.
SUPPORTED_STATS_VERSIONS = (5, 4, 3, 2)

_SCHEMA_BY_VERSION = {
    5: STATS_SCHEMA,
    4: STATS_SCHEMA_V4,
    3: STATS_SCHEMA_V3,
    2: STATS_SCHEMA_V2,
}

#: The match server's statistics document (``repro.serve``): configuration
#: echo, request/reply/error counters, micro-batch shape, and the server's
#: StageTimer spans (queue wait, batch execution, reply encoding).
SERVE_SCHEMA = {
    "schema_version": "int",
    "server": {
        "apps": ("array", "str"),
        "window_ms": "number",
        "max_batch": "int",
        "max_queue_depth": "int",
        "workers": "int",
        "uptime_seconds": "number",
    },
    "requests": {
        "received": "int",
        "replied": "int",
        "errors": "int",
        "expired": "int",
        "rejected": "int",
    },
    "errors_by_code": ("array", {"code": "str", "count": "int"}),
    "batches": {
        "dispatched": "int",
        "batched_requests": "int",
        "max_size": "int",
        "mean_size": "number",
    },
    "stages": ("array", SPAN_SCHEMA),
}

#: The v2 serve document (``repro.grid``): the v1 shape plus the router's
#: merged ``grid`` section.  ``merge_lag_ms`` is nullable — before the
#: first write-behind merge completes there is no lag to report.
SERVE_SCHEMA_V2 = dict(SERVE_SCHEMA)
SERVE_SCHEMA_V2["grid"] = {
    "n_workers": "int",
    "merges": "int",
    "merge_lag_ms": "number?",
    "spills": "int",
    "failovers": "int",
    "workers_down": "int",
    "workers": (
        "array",
        {
            "worker": "int",
            "up": "bool",
            "apps": ("array", "str"),
            "forwarded": "int",
            "received": "int",
            "replied": "int",
            "errors": "int",
            "rps": "number",
        },
    ),
}

#: Versions :func:`validate_serve_stats` accepts, newest first.
SUPPORTED_SERVE_VERSIONS = (2, 1)

_SERVE_SCHEMA_BY_VERSION = {
    2: SERVE_SCHEMA_V2,
    1: SERVE_SCHEMA,
}


class SchemaError(ValueError):
    """The document does not match :data:`STATS_SCHEMA`."""


def _check(value: Any, spec: Any, path: str, problems: List[str]) -> None:
    if isinstance(spec, dict):
        if not isinstance(value, dict):
            problems.append(f"{path}: expected object, got {type(value).__name__}")
            return
        for key, sub in spec.items():
            if key not in value:
                problems.append(f"{path}.{key}: missing")
            else:
                _check(value[key], sub, f"{path}.{key}", problems)
        for key in value:
            if key not in spec:
                problems.append(f"{path}.{key}: unexpected field")
        return
    if isinstance(spec, tuple) and spec and spec[0] == "array":
        if not isinstance(value, list):
            problems.append(f"{path}: expected array, got {type(value).__name__}")
            return
        for index, item in enumerate(value):
            _check(item, spec[1], f"{path}[{index}]", problems)
        return
    nullable = isinstance(spec, str) and spec.endswith("?")
    kind = spec.rstrip("?")
    if value is None:
        if not nullable:
            problems.append(f"{path}: null is not allowed")
        return
    if kind == "int":
        # bool is an int subclass; it is never a valid counter.
        if not isinstance(value, int) or isinstance(value, bool):
            problems.append(f"{path}: expected int, got {type(value).__name__}")
    elif kind == "number":
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{path}: expected number, got {type(value).__name__}")
    elif kind == "str":
        if not isinstance(value, str):
            problems.append(f"{path}: expected string, got {type(value).__name__}")
    elif kind == "bool":
        if not isinstance(value, bool):
            problems.append(f"{path}: expected bool, got {type(value).__name__}")
    else:  # pragma: no cover - schema author error
        problems.append(f"{path}: unknown spec {spec!r}")


def validate_stats(document: dict) -> None:
    """Validate one exported stats object; raises :class:`SchemaError`.

    Version-checks first so a future producer fails with "unsupported
    version" rather than a wall of field errors.  Each supported version is
    validated against its own shape: a v2 document must not carry the v3
    ``cost`` section, and a v3 document must.
    """
    if not isinstance(document, dict):
        raise SchemaError(f"stats document must be an object, got {type(document).__name__}")
    version = document.get("schema_version")
    # bool is an int subclass: `True` must not dispatch through the integer
    # version keys (it hashes equal to 1) — reject it like any unknown
    # version, with the error naming the supported set.
    valid_key = isinstance(version, int) and not isinstance(version, bool)
    schema = _SCHEMA_BY_VERSION.get(version) if valid_key else None
    if schema is None:
        raise SchemaError(
            f"unsupported stats schema_version {version!r} "
            f"(supported: {', '.join(str(v) for v in SUPPORTED_STATS_VERSIONS)})"
        )
    problems: List[str] = []
    _check(document, schema, "$", problems)
    if problems:
        raise SchemaError(
            f"{len(problems)} schema violation(s): " + "; ".join(problems[:20])
        )


def validate_serve_stats(document: Any) -> None:
    """Validate one match-server statistics export (``repro.serve``).

    Version-dispatched like :func:`validate_stats`: a v1 single-process
    export must not carry the ``grid`` section, a v2 router merge must.
    Raises :class:`SchemaError` on shape violations or an unsupported
    (or bool-typed) version.
    """
    if not isinstance(document, dict):
        raise SchemaError(
            f"serve stats document must be an object, got {type(document).__name__}"
        )
    version = document.get("schema_version")
    # bool is an int subclass: `True` must not dispatch as version 1.
    valid_key = isinstance(version, int) and not isinstance(version, bool)
    schema = _SERVE_SCHEMA_BY_VERSION.get(version) if valid_key else None
    if schema is None:
        raise SchemaError(
            f"unsupported serve schema_version {version!r} "
            f"(supported: {', '.join(str(v) for v in SUPPORTED_SERVE_VERSIONS)})"
        )
    problems: List[str] = []
    _check(document, schema, "$", problems)
    if problems:
        raise SchemaError(
            f"{len(problems)} schema violation(s): " + "; ".join(problems[:20])
        )


def validate_spans(spans: Any) -> int:
    """Validate an exported span list (the bench harness's stats document).

    Returns the number of spans; raises :class:`SchemaError` if any is
    malformed.
    """
    problems: List[str] = []
    _check(spans, ("array", SPAN_SCHEMA), "$.stages", problems)
    if problems:
        raise SchemaError(
            f"{len(problems)} schema violation(s): " + "; ".join(problems[:20])
        )
    return len(spans)


def validate_stats_json(payload: Any) -> int:
    """Validate a CLI export: one stats object or an array of them.

    Returns the number of documents validated; raises :class:`SchemaError`
    on the first invalid one.
    """
    documents = payload if isinstance(payload, list) else [payload]
    for document in documents:
        validate_stats(document)
    return len(documents)
