"""The unified runtime-statistics record.

:class:`RunStats` gathers in one typed place every counter the paper's
evaluation (§VI) is built from, previously scattered across
``BaselineOutcome``, ``PartitionedOutcome``, ``ReportQueueUsage``,
``SimResult``, and ``PredictionQuality``:

* baseline executions and cycles (Table IV "Exe");
* BaseAP cycles, SpAP consumed vs. enable-stall cycles and the jump ratio
  (Table IV "JumpRatio"/"EStalls");
* intermediate-report counts, queue refills, and device-memory traffic
  (§V-B's 128-entry on-chip queue);
* hot fraction and hot/cold prediction quality (Fig 1, Table I);
* the profile-free static prediction and dead/never-reporting proofs
  (``repro.semant``), reported beside the profiled predictor;
* the compilability/cost advisories (``repro.cost``): DFA-safety proofs,
  symbol-class table compression, and the recommended backend per
  partition (schema v3);
* the speedup/resource-saving summary metrics (Fig 10);
* per-stage wall-time spans from the pipeline's :class:`StageTimer`.

``to_json()`` emits the versioned document validated by
:mod:`repro.stats.schema`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .recorder import Span
from .schema import SCHEMA_VERSION

__all__ = ["PartitionCostStats", "RunStats", "render_stats"]


@dataclass(frozen=True)
class PartitionCostStats:
    """One partition's backend advisory, flattened for the stats export.

    A deliberately thin mirror of ``repro.cost.BackendAdvisory`` so this
    module stays import-cycle-free (the cost subsystem itself times its
    work through ``repro.stats``).
    """

    name: str  # "network", "hot", or "cold"
    n_states: int
    n_classes: int
    dfa_safe: bool
    dfa_states: Optional[int]  # proven subset-state count; None when unsafe
    recommended: str  # cheapest feasible backend per the cost model
    margin: float  # runner-up/winner predicted-cost ratio

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "n_states": self.n_states,
            "n_classes": self.n_classes,
            "dfa_safe": self.dfa_safe,
            "dfa_states": self.dfa_states,
            "recommended": self.recommended,
            "margin": self.margin,
        }


@dataclass(frozen=True)
class RunStats:
    """All runtime counters for one application at one operating point."""

    app: str
    full_name: str
    group: str
    # workload
    scale: int
    input_len: int
    profile_fraction: float
    capacity: int
    n_states: int
    n_automata: int
    # baseline AP
    baseline_batches: int
    baseline_cycles: int
    # BaseAP/SpAP
    n_hot_batches: int
    n_cold_batches: int
    base_cycles: int
    spap_consumed_cycles: int
    spap_stall_cycles: int
    spap_cycles: int
    n_intermediate_reports: int
    jump_ratio: Optional[float]
    # intermediate-report queue (§V-B)
    queue_refills: int
    device_bytes: int
    on_chip_bytes: int
    # AP-CPU
    cpu_seconds: float
    cpu_intermediate_reports: int
    # hot/cold prediction
    hot_fraction: float
    predicted_hot_fraction: float
    prediction_accuracy: float
    prediction_precision: float
    prediction_recall: float
    # static semantic analysis (repro.semant)
    n_statically_dead: int
    n_never_reporting: int
    static_hot_fraction: float
    static_accuracy: float
    static_precision: float
    static_recall: float
    # summary metrics
    spap_speedup: float
    ap_cpu_speedup: float
    resource_saving: float
    # compilability/cost analysis (repro.cost, schema v3)
    cost_budget: int = 0
    # backend execution record (schema v4): what was asked for and what
    # actually ran; both null when the collection executed no backend.
    backend_requested: Optional[str] = None
    backend_selected: Optional[str] = None
    cost_n_classes: int = 0
    cost_table_bytes_dense: int = 0
    cost_table_bytes_classed: int = 0
    cost_class_compression_ratio: float = 1.0
    cost_dfa_safe_fraction: float = 0.0
    cost_partitions: List[PartitionCostStats] = field(default_factory=list)
    # equivalence-preserving reduction (repro.reduce, schema v5)
    reduce_mode: str = "exact"
    reduce_states_before: int = 0
    reduce_states_after: int = 0
    reduce_saving: float = 0.0
    reduce_dead_stripped: int = 0
    reduce_never_stripped: int = 0
    reduce_backward_merged: int = 0
    reduce_forward_merged: int = 0
    reduce_batches_before: int = 0
    reduce_batches_after: int = 0
    # pipeline stage timings
    stages: List[Span] = field(default_factory=list)

    def to_json(self) -> dict:
        """The versioned export document (see ``repro.stats.schema``)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "app": self.app,
            "full_name": self.full_name,
            "group": self.group,
            "workload": {
                "scale": self.scale,
                "input_len": self.input_len,
                "profile_fraction": self.profile_fraction,
                "capacity": self.capacity,
                "n_states": self.n_states,
                "n_automata": self.n_automata,
            },
            "baseline": {
                "n_batches": self.baseline_batches,
                "cycles": self.baseline_cycles,
            },
            "spap": {
                "n_hot_batches": self.n_hot_batches,
                "n_cold_batches": self.n_cold_batches,
                "base_cycles": self.base_cycles,
                "consumed_cycles": self.spap_consumed_cycles,
                "stall_cycles": self.spap_stall_cycles,
                "cycles": self.spap_cycles,
                "n_intermediate_reports": self.n_intermediate_reports,
                "jump_ratio": self.jump_ratio,
            },
            "queue": {
                "refills": self.queue_refills,
                "device_bytes": self.device_bytes,
                "on_chip_bytes": self.on_chip_bytes,
            },
            "ap_cpu": {
                "cpu_seconds": self.cpu_seconds,
                "n_intermediate_reports": self.cpu_intermediate_reports,
            },
            "prediction": {
                "hot_fraction": self.hot_fraction,
                "predicted_hot_fraction": self.predicted_hot_fraction,
                "accuracy": self.prediction_accuracy,
                "precision": self.prediction_precision,
                "recall": self.prediction_recall,
            },
            "semant": {
                "n_statically_dead": self.n_statically_dead,
                "n_never_reporting": self.n_never_reporting,
                "static_hot_fraction": self.static_hot_fraction,
                "accuracy": self.static_accuracy,
                "precision": self.static_precision,
                "recall": self.static_recall,
            },
            "speedups": {
                "spap": self.spap_speedup,
                "ap_cpu": self.ap_cpu_speedup,
                "resource_saving": self.resource_saving,
            },
            "cost": {
                "budget": self.cost_budget,
                "requested_backend": self.backend_requested,
                "selected_backend": self.backend_selected,
                "n_classes": self.cost_n_classes,
                "table_bytes_dense": self.cost_table_bytes_dense,
                "table_bytes_classed": self.cost_table_bytes_classed,
                "class_compression_ratio": self.cost_class_compression_ratio,
                "dfa_safe_fraction": self.cost_dfa_safe_fraction,
                "partitions": [p.to_json() for p in self.cost_partitions],
            },
            "reduce": {
                "mode": self.reduce_mode,
                "states_before": self.reduce_states_before,
                "states_after": self.reduce_states_after,
                "saving": self.reduce_saving,
                "merges": {
                    "dead_stripped": self.reduce_dead_stripped,
                    "never_reporting_stripped": self.reduce_never_stripped,
                    "backward_merged": self.reduce_backward_merged,
                    "forward_merged": self.reduce_forward_merged,
                },
                "baseline_batches_before": self.reduce_batches_before,
                "baseline_batches_after": self.reduce_batches_after,
            },
            "stages": [span.to_json() for span in self.stages],
        }


def render_stats(stats: RunStats) -> str:
    """Human-readable block for one application (the non-``--json`` CLI view)."""
    lines = [
        f"{stats.app} ({stats.full_name}, {stats.group}): "
        f"{stats.n_states} states, {stats.n_automata} NFAs, "
        f"capacity {stats.capacity}, input {stats.input_len} B, "
        f"profile {100 * stats.profile_fraction:g}%",
        f"  baseline AP : {stats.baseline_batches} batches, "
        f"{stats.baseline_cycles} cycles",
        f"  BaseAP      : {stats.n_hot_batches} hot batches, "
        f"{stats.base_cycles} cycles",
        f"  SpAP        : {stats.n_cold_batches} cold batches, "
        f"{stats.spap_consumed_cycles} consumed + {stats.spap_stall_cycles} stall "
        f"= {stats.spap_cycles} cycles"
        + (f", jump ratio {stats.jump_ratio:.3f}" if stats.jump_ratio is not None else ""),
        f"  reports     : {stats.n_intermediate_reports} intermediate -> "
        f"{stats.queue_refills} queue refills, {stats.device_bytes} device bytes "
        f"({stats.on_chip_bytes} B on-chip)",
        f"  AP-CPU      : {1e6 * stats.cpu_seconds:.1f} us handler for "
        f"{stats.cpu_intermediate_reports} reports",
        f"  prediction  : hot {100 * stats.hot_fraction:.1f}% actual / "
        f"{100 * stats.predicted_hot_fraction:.1f}% predicted; "
        f"acc {stats.prediction_accuracy:.3f}, "
        f"prec {stats.prediction_precision:.3f}, "
        f"recall {stats.prediction_recall:.3f}",
        f"  semant      : {stats.n_statically_dead} proven dead, "
        f"{stats.n_never_reporting} never-reporting; "
        f"static hot {100 * stats.static_hot_fraction:.1f}% predicted; "
        f"acc {stats.static_accuracy:.3f}, "
        f"prec {stats.static_precision:.3f}, "
        f"recall {stats.static_recall:.3f}",
        f"  speedups    : SpAP {stats.spap_speedup:.2f}x, "
        f"AP-CPU {stats.ap_cpu_speedup:.2f}x, "
        f"resources saved {100 * stats.resource_saving:.1f}%",
    ]
    if stats.cost_partitions:
        verdicts = ", ".join(
            f"{p.name} {'DFA<=' + str(p.dfa_states) if p.dfa_safe else 'NFA-only'}"
            f"->{p.recommended}"
            for p in stats.cost_partitions
        )
        backend_note = ""
        if stats.backend_selected is not None:
            requested = stats.backend_requested or "auto"
            backend_note = (
                f"; ran {stats.backend_selected} (requested {requested})"
            )
        lines.append(
            f"  cost        : {stats.cost_n_classes} classes "
            f"({stats.cost_class_compression_ratio:.1f}x table compression), "
            f"budget {stats.cost_budget}; {verdicts}{backend_note}"
        )
    if stats.reduce_states_before:
        lines.append(
            f"  reduce      : {stats.reduce_states_before} -> "
            f"{stats.reduce_states_after} states "
            f"({100 * stats.reduce_saving:.1f}% saved, {stats.reduce_mode}); "
            f"{stats.reduce_dead_stripped} dead, "
            f"{stats.reduce_never_stripped} never-reporting, "
            f"{stats.reduce_backward_merged} backward, "
            f"{stats.reduce_forward_merged} forward; "
            f"batches {stats.reduce_batches_before} -> {stats.reduce_batches_after}"
        )
    if stats.stages:
        spans = "  ".join(
            f"{span.name} {span.seconds * 1e3:.1f}ms/{span.calls}" for span in stats.stages
        )
        lines.append(f"  stages      : {spans}")
    return "\n".join(lines)
