"""Assemble a :class:`RunStats` record from the experiment pipeline.

Drives the cached :class:`~repro.experiments.pipeline.AppRun` through the
baseline, BaseAP/SpAP, and AP-CPU scenarios (each computed once and reused
by any other consumer of the same run) and unifies their counters with the
queue model, the prediction-quality confusion matrix, and the pipeline's
stage timings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.metrics import prediction_quality
from .record import PartitionCostStats, RunStats

if TYPE_CHECKING:  # imported lazily at call time to avoid a package cycle
    from ..experiments.config import ExperimentConfig
    from ..experiments.pipeline import AppRun

__all__ = ["collect_run_stats", "DEFAULT_STATS_FRACTION"]

#: The paper's standard 1% profiling operating point.
DEFAULT_STATS_FRACTION = 0.01


def collect_run_stats(
    abbr: str,
    config: Optional[ExperimentConfig] = None,
    *,
    fraction: float = DEFAULT_STATS_FRACTION,
    app_run: Optional[AppRun] = None,
    requested_backend: Optional[str] = None,
    selected_backend: Optional[str] = None,
) -> RunStats:
    """All runtime statistics for one application at one profiling fraction.

    ``app_run`` short-circuits the registry lookup when the caller already
    holds a pipeline object (the sweep does); otherwise the shared
    :func:`~repro.experiments.pipeline.get_run` cache is used.

    ``requested_backend``/``selected_backend`` record a backend execution
    the caller performed (schema v4): what the operator asked for and the
    engine that actually ran after feasibility resolution.  Both stay null
    when the collection itself executed no backend — the stats document
    never guesses.
    """
    # Deferred: the pipeline itself uses repro.stats for stage timing, so a
    # top-level import here would be circular.
    from ..experiments.config import default_config
    from ..experiments.pipeline import get_run

    cfg = config or default_config()
    run = app_run if app_run is not None else get_run(abbr, cfg)
    ap = cfg.half_core

    baseline = run.baseline(ap)
    spap = run.base_spap(fraction, ap)
    ap_cpu = run.ap_cpu(fraction, ap)
    queue = spap.queue_usage(ap)

    # Table I prediction quality: the layer-closed predicted-hot mask from
    # the profiling run against the ground-truth hot mask on the test input.
    with run.stats.stage("prediction"):
        predicted = run.predicted_hot_mask(fraction)
        truth_mask = run.truth.hot_mask()
        quality = prediction_quality(predicted, truth_mask)
    n_states = run.network.n_states
    predicted_fraction = float(predicted.sum()) / n_states if n_states else 0.0

    # Profile-free counterpart (repro.semant): the same layer-closed mask
    # shape, predicted from depth and symbol-set selectivity alone, plus the
    # abstract interpreter's dead/never-reporting proofs.
    facts = run.semantics
    static = run.static_prediction()
    static_quality = prediction_quality(static.predicted_hot_mask, truth_mask)
    static_fraction = static.n_predicted_hot / n_states if n_states else 0.0

    # Compilability/cost advisories (repro.cost, schema v3).  The fast
    # static half only — the determinization differential stays in the
    # cost-smoke CI gate and the CLI's --check.
    cost = run.cost_outcome(fraction).cost
    parent = cost.network

    # Equivalence-preserving reduction (repro.reduce, schema v5).  The
    # exact-mode transform is cheap and static (partition refinement plus
    # strip proofs already cached on the run); the soundness differential
    # stays in the reduce-smoke CI gate and the CLI's --check.
    reduction = run.reduced
    batches_after = 0
    if reduction.network.automata:
        from ..ap.batching import pack_batches

        batches_after = len(
            pack_batches(
                [a.n_states for a in reduction.network.automata], ap.capacity
            )
        )

    return RunStats(
        app=run.spec.abbr,
        full_name=run.spec.full_name,
        group=run.spec.group,
        scale=cfg.scale,
        input_len=cfg.input_len,
        profile_fraction=fraction,
        capacity=ap.capacity,
        n_states=n_states,
        n_automata=run.network.n_automata,
        baseline_batches=baseline.n_batches,
        baseline_cycles=baseline.cycles,
        n_hot_batches=spap.n_hot_batches,
        n_cold_batches=spap.n_cold_batches,
        base_cycles=spap.base_cycles,
        spap_consumed_cycles=spap.spap_consumed_cycles,
        spap_stall_cycles=spap.spap_stall_cycles,
        spap_cycles=spap.spap_cycles,
        n_intermediate_reports=spap.n_intermediate_reports,
        jump_ratio=spap.jump_ratio(),
        queue_refills=queue.refills,
        device_bytes=queue.device_bytes,
        on_chip_bytes=queue.on_chip_bytes,
        cpu_seconds=ap_cpu.cpu_seconds,
        cpu_intermediate_reports=ap_cpu.n_intermediate_reports,
        hot_fraction=run.hot_fraction(),
        predicted_hot_fraction=predicted_fraction,
        prediction_accuracy=quality.accuracy,
        prediction_precision=quality.precision,
        prediction_recall=quality.recall,
        n_statically_dead=facts.n_statically_dead,
        n_never_reporting=facts.n_never_reporting,
        static_hot_fraction=static_fraction,
        static_accuracy=static_quality.accuracy,
        static_precision=static_quality.precision,
        static_recall=static_quality.recall,
        spap_speedup=run.spap_speedup(fraction, ap),
        ap_cpu_speedup=run.ap_cpu_speedup(fraction, ap),
        resource_saving=run.resource_saving(fraction, ap),
        cost_budget=cost.budget,
        backend_requested=requested_backend,
        backend_selected=selected_backend,
        cost_n_classes=parent.classes.n_classes,
        cost_table_bytes_dense=parent.classes.table_bytes_dense,
        cost_table_bytes_classed=parent.classes.table_bytes_classed,
        cost_class_compression_ratio=parent.classes.compression_ratio,
        cost_dfa_safe_fraction=cost.dfa_safe_fraction,
        cost_partitions=[
            PartitionCostStats(
                name=advisory.partition,
                n_states=advisory.n_states,
                n_classes=advisory.classes.n_classes,
                dfa_safe=advisory.dfa_safe,
                dfa_states=advisory.dfa_states,
                recommended=advisory.recommended,
                margin=advisory.margin,
            )
            for advisory in cost.advisories
        ],
        reduce_mode=reduction.mode,
        reduce_states_before=reduction.parent_n_states,
        reduce_states_after=reduction.n_states,
        reduce_saving=reduction.saving_fraction,
        reduce_dead_stripped=reduction.n_dead_stripped,
        reduce_never_stripped=reduction.n_never_stripped,
        reduce_backward_merged=reduction.n_backward_merged,
        reduce_forward_merged=reduction.n_forward_merged,
        reduce_batches_before=baseline.n_batches,
        reduce_batches_after=batches_after,
        stages=run.stats.spans(),
    )
