"""Parallel all-application sweep: the 26-app workload fanned across cores.

Every paper figure consumes some slice of the same per-application pipeline
(build -> profile -> partition -> three scenarios).  This module runs that
pipeline for many applications at once with a ``ProcessPoolExecutor``: each
worker process keeps the ordinary :mod:`repro.experiments.pipeline`
``AppRun`` cache, so the expensive stages of one application are computed
exactly once no matter how many metrics the sweep extracts from it, and
separate applications proceed on separate cores.

``run_sweep(jobs=1)`` (or ``jobs=0``) degrades to a serial in-process sweep
that shares the caller's ``AppRun`` cache — useful in tests and when the
results will be reused by figure code in the same process.

CLI: ``python -m repro sweep [APPS ...] [--jobs N] [--profile F] [--json]``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.metrics import geometric_mean
from ..workloads.registry import APPS, app_names
from .config import ExperimentConfig, default_config
from .pipeline import get_run
from .tables import render_table

__all__ = [
    "AppSweepRow",
    "SweepError",
    "run_sweep",
    "render_sweep",
    "sweep_summary",
    "DEFAULT_PROFILE_FRACTION",
]

#: Profiling fraction used when none is given (the paper's 1% operating point).
DEFAULT_PROFILE_FRACTION = 0.01


class SweepError(RuntimeError):
    """One application's pipeline failed; names the app (pool workers lose
    that context otherwise).  In-process the original exception is
    ``__cause__``; ``args`` holds ``(abbr, message)`` so the exception
    survives pickling back across the process-pool boundary."""

    def __init__(self, abbr: str, cause):
        super().__init__(abbr, str(cause))
        self.abbr = abbr

    def __str__(self) -> str:
        return f"{self.args[0]}: {self.args[1]}"


@dataclass(frozen=True)
class AppSweepRow:
    """One application's sweep outcome (all scenarios, one profile point).

    The counter columns are the unified runtime statistics of
    :mod:`repro.stats` (Table IV's cycle/stall/report counters, the §V-B
    queue accounting, Table I prediction accuracy) so a sweep doubles as a
    cross-application stats export.
    """

    abbr: str
    full_name: str
    group: str
    n_states: int
    n_automata: int
    hot_fraction: float
    baseline_batches: int
    baseline_cycles: int
    base_cycles: int
    spap_cycles: int
    spap_stall_cycles: int
    n_intermediate_reports: int
    queue_refills: int
    device_bytes: int
    prediction_accuracy: float
    static_accuracy: float  # profile-free predictor (repro.semant)
    n_statically_dead: int
    n_classes: int  # effective symbol-class alphabet (repro.cost)
    dfa_safe: bool  # parent network proven determinizable within budget
    advised_backend: str  # the cost advisory's recommendation (network)
    backend: str  # engine actually used (= advised when none was executed)
    backend_mb_s: float  # measured MB/s of that engine (0.0 if not executed)
    spap_speedup: float
    ap_cpu_speedup: float
    resource_saving: float
    seconds: float  # wall time spent computing this row
    # SPAP-R reduction (repro.reduce): always measured (the exact-mode
    # transform is cheap and cached); ``reduced`` records whether the
    # backend execution above actually ran on the reduced network.
    n_states_reduced: int = 0
    reduce_saving: float = 0.0
    reduced: bool = False

    def to_json(self) -> dict:
        return asdict(self)


def sweep_app(abbr: str, config: ExperimentConfig,
              fraction: float = DEFAULT_PROFILE_FRACTION,
              backend: Optional[str] = None,
              backend_fallback: bool = False,
              reduce: bool = False) -> AppSweepRow:
    """Compute one application's row (cached via the pipeline's ``AppRun``).

    ``backend`` requests a backend execution over the test input:
    ``"auto"`` selects per the cost advisory with feasibility fallback
    (DESIGN.md §13); an explicit name forces that engine and *raises*
    :class:`~repro.sim.BackendInfeasibleError` (wrapped in
    :class:`SweepError` by the pool worker) when it cannot run, unless
    ``backend_fallback`` opts into multistream substitution.  ``None``
    skips execution — the Backend column then shows the advisory's
    recommendation, as before.

    ``reduce`` routes the backend execution through the SPAP-R-reduced
    network (report-equivalent by construction; DESIGN.md §15), so the
    MB/s column measures the engine on the smaller state space.  The
    reduction columns themselves (``n_states_reduced``/``reduce_saving``)
    are always populated — the exact-mode transform is cheap and cached.
    """
    from ..stats.collect import collect_run_stats

    if abbr not in APPS:
        raise KeyError(f"unknown application {abbr!r}")
    began = time.perf_counter()
    app_run = get_run(abbr, config)
    used_for_stats: Optional[str] = None
    backend_mb_s = 0.0
    if backend is not None:
        name, engine = app_run.select_backend(
            backend, fraction,
            allow_fallback=True if backend_fallback else None,
            reduce=reduce,
        )
        prepared = (
            app_run.reduced_prepared_for(name) if reduce
            else app_run.prepared_for(name)
        )
        data = app_run.test_input
        engine.run(prepared, data)  # warm lazy tables/dispatch paths
        t0 = time.perf_counter()
        engine.run(prepared, data)
        elapsed = time.perf_counter() - t0
        used_for_stats = name
        backend_mb_s = len(data) / elapsed / 1e6 if elapsed > 0 else 0.0
    stats = collect_run_stats(
        abbr, config, fraction=fraction, app_run=app_run,
        requested_backend=backend, selected_backend=used_for_stats,
    )
    advised = next(
        (p.recommended for p in stats.cost_partitions if p.name == "network"),
        "reference",
    )
    used = used_for_stats if used_for_stats is not None else advised
    row = AppSweepRow(
        abbr=abbr,
        full_name=stats.full_name,
        group=stats.group,
        n_states=stats.n_states,
        n_automata=stats.n_automata,
        hot_fraction=stats.hot_fraction,
        baseline_batches=stats.baseline_batches,
        baseline_cycles=stats.baseline_cycles,
        base_cycles=stats.base_cycles,
        spap_cycles=stats.spap_cycles,
        spap_stall_cycles=stats.spap_stall_cycles,
        n_intermediate_reports=stats.n_intermediate_reports,
        queue_refills=stats.queue_refills,
        device_bytes=stats.device_bytes,
        prediction_accuracy=stats.prediction_accuracy,
        static_accuracy=stats.static_accuracy,
        n_statically_dead=stats.n_statically_dead,
        n_classes=stats.cost_n_classes,
        dfa_safe=any(
            p.dfa_safe for p in stats.cost_partitions if p.name == "network"
        ),
        advised_backend=advised,
        backend=used,
        backend_mb_s=backend_mb_s,
        spap_speedup=stats.spap_speedup,
        ap_cpu_speedup=stats.ap_cpu_speedup,
        resource_saving=stats.resource_saving,
        seconds=time.perf_counter() - began,
        n_states_reduced=stats.reduce_states_after,
        reduce_saving=stats.reduce_saving,
        reduced=reduce and used_for_stats is not None,
    )
    return row


def _sweep_worker(
    payload: Tuple[str, ExperimentConfig, float, Optional[str], bool, bool]
) -> AppSweepRow:
    """Top-level (picklable) worker: one application in one process."""
    abbr, config, fraction, backend, backend_fallback, reduce = payload
    try:
        return sweep_app(abbr, config, fraction, backend, backend_fallback, reduce)
    except Exception as err:
        raise SweepError(abbr, err) from err


def run_sweep(
    apps: Optional[Sequence[str]] = None,
    config: Optional[ExperimentConfig] = None,
    *,
    fraction: float = DEFAULT_PROFILE_FRACTION,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
    backend_fallback: bool = False,
    reduce: bool = False,
) -> List[AppSweepRow]:
    """Sweep ``apps`` (default: the whole registry), ``jobs``-wide.

    ``jobs=None`` uses every core; ``jobs<=1`` runs serially in-process
    (sharing the caller's ``AppRun`` cache).  Rows come back in input order.
    ``backend`` (``"auto"`` or an engine name) additionally executes the
    test input per app on the selected engine — see :func:`sweep_app`;
    ``backend_fallback`` permits multistream substitution for explicit
    requests that are infeasible on some apps (otherwise those apps fail
    their rows loudly).  ``reduce`` routes those executions through the
    SPAP-R-reduced network.
    """
    targets = list(apps) if apps is not None else app_names()
    for abbr in targets:
        if abbr not in APPS:
            raise KeyError(f"unknown application {abbr!r}")
    cfg = config or default_config()
    if jobs is None:
        jobs = os.cpu_count() or 1
    payloads = [
        (abbr, cfg, fraction, backend, backend_fallback, reduce)
        for abbr in targets
    ]
    if jobs <= 1 or len(targets) <= 1:
        return [_sweep_worker(payload) for payload in payloads]
    with ProcessPoolExecutor(max_workers=min(jobs, len(targets))) as executor:
        return list(executor.map(_sweep_worker, payloads))


def render_sweep(rows: Sequence[AppSweepRow]) -> str:
    """Human-readable sweep table (one row per application)."""
    body = [
        [
            row.abbr,
            row.group,
            row.n_states,
            row.n_automata,
            f"{100.0 * row.hot_fraction:.1f}%",
            row.baseline_batches,
            row.spap_stall_cycles,
            row.n_intermediate_reports,
            row.queue_refills,
            f"{row.prediction_accuracy:.3f}",
            f"{row.static_accuracy:.3f}",
            row.n_classes,
            f"{row.backend}{'*' if row.dfa_safe else ''}",
            f"{row.backend_mb_s:.1f}" if row.backend_mb_s > 0 else "-",
            f"{100.0 * row.reduce_saving:.1f}%{'+' if row.reduced else ''}",
            f"{row.spap_speedup:.2f}x",
            f"{row.ap_cpu_speedup:.2f}x",
            f"{100.0 * row.resource_saving:.1f}%",
            f"{row.seconds:.2f}s",
        ]
        for row in rows
    ]
    # Backend column: the engine that actually executed (or, when no
    # --backend was requested, the advisory's recommendation); '*' marks
    # networks proven DFA-safe within the default subset-construction
    # budget (repro.cost).  MB/s is '-' unless a backend was executed.
    # Reduce column: SPAP-R exact-mode state saving; '+' marks rows whose
    # backend execution actually ran on the reduced network (--reduce).
    # "Saved" remains the paper's Fig-10 *resource* saving — distinct.
    return render_table(
        ["App", "Group", "States", "NFAs", "Hot", "Batches", "Stalls",
         "IRs", "Refills", "PredAcc", "StatAcc", "Classes", "Backend",
         "MB/s", "Reduce", "SpAP", "AP-CPU", "Saved", "Wall"],
        body,
    )


def sweep_summary(rows: Sequence[AppSweepRow]) -> dict:
    """Aggregate view of a sweep: geomean speedups and counter totals.

    Geometric means are the paper's summary statistic for speedups
    (Fig 10); counters are summed across applications.
    """
    if not rows:
        raise ValueError("summary of an empty sweep")
    return {
        "n_apps": len(rows),
        "geomean_spap_speedup": geometric_mean(row.spap_speedup for row in rows),
        "geomean_ap_cpu_speedup": geometric_mean(row.ap_cpu_speedup for row in rows),
        "mean_resource_saving": sum(row.resource_saving for row in rows) / len(rows),
        "mean_reduce_saving": sum(row.reduce_saving for row in rows) / len(rows),
        # State ratio after/before per app (1.0 when nothing was reducible
        # or the network is empty), geomean'd like the speedups.
        "geomean_reduce_state_ratio": geometric_mean(
            (row.n_states_reduced / row.n_states)
            if row.n_states and row.n_states_reduced
            else 1.0
            for row in rows
        ),
        "mean_prediction_accuracy":
            sum(row.prediction_accuracy for row in rows) / len(rows),
        "mean_static_accuracy":
            sum(row.static_accuracy for row in rows) / len(rows),
        "total_statically_dead":
            sum(row.n_statically_dead for row in rows),
        "mean_class_count":
            sum(row.n_classes for row in rows) / len(rows),
        "fraction_dfa_safe":
            sum(1 for row in rows if row.dfa_safe) / len(rows),
        "total_intermediate_reports":
            sum(row.n_intermediate_reports for row in rows),
        "total_queue_refills": sum(row.queue_refills for row in rows),
        "total_device_bytes": sum(row.device_bytes for row in rows),
        "total_stall_cycles": sum(row.spap_stall_cycles for row in rows),
    }
