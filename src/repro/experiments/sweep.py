"""Parallel all-application sweep: the 26-app workload fanned across cores.

Every paper figure consumes some slice of the same per-application pipeline
(build -> profile -> partition -> three scenarios).  This module runs that
pipeline for many applications at once with a ``ProcessPoolExecutor``: each
worker process keeps the ordinary :mod:`repro.experiments.pipeline`
``AppRun`` cache, so the expensive stages of one application are computed
exactly once no matter how many metrics the sweep extracts from it, and
separate applications proceed on separate cores.

``run_sweep(jobs=1)`` (or ``jobs=0``) degrades to a serial in-process sweep
that shares the caller's ``AppRun`` cache — useful in tests and when the
results will be reused by figure code in the same process.

CLI: ``python -m repro sweep [APPS ...] [--jobs N] [--profile F] [--json]``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence, Tuple

from ..workloads.registry import APPS, app_names
from .config import ExperimentConfig, default_config
from .pipeline import get_run
from .tables import render_table

__all__ = [
    "AppSweepRow",
    "SweepError",
    "run_sweep",
    "render_sweep",
    "DEFAULT_PROFILE_FRACTION",
]

#: Profiling fraction used when none is given (the paper's 1% operating point).
DEFAULT_PROFILE_FRACTION = 0.01


class SweepError(RuntimeError):
    """One application's pipeline failed; names the app (pool workers lose
    that context otherwise).  In-process the original exception is
    ``__cause__``; ``args`` holds ``(abbr, message)`` so the exception
    survives pickling back across the process-pool boundary."""

    def __init__(self, abbr: str, cause):
        super().__init__(abbr, str(cause))
        self.abbr = abbr

    def __str__(self) -> str:
        return f"{self.args[0]}: {self.args[1]}"


@dataclass(frozen=True)
class AppSweepRow:
    """One application's sweep outcome (all scenarios, one profile point)."""

    abbr: str
    full_name: str
    group: str
    n_states: int
    n_automata: int
    hot_fraction: float
    baseline_batches: int
    baseline_cycles: int
    spap_speedup: float
    ap_cpu_speedup: float
    resource_saving: float
    seconds: float  # wall time spent computing this row

    def to_json(self) -> dict:
        return asdict(self)


def sweep_app(abbr: str, config: ExperimentConfig,
              fraction: float = DEFAULT_PROFILE_FRACTION) -> AppSweepRow:
    """Compute one application's row (cached via the pipeline's ``AppRun``)."""
    if abbr not in APPS:
        raise KeyError(f"unknown application {abbr!r}")
    began = time.perf_counter()
    app_run = get_run(abbr, config)
    ap = config.half_core
    baseline = app_run.baseline(ap)
    row = AppSweepRow(
        abbr=abbr,
        full_name=app_run.spec.full_name,
        group=app_run.spec.group,
        n_states=app_run.network.n_states,
        n_automata=app_run.network.n_automata,
        hot_fraction=app_run.hot_fraction(),
        baseline_batches=baseline.n_batches,
        baseline_cycles=baseline.cycles,
        spap_speedup=app_run.spap_speedup(fraction, ap),
        ap_cpu_speedup=app_run.ap_cpu_speedup(fraction, ap),
        resource_saving=app_run.resource_saving(fraction, ap),
        seconds=time.perf_counter() - began,
    )
    return row


def _sweep_worker(payload: Tuple[str, ExperimentConfig, float]) -> AppSweepRow:
    """Top-level (picklable) worker: one application in one process."""
    abbr, config, fraction = payload
    try:
        return sweep_app(abbr, config, fraction)
    except Exception as err:
        raise SweepError(abbr, err) from err


def run_sweep(
    apps: Optional[Sequence[str]] = None,
    config: Optional[ExperimentConfig] = None,
    *,
    fraction: float = DEFAULT_PROFILE_FRACTION,
    jobs: Optional[int] = None,
) -> List[AppSweepRow]:
    """Sweep ``apps`` (default: the whole registry), ``jobs``-wide.

    ``jobs=None`` uses every core; ``jobs<=1`` runs serially in-process
    (sharing the caller's ``AppRun`` cache).  Rows come back in input order.
    """
    targets = list(apps) if apps is not None else app_names()
    for abbr in targets:
        if abbr not in APPS:
            raise KeyError(f"unknown application {abbr!r}")
    cfg = config or default_config()
    if jobs is None:
        jobs = os.cpu_count() or 1
    payloads = [(abbr, cfg, fraction) for abbr in targets]
    if jobs <= 1 or len(targets) <= 1:
        return [_sweep_worker(payload) for payload in payloads]
    with ProcessPoolExecutor(max_workers=min(jobs, len(targets))) as executor:
        return list(executor.map(_sweep_worker, payloads))


def render_sweep(rows: Sequence[AppSweepRow]) -> str:
    """Human-readable sweep table (one row per application)."""
    body = [
        [
            row.abbr,
            row.group,
            row.n_states,
            row.n_automata,
            f"{100.0 * row.hot_fraction:.1f}%",
            row.baseline_batches,
            f"{row.spap_speedup:.2f}x",
            f"{row.ap_cpu_speedup:.2f}x",
            f"{100.0 * row.resource_saving:.1f}%",
            f"{row.seconds:.2f}s",
        ]
        for row in rows
    ]
    return render_table(
        ["App", "Group", "States", "NFAs", "Hot", "Batches",
         "SpAP", "AP-CPU", "Saved", "Wall"],
        body,
    )
