"""Cached per-application experiment pipeline.

Every paper figure/table needs some subset of: the built network, its
topology, the split input, ground-truth hot states on the test input,
profiling runs at several fractions, partitions, and the three execution
scenarios.  :class:`AppRun` computes each once and caches it, so a full
multi-figure sweep touches each expensive stage exactly once per app.

Each cache-miss computation runs under the run's :class:`StageTimer`
(``repro.stats``), so any consumer can ask where the wall time of a
pipeline went; cache hits are never re-timed.  ``REPRO_NO_STATS=1``
disables recording entirely.

The module cache and the lazy construction stages (build, topology,
compile) are thread-safe: the match server (``repro.serve``) shares one
pipeline across its executor workers, so :func:`get_run` guards the cache
dict with a lock and :class:`AppRun` double-checks its construction
stages under a per-run lock — concurrent first access computes each stage
exactly once.  The simulation stages themselves remain single-threaded
per run (the server serializes them per application).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from ..ap.config import APConfig
from ..core.partition import PartitionedNetwork, partition_network, plan_hot_batches
from ..core.profiling import choose_partition_layers, layer_closure_mask
from ..core.scenarios import (
    BaselineOutcome,
    PartitionedOutcome,
    run_ap_cpu,
    run_base_spap,
    run_baseline_ap,
)
from ..nfa.analysis import NetworkTopology, analyze_network
from ..nfa.automaton import Network
from ..semant.absint import SemanticFacts, analyze_network_semantics
from ..semant.predict import StaticPrediction, predict_hot_cold
from ..sim import Engine, FALLBACK_BACKEND, resolve_backend
from ..sim.compiled import CompiledNetwork, compile_network
from ..sim.dfa import CompiledDFA, compile_dfa
from ..sim.lazydfa import CompiledLazyDfa, compile_lazydfa
from ..sim.engine import run
from ..sim.result import SimResult
from ..stats.recorder import StageTimer
from ..workloads.registry import AppSpec, get_app
from .config import ExperimentConfig, default_config

__all__ = ["AppRun", "get_run", "clear_cache"]


class AppRun:
    """Lazily-computed, cached experiment state for one application."""

    def __init__(self, spec: AppSpec, config: ExperimentConfig):
        self.spec = spec
        self.config = config
        #: Wall-time spans of every cache-miss stage (repro.stats).
        self.stats = StageTimer()
        # Serializes the lazy construction stages when multiple threads
        # share this run (re-entrant: `compiled` needs `network`).
        self._lock = threading.RLock()
        self._network: Optional[Network] = None
        self._topology: Optional[NetworkTopology] = None
        self._semantics: Optional[SemanticFacts] = None
        self._static_predictions: Dict[int, StaticPrediction] = {}
        self._compiled: Optional[CompiledNetwork] = None
        self._dfa: Optional[CompiledDFA] = None
        self._lazydfa: Optional[CompiledLazyDfa] = None
        self._entire_input: Optional[bytes] = None
        self._truth: Optional[SimResult] = None
        self._profiles: Dict[float, SimResult] = {}
        self._partitions: Dict[Tuple[float, int], Tuple[PartitionedNetwork, list]] = {}
        self._baselines: Dict[int, BaselineOutcome] = {}
        self._spap: Dict[Tuple[float, int], PartitionedOutcome] = {}
        self._ap_cpu: Dict[Tuple[float, int], PartitionedOutcome] = {}
        # repro.cost outcomes, keyed (fraction, budget); typed loosely to
        # keep this module import-cycle-free (repro.cost times itself
        # through repro.stats).
        self._cost: Dict[Tuple[float, int], object] = {}
        # repro.reduce results keyed by mode, and per-(mode, backend)
        # compiled artifacts of the reduced network; loosely typed for the
        # same import-cycle reason.
        self._reductions: Dict[str, object] = {}
        self._reduced_prepared: Dict[Tuple[str, str], object] = {}

    # -- construction stages ------------------------------------------------------

    @property
    def network(self) -> Network:
        if self._network is None:
            with self._lock:
                if self._network is None:
                    with self.stats.stage("build"):
                        self._network = self.spec.build(self.config.scale)
        return self._network

    @property
    def topology(self) -> NetworkTopology:
        if self._topology is None:
            with self._lock:
                if self._topology is None:
                    network = self.network
                    with self.stats.stage("topology"):
                        self._topology = analyze_network(network)
        return self._topology

    @property
    def semantics(self) -> SemanticFacts:
        """Abstract-interpretation facts over the parent network (repro.semant)."""
        if self._semantics is None:
            topology = self.topology  # timed under its own stage
            with self.stats.stage("semant"):
                self._semantics = analyze_network_semantics(self.network, topology)
        return self._semantics

    def static_prediction(self, horizon: Optional[int] = None) -> StaticPrediction:
        """Profile-free hot/cold prediction (default horizon: the input length)."""
        h = self.config.input_len if horizon is None else horizon
        if h not in self._static_predictions:
            facts = self.semantics  # timed under the same `semant` stage
            with self.stats.stage("semant"):
                self._static_predictions[h] = predict_hot_cold(
                    self.network, facts, self.topology, horizon=h
                )
        return self._static_predictions[h]

    @property
    def compiled(self) -> CompiledNetwork:
        if self._compiled is None:
            with self._lock:
                if self._compiled is None:
                    network = self.network
                    with self.stats.stage("compile"):
                        self._compiled = compile_network(network)
        return self._compiled

    @property
    def compiled_dfa(self) -> CompiledDFA:
        """The materialized table-driven DFA (DESIGN.md §13).

        Raises :class:`~repro.sim.dfa.DfaInfeasibleError` when the network
        is not DFA-safe — callers should route selection through
        :meth:`select_backend`, which checks feasibility first and falls
        back to multistream instead of raising.
        """
        if self._dfa is None:
            with self._lock:
                if self._dfa is None:
                    network = self.network
                    with self.stats.stage("compile_dfa"):
                        self._dfa = compile_dfa(network)
        return self._dfa

    @property
    def compiled_lazydfa(self) -> CompiledLazyDfa:
        """The lazy-DFA hybrid artifact (DESIGN.md §14).

        Always feasible (no subset-construction proof required); its
        subset cache fills during execution and persists on this run, so
        repeated inputs execute mostly at table speed.
        """
        if self._lazydfa is None:
            with self._lock:
                if self._lazydfa is None:
                    network = self.network
                    with self.stats.stage("compile_lazydfa"):
                        self._lazydfa = compile_lazydfa(network)
        return self._lazydfa

    @property
    def entire_input(self) -> bytes:
        if self._entire_input is None:
            with self._lock:
                if self._entire_input is None:
                    network = self.network
                    with self.stats.stage("input"):
                        self._entire_input = self.spec.make_input(
                            network, self.config.input_len
                        )
        return self._entire_input

    @property
    def test_input(self) -> bytes:
        """Second half of the input — except for start-of-data applications,
        which consume the entire input (paper footnote 2)."""
        if self.spec.start_of_data:
            return self.entire_input
        return self.entire_input[len(self.entire_input) // 2 :]

    def profile_input(self, fraction: float) -> bytes:
        """A prefix of the first half, ``fraction`` of the *entire* input."""
        take = max(1, int(round(len(self.entire_input) * fraction)))
        take = min(take, len(self.entire_input) // 2)
        return self.entire_input[:take]

    # -- simulation stages ---------------------------------------------------------

    @property
    def truth(self) -> SimResult:
        """Ground truth on the test input (hot set, reports)."""
        if self._truth is None:
            with self.stats.stage("truth"):
                self._truth = run(self.compiled, self.test_input, track_enabled=True)
        return self._truth

    def hot_fraction(self) -> float:
        return self.truth.hot_fraction()

    def profile(self, fraction: float) -> SimResult:
        if fraction not in self._profiles:
            with self.stats.stage("profile"):
                self._profiles[fraction] = run(
                    self.compiled, self.profile_input(fraction), track_enabled=True
                )
        return self._profiles[fraction]

    def predicted_hot_mask(self, fraction: float) -> np.ndarray:
        """The layer-closed profiled prediction (what the partitioner uses)."""
        hot = self.profile(fraction).hot_mask()
        layers = choose_partition_layers(self.network, self.topology, hot)
        return layer_closure_mask(self.network, self.topology, layers)

    def partition(self, fraction: float, config: APConfig,
                  *, fill: bool = True) -> Tuple[PartitionedNetwork, list]:
        key = (fraction, config.capacity, fill)
        if key not in self._partitions:
            hot_mask = self.profile(fraction).hot_mask()
            with self.stats.stage("partition"):
                layers = choose_partition_layers(self.network, self.topology, hot_mask)
                layers, bins = plan_hot_batches(
                    self.network, self.topology, layers, config.capacity, fill=fill
                )
                partitioned = partition_network(
                    self.network, layers, topology=self.topology
                )
            if self.config.verify:
                # Fail fast: refuse to simulate a partition or batch plan that
                # violates a §IV-C/§III-C invariant (escape hatch: --no-verify
                # on the CLI, REPRO_NO_VERIFY=1, or ExperimentConfig(verify=False)).
                from ..verify.app import verify_partition_with_plan

                with self.stats.stage("verify"):
                    verify_partition_with_plan(
                        partitioned, bins, config.capacity
                    ).raise_for_errors()
            self._partitions[key] = (partitioned, bins)
        return self._partitions[key]

    def baseline(self, config: APConfig) -> BaselineOutcome:
        if config.capacity not in self._baselines:
            with self.stats.stage("baseline"):
                self._baselines[config.capacity] = run_baseline_ap(
                    self.network, self.test_input, config
                )
        return self._baselines[config.capacity]

    def base_spap(self, fraction: float, config: APConfig) -> PartitionedOutcome:
        key = (fraction, config.capacity)
        if key not in self._spap:
            partitioned, bins = self.partition(fraction, config)
            with self.stats.stage("base_spap"):
                self._spap[key] = run_base_spap(
                    partitioned, self.test_input, config, bins
                )
        return self._spap[key]

    def ap_cpu(self, fraction: float, config: APConfig) -> PartitionedOutcome:
        key = (fraction, config.capacity)
        if key not in self._ap_cpu:
            partitioned, bins = self.partition(fraction, config)
            with self.stats.stage("ap_cpu"):
                self._ap_cpu[key] = run_ap_cpu(
                    partitioned, self.test_input, config, bins, self.config.cpu_model
                )
        return self._ap_cpu[key]

    def cost_outcome(self, fraction: float, budget: Optional[int] = None):
        """Cached compilability/cost advisories (``repro.cost``).

        The fast static half only (no determinization differential); the
        work itself is timed under the ``cost`` stage inside
        :func:`~repro.cost.app.analyze_run_cost`.
        """
        # Deferred: repro.cost imports this module for the AppRun type.
        from ..cost.app import analyze_run_cost
        from ..cost.explore import DEFAULT_DFA_BUDGET

        use_budget = DEFAULT_DFA_BUDGET if budget is None else budget
        key = (fraction, use_budget)
        if key not in self._cost:
            self._cost[key] = analyze_run_cost(
                self, fraction=fraction, budget=use_budget
            )
        return self._cost[key]

    def reduction(self, mode: str = "exact"):
        """The cached :class:`~repro.reduce.transform.ReductionResult`.

        ``exact`` (the ``--reduce`` default) preserves reports and witness
        masks bit for bit; ``aggressive`` preserves the report stream only.
        Reuses the cached semant facts and is timed under the ``reduce``
        stage.
        """
        # Deferred: repro.reduce.app imports this module for the AppRun type.
        from ..reduce.transform import reduce_network

        if mode not in self._reductions:
            with self._lock:
                if mode not in self._reductions:
                    facts = self.semantics  # timed under its own stage
                    with self.stats.stage("reduce"):
                        self._reductions[mode] = reduce_network(
                            self.network, facts, mode=mode
                        )
        return self._reductions[mode]

    @property
    def reduced(self):
        """The exact-mode reduction (see :meth:`reduction`)."""
        return self.reduction("exact")

    def reduced_prepared_for(self, backend: str, mode: str = "exact") -> object:
        """The cached executable artifact of the *reduced* network."""
        key = (mode, backend)
        if key not in self._reduced_prepared:
            with self._lock:
                if key not in self._reduced_prepared:
                    network = self.reduction(mode).network
                    with self.stats.stage("compile_reduced"):
                        if backend == "reference":
                            prepared: object = network
                        elif backend == "dfa":
                            prepared = compile_dfa(network)
                        elif backend == "lazydfa":
                            prepared = compile_lazydfa(network)
                        else:
                            prepared = compile_network(network)
                    self._reduced_prepared[key] = prepared
        return self._reduced_prepared[key]

    # -- backend selection (DESIGN.md §13) -----------------------------------------

    def backend_advisory(self, fraction: float, budget: Optional[int] = None):
        """The whole-network :class:`BackendAdvisory` at this operating point."""
        return self.cost_outcome(fraction, budget).cost.network

    def select_backend(
        self,
        requested: Optional[str],
        fraction: float,
        budget: Optional[int] = None,
        *,
        allow_fallback: Optional[bool] = None,
        reduce: bool = False,
    ) -> Tuple[str, Engine]:
        """Resolve a backend request for this run's network.

        ``None``/``"auto"`` consults the cost advisory
        (:meth:`backend_advisory`); an explicit name skips the advisory
        entirely.  Either way the choice is feasibility-checked against
        the concrete network: ``auto`` requests fall back to multistream
        silently, explicit ones raise
        :class:`~repro.sim.BackendInfeasibleError` unless
        ``allow_fallback=True`` opts into substitution, so the returned
        name is the engine that will actually execute.

        With ``reduce=True`` feasibility is checked against the *reduced*
        network (the one that will execute) — a reduction can make a
        DFA-unsafe network safe, so the reduced check is both necessary
        and an opportunity.
        """
        advised = FALLBACK_BACKEND
        if requested in (None, "auto"):
            advised = self.backend_advisory(fraction, budget).recommended
        subject = self.reduction().network if reduce else self.network
        return resolve_backend(
            requested, subject, advised=advised,
            allow_fallback=allow_fallback,
        )

    def prepared_for(self, backend: str) -> object:
        """The cached executable artifact for a resolved backend name."""
        if backend == "reference":
            return self.network
        if backend == "dfa":
            return self.compiled_dfa
        if backend == "lazydfa":
            return self.compiled_lazydfa
        return self.compiled

    def run_backend(
        self,
        requested: Optional[str],
        input_data: Optional[bytes] = None,
        *,
        fraction: float,
        budget: Optional[int] = None,
        track_enabled: bool = False,
        allow_fallback: Optional[bool] = None,
        reduce: bool = False,
    ) -> Tuple[str, SimResult]:
        """Execute the test input (or ``input_data``) on a selected backend.

        Returns ``(backend_actually_used, result)``; results are
        bit-identical across backends by the cross-engine property gate.
        With ``reduce=True`` the engine executes the exact-mode reduced
        network and the result is lifted back to parent global state ids,
        so reports and witness masks stay bit-identical to an unreduced
        run (the SPAP-R001 guarantee).
        """
        name, engine = self.select_backend(
            requested, fraction, budget, allow_fallback=allow_fallback,
            reduce=reduce,
        )
        prepared = (
            self.reduced_prepared_for(name) if reduce else self.prepared_for(name)
        )
        with self.stats.stage(f"run_{name}"):
            result = engine.run(
                prepared,
                self.test_input if input_data is None else input_data,
                track_enabled=track_enabled,
            )
        if reduce:
            result = self.reduction().lift_result(result)
        return name, result

    def stored_app(self, backend: str = "auto", *,
                   fraction: Optional[float] = None) -> "object":
        """This run's serving artifacts as a picklable grid store entry.

        The explicit, serializable face of the pipeline cache
        (``repro.grid.store``): backend selection runs here — advisory
        consulted for ``auto``, feasibility-checked either way, with
        serving's availability-over-strictness fallback — and exactly the
        artifacts the selected engine needs are materialized, so a grid
        worker loads the entry instead of re-running the pipeline.
        """
        # Deferred: repro.grid.store imports this module for build_store.
        from ..grid.store import StoredApp
        from .sweep import DEFAULT_PROFILE_FRACTION

        frac = DEFAULT_PROFILE_FRACTION if fraction is None else fraction
        advised = FALLBACK_BACKEND
        if backend in (None, "auto"):
            advised = self.backend_advisory(frac).recommended
        name, _engine = self.select_backend(backend, frac, allow_fallback=True)
        entry = StoredApp(
            name=self.spec.abbr,
            backend=name,
            network=self.network,
            compiled=self.compiled,
            advised=advised if backend in (None, "auto") else name,
        )
        if name == "dfa":
            entry.dfa = self.compiled_dfa
        elif name == "lazydfa":
            entry.lazydfa = self.compiled_lazydfa
        return entry

    # -- derived metrics -----------------------------------------------------------

    def spap_speedup(self, fraction: float, config: APConfig) -> float:
        baseline = self.baseline(config)
        outcome = self.base_spap(fraction, config)
        return baseline.cycles / outcome.cycles

    def ap_cpu_speedup(self, fraction: float, config: APConfig) -> float:
        baseline = self.baseline(config)
        outcome = self.ap_cpu(fraction, config)
        return baseline.seconds(config) / outcome.seconds(config)

    def resource_saving(self, fraction: float, config: APConfig) -> float:
        partitioned, _bins = self.partition(fraction, config)
        return partitioned.resource_saving()


_CACHE: Dict[Tuple[str, int, int], AppRun] = {}
_CACHE_LOCK = threading.Lock()


def get_run(abbr: str, config: Optional[ExperimentConfig] = None) -> AppRun:
    """The cached :class:`AppRun` for an application under a configuration.

    Safe to call from multiple threads: concurrent first lookups of the
    same key return the *same* run object (construction is cheap — every
    expensive stage is lazy and guarded inside :class:`AppRun` itself).
    """
    cfg = config or default_config()
    key = (abbr, cfg.scale, cfg.input_len)
    run = _CACHE.get(key)
    if run is None:
        with _CACHE_LOCK:
            run = _CACHE.get(key)
            if run is None:
                run = AppRun(get_app(abbr), cfg)
                _CACHE[key] = run
    return run


def clear_cache() -> None:
    with _CACHE_LOCK:
        _CACHE.clear()
