"""Minimal ASCII table rendering for experiment output."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["render_table", "format_value"]


def format_value(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    if value is None:
        return "-"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows under headers with aligned columns."""
    cells: List[List[str]] = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)
