"""Experiment harness: per-figure regeneration of the paper's evaluation."""

from .config import ExperimentConfig, default_config
from .figures import (
    SPEEDUP_GROUPS,
    ExperimentResult,
    fig01_hot_states,
    fig05_depth_distribution,
    fig06_ideal_model,
    fig08_constrained_states,
    fig10_speedup_and_savings,
    fig11_performance_per_ste,
    fig12_reporting_states,
    fig13_capacity_sensitivity,
    table1_profiling_effectiveness,
    table2_applications,
    table4_runtime_statistics,
)
from .pipeline import AppRun, clear_cache, get_run
from .sweep import AppSweepRow, render_sweep, run_sweep
from .tables import render_table

__all__ = [
    "ExperimentConfig",
    "default_config",
    "SPEEDUP_GROUPS",
    "ExperimentResult",
    "fig01_hot_states",
    "fig05_depth_distribution",
    "fig06_ideal_model",
    "fig08_constrained_states",
    "fig10_speedup_and_savings",
    "fig11_performance_per_ste",
    "fig12_reporting_states",
    "fig13_capacity_sensitivity",
    "table1_profiling_effectiveness",
    "table2_applications",
    "table4_runtime_statistics",
    "AppRun",
    "clear_cache",
    "get_run",
    "AppSweepRow",
    "render_sweep",
    "run_sweep",
    "render_table",
]
